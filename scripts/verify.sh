#!/usr/bin/env bash
# Full offline verification gate: release build, workspace tests, and
# clippy with warnings denied. Everything resolves against the vendored
# shims in shims/, so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test --workspace -q --offline

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> verify OK"
