#!/usr/bin/env bash
# Full offline verification gate: release build, workspace tests, the
# serial/parallel training-equivalence matrix, and clippy with warnings
# denied. Everything resolves against the vendored shims in shims/, so
# --offline always works.
#
# PROPTEST_CASES is pinned so property-test coverage is identical across
# CI runs (the proptest shim reads it, matching upstream's env override).
set -euo pipefail
cd "$(dirname "$0")/.."

PROPTEST_CASES="${PROPTEST_CASES:-64}"
export PROPTEST_CASES

# On AVX2-capable hosts the kernel-tier suites must run against the real
# SIMD dispatch: VSAN_REQUIRE_AVX2=1 turns "the fast tier silently fell
# back to scalar bodies" from a vacuous pass into a test failure
# (crates/core/tests/parallel_train.rs).
if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  export VSAN_REQUIRE_AVX2=1
  echo "==> AVX2 host: exporting VSAN_REQUIRE_AVX2=1"
fi

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline (PROPTEST_CASES=${PROPTEST_CASES})"
cargo test --workspace -q --offline

# Chaos matrix: the fault-injection suite must hold under several
# distinct failpoint schedules, not just the default seed. The suite
# also must never quietly shelve a scenario: an `ignored` test in
# vsan-serve is a gate failure, not a skip.
echo "==> chaos matrix (VSAN_FAILPOINT_SEED x3)"
for seed in 1 7 99991; do
  echo "    -- seed ${seed}"
  out="$(VSAN_FAILPOINT_SEED=${seed} cargo test -q --offline -p vsan-serve 2>&1)" || {
    echo "${out}"
    echo "chaos run failed under VSAN_FAILPOINT_SEED=${seed}" >&2
    exit 1
  }
  if echo "${out}" | grep -E "^test result:" | grep -vq " 0 ignored"; then
    echo "${out}"
    echo "vsan-serve has ignored tests; the chaos suite must run whole" >&2
    exit 1
  fi
done

# The differential gates below only gate what actually runs: an
# `ignored` test in the core or tensor suites would silently hollow
# them out, so those crates must run whole too.
echo "==> no-ignored-tests check (vsan-core, vsan-tensor)"
for crate in vsan-core vsan-tensor; do
  out="$(cargo test -q --offline -p "${crate}" 2>&1)" || {
    echo "${out}"
    echo "${crate} test run failed" >&2
    exit 1
  }
  if echo "${out}" | grep -E "^test result:" | grep -vq " 0 ignored"; then
    echo "${out}"
    echo "${crate} has ignored tests; the differential gates must run whole" >&2
    exit 1
  fi
done

# Threads-matrix smoke: re-run the data-parallel equivalence suite under
# an explicit serial + even + beyond-batch-size matrix so CI exercises
# both the inline path (threads=1) and genuinely pooled paths even if the
# suite's default matrix changes.
echo "==> equivalence matrix (VSAN_THREADS_MATRIX=1,2,8)"
VSAN_THREADS_MATRIX=1,2,8 cargo test -q --offline -p vsan-core --test parallel_train

# Fast-path differential gate: the graph-free inference path must stay
# bit-identical to the graph oracle. The proptest suite and the golden
# fixture run twice — once with the fast path live (default) and once
# pinned to the graph path (VSAN_DISABLE_FAST_PATH=1), so both process-
# level routings of score_items_batch are exercised end to end.
echo "==> fast-path differential suite (VSAN_DISABLE_FAST_PATH unset + =1)"
cargo test -q --offline -p vsan-core --test fast_path
cargo test -q --offline --test golden_logits
VSAN_DISABLE_FAST_PATH=1 cargo test -q --offline -p vsan-core --test fast_path
VSAN_DISABLE_FAST_PATH=1 cargo test -q --offline --test golden_logits

# Training kernel-tier + buffer-policy differential gate (DESIGN.md
# §10 + §14, PRs 9/10): the fused/tiled fast training tier must stay
# bit-identical to the scalar reference tape, and arena-reuse training
# (reset graphs, recycled buffers, vectorized elementwise/softmax
# kernels) must stay bit-identical to fresh-allocation training. The
# proptest differential suite (which now carries the arena-reuse and
# steady-state-allocation tests), the tiered gradcheck suite, the
# golden 3-step training fixture (now a policy × tier × thread grid),
# and the threads × tier training grid all run twice — with the
# environment pin unset (fast tier + arena reuse are the defaults) and
# with VSAN_DISABLE_FAST_PATH=1 (reference tier + fresh allocations) —
# covering every env × entry-point routing the pin controls. In-config
# pins override the env, so each single run still exercises both
# tiers' kernels and both policies; the double run proves the
# *routing* under both process-level env states.
echo "==> kernel-tier + buffer-policy differential suite (VSAN_DISABLE_FAST_PATH unset + =1)"
cargo test -q --offline -p vsan-autograd --test tier_differential
cargo test -q --offline -p vsan-autograd --test gradcheck_ops
cargo test -q --offline -p vsan-core --test golden_train
VSAN_DISABLE_FAST_PATH=1 cargo test -q --offline -p vsan-autograd --test tier_differential
VSAN_DISABLE_FAST_PATH=1 cargo test -q --offline -p vsan-autograd --test gradcheck_ops
VSAN_DISABLE_FAST_PATH=1 cargo test -q --offline -p vsan-core --test golden_train
VSAN_DISABLE_FAST_PATH=1 cargo test -q --offline -p vsan-core --test parallel_train

# The committed training benchmark must attest all three halves of the
# training-perf claims: every policy × tier × thread cell trained
# bit-identical parameters, the single-thread fused/tiled training step
# is at least 2x the reference tape at every benchmarked shape, and
# steady-state training steps under arena reuse pull exactly zero
# tensor buffers from the global allocator (allocation-free training,
# DESIGN.md §14).
echo "==> results/BENCH_train.json bitwise_match + min_kernel_speedup >= 2 + zero-alloc attestations"
if [ ! -f results/BENCH_train.json ]; then
  echo "results/BENCH_train.json missing — run: cargo run --release -p vsan-bench --bin train_bench" >&2
  exit 1
fi
if ! grep -q '"bitwise_match": true' results/BENCH_train.json; then
  echo "results/BENCH_train.json lacks \"bitwise_match\": true" >&2
  exit 1
fi
speedup="$(sed -n 's/.*"min_kernel_speedup": \([0-9.]*\).*/\1/p' results/BENCH_train.json | head -n1)"
if [ -z "${speedup}" ]; then
  echo "results/BENCH_train.json lacks \"min_kernel_speedup\" — regenerate with train_bench" >&2
  exit 1
fi
if ! awk -v s="${speedup}" 'BEGIN { exit !(s >= 2.0) }'; then
  echo "min_kernel_speedup ${speedup} < 2.0 — the fast training tier no longer pays for itself" >&2
  exit 1
fi
allocs="$(sed -n 's/.*"tensor_allocs_per_step_steady": \([0-9.]*\).*/\1/p' results/BENCH_train.json | head -n1)"
if [ -z "${allocs}" ]; then
  echo "results/BENCH_train.json lacks \"tensor_allocs_per_step_steady\" — regenerate with train_bench" >&2
  exit 1
fi
if ! awk -v a="${allocs}" 'BEGIN { exit !(a <= 0.0) }'; then
  echo "tensor_allocs_per_step_steady ${allocs} > 0 — steady-state training steps allocate again" >&2
  exit 1
fi

# Session differential gate: the incremental append path (prepare +
# one-row fold-in, DESIGN.md §11) must equal a full recompute for any
# interleaving of append/cold/evict. The core differential suite, the
# store/runtime proptests, and the engine-level session tests all run
# twice — incremental path live, then pinned to full recompute
# (VSAN_DISABLE_FAST_PATH=1) so the bypass wiring itself is exercised.
echo "==> append-vs-recompute differential suite (VSAN_DISABLE_FAST_PATH unset + =1)"
cargo test -q --offline -p vsan-core --test session_incremental
cargo test -q --offline -p vsan-session
cargo test -q --offline -p vsan-serve --test session
VSAN_DISABLE_FAST_PATH=1 cargo test -q --offline -p vsan-core --test session_incremental
VSAN_DISABLE_FAST_PATH=1 cargo test -q --offline -p vsan-session
VSAN_DISABLE_FAST_PATH=1 cargo test -q --offline -p vsan-serve --test session

# The inference benchmark report must attest bit-identity: infer_bench
# refuses to write a report on any mismatch, so a stale or absent
# attestation is a gate failure.
echo "==> results/BENCH_infer.json bitwise_match attestation"
if [ ! -f results/BENCH_infer.json ]; then
  echo "results/BENCH_infer.json missing — run: cargo run --release -p vsan-bench --bin infer_bench" >&2
  exit 1
fi
if ! grep -q '"bitwise_match": true' results/BENCH_infer.json; then
  echo "results/BENCH_infer.json lacks \"bitwise_match\": true" >&2
  exit 1
fi

# The committed report must also attest the incremental-session claim:
# a warm append is at least 5x cheaper per event than a full recompute
# at history length >= 50 (ISSUE 6 acceptance gate).
echo "==> results/BENCH_infer.json min_session_speedup >= 5 attestation"
speedup="$(sed -n 's/.*"min_session_speedup": \([0-9.]*\).*/\1/p' results/BENCH_infer.json | head -n1)"
if [ -z "${speedup}" ]; then
  echo "results/BENCH_infer.json lacks \"min_session_speedup\" — regenerate with infer_bench" >&2
  exit 1
fi
if ! awk -v s="${speedup}" 'BEGIN { exit !(s >= 5.0) }'; then
  echo "min_session_speedup ${speedup} < 5.0 — incremental append no longer pays for itself" >&2
  exit 1
fi

# Retrieval differential gate: the clustered MIPS index must equal the
# exact oracle bit for bit at full probe, keep recall monotone in
# nprobe, and reject the same errors. The core proptest suite and the
# engine-level retrieval tests run twice — clustered path live
# (default) and pinned to the exact oracle (VSAN_DISABLE_ANN=1) — so
# both process-level routings of recommend_batch are exercised.
echo "==> retrieval differential suite (VSAN_DISABLE_ANN unset + =1)"
cargo test -q --offline -p vsan-core --test retrieval
cargo test -q --offline -p vsan-serve --test retrieval
VSAN_DISABLE_ANN=1 cargo test -q --offline -p vsan-core --test retrieval
VSAN_DISABLE_ANN=1 cargo test -q --offline -p vsan-serve --test retrieval

# The committed retrieval report must attest the recall gate — every
# catalog size holds recall@50 >= 0.95 against the exact oracle — and
# the million-item speedup claim (clustered >= 5x brute force).
echo "==> results/BENCH_retrieval.json recall_at_50 >= 0.95 + speedup attestations"
if [ ! -f results/BENCH_retrieval.json ]; then
  echo "results/BENCH_retrieval.json missing — run: cargo run --release -p vsan-bench --bin retrieval_bench" >&2
  exit 1
fi
if ! grep -q '"full_probe_bitwise": true' results/BENCH_retrieval.json; then
  echo "results/BENCH_retrieval.json lacks \"full_probe_bitwise\": true" >&2
  exit 1
fi
if ! awk '
  /"recall_at_50"/ {
    for (i = 1; i <= NF; i++) if ($i ~ /"recall_at_50":/) {
      v = $(i + 1); gsub(/[,}]/, "", v); n++
      if (v + 0 < 0.95) bad = 1
    }
  }
  END { exit (n == 0 || bad) }
' results/BENCH_retrieval.json; then
  echo "a \"recall_at_50\" in results/BENCH_retrieval.json is missing or < 0.95" >&2
  exit 1
fi
speedup="$(sed -n 's/.*"min_clustered_speedup": \([0-9.]*\).*/\1/p' results/BENCH_retrieval.json | head -n1)"
if [ -z "${speedup}" ]; then
  echo "results/BENCH_retrieval.json lacks \"min_clustered_speedup\" — regenerate with retrieval_bench" >&2
  exit 1
fi
if ! awk -v s="${speedup}" 'BEGIN { exit !(s >= 5.0) }'; then
  echo "min_clustered_speedup ${speedup} < 5.0 — the index no longer pays for itself at 1M items" >&2
  exit 1
fi

# Tracing differential gate: the request-scoped tracing suite must
# hold with the flight recorder on and with every inference rerouting
# in play — the spans a stage records depend on which path served it,
# and rankings must not depend on either.
echo "==> tracing suite (default + VSAN_DISABLE_ANN=1 + VSAN_DISABLE_FAST_PATH=1)"
cargo test -q --offline -p vsan-serve --test trace
VSAN_DISABLE_ANN=1 cargo test -q --offline -p vsan-serve --test trace
VSAN_DISABLE_FAST_PATH=1 cargo test -q --offline -p vsan-serve --test trace

# The committed serving report must attest that tracing is effectively
# free: p50/p99 latency with the flight recorder on regresses < 3%
# against the same engine with tracing disabled, the traced and
# untraced twins served identical bits, and at least one histogram
# carries a real (nonzero) trace-id exemplar.
echo "==> results/BENCH_serve.json trace_overhead < 3% attestation"
if [ ! -f results/BENCH_serve.json ]; then
  echo "results/BENCH_serve.json missing — run: cargo run --release -p vsan-bench --bin serve_bench" >&2
  exit 1
fi
if ! grep -q '"trace_overhead"' results/BENCH_serve.json; then
  echo "results/BENCH_serve.json lacks the trace_overhead phase — regenerate with serve_bench" >&2
  exit 1
fi
for q in p50 p99; do
  pct="$(sed -n "s/.*\"${q}_overhead_pct\": \(-\{0,1\}[0-9.]*\).*/\1/p" results/BENCH_serve.json | head -n1)"
  if [ -z "${pct}" ]; then
    echo "results/BENCH_serve.json lacks \"${q}_overhead_pct\" — regenerate with serve_bench" >&2
    exit 1
  fi
  if ! awk -v p="${pct}" 'BEGIN { exit !(p < 3.0) }'; then
    echo "${q} tracing overhead ${pct}% >= 3% — tracing is no longer effectively free" >&2
    exit 1
  fi
done
if ! grep -q '"results_match": true' results/BENCH_serve.json; then
  echo "results/BENCH_serve.json lacks \"results_match\": true — tracing changed served bits" >&2
  exit 1
fi
exemplar="$(sed -n 's/.*"exemplar_trace": *"\([0-9a-f]*\)".*/\1/p' results/BENCH_serve.json | head -n1)"
if [ -z "${exemplar}" ] || [ "${exemplar}" = "0000000000000000" ]; then
  echo "results/BENCH_serve.json lacks a nonzero \"exemplar_trace\" — regenerate with serve_bench" >&2
  exit 1
fi

# Instrumented smoke pass: trains and serves with full telemetry
# attached, then validates the JSONL streams (fails on zero events,
# any record that does not parse, a flight-recorder trace graph whose
# spans do not all resolve to an admission root, or a live Prometheus
# scrape whose body does not round-trip through the parser).
echo "==> obs_smoke (instrumented train + serve telemetry)"
cargo run --release --offline -q -p vsan-bench --bin obs_smoke

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> verify OK"
