//! Training-throughput benchmark for the deterministic data-parallel
//! executor (`results/BENCH_train.json`).
//!
//! Trains the same VSAN on the same synthetic dataset once per
//! **kernel tier × thread count** cell and reports epoch wall-clock
//! alongside the speedup over the serial reference-tier run. Because the
//! contract is bit-identical parameters for every cell of that grid, the
//! report carries a `bitwise_match` gate computed from the full
//! parameter set — a speedup from diverging numerics would be
//! meaningless, exactly like `serve_bench`'s `results_match`.
//!
//! The report also carries a single-thread **kernel-step microbench**:
//! forward + backward of a projected causal-attention step on each tier,
//! timed at representative shapes. `min_kernel_speedup` (the worst
//! fast-over-reference ratio across those shapes) is the number
//! `scripts/verify.sh` gates at ≥ 2× — the tentpole claim that the tiled
//! fused training kernels actually buy wall-clock, not just pass
//! equivalence tests.
//!
//! The report records `available_parallelism` so readers can interpret
//! the scaling column: with fewer physical cores than worker threads the
//! extra threads time-slice one core and the speedup honestly saturates
//! at the hardware, not at the thread count.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vsan_autograd::Graph;
use vsan_core::{Vsan, VsanConfig};
use vsan_data::Dataset;
use vsan_obs::{CollectingObserver, EpochRecord, ObserverHandle};
use vsan_tensor::{BufferPolicy, KernelTier, Tensor};

use crate::serve_bench::results_dir;

/// Workload knobs for [`run_train_bench`].
#[derive(Debug, Clone)]
pub struct TrainBenchConfig {
    /// Catalogue size of the synthetic training set.
    pub num_items: usize,
    /// Users in the synthetic training set.
    pub num_users: usize,
    /// Interactions per training user.
    pub seq_len: usize,
    /// Model width `d`.
    pub dim: usize,
    /// Model attention window `n`.
    pub max_seq_len: usize,
    /// Training epochs per thread count.
    pub epochs: usize,
    /// Mini-batch size (shards of 8 are carved out of each batch).
    pub batch_size: usize,
    /// Thread counts to sweep; the first entry is the serial baseline.
    pub thread_counts: Vec<usize>,
    /// RNG seed for the dataset and training.
    pub seed: u64,
}

impl Default for TrainBenchConfig {
    fn default() -> Self {
        TrainBenchConfig {
            num_items: 200,
            num_users: 128,
            seq_len: 30,
            dim: 48,
            max_seq_len: 24,
            epochs: 2,
            batch_size: 32,
            thread_counts: vec![1, 2, 4, 8],
            seed: 42,
        }
    }
}

impl TrainBenchConfig {
    /// Sub-second configuration for the test suite.
    pub fn smoke() -> Self {
        TrainBenchConfig {
            num_items: 30,
            num_users: 24,
            seq_len: 12,
            dim: 16,
            max_seq_len: 8,
            // Two epochs so the steady-state allocation counter has a
            // post-warm-up interval to measure.
            epochs: 2,
            batch_size: 16,
            thread_counts: vec![1, 2, 4],
            ..Self::default()
        }
    }
}

/// One grid cell's measurement within a [`TrainBenchReport`].
#[derive(Debug, Clone)]
pub struct ThreadTiming {
    /// Worker threads used.
    pub threads: usize,
    /// Kernel tier the run trained under.
    pub tier: KernelTier,
    /// Buffer policy the run trained under.
    pub policy: BufferPolicy,
    /// Wall-clock seconds for the whole training run.
    pub total_seconds: f64,
    /// `total_seconds / epochs`.
    pub epoch_seconds: f64,
    /// Serial reference-tier epoch time divided by this epoch time.
    pub speedup_vs_serial: f64,
}

/// One shape's single-thread kernel-step measurement: forward + backward
/// of `x·Wq, x·Wk, x·Wv → causal_attention → ·Wo → Σ(out²)` on each tier.
#[derive(Debug, Clone)]
pub struct KernelStepTiming {
    /// Sequence length `n` of the step.
    pub n: usize,
    /// Model width `d` of the step.
    pub d: usize,
    /// Seconds per step on the reference tier.
    pub reference_seconds: f64,
    /// Seconds per step on the fast tier.
    pub fast_seconds: f64,
    /// `reference_seconds / fast_seconds`.
    pub speedup: f64,
}

/// Measured results of one benchmark run.
#[derive(Debug, Clone)]
pub struct TrainBenchReport {
    /// Configuration the run used.
    pub config: TrainBenchConfig,
    /// Per-thread-count timings, in `config.thread_counts` order.
    pub timings: Vec<ThreadTiming>,
    /// Whether every grid cell (policy × tier × threads) produced
    /// bit-identical parameters and per-epoch losses to the serial
    /// fresh-allocation reference baseline.
    pub bitwise_match: bool,
    /// Tensor buffers pulled from the global allocator *per optimizer
    /// step* after the first epoch's warm-up, measured on the serial
    /// fast-tier arena run. The allocation-free-training claim is that
    /// this is exactly 0 (`scripts/verify.sh` gates it).
    pub tensor_allocs_per_step_steady: f64,
    /// Single-thread kernel-step microbench, one row per shape.
    pub kernel_steps: Vec<KernelStepTiming>,
    /// Worst fast-over-reference kernel-step ratio across the shapes —
    /// the number CI holds to ≥ 2.
    pub min_kernel_speedup: f64,
    /// `std::thread::available_parallelism()` on the benchmarking host —
    /// the hardware ceiling for any honest speedup figure.
    pub available_parallelism: usize,
    /// Per-epoch telemetry of the serial baseline run (loss with its
    /// CE/KL split, β, gradient norms) — every other thread count
    /// produced the identical series, which `bitwise_match` verifies
    /// through the trained parameters.
    pub epoch_series: Vec<EpochRecord>,
}

/// Bit-pattern fingerprint of a trained model: per-epoch losses plus
/// every parameter tensor.
type Fingerprint = (Vec<u32>, Vec<Vec<u32>>);

fn fingerprint(model: &Vsan) -> Fingerprint {
    let losses = model.train_losses.iter().map(|l| l.to_bits()).collect();
    let params = model
        .params()
        .iter()
        .map(|(_, _, t)| t.data().iter().map(|x| x.to_bits()).collect())
        .collect();
    (losses, params)
}

/// Deterministic `(n, d)` operands for one kernel-step microbench shape.
fn step_operands(n: usize, d: usize) -> (Tensor, Tensor, Tensor, Tensor, Tensor) {
    let mk = |salt: usize, r: usize, c: usize| {
        let data: Vec<f32> =
            (0..r * c).map(|i| (((salt * 97 + i * 13) as f32) * 0.19).sin() * 0.5).collect();
        Tensor::from_vec(data, &[r, c]).unwrap()
    };
    (mk(1, n, d), mk(2, d, d), mk(3, d, d), mk(4, d, d), mk(5, d, d))
}

/// Seconds per forward+backward of the projected-attention step on one
/// tier, single-threaded (median-free mean over `iters` after warmup —
/// the step is long enough that scheduler noise averages out).
fn time_kernel_step(n: usize, d: usize, iters: usize, tier: KernelTier) -> f64 {
    let (x, wq, wk, wv, wo) = step_operands(n, d);
    let step = || {
        let mut g = Graph::with_threads_and_tier(1, tier);
        let xv = g.param(x.clone(), 0);
        let wqv = g.param(wq.clone(), 1);
        let wkv = g.param(wk.clone(), 2);
        let wvv = g.param(wv.clone(), 3);
        let wov = g.param(wo.clone(), 4);
        let q = g.matmul(xv, wqv).unwrap();
        let k = g.matmul(xv, wkv).unwrap();
        let v = g.matmul(xv, wvv).unwrap();
        let attn = g.causal_attention(q, k, v, 1.0 / (d as f32).sqrt()).unwrap();
        let out = g.matmul(attn, wov).unwrap();
        let sq = g.mul(out, out).unwrap();
        let loss = g.sum_all(sq);
        let grads = g.backward(loss).unwrap();
        assert!(grads.param_grad(0).is_some());
    };
    for _ in 0..2 {
        step();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        step();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Run the single-thread kernel-step microbench over representative
/// shapes; returns the per-shape rows and the worst speedup.
pub fn run_kernel_step_bench() -> (Vec<KernelStepTiming>, f64) {
    // Shapes bracketing the training step from repro scale (d=48) up to
    // the paper config's width (d=200), off tile multiples on purpose so
    // the remainder paths are part of what is timed.
    let shapes = [(48usize, 48usize), (96, 64), (50, 200), (128, 128)];
    let mut rows = Vec::with_capacity(shapes.len());
    let mut min_speedup = f64::INFINITY;
    for (n, d) in shapes {
        let iters = if n * d >= 96 * 64 { 20 } else { 40 };
        let reference_seconds = time_kernel_step(n, d, iters, KernelTier::Reference);
        let fast_seconds = time_kernel_step(n, d, iters, KernelTier::Fast);
        let speedup = reference_seconds / fast_seconds.max(1e-12);
        min_speedup = min_speedup.min(speedup);
        rows.push(KernelStepTiming { n, d, reference_seconds, fast_seconds, speedup });
    }
    (rows, min_speedup)
}

/// Train the same model once per kernel-tier × thread-count cell, timing
/// each run and verifying the grid-wide bit-identity contract, then run
/// the single-thread kernel-step microbench.
pub fn run_train_bench(cfg: TrainBenchConfig) -> TrainBenchReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sequences: Vec<Vec<u32>> = (0..cfg.num_users)
        .map(|_| (0..cfg.seq_len).map(|_| rng.gen_range(1..=cfg.num_items as u32)).collect())
        .collect();
    let ds = Dataset { name: "train-bench".into(), num_items: cfg.num_items, sequences };
    let train_users: Vec<usize> = (0..cfg.num_users).collect();

    let mut model_cfg = VsanConfig::smoke().with_seed(cfg.seed);
    model_cfg.base.dim = cfg.dim;
    model_cfg.base.max_seq_len = cfg.max_seq_len;
    model_cfg.base.epochs = cfg.epochs;
    model_cfg.base.batch_size = cfg.batch_size;

    // Warm the code paths (allocator, page faults) outside the timings.
    {
        let mut warm = model_cfg.clone();
        warm.base.epochs = 1;
        let _ = Vsan::train(&ds, &train_users[..cfg.batch_size.min(train_users.len())], &warm);
    }

    let mut baseline: Option<(f64, Fingerprint)> = None;
    let mut bitwise_match = true;
    let mut timings = Vec::with_capacity(4 * cfg.thread_counts.len());
    let mut epoch_series = Vec::new();
    let mut arena_series: Vec<EpochRecord> = Vec::new();
    for policy in [BufferPolicy::Fresh, BufferPolicy::Arena] {
        for tier in [KernelTier::Reference, KernelTier::Fast] {
            for &threads in &cfg.thread_counts {
                // Every timed run trains *with an observer attached*, so
                // the bitwise gate below also verifies that observing a
                // run does not change the trained bits (DESIGN.md §8).
                let collector = Arc::new(CollectingObserver::new());
                let run_cfg = model_cfg
                    .clone()
                    .with_threads(threads)
                    .with_kernel_tier(tier)
                    .with_buffer_policy(policy)
                    .with_observer(ObserverHandle::new(collector.clone()));
                let t0 = Instant::now();
                let model = Vsan::train(&ds, &train_users, &run_cfg).expect("bench training");
                let total_seconds = t0.elapsed().as_secs_f64();
                let epoch_seconds = total_seconds / cfg.epochs.max(1) as f64;
                let fp = fingerprint(&model);
                let (serial_epoch_seconds, serial_fp) =
                    baseline.get_or_insert_with(|| (epoch_seconds, fp.clone()));
                if fp != *serial_fp {
                    bitwise_match = false;
                }
                if epoch_series.is_empty() {
                    epoch_series = collector.records();
                }
                if arena_series.is_empty()
                    && policy == BufferPolicy::Arena
                    && tier == KernelTier::Fast
                    && threads == cfg.thread_counts[0]
                {
                    arena_series = collector.records();
                }
                timings.push(ThreadTiming {
                    threads,
                    tier,
                    policy,
                    total_seconds,
                    epoch_seconds,
                    speedup_vs_serial: *serial_epoch_seconds / epoch_seconds.max(1e-12),
                });
            }
        }
    }

    let (kernel_steps, min_kernel_speedup) = run_kernel_step_bench();

    TrainBenchReport {
        config: cfg,
        timings,
        bitwise_match,
        tensor_allocs_per_step_steady: steady_allocs_per_step(&arena_series),
        kernel_steps,
        min_kernel_speedup,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        epoch_series,
    }
}

/// Tensor buffers freshly allocated per optimizer step after the first
/// epoch, from an arena run's cumulative per-epoch counters. Epoch 0
/// absorbs the warm-up (the arena's free lists fill); every later epoch
/// must be served entirely from reuse.
fn steady_allocs_per_step(arena_series: &[EpochRecord]) -> f64 {
    let (Some(first), Some(last)) = (arena_series.first(), arena_series.last()) else {
        return f64::NAN;
    };
    let steps = last.steps.saturating_sub(first.steps);
    if steps == 0 {
        return f64::NAN;
    }
    last.arena_fresh_allocs.saturating_sub(first.arena_fresh_allocs) as f64 / steps as f64
}

impl TrainBenchReport {
    /// Serialize as a JSON object (hand-rolled: the workspace has no
    /// JSON dependency and the schema is flat plus one array).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let rows: Vec<String> = self
            .timings
            .iter()
            .map(|t| {
                format!(
                    "    {{\"threads\": {}, \"tier\": \"{}\", \"policy\": \"{}\", \
                     \"total_seconds\": {:.6}, \
                     \"epoch_seconds\": {:.6}, \"speedup_vs_serial\": {:.3}}}",
                    t.threads,
                    t.tier.name(),
                    t.policy.name(),
                    t.total_seconds,
                    t.epoch_seconds,
                    t.speedup_vs_serial
                )
            })
            .collect();
        let kernel_rows: Vec<String> = self
            .kernel_steps
            .iter()
            .map(|k| {
                format!(
                    "    {{\"n\": {}, \"d\": {}, \"reference_seconds\": {:.6}, \
                     \"fast_seconds\": {:.6}, \"speedup\": {:.3}}}",
                    k.n, k.d, k.reference_seconds, k.fast_seconds, k.speedup
                )
            })
            .collect();
        let epochs: Vec<String> =
            self.epoch_series.iter().map(|r| format!("    {}", r.to_json())).collect();
        format!(
            "{{\n  \"benchmark\": \"deterministic data-parallel training executor\",\n  \
               \"num_items\": {},\n  \"num_users\": {},\n  \"seq_len\": {},\n  \
               \"dim\": {},\n  \"max_seq_len\": {},\n  \"epochs\": {},\n  \
               \"batch_size\": {},\n  \"seed\": {},\n  \
               \"available_parallelism\": {},\n  \
               \"bitwise_match\": {},\n  \
               \"tensor_allocs_per_step_steady\": {:.3},\n  \
               \"min_kernel_speedup\": {:.3},\n  \
               \"kernel_steps\": [\n{}\n  ],\n  \"timings\": [\n{}\n  ],\n  \
               \"epoch_series\": [\n{}\n  ]\n}}\n",
            c.num_items,
            c.num_users,
            c.seq_len,
            c.dim,
            c.max_seq_len,
            c.epochs,
            c.batch_size,
            c.seed,
            self.available_parallelism,
            self.bitwise_match,
            self.tensor_allocs_per_step_steady,
            self.min_kernel_speedup,
            kernel_rows.join(",\n"),
            rows.join(",\n"),
            epochs.join(",\n"),
        )
    }

    /// Write the JSON report into the workspace `results/` directory.
    pub fn write_json(&self, file_name: &str) -> std::io::Result<std::path::PathBuf> {
        let path = results_dir().join(file_name);
        std::fs::create_dir_all(results_dir())?;
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke invocation of the full benchmark: every tier × thread cell
    /// must reproduce the serial reference run bit-for-bit. No speedup
    /// floor is asserted here — under a test harness the counts
    /// time-slice whatever cores the host grants (often one), and the
    /// determinism contract is the part that can regress silently. (The
    /// ≥ 2× kernel-step floor is a CI gate on the real benchmark run,
    /// scripts/verify.sh.)
    #[test]
    fn smoke_run_is_bitwise_identical_across_the_tier_thread_grid() {
        let report = run_train_bench(TrainBenchConfig::smoke());
        assert!(report.bitwise_match, "grid cells diverged: {report:?}");
        // 2 policies × 2 tiers × 3 thread counts.
        assert_eq!(report.timings.len(), 12);
        assert!(report.timings.iter().all(|t| t.total_seconds > 0.0));
        assert_eq!(
            report.timings.iter().filter(|t| t.tier == KernelTier::Fast).count(),
            6,
            "the fast tier must be half of the grid"
        );
        assert_eq!(
            report.timings.iter().filter(|t| t.policy == BufferPolicy::Arena).count(),
            6,
            "arena reuse must be half of the grid"
        );
        // The allocation-free-training claim: after epoch 0's warm-up the
        // arena run pulls zero tensor buffers from the global allocator.
        assert_eq!(
            report.tensor_allocs_per_step_steady, 0.0,
            "steady-state steps still allocate tensor buffers"
        );
        // The microbench measured real, positive step times on both tiers.
        assert!(!report.kernel_steps.is_empty());
        for k in &report.kernel_steps {
            assert!(k.reference_seconds > 0.0 && k.fast_seconds > 0.0);
        }
        assert!(report.min_kernel_speedup.is_finite() && report.min_kernel_speedup > 0.0);
        // The observed runs carried telemetry: one record per epoch,
        // with finite loss components.
        assert_eq!(report.epoch_series.len(), report.config.epochs);
        for r in &report.epoch_series {
            assert!(r.loss.is_finite() && r.ce.is_finite() && r.kl.is_finite());
            assert!(r.shards > 0);
        }
        let path = report.write_json("BENCH_train_smoke.json").expect("write report");
        let written = std::fs::read_to_string(path).unwrap();
        assert!(written.contains("\"bitwise_match\": true"));
        assert!(written.contains("\"tensor_allocs_per_step_steady\": 0.000"));
        assert!(written.contains("\"policy\": \"arena\""));
        assert!(written.contains("\"available_parallelism\""));
        assert!(written.contains("\"epoch_series\""));
        assert!(written.contains("\"min_kernel_speedup\""));
        assert!(written.contains("\"kernel_steps\""));
        assert!(written.contains("\"tier\": \"fast\""));
    }
}
