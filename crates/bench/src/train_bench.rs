//! Training-throughput benchmark for the deterministic data-parallel
//! executor (`results/BENCH_train.json`).
//!
//! Trains the same VSAN on the same synthetic dataset once per thread
//! count and reports epoch wall-clock alongside the speedup over the
//! serial (`threads = 1`) run. Because the executor's contract is
//! bit-identical parameters for every thread count, the report also
//! carries a `bitwise_match` gate computed from the full parameter set —
//! a speedup from diverging numerics would be meaningless, exactly like
//! `serve_bench`'s `results_match`.
//!
//! The report records `available_parallelism` so readers can interpret
//! the scaling column: with fewer physical cores than worker threads the
//! extra threads time-slice one core and the speedup honestly saturates
//! at the hardware, not at the thread count.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vsan_core::{Vsan, VsanConfig};
use vsan_data::Dataset;
use vsan_obs::{CollectingObserver, EpochRecord, ObserverHandle};

use crate::serve_bench::results_dir;

/// Workload knobs for [`run_train_bench`].
#[derive(Debug, Clone)]
pub struct TrainBenchConfig {
    /// Catalogue size of the synthetic training set.
    pub num_items: usize,
    /// Users in the synthetic training set.
    pub num_users: usize,
    /// Interactions per training user.
    pub seq_len: usize,
    /// Model width `d`.
    pub dim: usize,
    /// Model attention window `n`.
    pub max_seq_len: usize,
    /// Training epochs per thread count.
    pub epochs: usize,
    /// Mini-batch size (shards of 8 are carved out of each batch).
    pub batch_size: usize,
    /// Thread counts to sweep; the first entry is the serial baseline.
    pub thread_counts: Vec<usize>,
    /// RNG seed for the dataset and training.
    pub seed: u64,
}

impl Default for TrainBenchConfig {
    fn default() -> Self {
        TrainBenchConfig {
            num_items: 200,
            num_users: 128,
            seq_len: 30,
            dim: 48,
            max_seq_len: 24,
            epochs: 2,
            batch_size: 32,
            thread_counts: vec![1, 2, 4, 8],
            seed: 42,
        }
    }
}

impl TrainBenchConfig {
    /// Sub-second configuration for the test suite.
    pub fn smoke() -> Self {
        TrainBenchConfig {
            num_items: 30,
            num_users: 24,
            seq_len: 12,
            dim: 16,
            max_seq_len: 8,
            epochs: 1,
            batch_size: 16,
            thread_counts: vec![1, 2, 4],
            ..Self::default()
        }
    }
}

/// One thread-count's measurement within a [`TrainBenchReport`].
#[derive(Debug, Clone)]
pub struct ThreadTiming {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole training run.
    pub total_seconds: f64,
    /// `total_seconds / epochs`.
    pub epoch_seconds: f64,
    /// Serial epoch time divided by this epoch time.
    pub speedup_vs_serial: f64,
}

/// Measured results of one benchmark run.
#[derive(Debug, Clone)]
pub struct TrainBenchReport {
    /// Configuration the run used.
    pub config: TrainBenchConfig,
    /// Per-thread-count timings, in `config.thread_counts` order.
    pub timings: Vec<ThreadTiming>,
    /// Whether every run produced bit-identical parameters and per-epoch
    /// losses to the serial baseline.
    pub bitwise_match: bool,
    /// `std::thread::available_parallelism()` on the benchmarking host —
    /// the hardware ceiling for any honest speedup figure.
    pub available_parallelism: usize,
    /// Per-epoch telemetry of the serial baseline run (loss with its
    /// CE/KL split, β, gradient norms) — every other thread count
    /// produced the identical series, which `bitwise_match` verifies
    /// through the trained parameters.
    pub epoch_series: Vec<EpochRecord>,
}

/// Bit-pattern fingerprint of a trained model: per-epoch losses plus
/// every parameter tensor.
type Fingerprint = (Vec<u32>, Vec<Vec<u32>>);

fn fingerprint(model: &Vsan) -> Fingerprint {
    let losses = model.train_losses.iter().map(|l| l.to_bits()).collect();
    let params = model
        .params()
        .iter()
        .map(|(_, _, t)| t.data().iter().map(|x| x.to_bits()).collect())
        .collect();
    (losses, params)
}

/// Train the same model once per thread count, timing each run and
/// verifying the cross-thread bit-identity contract.
pub fn run_train_bench(cfg: TrainBenchConfig) -> TrainBenchReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sequences: Vec<Vec<u32>> = (0..cfg.num_users)
        .map(|_| (0..cfg.seq_len).map(|_| rng.gen_range(1..=cfg.num_items as u32)).collect())
        .collect();
    let ds = Dataset { name: "train-bench".into(), num_items: cfg.num_items, sequences };
    let train_users: Vec<usize> = (0..cfg.num_users).collect();

    let mut model_cfg = VsanConfig::smoke().with_seed(cfg.seed);
    model_cfg.base.dim = cfg.dim;
    model_cfg.base.max_seq_len = cfg.max_seq_len;
    model_cfg.base.epochs = cfg.epochs;
    model_cfg.base.batch_size = cfg.batch_size;

    // Warm the code paths (allocator, page faults) outside the timings.
    {
        let mut warm = model_cfg.clone();
        warm.base.epochs = 1;
        let _ = Vsan::train(&ds, &train_users[..cfg.batch_size.min(train_users.len())], &warm);
    }

    let mut baseline: Option<(f64, Fingerprint)> = None;
    let mut bitwise_match = true;
    let mut timings = Vec::with_capacity(cfg.thread_counts.len());
    let mut epoch_series = Vec::new();
    for &threads in &cfg.thread_counts {
        // Every timed run trains *with an observer attached*, so the
        // bitwise gate below also verifies that observing a run does
        // not change the trained bits (DESIGN.md §8).
        let collector = Arc::new(CollectingObserver::new());
        let run_cfg = model_cfg
            .clone()
            .with_threads(threads)
            .with_observer(ObserverHandle::new(collector.clone()));
        let t0 = Instant::now();
        let model = Vsan::train(&ds, &train_users, &run_cfg).expect("bench training");
        let total_seconds = t0.elapsed().as_secs_f64();
        let epoch_seconds = total_seconds / cfg.epochs.max(1) as f64;
        let fp = fingerprint(&model);
        let (serial_epoch_seconds, serial_fp) =
            baseline.get_or_insert_with(|| (epoch_seconds, fp.clone()));
        if fp != *serial_fp {
            bitwise_match = false;
        }
        if epoch_series.is_empty() {
            epoch_series = collector.records();
        }
        timings.push(ThreadTiming {
            threads,
            total_seconds,
            epoch_seconds,
            speedup_vs_serial: *serial_epoch_seconds / epoch_seconds.max(1e-12),
        });
    }

    TrainBenchReport {
        config: cfg,
        timings,
        bitwise_match,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        epoch_series,
    }
}

impl TrainBenchReport {
    /// Serialize as a JSON object (hand-rolled: the workspace has no
    /// JSON dependency and the schema is flat plus one array).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let rows: Vec<String> = self
            .timings
            .iter()
            .map(|t| {
                format!(
                    "    {{\"threads\": {}, \"total_seconds\": {:.6}, \
                     \"epoch_seconds\": {:.6}, \"speedup_vs_serial\": {:.3}}}",
                    t.threads, t.total_seconds, t.epoch_seconds, t.speedup_vs_serial
                )
            })
            .collect();
        let epochs: Vec<String> =
            self.epoch_series.iter().map(|r| format!("    {}", r.to_json())).collect();
        format!(
            "{{\n  \"benchmark\": \"deterministic data-parallel training executor\",\n  \
               \"num_items\": {},\n  \"num_users\": {},\n  \"seq_len\": {},\n  \
               \"dim\": {},\n  \"max_seq_len\": {},\n  \"epochs\": {},\n  \
               \"batch_size\": {},\n  \"seed\": {},\n  \
               \"available_parallelism\": {},\n  \
               \"bitwise_match\": {},\n  \"timings\": [\n{}\n  ],\n  \
               \"epoch_series\": [\n{}\n  ]\n}}\n",
            c.num_items,
            c.num_users,
            c.seq_len,
            c.dim,
            c.max_seq_len,
            c.epochs,
            c.batch_size,
            c.seed,
            self.available_parallelism,
            self.bitwise_match,
            rows.join(",\n"),
            epochs.join(",\n"),
        )
    }

    /// Write the JSON report into the workspace `results/` directory.
    pub fn write_json(&self, file_name: &str) -> std::io::Result<std::path::PathBuf> {
        let path = results_dir().join(file_name);
        std::fs::create_dir_all(results_dir())?;
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke invocation of the full benchmark: every thread count must
    /// reproduce the serial run bit-for-bit. No speedup floor is asserted
    /// here — under a test harness the counts time-slice whatever cores
    /// the host grants (often one), and the determinism contract is the
    /// part that can regress silently.
    #[test]
    fn smoke_run_is_bitwise_identical_across_thread_counts() {
        let report = run_train_bench(TrainBenchConfig::smoke());
        assert!(report.bitwise_match, "thread counts diverged: {report:?}");
        assert_eq!(report.timings.len(), 3);
        assert!(report.timings.iter().all(|t| t.total_seconds > 0.0));
        // The observed runs carried telemetry: one record per epoch,
        // with finite loss components.
        assert_eq!(report.epoch_series.len(), report.config.epochs);
        for r in &report.epoch_series {
            assert!(r.loss.is_finite() && r.ce.is_finite() && r.kl.is_finite());
            assert!(r.shards > 0);
        }
        let path = report.write_json("BENCH_train_smoke.json").expect("write report");
        let written = std::fs::read_to_string(path).unwrap();
        assert!(written.contains("\"bitwise_match\": true"));
        assert!(written.contains("\"available_parallelism\""));
        assert!(written.contains("\"epoch_series\""));
    }
}
