//! Clustered-retrieval benchmark: the two-stage MIPS index
//! (`vsan_core::retrieval`) against the exact brute-force oracle on
//! synthetic catalogs of N ∈ {12 k, 100 k, 10⁶} items.
//!
//! Per catalog size the run reports end-to-end `recommend_batch`
//! latency on both paths (the clustered side pays the same transformer
//! forward, so the speedup isolates what the index saves on the
//! prediction matmul + top-k), recall@{1, 10, 50} of the clustered
//! top-k against the exact oracle's, and a **full-probe bitwise check**:
//! with `nprobe = num_clusters` the clustered path must reproduce the
//! oracle's ranking bit for bit and in order (the invariant the
//! `crates/core/tests/retrieval.rs` proptest suite enforces on random
//! models; here it is re-checked on the real benchmark catalogs).
//!
//! `scripts/verify.sh` gates the committed `results/BENCH_retrieval.json`
//! on every `"recall_at_50"` ≥ 0.95 and `"min_clustered_speedup"` ≥ 5.
//! The speedup gate is taken over the `gate_speedup` cases only (the
//! million-item shape, where retrieval dominates the request); small-N
//! cases are reported for the latency curve but not speed-gated —
//! at 12 k items the shared forward pass is most of the request and a
//! 5x end-to-end factor is not what the index claims.

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_core::{ClusteredConfig, Retrieval, Vsan, VsanConfig};
use vsan_data::synthetic::{generate_catalog, million_item};

use crate::serve_bench::results_dir;

/// One catalog size to measure.
#[derive(Debug, Clone)]
pub struct RetrievalCase {
    /// Label in the report (e.g. `"1m"`).
    pub name: String,
    /// `million_item` preset scale (1.0 = 10⁶ items).
    pub catalog_scale: f64,
    /// Query histories per timed batch.
    pub queries: usize,
    /// Items per query history (Zipf-sampled from the catalog).
    pub history_len: usize,
    /// Top-k requested per query.
    pub k: usize,
    /// Index configuration (0 fields = auto knobs).
    pub cluster: ClusteredConfig,
    /// Whether this case enters the `min_clustered_speedup` gate.
    pub gate_speedup: bool,
}

/// Workload knobs for [`run_retrieval_bench`].
#[derive(Debug, Clone)]
pub struct RetrievalBenchConfig {
    /// Catalog sizes to measure.
    pub cases: Vec<RetrievalCase>,
    /// Timed repetitions per path (after one warmup).
    pub iters: usize,
    /// RNG seed for model weights and query sampling.
    pub seed: u64,
}

impl Default for RetrievalBenchConfig {
    fn default() -> Self {
        let case = |name: &str, scale: f64, gate: bool| RetrievalCase {
            name: name.into(),
            catalog_scale: scale,
            queries: 64,
            history_len: 32,
            k: 50,
            cluster: ClusteredConfig::default(),
            gate_speedup: gate,
        };
        RetrievalBenchConfig {
            cases: vec![
                // Beauty-catalog scale: the paper's own |I| ≈ 12 k.
                case("12k", 0.012, false),
                // Mid-size production catalog.
                case("100k", 0.1, false),
                // The tentpole shape: a million items.
                case("1m", 1.0, true),
            ],
            iters: 2,
            seed: 42,
        }
    }
}

impl RetrievalBenchConfig {
    /// Sub-second configuration for the test suite.
    pub fn smoke() -> Self {
        RetrievalBenchConfig {
            cases: vec![RetrievalCase {
                name: "smoke".into(),
                catalog_scale: 0.002, // 2 000 items
                queries: 8,
                history_len: 8,
                k: 20,
                cluster: ClusteredConfig::default(),
                gate_speedup: false,
            }],
            iters: 1,
            seed: 42,
        }
    }
}

/// One catalog-size measurement.
#[derive(Debug, Clone)]
pub struct RetrievalResult {
    /// Case label.
    pub name: String,
    /// Catalog size (real items).
    pub num_items: usize,
    /// Embedding width.
    pub dim: usize,
    /// Clusters the index resolved to.
    pub num_clusters: usize,
    /// Probed clusters per query.
    pub nprobe: usize,
    /// Seconds to build the index (k-means + regroup).
    pub index_build_seconds: f64,
    /// Mean seconds per exact `recommend_batch_exact` batch.
    pub exact_seconds: f64,
    /// Mean seconds per clustered `recommend_batch_clustered` batch.
    pub clustered_seconds: f64,
    /// `exact_seconds / clustered_seconds`.
    pub speedup: f64,
    /// Queries per second, exact path.
    pub exact_qps: f64,
    /// Queries per second, clustered path.
    pub clustered_qps: f64,
    /// Mean recall@1 of clustered vs exact top-1.
    pub recall_at_1: f64,
    /// Mean recall@10 vs exact top-10.
    pub recall_at_10: f64,
    /// Mean recall@50 vs exact top-50 (gated ≥ 0.95).
    pub recall_at_50: f64,
    /// Whether `nprobe = num_clusters` reproduced the exact ranking bit
    /// for bit, in order, for every query.
    pub full_probe_bitwise: bool,
    /// Whether the speedup of this case enters the committed gate.
    pub gate_speedup: bool,
}

/// Full report of one benchmark run.
#[derive(Debug, Clone)]
pub struct RetrievalBenchReport {
    /// Per-catalog-size measurements.
    pub results: Vec<RetrievalResult>,
    /// Smallest recall@50 across all cases (gated ≥ 0.95).
    pub min_recall_at_50: f64,
    /// Smallest speedup across `gate_speedup` cases (gated ≥ 5).
    pub min_clustered_speedup: f64,
    /// `true` iff every case passed the full-probe bitwise check.
    pub full_probe_bitwise: bool,
}

/// Time `f` over `iters` calls (one untimed warmup), mean seconds.
fn time_s(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters.max(1) {
        f();
    }
    t0.elapsed().as_secs_f64() / iters.max(1) as f64
}

/// Prefix-set recall of `approx` against the oracle's top-`j`.
fn recall_at(exact: &[u32], approx: &[u32], j: usize) -> f64 {
    let j = j.min(exact.len());
    if j == 0 {
        return 1.0; // nothing to recall
    }
    let oracle: HashSet<u32> = exact[..j].iter().copied().collect();
    let hits = approx.iter().take(j).filter(|item| oracle.contains(item)).count();
    hits as f64 / j as f64
}

/// Measure one catalog size: same tied-prediction model, catalog
/// embeddings written over the item table, exact oracle vs clustered
/// index on identical Zipf query batches.
fn bench_case(case: &RetrievalCase, iters: usize, seed: u64) -> RetrievalResult {
    let catalog = generate_catalog(&million_item(case.catalog_scale));
    let mut cfg = VsanConfig::smoke().with_seed(seed).with_threads(1);
    cfg.base.dim = catalog.dim;
    cfg.base.max_seq_len = case.history_len.max(2);
    // Tied prediction: the head scores against the item table itself, so
    // overwriting the table below makes the catalog geometry the thing
    // both retrieval paths actually rank over.
    cfg.tie_prediction = true;
    let mut model = Vsan::init(catalog.vocab(), &cfg);
    let table_id = model.params_mut().id_of("item_emb").expect("item embedding param");
    model.params_mut().get_mut(table_id).data_mut().copy_from_slice(&catalog.embeddings);

    let t0 = Instant::now();
    model.set_retrieval(Retrieval::Clustered(case.cluster.clone()));
    let index_build_seconds = t0.elapsed().as_secs_f64();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let histories: Vec<Vec<u32>> =
        (0..case.queries).map(|_| catalog.sample_history(&mut rng, case.history_len)).collect();
    let refs: Vec<&[u32]> = histories.iter().map(Vec::as_slice).collect();

    // Correctness before speed: the oracle ranking, the clustered
    // ranking at the configured nprobe, and the full-probe ranking that
    // must equal the oracle bit for bit and in order.
    let exact = model.recommend_batch_exact(&refs, case.k).expect("exact oracle");
    let clustered = model.recommend_batch_clustered(&refs, case.k).expect("clustered path");
    let index = model.retrieval_index().expect("index built");
    let hidden = {
        let mut ws = model.workspace(case.queries);
        model.try_last_hidden_batch_with(&refs, &mut ws).expect("hidden rows")
    };
    let d = catalog.dim;
    let full_probe_bitwise = refs.iter().enumerate().all(|(i, history)| {
        let seen: HashSet<u32> = history.iter().copied().collect();
        let full =
            index.query_with_probe(&hidden[i * d..(i + 1) * d], case.k, &seen, index.num_clusters());
        full == exact[i]
    });

    let (mut r1, mut r10, mut r50) = (0.0, 0.0, 0.0);
    for (e, c) in exact.iter().zip(&clustered) {
        r1 += recall_at(e, c, 1);
        r10 += recall_at(e, c, 10);
        r50 += recall_at(e, c, 50);
    }
    let q = case.queries.max(1) as f64;

    let exact_seconds = time_s(iters, || {
        std::hint::black_box(model.recommend_batch_exact(&refs, case.k).expect("exact oracle"));
    });
    let clustered_seconds = time_s(iters, || {
        std::hint::black_box(
            model.recommend_batch_clustered(&refs, case.k).expect("clustered path"),
        );
    });

    RetrievalResult {
        name: case.name.clone(),
        num_items: catalog.num_items,
        dim: catalog.dim,
        num_clusters: index.num_clusters(),
        nprobe: index.nprobe(),
        index_build_seconds,
        speedup: exact_seconds / clustered_seconds.max(1e-12),
        exact_qps: case.queries as f64 / exact_seconds.max(1e-12),
        clustered_qps: case.queries as f64 / clustered_seconds.max(1e-12),
        exact_seconds,
        clustered_seconds,
        recall_at_1: r1 / q,
        recall_at_10: r10 / q,
        recall_at_50: r50 / q,
        full_probe_bitwise,
        gate_speedup: case.gate_speedup,
    }
}

/// Run every catalog-size measurement in `cfg`.
pub fn run_retrieval_bench(cfg: &RetrievalBenchConfig) -> RetrievalBenchReport {
    let results: Vec<RetrievalResult> =
        cfg.cases.iter().map(|case| bench_case(case, cfg.iters, cfg.seed)).collect();
    let min_recall_at_50 =
        results.iter().map(|r| r.recall_at_50).fold(f64::INFINITY, f64::min).min(f64::MAX);
    let min_clustered_speedup = results
        .iter()
        .filter(|r| r.gate_speedup)
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min)
        .min(f64::MAX);
    let full_probe_bitwise = results.iter().all(|r| r.full_probe_bitwise);
    RetrievalBenchReport { results, min_recall_at_50, min_clustered_speedup, full_probe_bitwise }
}

impl RetrievalBenchReport {
    /// Serialize as a JSON object (hand-rolled like the other bench
    /// reports; the workspace has no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from(
            "{\n  \"benchmark\": \"clustered MIPS retrieval vs exact brute-force oracle\",\n",
        );
        out.push_str(&format!("  \"full_probe_bitwise\": {},\n", self.full_probe_bitwise));
        out.push_str(&format!("  \"min_recall_at_50\": {:.4},\n", self.min_recall_at_50));
        out.push_str(&format!(
            "  \"min_clustered_speedup\": {:.3},\n",
            self.min_clustered_speedup
        ));
        out.push_str("  \"catalogs\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"case\": \"{}\", \"num_items\": {}, \"dim\": {}, \
                 \"num_clusters\": {}, \"nprobe\": {}, \"index_build_seconds\": {:.3}, \
                 \"exact_seconds\": {:.6}, \"clustered_seconds\": {:.6}, \"speedup\": {:.3}, \
                 \"exact_qps\": {:.1}, \"clustered_qps\": {:.1}, \"recall_at_1\": {:.4}, \
                 \"recall_at_10\": {:.4}, \"recall_at_50\": {:.4}, \
                 \"full_probe_bitwise\": {}, \"gate_speedup\": {}}}{}\n",
                r.name,
                r.num_items,
                r.dim,
                r.num_clusters,
                r.nprobe,
                r.index_build_seconds,
                r.exact_seconds,
                r.clustered_seconds,
                r.speedup,
                r.exact_qps,
                r.clustered_qps,
                r.recall_at_1,
                r.recall_at_10,
                r.recall_at_50,
                r.full_probe_bitwise,
                r.gate_speedup,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON report into the workspace `results/` directory.
    pub fn write_json(&self, file_name: &str) -> std::io::Result<PathBuf> {
        let path = results_dir().join(file_name);
        std::fs::create_dir_all(results_dir())?;
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke invocation: full probe must reproduce the oracle bit for
    /// bit on a real (small) catalog, and the report must carry the
    /// fields `scripts/verify.sh` gates on. No latency or recall floor
    /// here — tiny catalogs and loaded CI cores make both meaningless;
    /// the committed `results/BENCH_retrieval.json` comes from the
    /// `retrieval_bench` binary at full scale.
    #[test]
    fn smoke_run_full_probe_matches_and_serializes() {
        let report = run_retrieval_bench(&RetrievalBenchConfig::smoke());
        assert_eq!(report.results.len(), 1);
        let r = &report.results[0];
        assert!(r.full_probe_bitwise, "full probe must equal the oracle: {r:?}");
        assert!(r.num_clusters >= 1 && r.nprobe >= 1 && r.nprobe <= r.num_clusters);
        assert!(r.recall_at_50 > 0.0, "clustered path found none of the oracle's picks");
        assert_eq!(
            report.min_clustered_speedup,
            f64::MAX,
            "smoke has no gated case, so the gate min must be vacuous"
        );
        let json = report.to_json();
        assert!(json.contains("\"full_probe_bitwise\": true"));
        assert!(json.contains("\"recall_at_50\""));
        assert!(json.contains("\"min_clustered_speedup\""));
        let path = report.write_json("BENCH_retrieval_smoke.json").expect("write report");
        let written = std::fs::read_to_string(path).unwrap();
        assert!(written.contains("\"catalogs\""));
    }
}
