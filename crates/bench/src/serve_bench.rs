//! Online-serving throughput benchmark: the `vsan-serve` engine
//! (micro-batching + sequence cache) against a sequential
//! one-request-at-a-time `Vsan::recommend` loop on the same workload.
//!
//! The workload models repeat traffic: `requests` lookups drawn from
//! `unique_histories` distinct user histories, shuffled, submitted in
//! bursts (an online service sees overlapping in-flight requests, not a
//! closed loop). Repeat lookups hit the engine's sequence cache and
//! unique ones share batched forwards, which is where the speedup
//! comes from; the sequential baseline pays a full batch-of-one
//! forward per request.
//!
//! Both sides produce rankings on the identical model, and the report
//! records whether they matched element-for-element — a speedup from a
//! wrong answer would be meaningless.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use vsan_core::{Vsan, VsanConfig};
use vsan_data::synthetic::{generate_stream, SessionStreamConfig};
use vsan_data::Dataset;
use vsan_serve::{BackpressurePolicy, Engine, EngineConfig, ServeError, ServeStats};

/// Workload and engine knobs for [`run_serve_bench`].
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Catalogue size of the synthetic training set.
    pub num_items: usize,
    /// Users in the synthetic training set.
    pub num_users: usize,
    /// Interactions per training user.
    pub seq_len: usize,
    /// Model width `d` (a toy-sized model makes a single forward so
    /// cheap that batching has nothing to amortize; the default is a
    /// realistically sized serving model).
    pub dim: usize,
    /// Model attention window `n`.
    pub max_seq_len: usize,
    /// Training epochs (the bench measures inference; 1–2 is plenty).
    pub epochs: usize,
    /// Total lookups in the request stream.
    pub requests: usize,
    /// Distinct histories the stream draws from (repeat factor =
    /// `requests / unique_histories`).
    pub unique_histories: usize,
    /// Top-k size per request.
    pub k: usize,
    /// Requests submitted before the client waits for replies.
    pub burst: usize,
    /// Engine `max_batch`.
    pub max_batch: usize,
    /// Engine `batch_deadline`.
    pub batch_deadline: Duration,
    /// RNG seed for the dataset and the stream shuffle.
    pub seed: u64,
    /// Requests offered in one flood during the overload phase (all
    /// distinct histories, so every one needs a forward).
    pub overload_requests: usize,
    /// Admission-queue capacity during the overload phase — deliberately
    /// far smaller than the flood so backpressure must engage.
    pub overload_queue_capacity: usize,
    /// Per-request deadline during the overload phase.
    pub overload_deadline: Duration,
    /// Live users in the streaming-session phase.
    pub session_users: usize,
    /// Append events replayed through `Engine::append_event` in the
    /// streaming-session phase.
    pub session_events: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            num_items: 1000,
            num_users: 48,
            seq_len: 60,
            dim: 96,
            max_seq_len: 48,
            epochs: 2,
            requests: 320,
            unique_histories: 40,
            k: 10,
            burst: 32,
            max_batch: 32,
            batch_deadline: Duration::from_micros(200),
            seed: 42,
            overload_requests: 512,
            overload_queue_capacity: 32,
            overload_deadline: Duration::from_millis(50),
            session_users: 8,
            session_events: 96,
        }
    }
}

impl ServeBenchConfig {
    /// Sub-second configuration for the test suite.
    pub fn smoke() -> Self {
        ServeBenchConfig {
            num_items: 30,
            num_users: 16,
            seq_len: 12,
            dim: 16,
            max_seq_len: 8,
            epochs: 1,
            requests: 120,
            unique_histories: 24,
            k: 5,
            overload_requests: 96,
            overload_queue_capacity: 8,
            overload_deadline: Duration::from_millis(20),
            ..Self::default()
        }
    }
}

/// Measured results of one benchmark run.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Configuration the run used.
    pub config: ServeBenchConfig,
    /// Wall-clock seconds for the sequential `Vsan::recommend` loop.
    pub sequential_seconds: f64,
    /// Wall-clock seconds for the engine serving the same stream.
    pub engine_seconds: f64,
    /// `sequential_seconds / engine_seconds`.
    pub speedup: f64,
    /// Sequential throughput, requests per second.
    pub sequential_rps: f64,
    /// Engine throughput, requests per second.
    pub engine_rps: f64,
    /// Engine cache hits over the stream.
    pub cache_hits: u64,
    /// Engine cache misses over the stream.
    pub cache_misses: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Mean request latency through the engine, microseconds.
    pub mean_latency_us: f64,
    /// Whether every engine ranking equalled the sequential ranking.
    pub results_match: bool,
    /// Full engine telemetry at shutdown: queue-wait / compute /
    /// end-to-end latency distributions and batch-fill occupancy.
    pub stats: ServeStats,
    /// Saturation-phase measurements (same model weights, tight queue).
    pub overload: OverloadReport,
    /// Streaming-session phase (same model weights, warm append path).
    pub session: SessionPhaseReport,
    /// Tracing-cost phase (same model weights, recorder on vs off).
    pub trace_overhead: TraceOverheadReport,
}

/// Measured cost of request-scoped tracing (DESIGN.md §13): the same
/// latency-probe stream served by two engines on twin weights — flight
/// recorder + tracing enabled vs disabled — submitted strictly paired
/// and alternating so clock drift and cache warmth cancel. Latencies
/// are measured client-side (no histogram-bucket quantization), and the
/// rankings from both engines are compared element-for-element:
/// observation must not change bits.
#[derive(Debug, Clone)]
pub struct TraceOverheadReport {
    /// Requests served by *each* engine.
    pub requests: u64,
    /// Median end-to-end latency with tracing enabled, microseconds.
    pub p50_on_us: f64,
    /// Tail end-to-end latency with tracing enabled, microseconds.
    pub p99_on_us: f64,
    /// Median end-to-end latency with tracing disabled, microseconds.
    pub p50_off_us: f64,
    /// Tail end-to-end latency with tracing disabled, microseconds.
    pub p99_off_us: f64,
    /// `(p50_on - p50_off) / p50_off`, percent (negative = free).
    pub p50_overhead_pct: f64,
    /// `(p99_on - p99_off) / p99_off`, percent.
    pub p99_overhead_pct: f64,
    /// Ring capacity of the traced engine's flight recorder.
    pub recorder_capacity: u64,
    /// Spans the traced engine recorded over the stream.
    pub spans_recorded: u64,
    /// Whether both engines returned identical rankings throughout.
    pub results_match: bool,
}

/// Measured behaviour of the incremental session path: a Zipf-skewed
/// multi-user append stream through [`Engine::append_event`], warm
/// sessions resident the whole run. The rankings are re-derived
/// offline after the timed loop and compared element-for-element —
/// the phase refuses to report throughput for wrong answers.
#[derive(Debug, Clone)]
pub struct SessionPhaseReport {
    /// Append events replayed.
    pub events: u64,
    /// Distinct users in the stream.
    pub users: u64,
    /// Events served per wall-clock second (end to end, hot loop).
    pub events_per_second: f64,
    /// Events served by a pure warm append (no prepare on the hot path).
    pub appends: u64,
    /// Events that cold-started a session.
    pub cold_starts: u64,
    /// Events that resumed a cached prefix.
    pub resumes: u64,
    /// Events whose hint contradicted the cached history.
    pub resets: u64,
    /// Sessions evicted during the phase (LRU/TTL).
    pub evictions: u64,
    /// Median end-to-end append latency, microseconds.
    pub p50_latency_us: u64,
    /// Tail end-to-end append latency, microseconds.
    pub p99_latency_us: u64,
    /// Whether every streamed ranking equalled the offline
    /// `Vsan::recommend` of the same grown history.
    pub results_match: bool,
}

/// Measured behaviour of the engine under deliberate saturation: a
/// flood of distinct requests against a tight admission queue with
/// `ShedOldest` backpressure, a per-request deadline, and a popularity
/// fallback. The interesting numbers are the *rates* — how much load
/// was refused or degraded, and what latency the survivors saw — not
/// throughput (a saturated engine is by construction not keeping up).
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Requests offered in the flood.
    pub offered: u64,
    /// Requests answered exactly (full model forward).
    pub exact: u64,
    /// Requests answered through the degraded fallback.
    pub degraded: u64,
    /// Requests rejected with a typed `DeadlineExceeded`.
    pub deadline_misses: u64,
    /// Requests failed with any other typed error.
    pub other_errors: u64,
    /// Fraction of offered load refused at admission (shed + rejected
    /// + watermark-shed) — `MetricsSnapshot::rejection_rate`.
    pub rejection_rate: f64,
    /// Fraction of offered load answered degraded.
    pub degraded_rate: f64,
    /// Median end-to-end latency under saturation, microseconds.
    pub p50_latency_us: u64,
    /// Tail end-to-end latency under saturation, microseconds.
    pub p99_latency_us: u64,
    /// Offered load over the flood's wall-clock, requests per second.
    pub offered_rps: f64,
    /// Full engine telemetry at shutdown.
    pub stats: ServeStats,
}

/// Train a small VSAN, then time the same shuffled repeat-traffic
/// stream through (a) a sequential uncached `recommend` loop and
/// (b) the serving engine, and compare.
pub fn run_serve_bench(cfg: ServeBenchConfig) -> ServeBenchReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Synthetic training set: random walks over the catalogue.
    let sequences: Vec<Vec<u32>> = (0..cfg.num_users)
        .map(|_| {
            (0..cfg.seq_len).map(|_| rng.gen_range(1..=cfg.num_items as u32)).collect()
        })
        .collect();
    let ds = Dataset { name: "serve-bench".into(), num_items: cfg.num_items, sequences };
    let train_users: Vec<usize> = (0..cfg.num_users).collect();
    let mut model_cfg = VsanConfig::smoke();
    model_cfg.base.dim = cfg.dim;
    model_cfg.base.max_seq_len = cfg.max_seq_len;
    model_cfg.base.epochs = cfg.epochs;
    let model = Vsan::train(&ds, &train_users, &model_cfg).expect("bench training");

    // Twin model for the overload phase via a checkpoint round-trip
    // (`Vsan` is deliberately not `Clone`; the engine consumes it).
    let twin = {
        let mut m = Vsan::init(ds.vocab(), &model_cfg);
        m.params_mut().load_values(model.params().save()).expect("twin weights");
        m
    };
    // And a third copy for the streaming-session phase.
    let session_twin = {
        let mut m = Vsan::init(ds.vocab(), &model_cfg);
        m.params_mut().load_values(model.params().save()).expect("session twin weights");
        m
    };
    // Two more for the tracing-cost phase (recorder on / recorder off).
    let traced_twin = {
        let mut m = Vsan::init(ds.vocab(), &model_cfg);
        m.params_mut().load_values(model.params().save()).expect("traced twin weights");
        m
    };
    let untraced_twin = {
        let mut m = Vsan::init(ds.vocab(), &model_cfg);
        m.params_mut().load_values(model.params().save()).expect("untraced twin weights");
        m
    };

    // Distinct query histories (2..=seq_len items), then a shuffled
    // stream with `requests / unique_histories` lookups of each.
    let histories: Vec<Vec<u32>> = (0..cfg.unique_histories)
        .map(|_| {
            let len = rng.gen_range(2..=cfg.seq_len);
            (0..len).map(|_| rng.gen_range(1..=cfg.num_items as u32)).collect()
        })
        .collect();
    let mut stream: Vec<usize> = (0..cfg.requests).map(|i| i % cfg.unique_histories).collect();
    stream.shuffle(&mut rng);

    // Warm the code paths once so neither side pays first-touch costs.
    let _ = model.recommend(&histories[0], cfg.k);

    // (a) Sequential baseline: one uncached batch-of-one forward per
    // request — what an embedder without vsan-serve would write.
    let t0 = Instant::now();
    let sequential: Vec<Vec<u32>> =
        stream.iter().map(|&i| model.recommend(&histories[i], cfg.k)).collect();
    let sequential_seconds = t0.elapsed().as_secs_f64();

    // (b) The engine, bursty submission.
    let engine = Engine::start(
        model,
        EngineConfig::default()
            .with_max_batch(cfg.max_batch)
            .with_batch_deadline(cfg.batch_deadline)
            .with_workers(1)
            .with_cache_capacity(cfg.unique_histories * 2),
    );
    let t1 = Instant::now();
    let mut served: Vec<Vec<u32>> = Vec::with_capacity(stream.len());
    for burst in stream.chunks(cfg.burst.max(1)) {
        let tickets: Vec<_> =
            burst.iter().map(|&i| engine.submit(&histories[i], cfg.k)).collect();
        for ticket in tickets {
            served.push(ticket.wait().expect("engine reply").into_items());
        }
    }
    let engine_seconds = t1.elapsed().as_secs_f64();
    let stats = engine.shutdown_stats();
    let metrics = stats.snapshot;

    let results_match = served == sequential;
    let overload = run_overload_bench(&cfg, twin);
    let session = run_session_bench(&cfg, session_twin);
    let trace_overhead = run_trace_overhead_bench(&cfg, traced_twin, untraced_twin);
    ServeBenchReport {
        speedup: sequential_seconds / engine_seconds.max(1e-12),
        sequential_rps: cfg.requests as f64 / sequential_seconds.max(1e-12),
        engine_rps: cfg.requests as f64 / engine_seconds.max(1e-12),
        sequential_seconds,
        engine_seconds,
        cache_hits: metrics.cache_hits,
        cache_misses: metrics.cache_misses,
        mean_batch_size: metrics.mean_batch_size(),
        mean_latency_us: metrics.mean_latency_us(),
        results_match,
        stats,
        overload,
        session,
        trace_overhead,
        config: cfg,
    }
}

/// Measure what tracing costs: serve the same distinct-history stream
/// through a traced engine (flight recorder at its default capacity)
/// and an untraced twin (`with_flight_recorder(0)`), one request at a
/// time, strictly paired and alternating which engine goes first.
/// Caching is off so every request pays a real forward — the honest
/// denominator for a relative-overhead claim.
///
/// Each request is replayed for several rounds and the per-request
/// **minimum** latency per engine is kept: the floor is the
/// deterministic cost of the path (forward + ranking + any tracing),
/// while one-off scheduler preemptions — which would otherwise dominate
/// a raw p99 over single shots — are filtered out symmetrically from
/// both sides. `scripts/verify.sh` gates the committed report's p50 and
/// p99 overhead below 3% (DESIGN.md §13).
pub fn run_trace_overhead_bench(
    cfg: &ServeBenchConfig,
    traced: Vsan,
    untraced: Vsan,
) -> TraceOverheadReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7AC3_0DD5);
    let histories: Vec<Vec<u32>> = (0..cfg.requests.max(1))
        .map(|_| {
            let len = rng.gen_range(2..=cfg.seq_len);
            (0..len).map(|_| rng.gen_range(1..=cfg.num_items as u32)).collect()
        })
        .collect();

    let base = EngineConfig::default()
        .with_max_batch(cfg.max_batch)
        .with_batch_deadline(cfg.batch_deadline)
        .with_workers(1)
        .with_cache_capacity(0);
    let on = Engine::start(traced, base.clone());
    let off = Engine::start(untraced, base.with_flight_recorder(0));
    let recorder = on.flight_recorder().expect("tracing defaults to on");

    // Warm both engines (first-touch allocation, thread spin-up).
    let _ = on.submit(&histories[0], cfg.k).wait();
    let _ = off.submit(&histories[0], cfg.k).wait();

    const ROUNDS: usize = 9;
    let mut lat_on = vec![f64::INFINITY; histories.len()];
    let mut lat_off = vec![f64::INFINITY; histories.len()];
    let mut results_match = true;
    let us = |t: Instant| t.elapsed().as_secs_f64() * 1e6;
    for round in 0..ROUNDS {
        for (i, h) in histories.iter().enumerate() {
            let off_first = (i + round) % 2 == 0;
            let (first, second) = if off_first { (&off, &on) } else { (&on, &off) };
            let t = Instant::now();
            let a = first.submit(h, cfg.k).wait().expect("trace-phase reply");
            let first_us = us(t);
            let t = Instant::now();
            let b = second.submit(h, cfg.k).wait().expect("trace-phase reply");
            let second_us = us(t);
            let (on_us, off_us) = if off_first { (second_us, first_us) } else { (first_us, second_us) };
            lat_on[i] = lat_on[i].min(on_us);
            lat_off[i] = lat_off[i].min(off_us);
            results_match &= a.items() == b.items();
        }
    }
    let spans_recorded = recorder.recorded();
    let recorder_capacity = recorder.capacity() as u64;
    on.shutdown();
    off.shutdown();

    let pct = |sorted: &[f64], q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    lat_on.sort_by(|a, b| a.total_cmp(b));
    lat_off.sort_by(|a, b| a.total_cmp(b));
    let (p50_on_us, p99_on_us) = (pct(&lat_on, 0.50), pct(&lat_on, 0.99));
    let (p50_off_us, p99_off_us) = (pct(&lat_off, 0.50), pct(&lat_off, 0.99));
    let overhead = |on: f64, off: f64| if off > 0.0 { (on - off) / off * 100.0 } else { 0.0 };
    TraceOverheadReport {
        requests: histories.len() as u64,
        p50_on_us,
        p99_on_us,
        p50_off_us,
        p99_off_us,
        p50_overhead_pct: overhead(p50_on_us, p50_off_us),
        p99_overhead_pct: overhead(p99_on_us, p99_off_us),
        recorder_capacity,
        spans_recorded,
        results_match,
    }
}

/// Replay a Zipf-skewed multi-user append stream through
/// [`Engine::append_event`]: one event per request, client hints
/// supplied, session capacity sized to keep every user warm. The timed
/// loop records only streaming latency; rankings are verified against
/// the offline `Vsan::recommend` afterwards.
pub fn run_session_bench(cfg: &ServeBenchConfig, model: Vsan) -> SessionPhaseReport {
    let stream_cfg = SessionStreamConfig {
        num_users: cfg.session_users.max(1),
        num_items: cfg.num_items,
        zipf_exponent: 1.0,
        events: cfg.session_events,
        min_history: 2,
        max_history: cfg.seq_len.max(2),
        seed: cfg.seed ^ 0x5E55_10F0,
    };
    let stream = generate_stream(&stream_cfg);
    let engine = Engine::start(
        model,
        EngineConfig::default()
            .with_workers(1)
            .with_session_capacity(stream_cfg.num_users),
    );

    let mut histories = stream.histories.clone();
    let mut served: Vec<(usize, Vec<u32>)> = Vec::with_capacity(stream.events.len());
    let t0 = Instant::now();
    for event in &stream.events {
        let user = event.user as usize;
        let hint = histories[user].clone();
        let resp =
            engine.append_event(event.user, Some(&hint), event.item, cfg.k).expect("append");
        histories[user].push(event.item);
        served.push((user, resp.into_items()));
    }
    let wall = t0.elapsed().as_secs_f64();

    // Verification pass, untimed: replay the grown histories offline.
    let mut replay: Vec<Vec<u32>> = stream.histories.clone();
    let results_match = stream.events.iter().zip(&served).all(|(event, (user, items))| {
        replay[*user].push(event.item);
        *items == engine.model().recommend(&replay[*user], cfg.k)
    });

    let stats = engine.shutdown_stats();
    let m = &stats.snapshot;
    SessionPhaseReport {
        events: stream.events.len() as u64,
        users: stream_cfg.num_users as u64,
        events_per_second: stream.events.len() as f64 / wall.max(1e-12),
        appends: m.session_appends,
        cold_starts: m.session_cold_starts,
        resumes: m.session_resumes,
        resets: m.session_resets,
        evictions: m.session_evictions,
        p50_latency_us: stats.latency_us.percentile(0.50),
        p99_latency_us: stats.latency_us.percentile(0.99),
        results_match,
    }
}

/// Drive the engine past its capacity on purpose: `overload_requests`
/// *distinct* histories (no cache relief) offered in a single flood
/// against one worker, a queue of `overload_queue_capacity`, `ShedOldest`
/// backpressure, a per-request deadline, and a popularity fallback. No
/// failpoints — this measures genuine saturation, not injected faults.
pub fn run_overload_bench(cfg: &ServeBenchConfig, model: Vsan) -> OverloadReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_CAFE);
    let histories: Vec<Vec<u32>> = (0..cfg.overload_requests)
        .map(|_| {
            let len = rng.gen_range(2..=cfg.seq_len);
            (0..len).map(|_| rng.gen_range(1..=cfg.num_items as u32)).collect()
        })
        .collect();
    // Fallback ranking when load is shed: item id 0 is padding, the
    // rest scored by (synthetic) popularity.
    let popularity: Vec<f32> = (0..=cfg.num_items)
        .map(|i| if i == 0 { f32::NEG_INFINITY } else { 1.0 / i as f32 })
        .collect();

    let engine = Engine::start(
        model,
        EngineConfig::default()
            .with_max_batch(cfg.max_batch)
            .with_batch_deadline(cfg.batch_deadline)
            .with_workers(1)
            .with_cache_capacity(0)
            .with_queue_capacity(cfg.overload_queue_capacity)
            .with_backpressure(BackpressurePolicy::ShedOldest)
            .with_default_deadline(cfg.overload_deadline)
            .with_popularity(popularity),
    );

    let t0 = Instant::now();
    let tickets: Vec<_> = histories.iter().map(|h| engine.submit(h, cfg.k)).collect();
    let (mut exact, mut degraded, mut deadline_misses, mut other_errors) = (0u64, 0u64, 0u64, 0u64);
    for ticket in tickets {
        match ticket.wait() {
            Ok(r) if r.is_degraded() => degraded += 1,
            Ok(_) => exact += 1,
            Err(ServeError::DeadlineExceeded) => deadline_misses += 1,
            Err(_) => other_errors += 1,
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = engine.shutdown_stats();

    OverloadReport {
        offered: cfg.overload_requests as u64,
        exact,
        degraded,
        deadline_misses,
        other_errors,
        rejection_rate: stats.snapshot.rejection_rate(),
        degraded_rate: stats.snapshot.degraded_rate(),
        p50_latency_us: stats.latency_us.percentile(0.50),
        p99_latency_us: stats.latency_us.percentile(0.99),
        offered_rps: cfg.overload_requests as f64 / wall.max(1e-12),
        stats,
    }
}

impl ServeBenchReport {
    /// Serialize as a JSON object (hand-rolled: the workspace has no
    /// JSON dependency and the schema is flat).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        format!(
            "{{\n  \"benchmark\": \"vsan-serve engine vs sequential recommend loop\",\n  \
               \"requests\": {},\n  \"unique_histories\": {},\n  \"k\": {},\n  \
               \"burst\": {},\n  \"max_batch\": {},\n  \"batch_deadline_us\": {},\n  \
               \"num_items\": {},\n  \"seed\": {},\n  \
               \"sequential_seconds\": {:.6},\n  \"engine_seconds\": {:.6},\n  \
               \"speedup\": {:.3},\n  \
               \"sequential_rps\": {:.1},\n  \"engine_rps\": {:.1},\n  \
               \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
               \"mean_batch_size\": {:.2},\n  \"mean_latency_us\": {:.1},\n  \
               \"mean_batch_fill_pct\": {:.1},\n  \
               \"queue_wait_us\": {},\n  \"compute_us\": {},\n  \"latency_us\": {},\n  \
               \"results_match\": {},\n  \"overload\": {},\n  \"session\": {},\n  \
               \"trace_overhead\": {}\n}}\n",
            c.requests,
            c.unique_histories,
            c.k,
            c.burst,
            c.max_batch,
            c.batch_deadline.as_micros(),
            c.num_items,
            c.seed,
            self.sequential_seconds,
            self.engine_seconds,
            self.speedup,
            self.sequential_rps,
            self.engine_rps,
            self.cache_hits,
            self.cache_misses,
            self.mean_batch_size,
            self.mean_latency_us,
            self.stats.mean_batch_fill_pct(),
            self.stats.queue_wait_us.summary_json(),
            self.stats.compute_us.summary_json(),
            self.stats.latency_us.summary_json(),
            self.results_match,
            self.overload.to_json(),
            self.session.to_json(),
            self.trace_overhead.to_json(),
        )
    }

    /// Write the JSON report into the workspace `results/` directory.
    pub fn write_json(&self, file_name: &str) -> std::io::Result<PathBuf> {
        let path = results_dir().join(file_name);
        std::fs::create_dir_all(results_dir())?;
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

impl OverloadReport {
    /// Serialize as a JSON object (embedded under `"overload"` in the
    /// main report).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n    \"offered\": {},\n    \"exact\": {},\n    \"degraded\": {},\n    \
               \"deadline_misses\": {},\n    \"other_errors\": {},\n    \
               \"rejection_rate\": {:.4},\n    \"degraded_rate\": {:.4},\n    \
               \"p50_latency_us\": {},\n    \"p99_latency_us\": {},\n    \
               \"offered_rps\": {:.1},\n    \
               \"shed_oldest\": {},\n    \"load_shed\": {},\n    \"rejected_newest\": {}\n  }}",
            self.offered,
            self.exact,
            self.degraded,
            self.deadline_misses,
            self.other_errors,
            self.rejection_rate,
            self.degraded_rate,
            self.p50_latency_us,
            self.p99_latency_us,
            self.offered_rps,
            self.stats.snapshot.shed_oldest,
            self.stats.snapshot.load_shed,
            self.stats.snapshot.rejected_newest,
        )
    }
}

impl SessionPhaseReport {
    /// Serialize as a JSON object (embedded under `"session"` in the
    /// main report).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n    \"events\": {},\n    \"users\": {},\n    \
               \"events_per_second\": {:.1},\n    \
               \"appends\": {},\n    \"cold_starts\": {},\n    \"resumes\": {},\n    \
               \"resets\": {},\n    \"evictions\": {},\n    \
               \"p50_latency_us\": {},\n    \"p99_latency_us\": {},\n    \
               \"results_match\": {}\n  }}",
            self.events,
            self.users,
            self.events_per_second,
            self.appends,
            self.cold_starts,
            self.resumes,
            self.resets,
            self.evictions,
            self.p50_latency_us,
            self.p99_latency_us,
            self.results_match,
        )
    }
}

impl TraceOverheadReport {
    /// Serialize as a JSON object (embedded under `"trace_overhead"` in
    /// the main report).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n    \"requests\": {},\n    \
               \"p50_on_us\": {:.1},\n    \"p99_on_us\": {:.1},\n    \
               \"p50_off_us\": {:.1},\n    \"p99_off_us\": {:.1},\n    \
               \"p50_overhead_pct\": {:.2},\n    \"p99_overhead_pct\": {:.2},\n    \
               \"recorder_capacity\": {},\n    \"spans_recorded\": {},\n    \
               \"results_match\": {}\n  }}",
            self.requests,
            self.p50_on_us,
            self.p99_on_us,
            self.p50_off_us,
            self.p99_off_us,
            self.p50_overhead_pct,
            self.p99_overhead_pct,
            self.recorder_capacity,
            self.spans_recorded,
            self.results_match,
        )
    }
}

/// The workspace-level `results/` directory (next to the root Cargo.toml).
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke invocation of the full benchmark (≈1–2 s): the engine must
    /// return the sequential loop's exact rankings and beat it. The
    /// committed `results/BENCH_serve.json` comes from the `serve_bench`
    /// binary's default (larger) workload, which clears 3×; under a
    /// test harness sharing one core we assert a conservative floor.
    #[test]
    fn smoke_run_writes_report_and_beats_sequential() {
        let report = run_serve_bench(ServeBenchConfig::smoke());
        assert!(report.results_match, "engine rankings must equal Vsan::recommend");
        assert!(report.cache_hits > 0, "repeat traffic must hit the cache: {report:?}");
        assert!(
            report.speedup >= 1.2,
            "batching + caching must beat the sequential loop: {report:?}"
        );
        // Telemetry invariants: every request records compute and
        // end-to-end latency; only cache misses record queue wait.
        let stats = &report.stats;
        let requests = report.config.requests as u64;
        assert_eq!(stats.latency_us.count, requests);
        assert_eq!(stats.compute_us.count, requests);
        assert_eq!(stats.queue_wait_us.count, report.cache_misses);
        assert_eq!(stats.batch_fill_pct.count, stats.snapshot.batches);
        assert_eq!(stats.queue_depth, 0, "queue must be drained at shutdown");
        assert!(stats.latency_us.percentile(0.99) >= stats.latency_us.percentile(0.50));
        // Overload phase: every offered request resolves exactly once
        // (ticket conservation), and the tight queue forces the engine
        // to actually refuse or degrade part of the flood.
        let o = &report.overload;
        assert_eq!(
            o.exact + o.degraded + o.deadline_misses + o.other_errors,
            o.offered,
            "overload accounting must cover every offered request: {o:?}"
        );
        assert!(o.exact > 0, "a saturated engine still answers some requests: {o:?}");
        assert!(
            o.degraded + o.deadline_misses > 0,
            "the flood must overwhelm the tight queue: {o:?}"
        );
        assert!(o.rejection_rate > 0.0, "backpressure must engage under saturation: {o:?}");
        assert_eq!(o.stats.queue_depth, 0, "overload queue drained at shutdown");
        assert_eq!(
            o.stats.latency_us.count, o.offered,
            "every overload ticket records end-to-end latency"
        );
        assert!(o.p99_latency_us >= o.p50_latency_us);

        // Streaming-session phase: every event classified exactly once,
        // every streamed ranking equal to the offline recommend.
        let s = &report.session;
        assert!(s.results_match, "streamed rankings must equal Vsan::recommend: {s:?}");
        assert_eq!(
            s.appends + s.cold_starts + s.resumes + s.resets,
            s.events,
            "every session event classified exactly once: {s:?}"
        );
        assert!(s.appends > 0, "a warm Zipf stream must produce pure appends: {s:?}");
        assert!(s.events_per_second > 0.0);
        assert!(s.p99_latency_us >= s.p50_latency_us);

        // Tracing-cost phase: identical bits on vs off, and the traced
        // engine actually recorded spans. The <3% overhead budget is
        // gated by verify.sh on the committed release-build report, not
        // asserted here (a shared-core debug harness is too noisy).
        let t = &report.trace_overhead;
        assert!(t.results_match, "tracing must not change served bits: {t:?}");
        assert_eq!(t.requests, report.config.requests as u64);
        assert!(t.spans_recorded > 0, "the traced engine must record spans: {t:?}");
        assert!(t.recorder_capacity > 0);
        assert!(t.p50_on_us > 0.0 && t.p50_off_us > 0.0);
        // Exemplar satellite: the traced engine's histograms carry a
        // trace-id exemplar into the JSON summaries.
        assert!(
            report.stats.latency_us.exemplar_trace != 0,
            "default-traced main phase must attach a latency exemplar"
        );

        let path = report.write_json("BENCH_serve_smoke.json").expect("write report");
        let written = std::fs::read_to_string(path).unwrap();
        assert!(written.contains("\"results_match\": true"));
        assert!(written.contains("\"speedup\""));
        assert!(written.contains("\"queue_wait_us\""));
        assert!(written.contains("\"overload\""));
        assert!(written.contains("\"rejection_rate\""));
        assert!(written.contains("\"session\""));
        assert!(written.contains("\"events_per_second\""));
        assert!(written.contains("\"trace_overhead\""));
        assert!(written.contains("\"p50_overhead_pct\""));
        assert!(written.contains("\"exemplar_trace\""));
    }
}
