//! Table IV — Recall@20 over the (h₁, h₂) self-attention block grid
//! (RQ2): h₁, h₂ ∈ {0, 1, 2, 3} on both datasets.

use vsan_bench::{timed, Bench, ExpArgs};
use vsan_eval::RunAggregate;

fn main() {
    let args = ExpArgs::from_env(1);
    println!(
        "== Table IV: Recall@20 over (h1, h2) blocks (scale {:?}, {} seed(s)) ==",
        args.scale,
        args.seeds.len()
    );
    for name in args.datasets.names() {
        println!("\n--- dataset: {name} ---");
        println!("{:>8} {:>8} {:>8} {:>8} {:>8}", "", "h1=0", "h1=1", "h1=2", "h1=3");
        let mut grid = vec![vec![0.0f64; 4]; 4];
        for (h2, grid_row) in grid.iter_mut().enumerate() {
            for (h1, cell) in grid_row.iter_mut().enumerate() {
                let mut agg = RunAggregate::new();
                for &seed in &args.seeds {
                    let bench = Bench::prepare(name, args.scale, seed);
                    let mut cfg =
                        args.scale.vsan_config(name).with_seed(seed).with_blocks(h1, h2);
                    cfg.base.epochs = args.scale.grid_epochs();
                    let model = timed(&format!("h1={h1} h2={h2}"), || bench.train_vsan(&cfg));
                    agg.add(&bench.evaluate(&model));
                }
                *cell = agg.mean_pct("Recall", 20).unwrap_or(f64::NAN);
            }
            println!(
                "{:>8} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                format!("h2={h2}"),
                grid_row[0],
                grid_row[1],
                grid_row[2],
                grid_row[3]
            );
        }
        // Locate the argmax cell, mirroring the paper's discussion.
        let (mut bh1, mut bh2, mut best) = (0, 0, f64::MIN);
        for (h2, row) in grid.iter().enumerate() {
            for (h1, &v) in row.iter().enumerate() {
                if v > best {
                    best = v;
                    bh1 = h1;
                    bh2 = h2;
                }
            }
        }
        println!("best cell: (h1={bh1}, h2={bh2}) Recall@20 = {best:.3}%");
    }
}
