//! Fig. 5 — performance under different dropout rates: Recall@20 for
//! rate ∈ {0.0, 0.1, …, 0.9}. The paper finds 0.5 best on Beauty, 0.2 on
//! ML-1M, with a rise-then-(sharp-)fall shape.

use vsan_bench::{timed, Bench, ExpArgs};
use vsan_eval::RunAggregate;

fn main() {
    let args = ExpArgs::from_env(1);
    let rates: Vec<f32> = (0..10).map(|i| i as f32 / 10.0).collect();
    println!(
        "== Fig. 5: dropout sweep, Recall@20 (scale {:?}, {} seed(s)) ==",
        args.scale,
        args.seeds.len()
    );
    for name in args.datasets.names() {
        println!("\n--- dataset: {name} ---");
        println!("{:>6} {:>10}", "rate", "VSAN");
        let mut best = (0.0f32, f64::MIN);
        for &rate in &rates {
            let mut agg = RunAggregate::new();
            for &seed in &args.seeds {
                let bench = Bench::prepare(name, args.scale, seed);
                let mut cfg = args.scale.vsan_config(name).with_seed(seed);
                cfg.base = cfg.base.with_dropout(rate).with_epochs(args.scale.grid_epochs());
                let model = timed(&format!("dropout={rate:.1}"), || bench.train_vsan(&cfg));
                agg.add(&bench.evaluate(&model));
            }
            let v = agg.mean_pct("Recall", 20).unwrap_or(f64::NAN);
            if v > best.1 {
                best = (rate, v);
            }
            println!("{rate:>6.1} {v:>10.3}");
        }
        println!("best dropout: {:.1} (Recall@20 {:.3}%)", best.0, best.1);
    }
}
