//! Fig. 3 — performance under different next-`k` windows: VSAN vs SVAE,
//! Recall@20 for k ∈ {1..6}. The paper finds k = 2 best for VSAN and
//! k = 4 best for SVAE, with VSAN above SVAE at every k.

use vsan_bench::{timed, Bench, ExpArgs};
use vsan_eval::RunAggregate;
use vsan_models::svae::SvaeConfig;
use vsan_models::Svae;

fn main() {
    let args = ExpArgs::from_env(1);
    let ks = [1usize, 2, 3, 4, 5, 6];
    println!(
        "== Fig. 3: next-k sweep, Recall@20 (scale {:?}, {} seed(s)) ==",
        args.scale,
        args.seeds.len()
    );
    for name in args.datasets.names() {
        println!("\n--- dataset: {name} ---");
        println!("{:>4} {:>10} {:>10}", "k", "VSAN", "SVAE");
        let mut best = (0usize, f64::MIN, 0usize, f64::MIN); // (k_vsan, v, k_svae, v)
        for &k in &ks {
            let mut vsan_agg = RunAggregate::new();
            let mut svae_agg = RunAggregate::new();
            for &seed in &args.seeds {
                let bench = Bench::prepare(name, args.scale, seed);
                let mut vcfg = args.scale.vsan_config(name).with_seed(seed).with_next_k(k);
                vcfg.base.epochs = args.scale.grid_epochs();
                let vsan = timed(&format!("VSAN k={k}"), || bench.train_vsan(&vcfg));
                vsan_agg.add(&bench.evaluate(&vsan));

                let ncfg = args
                    .scale
                    .neural_config(name)
                    .with_seed(seed)
                    .with_epochs(args.scale.grid_epochs());
                let mut scfg = SvaeConfig::for_dim(ncfg.dim);
                scfg.next_k = k;
                let svae = timed(&format!("SVAE k={k}"), || {
                    Svae::train(&bench.ds, &bench.split.train_users, &ncfg, &scfg).expect("svae")
                });
                svae_agg.add(&bench.evaluate(&svae));
            }
            let v = vsan_agg.mean_pct("Recall", 20).unwrap_or(f64::NAN);
            let s = svae_agg.mean_pct("Recall", 20).unwrap_or(f64::NAN);
            if v > best.1 {
                best.0 = k;
                best.1 = v;
            }
            if s > best.3 {
                best.2 = k;
                best.3 = s;
            }
            println!("{k:>4} {v:>10.3} {s:>10.3}");
        }
        println!("best k: VSAN k={} ({:.3}%), SVAE k={} ({:.3}%)", best.0, best.1, best.2, best.3);
    }
}
