//! Table V — influence of the latent variable z (RQ3): VSAN vs VSAN-z
//! (the variant that feeds the inference output directly into the
//! generative layer), NDCG/Recall at 10 and 20.

use vsan_bench::{timed, Bench, ExpArgs};
use vsan_eval::RunAggregate;

fn main() {
    let args = ExpArgs::from_env(1);
    println!(
        "== Table V: latent-variable ablation (scale {:?}, {} seed(s)) ==",
        args.scale,
        args.seeds.len()
    );
    println!(
        "{:<12} {:<10} {:>8} {:>8} {:>8} {:>8}",
        "Dataset", "Method", "NDCG@10", "Rec@10", "NDCG@20", "Rec@20"
    );
    for name in args.datasets.names() {
        let mut rows: Vec<(String, RunAggregate)> = Vec::new();
        for variant in ["VSAN-z", "VSAN"] {
            let mut agg = RunAggregate::new();
            for &seed in &args.seeds {
                let bench = Bench::prepare(name, args.scale, seed);
                let mut cfg = args.scale.vsan_config(name).with_seed(seed);
                cfg.base.epochs = 2 * args.scale.grid_epochs();
                if variant == "VSAN-z" {
                    cfg = cfg.vsan_z();
                }
                let model = timed(&format!("{name}/{variant}"), || bench.train_vsan(&cfg));
                agg.add(&bench.evaluate(&model));
            }
            rows.push((variant.to_string(), agg));
        }
        for (variant, agg) in &rows {
            println!(
                "{:<12} {:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                name,
                variant,
                agg.mean_pct("NDCG", 10).unwrap_or(f64::NAN),
                agg.mean_pct("Recall", 10).unwrap_or(f64::NAN),
                agg.mean_pct("NDCG", 20).unwrap_or(f64::NAN),
                agg.mean_pct("Recall", 20).unwrap_or(f64::NAN),
            );
        }
        // Improvement row (paper prints VSAN's gain over VSAN-z).
        let improv = |metric: &str, n: usize| -> f64 {
            let z = rows[0].1.mean(metric, n).unwrap_or(0.0);
            let full = rows[1].1.mean(metric, n).unwrap_or(0.0);
            if z > 0.0 {
                (full / z - 1.0) * 100.0
            } else {
                0.0
            }
        };
        println!(
            "{:<12} {:<10} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            name,
            "Improv.%",
            improv("NDCG", 10),
            improv("Recall", 10),
            improv("NDCG", 20),
            improv("Recall", 20),
        );
    }
}
