//! Online-serving throughput benchmark (`results/BENCH_serve.json`).
//!
//! Times a repeat-traffic request stream through the `vsan-serve`
//! engine against a sequential uncached `Vsan::recommend` loop on the
//! same model and workload, then writes the JSON report. Accepts
//! `--requests N` and `--unique N` to scale the stream.

use vsan_bench::serve_bench::{run_serve_bench, ServeBenchConfig};

fn main() {
    let mut cfg = ServeBenchConfig::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--requests" if i + 1 < args.len() => {
                cfg.requests = args[i + 1].parse().unwrap_or(cfg.requests);
                i += 2;
            }
            "--unique" if i + 1 < args.len() => {
                cfg.unique_histories = args[i + 1].parse().unwrap_or(cfg.unique_histories);
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }

    eprintln!(
        "serve_bench: {} requests over {} unique histories (k={}, burst={}, max_batch={})",
        cfg.requests, cfg.unique_histories, cfg.k, cfg.burst, cfg.max_batch
    );
    let report = run_serve_bench(cfg);
    println!(
        "sequential: {:>8.1} req/s  ({:.3}s)\n\
         engine:     {:>8.1} req/s  ({:.3}s)\n\
         speedup:    {:>8.2}x   cache {}/{} hit/miss, mean batch {:.1}, match={}",
        report.sequential_rps,
        report.sequential_seconds,
        report.engine_rps,
        report.engine_seconds,
        report.speedup,
        report.cache_hits,
        report.cache_misses,
        report.mean_batch_size,
        report.results_match,
    );
    let o = &report.overload;
    println!(
        "overload:   {} offered → {} exact, {} degraded, {} deadline-miss, {} other\n\
         \u{20}           rejection {:.1}%, degraded {:.1}%, p50 {}us, p99 {}us",
        o.offered,
        o.exact,
        o.degraded,
        o.deadline_misses,
        o.other_errors,
        o.rejection_rate * 100.0,
        o.degraded_rate * 100.0,
        o.p50_latency_us,
        o.p99_latency_us,
    );
    let s = &report.session;
    println!(
        "session:    {} events over {} users → {:.1} ev/s  \
         ({} append, {} cold, {} resume, {} reset, {} evict)\n\
         \u{20}           p50 {}us, p99 {}us, match={}",
        s.events,
        s.users,
        s.events_per_second,
        s.appends,
        s.cold_starts,
        s.resumes,
        s.resets,
        s.evictions,
        s.p50_latency_us,
        s.p99_latency_us,
        s.results_match,
    );
    assert!(report.results_match, "engine rankings diverged from Vsan::recommend");
    assert!(report.session.results_match, "streamed rankings diverged from Vsan::recommend");
    match report.write_json("BENCH_serve.json") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write report: {e}");
            std::process::exit(1);
        }
    }
}
