//! Instrumented end-to-end smoke pass for the observability layer
//! (`scripts/verify.sh` runs this).
//!
//! Trains a tiny VSAN with a JSONL observer attached, serves a small
//! request stream through an instrumented engine, writes both telemetry
//! streams under `results/`, then re-reads and validates them: every
//! line must parse as JSON, the training stream must open with a
//! run-header and carry per-epoch CE/KL/β records, and the serving
//! stream must carry the engine metrics registry, span records, and a
//! flight-recorder dump whose trace graph is sound (every span's trace
//! id resolves to an admission root through acyclic parent links). The
//! engine's registry is also scraped once over a live Prometheus
//! text-exposition endpoint and the body must parse. Exits non-zero on
//! any violation.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vsan_bench::serve_bench::results_dir;
use vsan_core::{Vsan, VsanConfig};
use vsan_data::Dataset;
use vsan_obs::{
    expo, parse, EventSink, ExpositionServer, FileSink, JsonlTrainObserver, JsonValue,
    ObserverHandle, Tracer,
};
use vsan_serve::{Engine, EngineConfig};

fn fail(msg: &str) -> ! {
    eprintln!("obs_smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// Parse every line of a JSONL file, failing the run on the first
/// malformed record; returns the per-line `"type"` values.
fn validate_jsonl(path: &std::path::Path) -> Vec<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let mut types = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let v = parse(line).unwrap_or_else(|e| {
            fail(&format!("{}:{}: malformed record: {e}", path.display(), i + 1))
        });
        let ty = v
            .get("type")
            .and_then(|t| t.as_str())
            .unwrap_or_else(|| fail(&format!("{}:{}: record has no type", path.display(), i + 1)));
        types.push(ty.to_string());
    }
    if types.is_empty() {
        fail(&format!("{}: zero telemetry events", path.display()));
    }
    types
}

/// Validate the trace graph carried by a stream's `flight_record`
/// lines: parent links must be acyclic, never dangle, stay within one
/// trace, and every span must resolve to an `admission` root.
fn validate_trace_graph(path: &std::path::Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot re-read {}: {e}", path.display())));
    // span_id -> (trace_id, parent_span_id, stage)
    let mut spans: HashMap<String, (String, String, String)> = HashMap::new();
    for line in text.lines() {
        let v = parse(line).unwrap_or_else(|e| fail(&format!("flight record re-parse: {e}")));
        if v.get("type").and_then(JsonValue::as_str) != Some("flight_record") {
            continue;
        }
        let field = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_str)
                .unwrap_or_else(|| fail(&format!("flight_record missing {k}: {line}")))
                .to_string()
        };
        spans.insert(field("span_id"), (field("trace_id"), field("parent_span_id"), field("stage")));
    }
    if spans.is_empty() {
        fail("serving stream has no flight_record lines");
    }
    const NO_PARENT: &str = "0000000000000000";
    for (span_id, (trace_id, _, _)) in &spans {
        let mut cur = span_id;
        let mut hops = 0;
        loop {
            let (trace, parent, stage) = spans
                .get(cur)
                .unwrap_or_else(|| fail(&format!("span {span_id}: dangling parent {cur}")));
            if trace != trace_id {
                fail(&format!("span {span_id}: parent chain crosses into trace {trace}"));
            }
            if parent == NO_PARENT {
                if stage != "admission" {
                    fail(&format!("span {span_id}: root stage is {stage}, not admission"));
                }
                break;
            }
            cur = parent;
            hops += 1;
            if hops > 32 {
                fail(&format!("span {span_id}: parent chain exceeds 32 hops (cycle?)"));
            }
        }
    }
    eprintln!("obs_smoke: trace graph OK ({} spans, all rooted at admission)", spans.len());
}

fn main() {
    let results = results_dir();
    std::fs::create_dir_all(&results).unwrap_or_else(|e| fail(&format!("mkdir results: {e}")));
    let train_path = results.join("obs_smoke_train.jsonl");
    let serve_path = results.join("obs_smoke_serve.jsonl");

    // Synthetic workload (same shape as the benches).
    let mut rng = StdRng::seed_from_u64(7);
    let num_items = 40usize;
    let sequences: Vec<Vec<u32>> =
        (0..24).map(|_| (0..12).map(|_| rng.gen_range(1..=num_items as u32)).collect()).collect();
    let ds = Dataset { name: "obs-smoke".into(), num_items, sequences };
    let train_users: Vec<usize> = (0..ds.sequences.len()).collect();

    // --- Instrumented training: JSONL observer + spans. ---
    let tracer = Tracer::new();
    {
        let sink = Arc::new(
            FileSink::create(&train_path).unwrap_or_else(|e| fail(&format!("train sink: {e}"))),
        );
        let cfg = VsanConfig::smoke()
            .with_observer(ObserverHandle::new(Arc::new(JsonlTrainObserver::new(sink.clone()))));
        let _train_span = tracer.span("train");
        let model = {
            let _span = tracer.span("vsan_train");
            Vsan::train(&ds, &train_users, &cfg).unwrap_or_else(|e| fail(&format!("train: {e}")))
        };
        drop(_train_span);
        tracer.export_jsonl(sink.as_ref());
        sink.flush();

        // --- Instrumented serving: engine registry + spans. ---
        let serve_sink =
            FileSink::create(&serve_path).unwrap_or_else(|e| fail(&format!("serve sink: {e}")));
        let serve_tracer = Tracer::new();
        let engine = Engine::start(model, EngineConfig::default().with_workers(1));
        {
            let _span = serve_tracer.span("serve_stream");
            let histories: Vec<Vec<u32>> = (0..8)
                .map(|_| (0..6).map(|_| rng.gen_range(1..=num_items as u32)).collect())
                .collect();
            for round in 0..3 {
                let _round_span = serve_tracer.span(&format!("round{round}"));
                for h in &histories {
                    if engine.recommend(h, 5).is_err() {
                        fail("engine rejected a request");
                    }
                }
            }
        }
        engine.export_metrics(&serve_sink);
        if engine.dump_flight_recorder(&serve_sink) == 0 {
            fail("flight recorder dumped zero spans after a served stream");
        }

        // Live scrape: bind an ephemeral exposition endpoint on the
        // engine's registry, GET /metrics over TCP, and require the
        // body to parse as Prometheus text exposition.
        let registry = engine.metrics_registry();
        let server = ExpositionServer::bind(Arc::clone(&registry), "127.0.0.1:0")
            .unwrap_or_else(|e| fail(&format!("exposition bind: {e}")));
        let scrape = {
            let mut conn = std::net::TcpStream::connect(server.local_addr())
                .unwrap_or_else(|e| fail(&format!("exposition connect: {e}")));
            conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
                .unwrap_or_else(|e| fail(&format!("exposition request: {e}")));
            let _ = conn.shutdown(std::net::Shutdown::Write);
            let mut response = String::new();
            conn.read_to_string(&mut response)
                .unwrap_or_else(|e| fail(&format!("exposition read: {e}")));
            if !response.starts_with("HTTP/1.1 200") {
                fail(&format!("exposition scrape status: {}", response.lines().next().unwrap_or("")));
            }
            let body = response
                .split_once("\r\n\r\n")
                .unwrap_or_else(|| fail("exposition response has no body"))
                .1
                .to_string();
            expo::parse(&body)
                .unwrap_or_else(|e| fail(&format!("exposition body does not parse: {e}")))
        };
        if scrape.value("serve_requests").is_none() {
            fail("scrape is missing serve_requests");
        }
        server.shutdown();
        expo::write_to_file(&registry, &results.join("obs_smoke_metrics.prom"))
            .unwrap_or_else(|e| fail(&format!("write .prom: {e}")));

        let stats = engine.shutdown_stats();
        if stats.latency_us.count == 0 {
            fail("engine recorded no latency samples");
        }
        if stats.snapshot.cache_hits == 0 {
            fail("repeat traffic produced no cache hits");
        }
        serve_tracer.export_jsonl(&serve_sink);
        serve_sink.flush();
    }

    // --- Validate both streams. ---
    let train_types = validate_jsonl(&train_path);
    if train_types.first().map(String::as_str) != Some("run_header") {
        fail("training stream must open with a run_header record");
    }
    let epochs = train_types.iter().filter(|t| *t == "epoch").count();
    if epochs == 0 {
        fail("training stream carries no epoch records");
    }
    if !train_types.iter().any(|t| t == "run_end") {
        fail("training stream has no run_end record");
    }
    if !train_types.iter().any(|t| t == "span") {
        fail("training stream has no span records");
    }
    let serve_types = validate_jsonl(&serve_path);
    if !serve_types.iter().any(|t| t == "serve_metrics") {
        fail("serving stream has no serve_metrics record");
    }
    if !serve_types.iter().any(|t| t == "span") {
        fail("serving stream has no span records");
    }
    if !serve_types.iter().any(|t| t == "flight_dump") {
        fail("serving stream has no flight_dump record");
    }
    validate_trace_graph(&serve_path);

    eprintln!(
        "obs_smoke: OK ({} train events, {} epochs; {} serve events) -> {}, {}",
        train_types.len(),
        epochs,
        serve_types.len(),
        train_path.display(),
        serve_path.display()
    );
}
