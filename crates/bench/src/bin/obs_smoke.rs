//! Instrumented end-to-end smoke pass for the observability layer
//! (`scripts/verify.sh` runs this).
//!
//! Trains a tiny VSAN with a JSONL observer attached, serves a small
//! request stream through an instrumented engine, writes both telemetry
//! streams under `results/`, then re-reads and validates them: every
//! line must parse as JSON, the training stream must open with a
//! run-header and carry per-epoch CE/KL/β records, and the serving
//! stream must carry the engine metrics registry and span records.
//! Exits non-zero on any violation.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vsan_bench::serve_bench::results_dir;
use vsan_core::{Vsan, VsanConfig};
use vsan_data::Dataset;
use vsan_obs::{parse, EventSink, FileSink, JsonlTrainObserver, ObserverHandle, Tracer};
use vsan_serve::{Engine, EngineConfig};

fn fail(msg: &str) -> ! {
    eprintln!("obs_smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// Parse every line of a JSONL file, failing the run on the first
/// malformed record; returns the per-line `"type"` values.
fn validate_jsonl(path: &std::path::Path) -> Vec<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let mut types = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let v = parse(line).unwrap_or_else(|e| {
            fail(&format!("{}:{}: malformed record: {e}", path.display(), i + 1))
        });
        let ty = v
            .get("type")
            .and_then(|t| t.as_str())
            .unwrap_or_else(|| fail(&format!("{}:{}: record has no type", path.display(), i + 1)));
        types.push(ty.to_string());
    }
    if types.is_empty() {
        fail(&format!("{}: zero telemetry events", path.display()));
    }
    types
}

fn main() {
    let results = results_dir();
    std::fs::create_dir_all(&results).unwrap_or_else(|e| fail(&format!("mkdir results: {e}")));
    let train_path = results.join("obs_smoke_train.jsonl");
    let serve_path = results.join("obs_smoke_serve.jsonl");

    // Synthetic workload (same shape as the benches).
    let mut rng = StdRng::seed_from_u64(7);
    let num_items = 40usize;
    let sequences: Vec<Vec<u32>> =
        (0..24).map(|_| (0..12).map(|_| rng.gen_range(1..=num_items as u32)).collect()).collect();
    let ds = Dataset { name: "obs-smoke".into(), num_items, sequences };
    let train_users: Vec<usize> = (0..ds.sequences.len()).collect();

    // --- Instrumented training: JSONL observer + spans. ---
    let tracer = Tracer::new();
    {
        let sink = Arc::new(
            FileSink::create(&train_path).unwrap_or_else(|e| fail(&format!("train sink: {e}"))),
        );
        let cfg = VsanConfig::smoke()
            .with_observer(ObserverHandle::new(Arc::new(JsonlTrainObserver::new(sink.clone()))));
        let _train_span = tracer.span("train");
        let model = {
            let _span = tracer.span("vsan_train");
            Vsan::train(&ds, &train_users, &cfg).unwrap_or_else(|e| fail(&format!("train: {e}")))
        };
        drop(_train_span);
        tracer.export_jsonl(sink.as_ref());
        sink.flush();

        // --- Instrumented serving: engine registry + spans. ---
        let serve_sink =
            FileSink::create(&serve_path).unwrap_or_else(|e| fail(&format!("serve sink: {e}")));
        let serve_tracer = Tracer::new();
        let engine = Engine::start(model, EngineConfig::default().with_workers(1));
        {
            let _span = serve_tracer.span("serve_stream");
            let histories: Vec<Vec<u32>> = (0..8)
                .map(|_| (0..6).map(|_| rng.gen_range(1..=num_items as u32)).collect())
                .collect();
            for round in 0..3 {
                let _round_span = serve_tracer.span(&format!("round{round}"));
                for h in &histories {
                    if engine.recommend(h, 5).is_err() {
                        fail("engine rejected a request");
                    }
                }
            }
        }
        engine.export_metrics(&serve_sink);
        let stats = engine.shutdown_stats();
        if stats.latency_us.count == 0 {
            fail("engine recorded no latency samples");
        }
        if stats.snapshot.cache_hits == 0 {
            fail("repeat traffic produced no cache hits");
        }
        serve_tracer.export_jsonl(&serve_sink);
        serve_sink.flush();
    }

    // --- Validate both streams. ---
    let train_types = validate_jsonl(&train_path);
    if train_types.first().map(String::as_str) != Some("run_header") {
        fail("training stream must open with a run_header record");
    }
    let epochs = train_types.iter().filter(|t| *t == "epoch").count();
    if epochs == 0 {
        fail("training stream carries no epoch records");
    }
    if !train_types.iter().any(|t| t == "run_end") {
        fail("training stream has no run_end record");
    }
    if !train_types.iter().any(|t| t == "span") {
        fail("training stream has no span records");
    }
    let serve_types = validate_jsonl(&serve_path);
    if !serve_types.iter().any(|t| t == "serve_metrics") {
        fail("serving stream has no serve_metrics record");
    }
    if !serve_types.iter().any(|t| t == "span") {
        fail("serving stream has no span records");
    }

    eprintln!(
        "obs_smoke: OK ({} train events, {} epochs; {} serve events) -> {}, {}",
        train_types.len(),
        epochs,
        serve_types.len(),
        train_path.display(),
        serve_path.display()
    );
}
