//! Table II — dataset statistics. Verifies the simulator calibration
//! against the paper's reported numbers (at `--scale paper` the targets
//! are matched directly; at smaller scales proportions and the sparsity
//! ordering are what matters).

use vsan_bench::{Bench, ExpArgs};
use vsan_data::stats::DatasetStats;

fn main() {
    let args = ExpArgs::from_env(1);
    println!("== Table II: dataset statistics (scale {:?}) ==", args.scale);
    println!(
        "paper targets: Beauty 14 993 users / 12 069 items / 130 455 inter. / 99.93% sparse;"
    );
    println!("               ML-1M  6 031 users /  3 516 items / 571 519 inter. / 97.30% sparse");
    println!();
    for name in args.datasets.names() {
        let bench = Bench::prepare(name, args.scale, args.seeds[0]);
        let stats = DatasetStats::compute(&bench.ds);
        println!("{}", stats.table_row(bench.name()));
        println!(
            "    held-out users: {} val / {} test; median len {}; max len {}",
            bench.split.val_users.len(),
            bench.split.test_users.len(),
            stats.median_seq_len,
            stats.max_seq_len
        );
    }
}
