//! Fig. 4 — performance under different embedding dimensions d: VSAN vs
//! SASRec, NDCG@10 for d across a sweep. The paper sweeps 10–400 and
//! reports VSAN above SASRec throughout, with returns saturating (and
//! eventually degrading) at large d.

use vsan_bench::{timed, Bench, ExpArgs, Scale};
use vsan_eval::RunAggregate;
use vsan_models::SasRec;

fn main() {
    let args = ExpArgs::from_env(1);
    // Paper sweeps 10..400; the repro sweep keeps the shape at CPU cost.
    let dims: Vec<usize> = match args.scale {
        Scale::Smoke => vec![8, 16, 32],
        Scale::Repro => vec![10, 25, 50, 100, 150],
        Scale::Paper => vec![10, 50, 100, 200, 300, 400],
    };
    println!(
        "== Fig. 4: embedding-dimension sweep, NDCG@10 (scale {:?}, {} seed(s)) ==",
        args.scale,
        args.seeds.len()
    );
    for name in args.datasets.names() {
        println!("\n--- dataset: {name} ---");
        println!("{:>6} {:>10} {:>10}", "d", "VSAN", "SASRec");
        for &d in &dims {
            let mut vsan_agg = RunAggregate::new();
            let mut sas_agg = RunAggregate::new();
            for &seed in &args.seeds {
                let bench = Bench::prepare(name, args.scale, seed);
                let mut vcfg = args.scale.vsan_config(name).with_seed(seed);
                vcfg.base = vcfg.base.with_dim(d).with_epochs(args.scale.grid_epochs());
                let vsan = timed(&format!("VSAN d={d}"), || bench.train_vsan(&vcfg));
                vsan_agg.add(&bench.evaluate(&vsan));

                let ncfg = args
                    .scale
                    .neural_config(name)
                    .with_seed(seed)
                    .with_dim(d)
                    .with_epochs(args.scale.grid_epochs());
                let sas = timed(&format!("SASRec d={d}"), || {
                    SasRec::train(&bench.ds, &bench.split.train_users, &ncfg).expect("sasrec")
                });
                sas_agg.add(&bench.evaluate(&sas));
            }
            println!(
                "{d:>6} {:>10.3} {:>10.3}",
                vsan_agg.mean_pct("NDCG", 10).unwrap_or(f64::NAN),
                sas_agg.mean_pct("NDCG", 10).unwrap_or(f64::NAN)
            );
        }
    }
}
