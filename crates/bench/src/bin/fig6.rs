//! Fig. 6 — influence of the β controlling the KL term: fixed
//! β ∈ {0.0, 0.1, …, 0.9} against the paper's KL annealing (dotted line),
//! NDCG@10. The paper reports annealing best on both datasets.

use vsan_bench::{timed, Bench, ExpArgs};
use vsan_eval::RunAggregate;
use vsan_nn::BetaSchedule;

fn main() {
    let args = ExpArgs::from_env(1);
    let betas: Vec<f32> = (0..10).map(|i| i as f32 / 10.0).collect();
    println!(
        "== Fig. 6: KL-weight sweep, NDCG@10 (scale {:?}, {} seed(s)) ==",
        args.scale,
        args.seeds.len()
    );
    for name in args.datasets.names() {
        println!("\n--- dataset: {name} ---");
        println!("{:>10} {:>10}", "beta", "VSAN");
        let mut best_fixed = (0.0f32, f64::MIN);
        for &beta in &betas {
            let mut agg = RunAggregate::new();
            for &seed in &args.seeds {
                let bench = Bench::prepare(name, args.scale, seed);
                let mut cfg = args
                    .scale
                    .vsan_config(name)
                    .with_seed(seed)
                    .with_beta(BetaSchedule::Fixed(beta));
                cfg.base.epochs = args.scale.grid_epochs();
                let model = timed(&format!("beta={beta:.1}"), || bench.train_vsan(&cfg));
                agg.add(&bench.evaluate(&model));
            }
            let v = agg.mean_pct("NDCG", 10).unwrap_or(f64::NAN);
            if v > best_fixed.1 {
                best_fixed = (beta, v);
            }
            println!("{beta:>10.1} {v:>10.3}");
        }
        // Annealed reference (the dotted line in the paper's figure).
        let mut agg = RunAggregate::new();
        for &seed in &args.seeds {
            let bench = Bench::prepare(name, args.scale, seed);
            let mut cfg = args.scale.vsan_config(name).with_seed(seed); // default = annealing
            cfg.base.epochs = args.scale.grid_epochs();
            let model = timed("annealed", || bench.train_vsan(&cfg));
            agg.add(&bench.evaluate(&model));
        }
        let annealed = agg.mean_pct("NDCG", 10).unwrap_or(f64::NAN);
        println!("{:>10} {annealed:>10.3}", "annealed");
        println!(
            "best fixed beta: {:.1} ({:.3}%); annealing {}",
            best_fixed.0,
            best_fixed.1,
            if annealed >= best_fixed.1 { "wins (paper shape holds)" } else { "loses at this scale" }
        );
    }
}
