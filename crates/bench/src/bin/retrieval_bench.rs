//! Clustered-retrieval benchmark (`results/BENCH_retrieval.json`).
//!
//! Measures the two-stage clustered MIPS index against the exact
//! brute-force oracle on synthetic catalogs of 12 k, 100 k, and 10⁶
//! items: end-to-end latency, recall@{1, 10, 50} against the oracle,
//! and the full-probe bitwise check (`nprobe = num_clusters` must
//! reproduce the oracle's ranking in order). Accepts `--iters N`
//! (timed repetitions per path) and `--seed S`.

use vsan_bench::retrieval_bench::{run_retrieval_bench, RetrievalBenchConfig};

fn main() {
    let mut cfg = RetrievalBenchConfig::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" if i + 1 < args.len() => {
                cfg.iters = args[i + 1].parse().unwrap_or(cfg.iters);
                i += 2;
            }
            "--seed" if i + 1 < args.len() => {
                cfg.seed = args[i + 1].parse().unwrap_or(cfg.seed);
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }

    eprintln!("retrieval_bench: {} catalogs, {} iters", cfg.cases.len(), cfg.iters);
    let report = run_retrieval_bench(&cfg);

    for r in &report.results {
        println!(
            "catalog {:<6} N={:>8} d={}  clusters={:>5} nprobe={:>4}  build {:>6.2}s  \
             exact {:>8.1} q/s  clustered {:>8.1} q/s  {:>6.2}x  \
             recall@1/10/50 {:.3}/{:.3}/{:.3}  full_probe_bitwise={}",
            r.name,
            r.num_items,
            r.dim,
            r.num_clusters,
            r.nprobe,
            r.index_build_seconds,
            r.exact_qps,
            r.clustered_qps,
            r.speedup,
            r.recall_at_1,
            r.recall_at_10,
            r.recall_at_50,
            r.full_probe_bitwise
        );
    }
    println!(
        "overall: full_probe_bitwise={}  min_recall_at_50={:.4}  min_clustered_speedup={:.2}x",
        report.full_probe_bitwise, report.min_recall_at_50, report.min_clustered_speedup
    );

    if !report.full_probe_bitwise {
        eprintln!("FATAL: full probe diverged from the exact oracle — not writing a report");
        std::process::exit(1);
    }
    let path = report.write_json("BENCH_retrieval.json").expect("write report");
    eprintln!("report written to {}", path.display());
}
