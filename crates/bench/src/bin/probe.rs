//! Diagnostic probe: train ONE model with explicit overrides and print its
//! metrics plus the per-epoch loss curve. Used to calibrate the repro-scale
//! training budgets recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p vsan-bench --bin probe -- \
//!     --model sasrec --dataset beauty --scale repro --epochs 60 --lr 0.003
//! ```

use vsan_bench::{timed, Bench, ExpArgs, Scale};
use vsan_core::Vsan;
use vsan_models::caser::CaserConfig;
use vsan_models::svae::SvaeConfig;
use vsan_models::{Caser, Gru4Rec, SasRec, Svae};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut model = "vsan".to_string();
    let mut epochs: Option<usize> = None;
    let mut lr: Option<f32> = None;
    let mut dim: Option<usize> = None;
    let mut dropout: Option<f32> = None;
    let mut k: Option<usize> = None;
    let mut variant = "full".to_string();
    let mut tie = false;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--model" if i + 1 < argv.len() => {
                model = argv[i + 1].to_ascii_lowercase();
                i += 2;
            }
            "--epochs" if i + 1 < argv.len() => {
                epochs = argv[i + 1].parse().ok();
                i += 2;
            }
            "--lr" if i + 1 < argv.len() => {
                lr = argv[i + 1].parse().ok();
                i += 2;
            }
            "--dim" if i + 1 < argv.len() => {
                dim = argv[i + 1].parse().ok();
                i += 2;
            }
            "--dropout" if i + 1 < argv.len() => {
                dropout = argv[i + 1].parse().ok();
                i += 2;
            }
            "--k" if i + 1 < argv.len() => {
                k = argv[i + 1].parse().ok();
                i += 2;
            }
            "--variant" if i + 1 < argv.len() => {
                variant = argv[i + 1].to_ascii_lowercase();
                i += 2;
            }
            "--tie" => {
                tie = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    let args = ExpArgs::from_env(1);
    let dataset = args.datasets.names()[0];
    let bench = Bench::prepare(dataset, args.scale, args.seeds[0]);
    eprintln!(
        "dataset {} users={} items={} train={}",
        bench.name(),
        bench.ds.num_users(),
        bench.ds.num_items,
        bench.split.train_users.len()
    );

    let mut ncfg = args.scale.neural_config(dataset).with_seed(args.seeds[0]);
    if let Some(e) = epochs {
        ncfg.epochs = e;
    }
    if let Some(l) = lr {
        ncfg.lr = l;
    }
    if let Some(d) = dim {
        ncfg = ncfg.with_dim(d);
    }
    if let Some(p) = dropout {
        ncfg = ncfg.with_dropout(p);
    }

    let (losses, report) = match model.as_str() {
        "sasrec" => {
            let m = timed("train", || {
                SasRec::train(&bench.ds, &bench.split.train_users, &ncfg).expect("train")
            });
            (m.train_losses.clone(), timed("eval", || bench.evaluate(&m)))
        }
        "gru4rec" => {
            let m = timed("train", || {
                Gru4Rec::train(&bench.ds, &bench.split.train_users, &ncfg).expect("train")
            });
            (m.train_losses.clone(), timed("eval", || bench.evaluate(&m)))
        }
        "caser" => {
            let m = timed("train", || {
                Caser::train(&bench.ds, &bench.split.train_users, &ncfg, &CaserConfig::default())
                    .expect("train")
            });
            (m.train_losses.clone(), timed("eval", || bench.evaluate(&m)))
        }
        "svae" => {
            let m = timed("train", || {
                Svae::train(
                    &bench.ds,
                    &bench.split.train_users,
                    &ncfg,
                    &SvaeConfig::for_dim(ncfg.dim),
                )
                .expect("train")
            });
            (m.train_losses.clone(), timed("eval", || bench.evaluate(&m)))
        }
        _ => {
            let mut vcfg = args.scale.vsan_config(dataset).with_seed(args.seeds[0]);
            vcfg.base = ncfg.clone();
            if let Some(k) = k {
                vcfg = vcfg.with_next_k(k);
            }
            if variant == "z" {
                vcfg = vcfg.vsan_z();
            }
            vcfg.tie_prediction = tie;
            let m = timed("train", || Vsan::train(&bench.ds, &bench.split.train_users, &vcfg).expect("train"));
            (m.train_losses.clone(), timed("eval", || bench.evaluate(&m)))
        }
    };

    let show: Vec<String> = losses
        .iter()
        .enumerate()
        .filter(|(i, _)| i % (losses.len() / 12 + 1) == 0 || *i == losses.len() - 1)
        .map(|(i, l)| format!("{i}:{l:.3}"))
        .collect();
    println!("loss curve: {}", show.join(" "));
    println!(
        "{model} @{:?}: NDCG@10 {:.3}% Recall@10 {:.3}% NDCG@20 {:.3}% Recall@20 {:.3}% Prec@10 {:.3}%",
        args.scale,
        report.get_pct("NDCG", 10).unwrap_or(f64::NAN),
        report.get_pct("Recall", 10).unwrap_or(f64::NAN),
        report.get_pct("NDCG", 20).unwrap_or(f64::NAN),
        report.get_pct("Recall", 20).unwrap_or(f64::NAN),
        report.get_pct("Precision", 10).unwrap_or(f64::NAN),
    );
    let _ = Scale::Smoke; // keep the import obviously used in all cfgs
}
