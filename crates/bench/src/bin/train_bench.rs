//! Training-scaling benchmark (`results/BENCH_train.json`).
//!
//! Trains the same VSAN once per kernel-tier × thread-count cell through
//! the deterministic data-parallel executor, verifies the runs are
//! bit-identical, runs the single-thread kernel-step microbench, and
//! writes the timing report. Accepts `--epochs N`, `--users N`, and
//! `--threads 1,2,4,8` to scale the sweep.

use vsan_bench::train_bench::{run_train_bench, TrainBenchConfig};

fn main() {
    let mut cfg = TrainBenchConfig::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--epochs" if i + 1 < args.len() => {
                cfg.epochs = args[i + 1].parse().unwrap_or(cfg.epochs);
                i += 2;
            }
            "--users" if i + 1 < args.len() => {
                cfg.num_users = args[i + 1].parse().unwrap_or(cfg.num_users);
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                let counts: Vec<usize> =
                    args[i + 1].split(',').filter_map(|t| t.trim().parse().ok()).collect();
                if !counts.is_empty() {
                    cfg.thread_counts = counts;
                }
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }

    eprintln!(
        "train_bench: {} users × {} epochs, d={}, batch {}, threads {:?}",
        cfg.num_users, cfg.epochs, cfg.dim, cfg.batch_size, cfg.thread_counts
    );
    let report = run_train_bench(cfg);
    println!("available_parallelism: {}", report.available_parallelism);
    for t in &report.timings {
        println!(
            "policy {:>5} tier {:>9} threads {:>3}: {:>7.3}s/epoch  speedup {:>5.2}x",
            t.policy.name(),
            t.tier.name(),
            t.threads,
            t.epoch_seconds,
            t.speedup_vs_serial
        );
    }
    for k in &report.kernel_steps {
        println!(
            "kernel step n={:>3} d={:>3}: reference {:>9.6}s  fast {:>9.6}s  speedup {:>5.2}x",
            k.n, k.d, k.reference_seconds, k.fast_seconds, k.speedup
        );
    }
    println!("min_kernel_speedup: {:.3}", report.min_kernel_speedup);
    println!("tensor_allocs_per_step_steady: {:.3}", report.tensor_allocs_per_step_steady);
    println!("bitwise_match: {}", report.bitwise_match);
    assert!(report.bitwise_match, "policy/tier/thread grid produced diverging parameters");
    match report.write_json("BENCH_train.json") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write report: {e}");
            std::process::exit(1);
        }
    }
}
