//! Inference fast-path benchmark (`results/BENCH_infer.json`).
//!
//! Measures the graph-free forward against the autograd graph path —
//! fused-kernel micro-timings plus end-to-end `score_items_batch`
//! throughput at paper-adjacent serve shapes — after checking the two
//! paths agree bit for bit, and the steady-state incremental session
//! path (`events_per_second` per warm append vs a full recompute).
//! Accepts `--iters N` (end-to-end timed repetitions) and
//! `--kernel-iters N`.

use vsan_bench::infer_bench::{run_infer_bench, InferBenchConfig};

fn main() {
    let mut cfg = InferBenchConfig::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" if i + 1 < args.len() => {
                cfg.e2e_iters = args[i + 1].parse().unwrap_or(cfg.e2e_iters);
                i += 2;
            }
            "--kernel-iters" if i + 1 < args.len() => {
                cfg.kernel_iters = args[i + 1].parse().unwrap_or(cfg.kernel_iters);
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }

    eprintln!(
        "infer_bench: {} cases, {} e2e iters, {} kernel iters",
        cfg.cases.len(),
        cfg.e2e_iters,
        cfg.kernel_iters
    );
    let report = run_infer_bench(&cfg);

    for k in &report.kernels {
        println!(
            "kernel {:<20} {:<18} baseline {:>9.1}us  fused {:>9.1}us  {:>6.2}x",
            k.kernel, k.shape, k.baseline_us, k.fused_us, k.speedup
        );
    }
    for r in &report.e2e {
        println!(
            "e2e    {:<12} d={} n={} N={} b={}  graph {:>8.1} rps  fast {:>8.1} rps  \
             {:>6.2}x  bitwise_match={}",
            r.name,
            r.dim,
            r.max_seq_len,
            r.num_items,
            r.batch,
            r.graph_rps,
            r.fast_rps,
            r.speedup,
            r.bitwise_match
        );
    }
    for s in &report.sessions {
        println!(
            "session {:<12} d={} n={} N={}  warm {}/{} (min hist {})  \
             append {:>8.1} ev/s  recompute {:>8.1} ev/s  {:>6.2}x  bitwise_match={}",
            s.name,
            s.dim,
            s.max_seq_len,
            s.num_items,
            s.warm_events,
            s.events,
            s.min_history,
            s.events_per_second,
            s.recompute_events_per_second,
            s.speedup,
            s.bitwise_match
        );
    }
    println!(
        "overall: bitwise_match={}  min_e2e_speedup={:.2}x  min_session_speedup={:.2}x",
        report.bitwise_match, report.min_e2e_speedup, report.min_session_speedup
    );

    if !report.bitwise_match {
        eprintln!("FATAL: a measured path diverged bitwise from its oracle — not writing a report");
        std::process::exit(1);
    }
    let path = report.write_json("BENCH_infer.json").expect("write report");
    eprintln!("report written to {}", path.display());
}
