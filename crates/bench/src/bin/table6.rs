//! Table VI — influence of the point-wise feed-forward network (RQ3):
//! VSAN vs VSAN-all-feed / VSAN-infer-feed / VSAN-gene-feed.

use vsan_bench::{timed, Bench, ExpArgs};
use vsan_core::VsanConfig;
use vsan_eval::RunAggregate;

fn main() {
    let args = ExpArgs::from_env(1);
    println!(
        "== Table VI: point-wise FFN ablations (scale {:?}, {} seed(s)) ==",
        args.scale,
        args.seeds.len()
    );
    println!(
        "{:<12} {:<16} {:>8} {:>8} {:>8} {:>8}",
        "Dataset", "Method", "NDCG@10", "Rec@10", "NDCG@20", "Rec@20"
    );
    type Variant<'a> = (&'a str, Box<dyn Fn(VsanConfig) -> VsanConfig>);
    for name in args.datasets.names() {
        let variants: Vec<Variant> = vec![
            ("VSAN-all-feed", Box::new(VsanConfig::all_feed)),
            ("VSAN-infer-feed", Box::new(VsanConfig::infer_feed)),
            ("VSAN-gene-feed", Box::new(VsanConfig::gene_feed)),
            ("VSAN", Box::new(|c| c)),
        ];
        for (variant, transform) in &variants {
            let mut agg = RunAggregate::new();
            for &seed in &args.seeds {
                let bench = Bench::prepare(name, args.scale, seed);
                let mut cfg = transform(args.scale.vsan_config(name).with_seed(seed));
                cfg.base.epochs = 2 * args.scale.grid_epochs();
                debug_assert_eq!(cfg.variant_name(), *variant);
                let model = timed(&format!("{name}/{variant}"), || bench.train_vsan(&cfg));
                agg.add(&bench.evaluate(&model));
            }
            println!(
                "{:<12} {:<16} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                name,
                variant,
                agg.mean_pct("NDCG", 10).unwrap_or(f64::NAN),
                agg.mean_pct("Recall", 10).unwrap_or(f64::NAN),
                agg.mean_pct("NDCG", 20).unwrap_or(f64::NAN),
                agg.mean_pct("Recall", 20).unwrap_or(f64::NAN),
            );
        }
    }
}
