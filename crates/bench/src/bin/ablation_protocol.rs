//! Extension ablation: strong vs weak generalization (§V-A's protocol
//! argument, quantified).
//!
//! The paper chooses strong generalization because "the same user can
//! exist during both training and evaluation" under weak generalization,
//! inflating scores. This binary trains the same VSAN under both splits
//! and reports the inflation directly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_bench::{timed, Bench, ExpArgs};
use vsan_core::Vsan;
use vsan_data::split::Split;
use vsan_data::Dataset;
use vsan_eval::{evaluate_held_out, EvalConfig};

fn main() {
    let args = ExpArgs::from_env(1);
    println!(
        "== Ablation: strong vs weak generalization (extension; scale {:?}) ==",
        args.scale
    );
    println!(
        "{:<12} {:<8} {:>9} {:>9} {:>9}",
        "Dataset", "split", "NDCG@10", "Rec@10", "Rec@20"
    );
    for name in args.datasets.names() {
        let seed = args.seeds[0];
        let bench = Bench::prepare(name, args.scale, seed);
        let mut cfg = args.scale.vsan_config(name).with_seed(seed);
        cfg.base.epochs = 2 * args.scale.grid_epochs();

        // Strong generalization: the harness default.
        let strong = timed("strong", || bench.train_vsan(&cfg));
        let strong_r = bench.evaluate(&strong);

        // Weak generalization: every user trains (held-out users truncated
        // to their fold-in prefix), same evaluation views.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let weak_split = Split::weak_generalization(&bench.ds, bench.test_views.len(), 5, &mut rng);
        let truncated = Split::weak_training_views(&bench.ds, &weak_split, 0.8);
        let weak_ds = Dataset {
            name: bench.ds.name.clone(),
            num_items: bench.ds.num_items,
            sequences: truncated,
        };
        let weak_views = Split::held_out_views(&bench.ds, &weak_split.test_users, 0.8);
        let weak = timed("weak", || {
            Vsan::train(&weak_ds, &weak_split.train_users, &cfg).expect("vsan weak")
        });
        let weak_r = evaluate_held_out(&weak, &weak_views, &EvalConfig::default());

        for (label, r) in [("strong", &strong_r), ("weak", &weak_r)] {
            println!(
                "{:<12} {:<8} {:>9.3} {:>9.3} {:>9.3}",
                name,
                label,
                r.get_pct("NDCG", 10).unwrap_or(f64::NAN),
                r.get_pct("Recall", 10).unwrap_or(f64::NAN),
                r.get_pct("Recall", 20).unwrap_or(f64::NAN)
            );
        }
        let s = strong_r.get("NDCG", 10).unwrap_or(0.0);
        let w = weak_r.get("NDCG", 10).unwrap_or(0.0);
        if s > 0.0 {
            println!(
                "{name}: weak/strong NDCG@10 ratio = {:.2} (paper's §V-A caution: >1 means weak inflates)",
                w / s
            );
        }
    }
}
