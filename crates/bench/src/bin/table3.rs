//! Table III — overall performance of all nine models on both simulated
//! datasets: NDCG / Recall / Precision at 10 and 20 (in percent), averaged
//! over seeds, with the improvement row of VSAN over the strongest
//! baseline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_bench::{timed, Bench, ExpArgs};
use vsan_core::Vsan;
use vsan_eval::report::{table3_header, table3_row};
use vsan_eval::{MetricsReport, RunAggregate};
use vsan_models::bpr::BprConfig;
use vsan_models::caser::CaserConfig;
use vsan_models::fpmc::FpmcConfig;
use vsan_models::svae::SvaeConfig;
use vsan_models::transrec::TransRecConfig;
use vsan_models::{Bpr, Caser, Fpmc, Gru4Rec, Pop, SasRec, Svae, TransRec};

const MODELS: &[&str] =
    &["POP", "BPR", "FPMC", "TransRec", "GRU4Rec", "Caser", "SVAE", "SASRec", "VSAN"];

fn main() {
    let args = ExpArgs::from_env(3);
    println!("== Table III: overall comparison (scale {:?}, {} seed(s)) ==", args.scale, args.seeds.len());
    for name in args.datasets.names() {
        run_dataset(name, &args);
    }
}

fn run_dataset(name: &str, args: &ExpArgs) {
    println!("\n--- dataset: {name} ---");
    let mut aggregates: Vec<RunAggregate> = MODELS.iter().map(|_| RunAggregate::new()).collect();

    for &seed in &args.seeds {
        let bench = Bench::prepare(name, args.scale, seed);
        eprintln!(
            "seed {seed}: {} users / {} items / {} train users",
            bench.ds.num_users(),
            bench.ds.num_items,
            bench.split.train_users.len()
        );
        let reports = run_all_models(&bench, args, seed);
        for (agg, report) in aggregates.iter_mut().zip(&reports) {
            agg.add(report);
        }
    }

    println!("{}", table3_header());
    let mut rows: Vec<MetricsReport> = Vec::new();
    for (model, agg) in MODELS.iter().zip(&aggregates) {
        let mean = agg.to_report();
        println!("{}", table3_row(model, &mean));
        rows.push(mean);
    }

    // Improvement row: VSAN vs the best baseline per metric (paper's last row).
    let vsan = rows.last().expect("vsan row");
    print!("{:<10}", "Improv.%");
    for (metric, n) in
        [("NDCG", 10), ("NDCG", 20), ("Recall", 10), ("Recall", 20), ("Precision", 10), ("Precision", 20)]
    {
        let best_baseline = rows[..rows.len() - 1]
            .iter()
            .filter_map(|r| r.get(metric, n))
            .fold(f64::MIN, f64::max);
        let v = vsan.get(metric, n).unwrap_or(0.0);
        let improv = if best_baseline > 0.0 { (v / best_baseline - 1.0) * 100.0 } else { 0.0 };
        let w = if metric == "Precision" { 9 } else { 7 };
        print!(" {improv:>w$.2}");
    }
    println!();
}

fn run_all_models(bench: &Bench, args: &ExpArgs, seed: u64) -> Vec<MetricsReport> {
    let name = bench.name().to_string();
    let ncfg = args.scale.neural_config(&name).with_seed(seed);
    let vcfg = args.scale.vsan_config(&name).with_seed(seed);
    let classic_epochs = match args.scale {
        vsan_bench::Scale::Smoke => 5,
        vsan_bench::Scale::Repro => 25,
        vsan_bench::Scale::Paper => 60,
    };
    let ds = &bench.ds;
    let train = &bench.split.train_users;
    let mut rng = StdRng::seed_from_u64(seed);

    let mut out = Vec::with_capacity(MODELS.len());

    let pop = timed("POP", || Pop::train(ds, train));
    out.push(bench.evaluate(&pop));

    let bpr_cfg = BprConfig { dim: ncfg.dim, epochs: classic_epochs, lr: 0.05, reg: 0.01, seed };
    let bpr = timed("BPR", || Bpr::train(ds, train, &bpr_cfg, &mut rng));
    out.push(bench.evaluate(&bpr));

    let fpmc_cfg = FpmcConfig { dim: ncfg.dim, epochs: classic_epochs, lr: 0.05, reg: 0.01, seed };
    let fpmc = timed("FPMC", || Fpmc::train(ds, train, &fpmc_cfg, &mut rng));
    out.push(bench.evaluate(&fpmc));

    let tr_cfg = TransRecConfig { dim: ncfg.dim, epochs: classic_epochs, lr: 0.05, reg: 0.005, seed };
    let transrec = timed("TransRec", || TransRec::train(ds, train, &tr_cfg, &mut rng));
    out.push(bench.evaluate(&transrec));

    let gru = timed("GRU4Rec", || Gru4Rec::train(ds, train, &ncfg).expect("gru4rec"));
    out.push(bench.evaluate(&gru));

    let caser = timed("Caser", || {
        Caser::train(ds, train, &ncfg, &CaserConfig::default()).expect("caser")
    });
    out.push(bench.evaluate(&caser));

    let svae = timed("SVAE", || {
        Svae::train(ds, train, &ncfg, &SvaeConfig::for_dim(ncfg.dim)).expect("svae")
    });
    out.push(bench.evaluate(&svae));

    let sasrec = timed("SASRec", || SasRec::train(ds, train, &ncfg).expect("sasrec"));
    out.push(bench.evaluate(&sasrec));

    let vsan = timed("VSAN", || Vsan::train(ds, train, &vcfg).expect("vsan"));
    out.push(bench.evaluate(&vsan));

    out
}
