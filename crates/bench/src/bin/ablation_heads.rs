//! Extension ablation (not in the paper): attention head count.
//!
//! The paper's blocks are single-head; this sweep asks whether the
//! Transformer-style multi-head extension (heads split the model width,
//! `W_O` re-mixes) buys anything at the SASRec architecture scale the
//! paper operates at. SASRec's own paper reported single-head was as good
//! — we verify on the simulated datasets.

use vsan_bench::{timed, Bench, ExpArgs};
use vsan_eval::RunAggregate;
use vsan_models::common::{examples_for_users, flatten_batch, position_indices, train_epochs};
use vsan_models::NeuralConfig;
use vsan_nn::{Dropout, Embedding, ParamStore, SelfAttentionBlock};

use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_data::sequence::pad_left;
use vsan_eval::Scorer;

/// A SASRec-style model with a configurable head count.
struct HeadedSasRec {
    store: ParamStore,
    item_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<SelfAttentionBlock>,
    cfg: NeuralConfig,
    vocab: usize,
}

impl HeadedSasRec {
    fn train(
        ds: &vsan_data::Dataset,
        users: &[usize],
        cfg: &NeuralConfig,
        heads: usize,
    ) -> Result<Self, String> {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let item_emb = Embedding::new(&mut store, &mut rng, "item_emb", ds.vocab(), cfg.dim, true);
        let pos_emb = Embedding::new(&mut store, &mut rng, "pos_emb", cfg.max_seq_len, cfg.dim, false);
        let blocks: Vec<SelfAttentionBlock> = (0..2)
            .map(|b| {
                SelfAttentionBlock::new_multi_head(
                    &mut store,
                    &mut rng,
                    &format!("block{b}"),
                    cfg.dim,
                    heads,
                    true,
                )
            })
            .collect();
        let examples = examples_for_users(ds, users, cfg.max_seq_len);
        let mut model =
            HeadedSasRec { store, item_emb, pos_emb, blocks, cfg: cfg.clone(), vocab: ds.vocab() };
        if examples.is_empty() {
            return Ok(model);
        }
        let n = cfg.max_seq_len;
        let dropout = Dropout::new(cfg.dropout);
        let item_emb = model.item_emb.clone();
        let pos_emb = model.pos_emb.clone();
        let blocks = model.blocks.clone();
        train_epochs(
            cfg,
            &mut model.store,
            &examples,
            |g, store, batch, rng, _| {
                let (inputs, targets) = flatten_batch(batch);
                let b = batch.len();
                let table = store.var(g, item_emb.table);
                let items = g.gather_rows(table, &inputs)?;
                let pos = pos_emb.lookup(g, store, &position_indices(b, n))?;
                let mut h = g.add(items, pos)?;
                h = dropout.forward(g, rng, h, true)?;
                for block in &blocks {
                    h = block.forward(g, store, h, b, n, &dropout, rng, true)?;
                }
                let logits = g.matmul_a_bt(h, table)?;
                let loss = g.ce_one_hot(logits, &targets)?;
                let ce = g.value(loss).data()[0];
                Ok((loss, vsan_nn::ShardStats::ce_only(ce)))
            },
            |store| item_emb.zero_padding(store),
        )?;
        Ok(model)
    }
}

impl Scorer for HeadedSasRec {
    fn score_items(&self, fold_in: &[u32]) -> Vec<f32> {
        let n = self.cfg.max_seq_len;
        let input = pad_left(fold_in, n);
        let mut g = vsan_autograd::Graph::with_threads(self.cfg.threads);
        let mut rng = StdRng::seed_from_u64(0);
        let dropout = Dropout::new(0.0);
        let idx: Vec<usize> = input.iter().map(|&i| i as usize).collect();
        let mut run = || -> vsan_autograd::Result<Vec<f32>> {
            let table = self.store.var(&mut g, self.item_emb.table);
            let items = g.gather_rows(table, &idx)?;
            let pos = self.pos_emb.lookup(&mut g, &self.store, &position_indices(1, n))?;
            let mut h = g.add(items, pos)?;
            for block in &self.blocks {
                h = block.forward(&mut g, &self.store, h, 1, n, &dropout, &mut rng, false)?;
            }
            let last = g.gather_rows(h, &[n - 1])?;
            let logits = g.matmul_a_bt(last, table)?;
            Ok(g.value(logits).data().to_vec())
        };
        run().unwrap_or_else(|_| vec![0.0; self.vocab])
    }
    fn vocab(&self) -> usize {
        self.vocab
    }
}

fn main() {
    let args = ExpArgs::from_env(1);
    println!(
        "== Ablation: attention heads (extension; scale {:?}, {} seed(s)) ==",
        args.scale,
        args.seeds.len()
    );
    for name in args.datasets.names() {
        println!("\n--- dataset: {name} ---");
        println!("{:>6} {:>10} {:>10}", "heads", "NDCG@10", "Rec@20");
        for heads in [1usize, 2, 4] {
            let mut agg = RunAggregate::new();
            for &seed in &args.seeds {
                let bench = Bench::prepare(name, args.scale, seed);
                let ncfg = args
                    .scale
                    .neural_config(name)
                    .with_seed(seed)
                    .with_epochs(args.scale.grid_epochs());
                let model = timed(&format!("heads={heads}"), || {
                    HeadedSasRec::train(&bench.ds, &bench.split.train_users, &ncfg, heads)
                        .expect("train")
                });
                agg.add(&bench.evaluate(&model));
            }
            println!(
                "{heads:>6} {:>10.3} {:>10.3}",
                agg.mean_pct("NDCG", 10).unwrap_or(f64::NAN),
                agg.mean_pct("Recall", 20).unwrap_or(f64::NAN)
            );
        }
    }
}
