//! Inference fast-path benchmark: the graph-free forward
//! (`vsan_core::infer`) against the autograd graph path on identical
//! models, plus kernel-level micro-measurements of the fused pieces.
//!
//! Three layers of measurement, all on paper-adjacent serve shapes
//! (d ≈ 100, n = 50 / 200, catalogues ≈ 12k / 3.4k items):
//!
//! 1. **Fused causal attention** — one pass per query row
//!    (QKᵀ·scale → masked softmax → ·V) vs the four composed tensor
//!    ops the graph path dispatches.
//! 2. **Register-blocked matmul** — the branch-free i/j-blocked
//!    `matmul_into` vs the legacy `aik == 0` skip kernel on dense
//!    activations (the dense side never benefits from the branch).
//! 3. **End to end** — `score_items_batch` through the reusable
//!    workspace vs the graph oracle, same fold-ins, same weights.
//! 4. **Steady-state sessions** — a warm Zipf-skewed event stream
//!    through `vsan_session::SessionRuntime::append_event` (one event
//!    per request, histories ≥ 50) vs a full `try_score_items_batch`
//!    recompute of every grown history. The `events_per_second` numbers
//!    back the serving claim: an incremental append must be ≥ 5x
//!    cheaper per event than recomputing the window.
//!
//! Every end-to-end case and every session event first checks the two
//! paths produce **bit-identical** logits; the report refuses to claim
//! a speedup for wrong answers, and `scripts/verify.sh` fails if the
//! committed `results/BENCH_infer.json` lacks `"bitwise_match": true`.

use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vsan_core::{Vsan, VsanConfig, Workspace};
use vsan_data::synthetic::{generate_stream, SessionStreamConfig};
use vsan_session::{SessionConfig, SessionOutcome, SessionRuntime};
use vsan_tensor::ops::matmul::{matmul_into, matmul_into_skip_zeros};
use vsan_tensor::ops::{causal_attention_into, matmul, matmul_a_bt, scale, softmax_rows_masked};
use vsan_tensor::Tensor;

use crate::serve_bench::results_dir;

/// One model/workload shape to measure.
#[derive(Debug, Clone)]
pub struct InferShapeCase {
    /// Label in the report (e.g. `"beauty-like"`).
    pub name: String,
    /// Model width `d`.
    pub dim: usize,
    /// Attention window `n`.
    pub max_seq_len: usize,
    /// Catalogue size (vocab = `num_items + 1` with the padding row).
    pub num_items: usize,
    /// Fold-ins per forward — the serve engine's typical batch.
    pub batch: usize,
    /// Worker threads for large matmuls (both paths share the setting).
    pub threads: usize,
}

/// One steady-state session workload: a model shape plus a generated
/// Zipf-skewed append stream from `vsan-data`.
#[derive(Debug, Clone)]
pub struct SessionBenchCase {
    /// Label in the report (e.g. `"steady-state"`).
    pub name: String,
    /// Model width `d`.
    pub dim: usize,
    /// Attention window `n` — deliberately much longer than the
    /// histories so the append pass has padding to skip; this is the
    /// regime the incremental path exists for.
    pub max_seq_len: usize,
    /// Worker threads (both paths share the setting).
    pub threads: usize,
    /// The event stream (users, Zipf exponent, histories, seed).
    pub stream: SessionStreamConfig,
}

/// Workload knobs for [`run_infer_bench`].
#[derive(Debug, Clone)]
pub struct InferBenchConfig {
    /// Shapes to measure.
    pub cases: Vec<InferShapeCase>,
    /// Steady-state session streams to measure.
    pub sessions: Vec<SessionBenchCase>,
    /// Timed repetitions per end-to-end path (after one warmup).
    pub e2e_iters: usize,
    /// Timed repetitions per kernel measurement.
    pub kernel_iters: usize,
    /// RNG seed for weights (via the model config) and fold-ins.
    pub seed: u64,
}

impl Default for InferBenchConfig {
    fn default() -> Self {
        InferBenchConfig {
            cases: vec![
                // The serve engine's own model shape (ServeBenchConfig
                // defaults: d = 96, n = 48, |I| = 1000) at the batch
                // sizes the micro-batcher actually dispatches — these
                // are the shapes the ≥2x end-to-end gate is about.
                InferShapeCase {
                    name: "serve-b1".into(),
                    dim: 96,
                    max_seq_len: 48,
                    num_items: 1000,
                    batch: 1,
                    threads: 1,
                },
                InferShapeCase {
                    name: "serve-b8".into(),
                    dim: 96,
                    max_seq_len: 48,
                    num_items: 1000,
                    batch: 8,
                    threads: 1,
                },
                InferShapeCase {
                    name: "serve-b32".into(),
                    dim: 96,
                    max_seq_len: 48,
                    num_items: 1000,
                    batch: 32,
                    threads: 1,
                },
                // Amazon-Beauty-shaped serving: short windows, large
                // catalogue (paper: n = 50, |I| ≈ 12k, d up to 100).
                InferShapeCase {
                    name: "beauty-like".into(),
                    dim: 100,
                    max_seq_len: 50,
                    num_items: 12_000,
                    batch: 32,
                    threads: 1,
                },
                // ML-1M-shaped serving: long windows, smaller catalogue
                // (paper: n = 200, |I| ≈ 3.4k).
                InferShapeCase {
                    name: "ml1m-like".into(),
                    dim: 100,
                    max_seq_len: 200,
                    num_items: 3_400,
                    batch: 16,
                    threads: 1,
                },
            ],
            sessions: vec![SessionBenchCase {
                // The ISSUE's acceptance shape: warm sessions with
                // histories ≥ 50 inside a long window, one append per
                // request — the per-event append touches one slot row
                // per block while the recompute pays the whole window.
                name: "steady-state".into(),
                dim: 64,
                max_seq_len: 768,
                threads: 1,
                stream: SessionStreamConfig::steady_state(),
            }],
            e2e_iters: 3,
            kernel_iters: 20,
            seed: 42,
        }
    }
}

impl InferBenchConfig {
    /// Sub-second configuration for the test suite.
    pub fn smoke() -> Self {
        InferBenchConfig {
            cases: vec![InferShapeCase {
                name: "smoke".into(),
                dim: 16,
                max_seq_len: 8,
                num_items: 50,
                batch: 4,
                threads: 1,
            }],
            sessions: vec![SessionBenchCase {
                name: "smoke-session".into(),
                dim: 16,
                max_seq_len: 32,
                threads: 1,
                stream: SessionStreamConfig {
                    num_users: 2,
                    num_items: 20,
                    zipf_exponent: 1.0,
                    events: 8,
                    min_history: 3,
                    max_history: 5,
                    seed: 42,
                },
            }],
            e2e_iters: 2,
            kernel_iters: 3,
            seed: 42,
        }
    }
}

/// One kernel-level measurement.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Which kernel (`"causal_attention"`, `"matmul_dense_proj"`, …).
    pub kernel: String,
    /// Shape label, human-readable.
    pub shape: String,
    /// Mean microseconds per call, composed/legacy baseline.
    pub baseline_us: f64,
    /// Mean microseconds per call, fused/blocked kernel.
    pub fused_us: f64,
    /// `baseline_us / fused_us`.
    pub speedup: f64,
}

/// One end-to-end measurement.
#[derive(Debug, Clone)]
pub struct E2eResult {
    /// Case label.
    pub name: String,
    /// Model width.
    pub dim: usize,
    /// Attention window.
    pub max_seq_len: usize,
    /// Catalogue size.
    pub num_items: usize,
    /// Fold-ins per forward.
    pub batch: usize,
    /// Mean seconds per graph-path `score_items_batch`.
    pub graph_seconds: f64,
    /// Mean seconds per fast-path `score_items_batch`.
    pub fast_seconds: f64,
    /// `graph_seconds / fast_seconds`.
    pub speedup: f64,
    /// Fold-ins scored per second, graph path.
    pub graph_rps: f64,
    /// Fold-ins scored per second, fast path.
    pub fast_rps: f64,
    /// Whether every logit of every fold-in matched bit for bit.
    pub bitwise_match: bool,
}

/// One steady-state session measurement.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Case label.
    pub name: String,
    /// Model width.
    pub dim: usize,
    /// Attention window.
    pub max_seq_len: usize,
    /// Catalogue size.
    pub num_items: usize,
    /// Total events replayed through the runtime.
    pub events: usize,
    /// Warm events (classified `SessionOutcome::Append`) — only these
    /// enter the steady-state means; cold starts are start-up cost.
    pub warm_events: usize,
    /// Shortest grown history among the timed warm events.
    pub min_history: usize,
    /// Mean seconds per warm `append_event`.
    pub append_seconds: f64,
    /// Mean seconds per full-window recompute of the same grown
    /// histories.
    pub recompute_seconds: f64,
    /// Warm appends served per second.
    pub events_per_second: f64,
    /// Full recomputes served per second.
    pub recompute_events_per_second: f64,
    /// `recompute_seconds / append_seconds`.
    pub speedup: f64,
    /// Whether every event's append logits matched the recompute bit
    /// for bit (checked on **all** events, warm or not).
    pub bitwise_match: bool,
}

/// Full report of one benchmark run.
#[derive(Debug, Clone)]
pub struct InferBenchReport {
    /// Kernel-level measurements.
    pub kernels: Vec<KernelResult>,
    /// End-to-end measurements.
    pub e2e: Vec<E2eResult>,
    /// Steady-state session measurements.
    pub sessions: Vec<SessionResult>,
    /// `true` iff **every** end-to-end case and session event matched
    /// bit for bit.
    pub bitwise_match: bool,
    /// Smallest end-to-end speedup across cases.
    pub min_e2e_speedup: f64,
    /// Smallest per-event append-vs-recompute speedup across session
    /// cases (`scripts/verify.sh` gates this ≥ 5 for the committed
    /// report).
    pub min_session_speedup: f64,
}

fn random_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
    Tensor::from_vec(data, &[rows, cols]).expect("bench tensor")
}

/// Time `f` over `iters` calls (one untimed warmup), mean microseconds.
fn time_us(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters.max(1) {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e6 / iters.max(1) as f64
}

/// Fused causal attention vs the composed tensor ops at `(n, d)`.
fn bench_attention(rng: &mut StdRng, n: usize, d: usize, iters: usize) -> KernelResult {
    let q = random_tensor(rng, n, d);
    let k = random_tensor(rng, n, d);
    let v = random_tensor(rng, n, d);
    let s = 1.0 / (d as f32).sqrt();

    let baseline_us = time_us(iters, || {
        let scores = matmul_a_bt(&q, &k).expect("scores");
        let scaled = scale(&scores, s);
        let attn = softmax_rows_masked(&scaled).expect("softmax");
        let out = matmul(&attn, &v).expect("attn @ v");
        std::hint::black_box(out);
    });

    let mut scores = vec![0.0f32; n];
    let mut out = vec![0.0f32; n * d];
    let fused_us = time_us(iters, || {
        causal_attention_into(q.data(), k.data(), v.data(), n, d, s, &mut scores, &mut out);
        std::hint::black_box(&out);
    });

    KernelResult {
        kernel: "causal_attention".into(),
        shape: format!("n={n} d={d}"),
        speedup: baseline_us / fused_us.max(1e-9),
        baseline_us,
        fused_us,
    }
}

/// Branch-free blocked `matmul_into` vs the legacy zero-skip kernel on
/// dense activations at `(m, k, n)` — the attention-projection / FFN /
/// prediction shapes where the skip branch only costs.
fn bench_matmul(
    rng: &mut StdRng,
    label: &str,
    m: usize,
    k: usize,
    n: usize,
    iters: usize,
) -> KernelResult {
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
    let mut c = vec![0.0f32; m * n];

    let baseline_us = time_us(iters, || {
        c.fill(0.0);
        matmul_into_skip_zeros(&a, &b, &mut c, m, k, n);
        std::hint::black_box(&c);
    });
    let fused_us = time_us(iters, || {
        c.fill(0.0);
        matmul_into(&a, &b, &mut c, m, k, n);
        std::hint::black_box(&c);
    });

    KernelResult {
        kernel: label.into(),
        shape: format!("m={m} k={k} n={n}"),
        speedup: baseline_us / fused_us.max(1e-9),
        baseline_us,
        fused_us,
    }
}

/// Measure one end-to-end case: same untrained-but-seeded model, same
/// fold-ins, graph oracle vs fast path.
fn bench_e2e(case: &InferShapeCase, e2e_iters: usize, seed: u64) -> E2eResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = VsanConfig::smoke().with_seed(seed).with_threads(case.threads);
    cfg.base.dim = case.dim;
    cfg.base.max_seq_len = case.max_seq_len;
    let model = Vsan::init(case.num_items + 1, &cfg);

    let histories: Vec<Vec<u32>> = (0..case.batch)
        .map(|_| {
            let len = rng.gen_range(2..=case.max_seq_len);
            (0..len).map(|_| rng.gen_range(1..=case.num_items as u32)).collect()
        })
        .collect();
    let refs: Vec<&[u32]> = histories.iter().map(Vec::as_slice).collect();

    // Correctness first: a speedup over different bits is meaningless.
    let fast = model.score_items_batch_fast(&refs).expect("fast path");
    let graph = model.score_items_batch_graph(&refs).expect("graph path");
    let bitwise_match = fast.len() == graph.len()
        && fast.iter().zip(&graph).all(|(f, g)| {
            f.len() == g.len() && f.iter().zip(g).all(|(x, y)| x.to_bits() == y.to_bits())
        });

    let graph_seconds = time_us(e2e_iters, || {
        std::hint::black_box(model.score_items_batch_graph(&refs).expect("graph path"));
    }) / 1e6;
    let mut ws = model.workspace(case.batch);
    let fast_seconds = time_us(e2e_iters, || {
        std::hint::black_box(
            model.try_score_items_batch_with(&refs, &mut ws).expect("fast path"),
        );
    }) / 1e6;

    E2eResult {
        name: case.name.clone(),
        dim: case.dim,
        max_seq_len: case.max_seq_len,
        num_items: case.num_items,
        batch: case.batch,
        speedup: graph_seconds / fast_seconds.max(1e-12),
        graph_rps: case.batch as f64 / graph_seconds.max(1e-12),
        fast_rps: case.batch as f64 / fast_seconds.max(1e-12),
        graph_seconds,
        fast_seconds,
        bitwise_match,
    }
}

/// Measure one steady-state session case: replay the generated event
/// stream through a [`SessionRuntime`] (hints supplied, capacity =
/// users so warm sessions stay warm) and, for **every** event, also run
/// the full-window recompute the append replaces — first as the bitwise
/// oracle, then as the timed baseline. Only warm `Append` events enter
/// the steady-state means.
fn bench_session(case: &SessionBenchCase, seed: u64) -> SessionResult {
    let stream = generate_stream(&case.stream);
    let mut cfg =
        VsanConfig::smoke().with_blocks(2, 1).with_seed(seed).with_threads(case.threads);
    cfg.base.dim = case.dim;
    cfg.base.max_seq_len = case.max_seq_len;
    let model = Vsan::init(case.stream.num_items + 1, &cfg);

    let session_cfg = SessionConfig::new().with_capacity(case.stream.num_users.max(1));
    let runtime = SessionRuntime::new(&model, &session_cfg).expect("pad session state");
    let mut ws = Workspace::new();
    let mut histories = stream.histories.clone();

    let mut bitwise_match = true;
    let mut warm_events = 0usize;
    let mut min_history = usize::MAX;
    let mut append_total = 0.0f64;
    let mut recompute_total = 0.0f64;

    for event in &stream.events {
        let user = event.user as usize;
        let hint = histories[user].clone();

        let t0 = Instant::now();
        let r = runtime
            .append_event(&model, event.user, Some(&hint), event.item, &mut ws, t0)
            .expect("session append");
        let append_dt = t0.elapsed().as_secs_f64();

        histories[user].push(event.item);
        let grown = &histories[user];
        let t1 = Instant::now();
        let full = model
            .try_score_items_batch(&[model.fold_in_window(grown)])
            .expect("full recompute")
            .pop()
            .unwrap_or_default();
        let recompute_dt = t1.elapsed().as_secs_f64();

        bitwise_match &= r.logits.len() == full.len()
            && r.logits.iter().zip(&full).all(|(a, b)| a.to_bits() == b.to_bits());

        if r.outcome == SessionOutcome::Append {
            warm_events += 1;
            min_history = min_history.min(grown.len());
            append_total += append_dt;
            recompute_total += recompute_dt;
        }
    }

    let append_seconds = append_total / warm_events.max(1) as f64;
    let recompute_seconds = recompute_total / warm_events.max(1) as f64;
    SessionResult {
        name: case.name.clone(),
        dim: case.dim,
        max_seq_len: case.max_seq_len,
        num_items: case.stream.num_items,
        events: stream.events.len(),
        warm_events,
        min_history: if min_history == usize::MAX { 0 } else { min_history },
        events_per_second: 1.0 / append_seconds.max(1e-12),
        recompute_events_per_second: 1.0 / recompute_seconds.max(1e-12),
        speedup: recompute_seconds / append_seconds.max(1e-12),
        append_seconds,
        recompute_seconds,
        bitwise_match,
    }
}

/// Run every kernel and end-to-end measurement in `cfg`.
pub fn run_infer_bench(cfg: &InferBenchConfig) -> InferBenchReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut kernels = Vec::new();
    let mut e2e = Vec::new();

    for case in &cfg.cases {
        let (n, d) = (case.max_seq_len, case.dim);
        kernels.push(bench_attention(&mut rng, n, d, cfg.kernel_iters));
        // The dense projection (rows = batch·n) and the prediction head
        // (rows = batch, n = vocab) — the two matmul shapes the fast
        // path actually runs per forward.
        kernels.push(bench_matmul(
            &mut rng,
            "matmul_dense_proj",
            case.batch * n,
            d,
            d,
            cfg.kernel_iters,
        ));
        kernels.push(bench_matmul(
            &mut rng,
            "matmul_prediction",
            case.batch,
            d,
            case.num_items + 1,
            cfg.kernel_iters,
        ));
        e2e.push(bench_e2e(case, cfg.e2e_iters, cfg.seed));
    }
    let sessions: Vec<SessionResult> =
        cfg.sessions.iter().map(|case| bench_session(case, cfg.seed)).collect();

    let bitwise_match =
        e2e.iter().all(|r| r.bitwise_match) && sessions.iter().all(|r| r.bitwise_match);
    let min_e2e_speedup =
        e2e.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min).min(f64::MAX);
    let min_session_speedup =
        sessions.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min).min(f64::MAX);
    InferBenchReport { kernels, e2e, sessions, bitwise_match, min_e2e_speedup, min_session_speedup }
}

impl InferBenchReport {
    /// Serialize as a JSON object (hand-rolled like the other bench
    /// reports; the workspace has no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from(
            "{\n  \"benchmark\": \"graph-free inference fast path vs autograd graph path\",\n",
        );
        out.push_str(&format!("  \"bitwise_match\": {},\n", self.bitwise_match));
        out.push_str(&format!("  \"min_e2e_speedup\": {:.3},\n", self.min_e2e_speedup));
        out.push_str(&format!("  \"min_session_speedup\": {:.3},\n", self.min_session_speedup));
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"baseline_us\": {:.2}, \
                 \"fused_us\": {:.2}, \"speedup\": {:.3}}}{}\n",
                k.kernel,
                k.shape,
                k.baseline_us,
                k.fused_us,
                k.speedup,
                if i + 1 < self.kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"end_to_end\": [\n");
        for (i, r) in self.e2e.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"case\": \"{}\", \"dim\": {}, \"max_seq_len\": {}, \"num_items\": {}, \
                 \"batch\": {}, \"graph_seconds\": {:.6}, \"fast_seconds\": {:.6}, \
                 \"speedup\": {:.3}, \"graph_rps\": {:.1}, \"fast_rps\": {:.1}, \
                 \"bitwise_match\": {}}}{}\n",
                r.name,
                r.dim,
                r.max_seq_len,
                r.num_items,
                r.batch,
                r.graph_seconds,
                r.fast_seconds,
                r.speedup,
                r.graph_rps,
                r.fast_rps,
                r.bitwise_match,
                if i + 1 < self.e2e.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"sessions\": [\n");
        for (i, s) in self.sessions.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"case\": \"{}\", \"dim\": {}, \"max_seq_len\": {}, \"num_items\": {}, \
                 \"events\": {}, \"warm_events\": {}, \"min_history\": {}, \
                 \"append_seconds\": {:.6}, \"recompute_seconds\": {:.6}, \
                 \"events_per_second\": {:.1}, \"recompute_events_per_second\": {:.1}, \
                 \"speedup\": {:.3}, \"bitwise_match\": {}}}{}\n",
                s.name,
                s.dim,
                s.max_seq_len,
                s.num_items,
                s.events,
                s.warm_events,
                s.min_history,
                s.append_seconds,
                s.recompute_seconds,
                s.events_per_second,
                s.recompute_events_per_second,
                s.speedup,
                s.bitwise_match,
                if i + 1 < self.sessions.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON report into the workspace `results/` directory.
    pub fn write_json(&self, file_name: &str) -> std::io::Result<PathBuf> {
        let path = results_dir().join(file_name);
        std::fs::create_dir_all(results_dir())?;
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke invocation: the fast path must match the graph path bit
    /// for bit at the sampled shape, and the report must carry the
    /// fields `scripts/verify.sh` gates on. No speedup floor here — a
    /// loaded CI core makes micro-timings meaningless; the committed
    /// `results/BENCH_infer.json` comes from the `infer_bench` binary.
    #[test]
    fn smoke_run_matches_bitwise_and_serializes() {
        let report = run_infer_bench(&InferBenchConfig::smoke());
        assert!(report.bitwise_match, "fast path must be bit-identical: {report:?}");
        assert_eq!(report.e2e.len(), 1);
        assert_eq!(report.kernels.len(), 3);
        assert_eq!(report.sessions.len(), 1);
        let session = &report.sessions[0];
        assert!(session.bitwise_match, "append must equal recompute: {session:?}");
        assert!(session.warm_events > 0, "the stream must reach steady state: {session:?}");
        assert!(session.min_history >= 3, "warm events grow the seeded histories");
        let json = report.to_json();
        assert!(json.contains("\"bitwise_match\": true"));
        assert!(json.contains("\"min_e2e_speedup\""));
        assert!(json.contains("\"min_session_speedup\""));
        assert!(json.contains("\"events_per_second\""));
        assert!(json.contains("causal_attention"));
        let path = report.write_json("BENCH_infer_smoke.json").expect("write report");
        let written = std::fs::read_to_string(path).unwrap();
        assert!(written.contains("\"end_to_end\""));
        assert!(written.contains("\"sessions\""));
    }
}
