//! # vsan-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§V). Each artifact has a dedicated binary:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table2` | Table II — dataset statistics (simulator calibration) |
//! | `table3` | Table III — overall comparison, 9 models × 2 datasets |
//! | `table4` | Table IV — Recall@20 over the (h₁, h₂) block grid |
//! | `table5` | Table V — latent-variable ablation (VSAN vs VSAN-z) |
//! | `table6` | Table VI — point-wise FFN ablations |
//! | `fig3` | Fig. 3 — next-`k` sweep, VSAN vs SVAE |
//! | `fig4` | Fig. 4 — embedding-dimension sweep, VSAN vs SASRec |
//! | `fig5` | Fig. 5 — dropout sweep |
//! | `fig6` | Fig. 6 — fixed β sweep vs KL annealing |
//! | `serve_bench` | not in the paper: `vsan-serve` engine throughput vs a sequential loop |
//! | `infer_bench` | not in the paper: graph-free fast path vs graph path (`results/BENCH_infer.json`) |
//! | `retrieval_bench` | not in the paper: clustered MIPS vs exact oracle at N ∈ {12k, 100k, 1M} (`results/BENCH_retrieval.json`) |
//!
//! Every binary accepts `--scale smoke|repro|paper` (default `repro`),
//! `--seeds N` (default 1 for grids, 3 for Table III), and `--dataset
//! beauty|ml1m|both`. Criterion micro-benches for the §IV-F complexity
//! claims live in `benches/`.

pub mod infer_bench;
pub mod retrieval_bench;
pub mod serve_bench;
pub mod train_bench;

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_core::{Vsan, VsanConfig};
use vsan_data::preprocess::Pipeline;
use vsan_data::split::Split;
use vsan_data::synthetic;
use vsan_data::{Dataset, HeldOutUser};
use vsan_eval::{evaluate_held_out, EvalConfig, MetricsReport, Scorer};
use vsan_models::NeuralConfig;

/// Experiment scale: how big the simulated datasets and training runs are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long sanity runs (CI).
    Smoke,
    /// The default: minutes-long runs that preserve the paper's *shape*
    /// (who wins, rough factors) at CPU-tractable sizes.
    Repro,
    /// Paper-sized datasets and budgets — hours per model on CPU.
    Paper,
}

impl Scale {
    /// Parse a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "repro" => Some(Scale::Repro),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Simulator scale factor for this run size.
    pub fn sim_scale(self) -> f64 {
        match self {
            Scale::Smoke => 0.012,
            Scale::Repro => 0.08,
            Scale::Paper => 1.0,
        }
    }

    /// Held-out users per split (paper: 1 200 Beauty / 750 ML-1M).
    pub fn held_out(self, beauty_like: bool) -> usize {
        match self {
            Scale::Smoke => 20,
            Scale::Repro => if beauty_like { 120 } else { 75 },
            Scale::Paper => if beauty_like { 1200 } else { 750 },
        }
    }

    /// Reduced training budget for hyper-parameter *grids* (Table IV's
    /// 16 cells, the Fig. 3–6 sweeps): full repro budgets on every grid
    /// point would take hours on one core, and relative orderings inside
    /// a grid stabilize much earlier than absolute metrics.
    pub fn grid_epochs(self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Repro => 10,
            Scale::Paper => 100,
        }
    }

    /// Neural config preset for this scale and dataset.
    pub fn neural_config(self, dataset: &str) -> NeuralConfig {
        match self {
            Scale::Smoke => {
                let mut c = NeuralConfig::smoke();
                // keep window meaningful even at smoke scale
                c.max_seq_len = 12;
                c.epochs = 4;
                c
            }
            Scale::Repro => NeuralConfig::repro(dataset),
            Scale::Paper => NeuralConfig::paper(dataset),
        }
    }

    /// VSAN config preset for this scale and dataset.
    pub fn vsan_config(self, dataset: &str) -> VsanConfig {
        match self {
            Scale::Smoke => {
                let mut c = VsanConfig::smoke();
                c.base = self.neural_config(dataset);
                c
            }
            Scale::Repro => VsanConfig::repro(dataset),
            Scale::Paper => VsanConfig::paper(dataset),
        }
    }
}

/// Which simulated dataset(s) an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetChoice {
    /// Amazon-Beauty-like simulation.
    Beauty,
    /// MovieLens-1M-like simulation.
    Ml1m,
    /// Both, in paper order.
    Both,
}

impl DatasetChoice {
    /// Parse a CLI string.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "beauty" => Some(Self::Beauty),
            "ml1m" | "ml-1m" => Some(Self::Ml1m),
            "both" => Some(Self::Both),
            _ => None,
        }
    }

    /// The dataset names selected.
    pub fn names(self) -> Vec<&'static str> {
        match self {
            Self::Beauty => vec!["beauty"],
            Self::Ml1m => vec!["ml1m"],
            Self::Both => vec!["beauty", "ml1m"],
        }
    }
}

/// Common CLI arguments shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Run size.
    pub scale: Scale,
    /// Random seeds (runs are averaged, as the paper averages 5 runs).
    pub seeds: Vec<u64>,
    /// Dataset selection.
    pub datasets: DatasetChoice,
}

impl ExpArgs {
    /// Parse `--scale`, `--seeds`, `--dataset` from `std::env::args`,
    /// with the given default seed count.
    pub fn from_env(default_seeds: usize) -> ExpArgs {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = Scale::Repro;
        let mut seeds = default_seeds;
        let mut datasets = DatasetChoice::Both;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    scale = Scale::parse(&args[i + 1]).unwrap_or_else(|| {
                        eprintln!("unknown scale {:?}; using repro", args[i + 1]);
                        Scale::Repro
                    });
                    i += 2;
                }
                "--seeds" if i + 1 < args.len() => {
                    seeds = args[i + 1].parse().unwrap_or(default_seeds);
                    i += 2;
                }
                "--dataset" if i + 1 < args.len() => {
                    datasets = DatasetChoice::parse(&args[i + 1]).unwrap_or(DatasetChoice::Both);
                    i += 2;
                }
                other => {
                    eprintln!("ignoring unknown argument {other:?}");
                    i += 1;
                }
            }
        }
        ExpArgs { scale, seeds: (0..seeds as u64).map(|s| 42 + s).collect(), datasets }
    }
}

/// A prepared experiment environment: processed dataset + split + held-out
/// evaluation views.
pub struct Bench {
    /// Processed dataset.
    pub ds: Dataset,
    /// Strong-generalization user split.
    pub split: Split,
    /// Test users' fold-in/target views (80/20).
    pub test_views: Vec<HeldOutUser>,
    /// Validation users' views.
    pub val_views: Vec<HeldOutUser>,
}

impl Bench {
    /// Build a simulated dataset, preprocess it with the paper's pipeline,
    /// and split it under strong generalization.
    pub fn prepare(dataset: &str, scale: Scale, seed: u64) -> Bench {
        let beauty_like = dataset.contains("beauty");
        let cfg = if beauty_like {
            synthetic::beauty(scale.sim_scale())
        } else {
            synthetic::ml1m(scale.sim_scale())
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let raw = synthetic::generate(&cfg, &mut rng);
        let ds = Pipeline::default().run(&raw);
        let held_out = scale.held_out(beauty_like);
        let split = Split::strong_generalization(&ds, held_out, 5, &mut rng);
        let test_views = Split::held_out_views(&ds, &split.test_users, 0.8);
        let val_views = Split::held_out_views(&ds, &split.val_users, 0.8);
        Bench { ds, split, test_views, val_views }
    }

    /// Display name of the dataset.
    pub fn name(&self) -> &str {
        &self.ds.name
    }

    /// Evaluate a scorer on the test users at the paper's cutoffs.
    pub fn evaluate(&self, scorer: &dyn Scorer) -> MetricsReport {
        evaluate_held_out(scorer, &self.test_views, &EvalConfig::default())
    }

    /// Evaluate on the validation users (hyper-parameter grids).
    pub fn evaluate_val(&self, scorer: &dyn Scorer) -> MetricsReport {
        evaluate_held_out(scorer, &self.val_views, &EvalConfig::default())
    }

    /// Train a VSAN with a config derived from this bench's scale.
    pub fn train_vsan(&self, cfg: &VsanConfig) -> Vsan {
        Vsan::train(&self.ds, &self.split.train_users, cfg)
            .expect("VSAN training failed (non-finite loss)")
    }
}

/// Run a labelled closure, printing wall-clock time — experiment logs
/// should show where the budget goes.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("  [{label}: {:.1}s]", start.elapsed().as_secs_f32());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("REPRO"), Some(Scale::Repro));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
        assert!(Scale::Smoke.sim_scale() < Scale::Repro.sim_scale());
        assert!(Scale::Repro.sim_scale() < Scale::Paper.sim_scale());
    }

    #[test]
    fn dataset_choice_parsing() {
        assert_eq!(DatasetChoice::parse("beauty"), Some(DatasetChoice::Beauty));
        assert_eq!(DatasetChoice::parse("ML-1M"), Some(DatasetChoice::Ml1m));
        assert_eq!(DatasetChoice::parse("both").unwrap().names().len(), 2);
    }

    #[test]
    fn smoke_bench_prepares_consistent_views() {
        let bench = Bench::prepare("beauty", Scale::Smoke, 1);
        assert!(bench.ds.num_users() > 0);
        assert!(!bench.test_views.is_empty());
        assert_eq!(bench.test_views.len(), bench.split.test_users.len());
        for v in &bench.test_views {
            assert!(!v.fold_in.is_empty());
            assert!(!v.targets.is_empty());
        }
        bench.ds.check_invariants().unwrap();
    }

    #[test]
    fn smoke_bench_end_to_end_pop() {
        let bench = Bench::prepare("ml1m", Scale::Smoke, 2);
        let pop = vsan_models::Pop::train(&bench.ds, &bench.split.train_users);
        let report = bench.evaluate(&pop);
        // POP should do *something* but not be perfect.
        let recall = report.get("Recall", 20).unwrap();
        assert!((0.0..1.0).contains(&recall), "POP Recall@20 {recall}");
        assert!(report.users() > 0);
    }
}
