//! Kernel micro-benchmarks backing the design choices in DESIGN.md §5
//! and §10: parallel vs serial matmul, fused vs composed softmax
//! cross-entropy, fused causal-mask softmax vs additive-mask softmax,
//! tape overhead vs raw kernels, the fast path's fused attention vs the
//! tape's composed ops, and the zero-skip branch cost on dense vs
//! embedding-sparse operands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_autograd::Graph;
use vsan_tensor::{init, ops, parallel, Tensor};

fn bench_matmul_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_parallel");
    let mut rng = StdRng::seed_from_u64(1);
    // The prediction-layer shape: (batch·seq, d) × (d, items).
    let a = init::randn(&mut rng, &[512, 64], 0.0, 0.5);
    let b = init::randn(&mut rng, &[64, 2048], 0.0, 0.5);
    group.bench_function("serial", |bench| {
        bench.iter(|| ops::matmul(&a, &b).unwrap());
    });
    for threads in [2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bench, &t| {
            bench.iter(|| parallel::matmul_parallel(&a, &b, t).unwrap());
        });
    }
    group.finish();
}

fn bench_fused_ce(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_ce");
    let mut rng = StdRng::seed_from_u64(2);
    let logits = init::randn(&mut rng, &[256, 2048], 0.0, 1.0);
    let targets: Vec<usize> = (0..256).map(|i| (i * 13) % 2048).collect();

    group.bench_function("fused", |bench| {
        bench.iter(|| {
            let mut g = Graph::with_threads(1);
            let l = g.param(logits.clone(), 0);
            let loss = g.ce_one_hot(l, &targets).unwrap();
            g.backward(loss).unwrap()
        });
    });
    group.bench_function("composed_softmax_then_mask", |bench| {
        // The unfused alternative: full softmax on the tape, a one-hot mask
        // multiply, and a reduction — same gradient signal, ~2-3x the
        // tensor traffic plus the generic softmax backward.
        bench.iter(|| {
            let mut g = Graph::with_threads(1);
            let l = g.param(logits.clone(), 0);
            let sm = g.softmax_rows(l).unwrap();
            let mut mask = Tensor::zeros(&[256, 2048]);
            for (r, &t) in targets.iter().enumerate() {
                mask.set2(r, t, 1.0);
            }
            let m = g.constant(mask);
            let picked = g.mul(sm, m).unwrap();
            let s = g.sum_all(picked);
            g.backward(s).unwrap()
        });
    });
    group.finish();
}

fn bench_causal_mask(c: &mut Criterion) {
    let mut group = c.benchmark_group("causal_mask");
    let mut rng = StdRng::seed_from_u64(3);
    let scores = init::randn(&mut rng, &[200, 200], 0.0, 1.0);
    group.bench_function("fused_prefix_softmax", |bench| {
        bench.iter(|| ops::softmax_rows_masked(&scores).unwrap());
    });
    group.bench_function("additive_neg_inf_mask", |bench| {
        bench.iter(|| {
            // The textbook alternative: add −1e9 above the diagonal, then a
            // full-row softmax. Touches the whole matrix twice.
            let mut masked = scores.clone();
            for i in 0..200 {
                for j in (i + 1)..200 {
                    masked.set2(i, j, -1e9);
                }
            }
            ops::softmax_rows(&masked).unwrap()
        });
    });
    group.finish();
}

fn bench_tape_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("tape_overhead");
    let mut rng = StdRng::seed_from_u64(4);
    let a = init::randn(&mut rng, &[128, 64], 0.0, 0.5);
    let b = init::randn(&mut rng, &[64, 64], 0.0, 0.5);
    group.bench_function("raw_kernels", |bench| {
        bench.iter(|| {
            let c1 = ops::matmul(&a, &b).unwrap();
            let c2 = ops::elementwise::relu(&c1);
            ops::sum_all(&c2)
        });
    });
    group.bench_function("tape_forward_only", |bench| {
        bench.iter(|| {
            let mut g = Graph::with_threads(1);
            let av = g.constant(a.clone());
            let bv = g.constant(b.clone());
            let c1 = g.matmul(av, bv).unwrap();
            let c2 = g.relu(c1);
            let s = g.sum_all(c2);
            g.value(s).data()[0]
        });
    });
    group.bench_function("tape_with_backward", |bench| {
        bench.iter(|| {
            let mut g = Graph::with_threads(1);
            let av = g.param(a.clone(), 0);
            let bv = g.param(b.clone(), 1);
            let c1 = g.matmul(av, bv).unwrap();
            let c2 = g.relu(c1);
            let s = g.sum_all(c2);
            g.backward(s).unwrap()
        });
    });
    group.finish();
}

fn bench_fused_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_attention");
    let mut rng = StdRng::seed_from_u64(5);
    // Paper shapes: Beauty n=50, ML-1M n=200, both at d=100 (§V).
    for (n, d) in [(50usize, 100usize), (200, 100)] {
        let q = init::randn(&mut rng, &[n, d], 0.0, 0.5);
        let k = init::randn(&mut rng, &[n, d], 0.0, 0.5);
        let v = init::randn(&mut rng, &[n, d], 0.0, 0.5);
        let scale = 1.0 / (d as f32).sqrt();
        let id = format!("n{n}_d{d}");
        group.bench_with_input(BenchmarkId::new("composed_ops", &id), &(), |bench, ()| {
            // The tape's sequence: Q·Kᵀ, scale, masked softmax, ·V —
            // two (n, n) tensors materialized per call.
            bench.iter(|| {
                let scores = ops::matmul_a_bt(&q, &k).unwrap();
                let scaled = scores.map(|x| scale * x + 0.0);
                let attn = ops::softmax_rows_masked(&scaled).unwrap();
                ops::matmul(&attn, &v).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("fused_single_pass", &id), &(), |bench, ()| {
            let mut scores = vec![0.0f32; n];
            let mut out = vec![0.0f32; n * d];
            bench.iter(|| {
                ops::causal_attention_into(
                    q.data(),
                    k.data(),
                    v.data(),
                    n,
                    d,
                    scale,
                    &mut scores,
                    &mut out,
                );
                out[n * d - 1]
            });
        });
    }
    group.finish();
}

fn bench_zero_skip(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_skip");
    let mut rng = StdRng::seed_from_u64(6);
    // Dense side (attention projections, FFN, prediction head): the
    // per-element branch never fires and is pure cost — the reason the
    // fast path's `matmul_into` dropped it. Sparse side (embedding
    // activations with left-padded all-zero rows): whole-row skips pay.
    // Shapes are the paper's: d=100 projections at Beauty/ML-1M batch
    // sizes, and the (b, d) × (d, N+1) prediction heads at N≈12k/3.4k.
    for (label, m, k, n) in [
        ("proj_b32_n50_d100", 1600usize, 100usize, 100usize),
        ("pred_beauty_b32_n12k", 32, 100, 12_001),
        ("pred_ml1m_b16_n3k4", 16, 100, 3_401),
    ] {
        let a_dense = init::randn(&mut rng, &[m, k], 0.0, 0.5);
        // Embedding-like sparsity: half the rows are exact-zero padding.
        let mut a_sparse = a_dense.clone();
        for r in 0..m / 2 {
            a_sparse.data_mut()[r * k..(r + 1) * k].fill(0.0);
        }
        let b = init::randn(&mut rng, &[k, n], 0.0, 0.5);
        let mut out = vec![0.0f32; m * n];
        for (input, a) in [("dense", &a_dense), ("half_zero_rows", &a_sparse)] {
            let id = format!("{label}/{input}");
            group.bench_with_input(BenchmarkId::new("skip_branch", &id), &(), |bench, ()| {
                bench.iter(|| {
                    out.fill(0.0);
                    ops::matmul::matmul_into_skip_zeros(a.data(), b.data(), &mut out, m, k, n);
                    out[m * n - 1]
                });
            });
            group.bench_with_input(BenchmarkId::new("branch_free_tiled", &id), &(), |bench, ()| {
                bench.iter(|| {
                    out.fill(0.0);
                    ops::matmul::matmul_into(a.data(), b.data(), &mut out, m, k, n);
                    out[m * n - 1]
                });
            });
        }
    }
    group.finish();
}

fn bench_elementwise_tier(c: &mut Criterion) {
    // Scalar reference vs runtime-dispatched AVX2 for the vectorized
    // elementwise/softmax tier (DESIGN.md §14): the `_fast` entry points
    // the arena tape calls, at paper activation shapes — n = 50 (Beauty)
    // to 200 (ML-1M) rows and beyond, d = 64–128 columns. The
    // transcendentals stay scalar libm inside both variants (bit-identity
    // contract), so their speedup comes from the vectorized surrounding
    // arithmetic; add is the pure-SIMD ceiling.
    let mut group = c.benchmark_group("elementwise_tier");
    let mut rng = StdRng::seed_from_u64(7);
    for (n, d) in [(50usize, 64usize), (200, 100), (768, 128)] {
        let x = init::randn(&mut rng, &[n, d], 0.0, 0.8);
        let y = init::randn(&mut rng, &[n, d], 0.0, 0.8);
        let mut out = vec![0.0f32; n * d];
        let id = format!("n{n}_d{d}");
        type Unary = (&'static str, fn(&[f32], &mut [f32]), fn(&[f32], &mut [f32]));
        let unary: [Unary; 3] = [
            ("sigmoid", ops::sigmoid_into, ops::sigmoid_into_fast),
            ("tanh", ops::tanh_into, ops::tanh_into_fast),
            ("exp", ops::exp_into, ops::exp_into_fast),
        ];
        for (name, scalar, fast) in unary {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_scalar"), &id),
                &(),
                |bench, ()| bench.iter(|| scalar(x.data(), &mut out)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_fast"), &id),
                &(),
                |bench, ()| bench.iter(|| fast(x.data(), &mut out)),
            );
        }
        group.bench_with_input(BenchmarkId::new("add_scalar", &id), &(), |bench, ()| {
            bench.iter(|| ops::add_into(x.data(), y.data(), &mut out));
        });
        group.bench_with_input(BenchmarkId::new("add_fast", &id), &(), |bench, ()| {
            bench.iter(|| ops::add_into_fast(x.data(), y.data(), &mut out));
        });
        group.bench_with_input(BenchmarkId::new("softmax_scalar", &id), &(), |bench, ()| {
            bench.iter(|| ops::softmax_rows_into(x.data(), &mut out, n, d));
        });
        group.bench_with_input(BenchmarkId::new("softmax_fast", &id), &(), |bench, ()| {
            bench.iter(|| ops::softmax_rows_into_fast(x.data(), &mut out, n, d));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul_parallel, bench_fused_ce, bench_causal_mask, bench_tape_overhead, bench_fused_attention, bench_zero_skip, bench_elementwise_tier
}
criterion_main!(benches);
