//! Kernel micro-benchmarks backing the design choices in DESIGN.md §5:
//! parallel vs serial matmul, fused vs composed softmax cross-entropy,
//! fused causal-mask softmax vs additive-mask softmax, and tape overhead
//! vs raw kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_autograd::Graph;
use vsan_tensor::{init, ops, parallel, Tensor};

fn bench_matmul_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_parallel");
    let mut rng = StdRng::seed_from_u64(1);
    // The prediction-layer shape: (batch·seq, d) × (d, items).
    let a = init::randn(&mut rng, &[512, 64], 0.0, 0.5);
    let b = init::randn(&mut rng, &[64, 2048], 0.0, 0.5);
    group.bench_function("serial", |bench| {
        bench.iter(|| ops::matmul(&a, &b).unwrap());
    });
    for threads in [2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bench, &t| {
            bench.iter(|| parallel::matmul_parallel(&a, &b, t).unwrap());
        });
    }
    group.finish();
}

fn bench_fused_ce(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_ce");
    let mut rng = StdRng::seed_from_u64(2);
    let logits = init::randn(&mut rng, &[256, 2048], 0.0, 1.0);
    let targets: Vec<usize> = (0..256).map(|i| (i * 13) % 2048).collect();

    group.bench_function("fused", |bench| {
        bench.iter(|| {
            let mut g = Graph::with_threads(1);
            let l = g.param(logits.clone(), 0);
            let loss = g.ce_one_hot(l, &targets).unwrap();
            g.backward(loss).unwrap()
        });
    });
    group.bench_function("composed_softmax_then_mask", |bench| {
        // The unfused alternative: full softmax on the tape, a one-hot mask
        // multiply, and a reduction — same gradient signal, ~2-3x the
        // tensor traffic plus the generic softmax backward.
        bench.iter(|| {
            let mut g = Graph::with_threads(1);
            let l = g.param(logits.clone(), 0);
            let sm = g.softmax_rows(l).unwrap();
            let mut mask = Tensor::zeros(&[256, 2048]);
            for (r, &t) in targets.iter().enumerate() {
                mask.set2(r, t, 1.0);
            }
            let m = g.constant(mask);
            let picked = g.mul(sm, m).unwrap();
            let s = g.sum_all(picked);
            g.backward(s).unwrap()
        });
    });
    group.finish();
}

fn bench_causal_mask(c: &mut Criterion) {
    let mut group = c.benchmark_group("causal_mask");
    let mut rng = StdRng::seed_from_u64(3);
    let scores = init::randn(&mut rng, &[200, 200], 0.0, 1.0);
    group.bench_function("fused_prefix_softmax", |bench| {
        bench.iter(|| ops::softmax_rows_masked(&scores).unwrap());
    });
    group.bench_function("additive_neg_inf_mask", |bench| {
        bench.iter(|| {
            // The textbook alternative: add −1e9 above the diagonal, then a
            // full-row softmax. Touches the whole matrix twice.
            let mut masked = scores.clone();
            for i in 0..200 {
                for j in (i + 1)..200 {
                    masked.set2(i, j, -1e9);
                }
            }
            ops::softmax_rows(&masked).unwrap()
        });
    });
    group.finish();
}

fn bench_tape_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("tape_overhead");
    let mut rng = StdRng::seed_from_u64(4);
    let a = init::randn(&mut rng, &[128, 64], 0.0, 0.5);
    let b = init::randn(&mut rng, &[64, 64], 0.0, 0.5);
    group.bench_function("raw_kernels", |bench| {
        bench.iter(|| {
            let c1 = ops::matmul(&a, &b).unwrap();
            let c2 = ops::elementwise::relu(&c1);
            ops::sum_all(&c2)
        });
    });
    group.bench_function("tape_forward_only", |bench| {
        bench.iter(|| {
            let mut g = Graph::with_threads(1);
            let av = g.constant(a.clone());
            let bv = g.constant(b.clone());
            let c1 = g.matmul(av, bv).unwrap();
            let c2 = g.relu(c1);
            let s = g.sum_all(c2);
            g.value(s).data()[0]
        });
    });
    group.bench_function("tape_with_backward", |bench| {
        bench.iter(|| {
            let mut g = Graph::with_threads(1);
            let av = g.param(a.clone(), 0);
            let bv = g.param(b.clone(), 1);
            let c1 = g.matmul(av, bv).unwrap();
            let c2 = g.relu(c1);
            let s = g.sum_all(c2);
            g.backward(s).unwrap()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul_parallel, bench_fused_ce, bench_causal_mask, bench_tape_overhead
}
criterion_main!(benches);
