//! §IV-F complexity-analysis benchmarks: forward cost of one
//! self-attention block (O(n²d + nd²)) vs an unrolled GRU (O(nd²),
//! sequential) vs Caser-style convolution, across sequence lengths.
//!
//! The paper's claim to verify: self-attention is *parallelizable* and its
//! wall-clock grows gracefully with n, while the RNN's strictly sequential
//! recurrence dominates at long n even with the same FLOP class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_autograd::Graph;
use vsan_nn::{Dropout, GruCell, ParamStore, SelfAttentionBlock};
use vsan_tensor::init;

const DIM: usize = 48;

fn bench_forward_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_cost_vs_seq_len");
    let mut rng = StdRng::seed_from_u64(1);

    let mut store = ParamStore::new();
    let san = SelfAttentionBlock::new(&mut store, &mut rng, "san", DIM, true);
    let gru = GruCell::new(&mut store, &mut rng, "gru", DIM, DIM);
    let drop = Dropout::new(0.0);

    for &n in &[25usize, 50, 100, 200] {
        let x = init::randn(&mut rng, &[n, DIM], 0.0, 0.5);
        group.bench_with_input(BenchmarkId::new("self_attention", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut g = Graph::with_threads(1);
                let mut r = StdRng::seed_from_u64(0);
                let xv = g.constant(x.clone());
                san.forward(&mut g, &store, xv, 1, n, &drop, &mut r, false).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("gru_unrolled", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut g = Graph::with_threads(1);
                let xv = g.constant(x.clone());
                let mut xs = Vec::with_capacity(n);
                for t in 0..n {
                    xs.push(g.gather_rows(xv, &[t]).unwrap());
                }
                gru.unroll(&mut g, &store, &xs, 1).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_attention_parallel_scaling(c: &mut Criterion) {
    // The "fully parallelizable" claim: one block over a large batch,
    // serial vs the workspace's parallel matmul path.
    let mut group = c.benchmark_group("attention_batch_threads");
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let san = SelfAttentionBlock::new(&mut store, &mut rng, "san", DIM, true);
    let drop = Dropout::new(0.0);
    let batch = 32;
    let n = 50;
    let x = init::randn(&mut rng, &[batch * n, DIM], 0.0, 0.5);
    for &threads in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bench, &t| {
            bench.iter(|| {
                let mut g = Graph::with_threads(t);
                let mut r = StdRng::seed_from_u64(0);
                let xv = g.constant(x.clone());
                san.forward(&mut g, &store, xv, batch, n, &drop, &mut r, false).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_forward_cost, bench_attention_parallel_scaling
}
criterion_main!(benches);
