//! Shapes, strides, and index arithmetic for row-major dense tensors.

use crate::{Result, TensorError};

/// A tensor shape: an ordered list of dimension sizes (row-major).
///
/// Rank 0 (scalar) through rank 4 are exercised throughout the workspace;
/// higher ranks work but are untested in anger.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Build a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dims; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `i`. Panics if `i >= rank`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides: `strides[i]` is the linear-index step for a unit
    /// move along dimension `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Convert a multi-dimensional index to a linear offset, validating
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::OutOfBounds {
                index: index.to_vec(),
                shape: self.0.clone(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (i, (&ix, &dim)) in index.iter().zip(self.0.iter()).enumerate() {
            if ix >= dim {
                return Err(TensorError::OutOfBounds {
                    index: index.to_vec(),
                    shape: self.0.clone(),
                });
            }
            off += ix * strides[i];
        }
        Ok(off)
    }

    /// `true` if the two shapes are elementwise-compatible (identical).
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }

    /// Interpret this shape as `(rows, cols)` for a rank-2 tensor.
    pub fn as_2d(&self) -> Result<(usize, usize)> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, got: self.rank(), op: "as_2d" });
        }
        Ok((self.0[0], self.0[1]))
    }

    /// Interpret this shape as `(batch, rows, cols)` for a rank-3 tensor.
    pub fn as_3d(&self) -> Result<(usize, usize, usize)> {
        if self.rank() != 3 {
            return Err(TensorError::RankMismatch { expected: 3, got: self.rank(), op: "as_3d" });
        }
        Ok((self.0[0], self.0[1], self.0[2]))
    }

    /// Collapse all leading dimensions into one, producing `(prod, last)`.
    ///
    /// Useful for treating a `(b, n, d)` activation as `(b*n, d)` rows.
    pub fn collapse_leading(&self) -> Result<(usize, usize)> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch { expected: 1, got: 0, op: "collapse_leading" });
        }
        let last = *self.0.last().expect("rank >= 1");
        let lead: usize = self.0[..self.rank() - 1].iter().product();
        Ok((lead.max(1), last))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[3, 5]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..3 {
            for j in 0..5 {
                let off = s.offset(&[i, j]).unwrap();
                assert!(off < 15);
                assert!(seen.insert(off), "offsets must be unique");
            }
        }
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0, 2]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    fn as_2d_and_3d() {
        assert_eq!(Shape::new(&[4, 7]).as_2d().unwrap(), (4, 7));
        assert!(Shape::new(&[4]).as_2d().is_err());
        assert_eq!(Shape::new(&[2, 4, 7]).as_3d().unwrap(), (2, 4, 7));
        assert!(Shape::new(&[2, 4]).as_3d().is_err());
    }

    #[test]
    fn collapse_leading_folds_batch_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).collapse_leading().unwrap(), (6, 4));
        assert_eq!(Shape::new(&[5]).collapse_leading().unwrap(), (1, 5));
        assert!(Shape::scalar().collapse_leading().is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }
}
