//! Data-parallel kernels built on `crossbeam::thread::scope`.
//!
//! The prediction layer of every sequential model in this workspace ends in
//! a `(rows, d) × (d, N_items)` matmul with `N_items` in the thousands —
//! by far the dominant cost. Splitting output rows across threads is
//! embarrassingly parallel and gives near-linear speedups (measured in
//! `vsan-bench`'s `matmul_parallel` bench).

use crate::kernel::KernelTier;
use crate::ops::matmul::{matmul_into, matmul_into_skip_zeros};
use crate::{Result, Tensor, TensorError};

/// Number of worker threads to use: the machine's available parallelism,
/// clamped to `[1, 16]`.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(16)
}

/// Parallel dense `C = A · B` for rank-2 operands, splitting rows of `A`
/// across `threads` workers. Falls back to the serial kernel when the
/// problem is too small to amortize thread spawn cost.
///
/// This is the tape's parallel front-end, so each chunk runs the
/// *reference* kernel (`ops::matmul`'s `i-k-j` loop — see that module's
/// header on oracle independence). Row chunking never splits a row's
/// `k` fold, so the result is bit-identical for every thread count.
pub fn matmul_parallel(a: &Tensor, b: &Tensor, threads: usize) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    let (kb, n) = b.shape().as_2d()?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_parallel",
        });
    }
    let threads = threads.max(1).min(m.max(1));
    // Below ~2 MFLOP the spawn overhead dominates; stay serial.
    if threads == 1 || m * k * n < 1_000_000 {
        return crate::ops::matmul(a, b);
    }
    let mut out = Tensor::zeros(&[m, n]);
    let chunk_rows = m.div_ceil(threads);
    let (ad, bd) = (a.data(), b.data());
    {
        let od = out.data_mut();
        let mut chunks: Vec<&mut [f32]> = od.chunks_mut(chunk_rows * n).collect();
        crossbeam::thread::scope(|s| {
            for (ci, c_chunk) in chunks.iter_mut().enumerate() {
                let row0 = ci * chunk_rows;
                let rows = c_chunk.len() / n;
                let a_chunk = &ad[row0 * k..(row0 + rows) * k];
                s.spawn(move |_| {
                    matmul_into_skip_zeros(a_chunk, bd, c_chunk, rows, k, n);
                });
            }
        })
        .expect("worker thread panicked in matmul_parallel");
    }
    Ok(out)
}

/// Tier-dispatched parallel `C = A · B`: the tape's front-end once the
/// graph carries a [`KernelTier`]. [`KernelTier::Reference`] runs
/// [`matmul_parallel`] unchanged (the oracle path); [`KernelTier::Fast`]
/// keeps the identical row-chunking and serial-fallback threshold but
/// runs the register-tiled [`matmul_into`] in each chunk. Chunking never
/// splits a row's `k` fold and the tiled kernel is bit-identical to the
/// reference fold, so both tiers produce the same bits at every thread
/// count.
pub fn matmul_parallel_tiered(
    a: &Tensor,
    b: &Tensor,
    threads: usize,
    tier: KernelTier,
) -> Result<Tensor> {
    if tier == KernelTier::Reference {
        return matmul_parallel(a, b, threads);
    }
    let (m, k) = a.shape().as_2d()?;
    let (kb, n) = b.shape().as_2d()?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_parallel",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 || m * k * n < 1_000_000 {
        matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
        return Ok(out);
    }
    matmul_into_parallel(a.data(), b.data(), out.data_mut(), m, k, n, threads);
    Ok(out)
}

/// Flat-buffer twin of [`matmul_parallel_tiered`] writing a caller
/// (arena) buffer: `c` must be zeroed. [`KernelTier::Reference`] runs
/// the reference `i-k-j` zero-skip kernel with [`matmul_parallel`]'s
/// exact row-chunking and serial-fallback threshold; [`KernelTier::Fast`]
/// runs [`matmul_into_parallel`] (identical chunking, tiled kernel).
/// Same folds per output element in every case — same bits as the
/// allocating front-end at every thread count.
#[allow(clippy::too_many_arguments)]
pub fn matmul_parallel_tiered_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    tier: KernelTier,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if tier == KernelTier::Fast {
        return matmul_into_parallel(a, b, c, m, k, n, threads);
    }
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 || m * k * n < 1_000_000 {
        return matmul_into_skip_zeros(a, b, c, m, k, n);
    }
    let chunk_rows = m.div_ceil(threads);
    let mut chunks: Vec<&mut [f32]> = c.chunks_mut(chunk_rows * n).collect();
    crossbeam::thread::scope(|s| {
        for (ci, c_chunk) in chunks.iter_mut().enumerate() {
            let row0 = ci * chunk_rows;
            let rows = c_chunk.len() / n;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            s.spawn(move |_| {
                matmul_into_skip_zeros(a_chunk, b, c_chunk, rows, k, n);
            });
        }
    })
    .expect("worker thread panicked in matmul_parallel_tiered_into");
}

/// Parallel flat-buffer `c += a · b` (the inference fast path's front
/// end): same row-chunking and serial-fallback threshold as
/// [`matmul_parallel`], but writing into a caller-owned workspace slice
/// instead of allocating an output tensor. `c` must be zeroed. Row
/// chunking never splits a row's `k` fold, so the result is bit-identical
/// to the serial kernel for every thread count.
pub fn matmul_into_parallel(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 || m * k * n < 1_000_000 {
        return matmul_into(a, b, c, m, k, n);
    }
    let chunk_rows = m.div_ceil(threads);
    let mut chunks: Vec<&mut [f32]> = c.chunks_mut(chunk_rows * n).collect();
    crossbeam::thread::scope(|s| {
        for (ci, c_chunk) in chunks.iter_mut().enumerate() {
            let row0 = ci * chunk_rows;
            let rows = c_chunk.len() / n;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            s.spawn(move |_| {
                matmul_into(a_chunk, b, c_chunk, rows, k, n);
            });
        }
    })
    .expect("worker thread panicked in matmul_into_parallel");
}

/// Run `f(i)` for every `i in 0..len` across `threads` workers, writing into
/// equal chunks of `out`. The closure receives `(global_index, &mut item)`.
///
/// Used for per-row post-processing (e.g. softmax over huge logit rows).
pub fn for_each_chunk_parallel<T: Send>(
    out: &mut [T],
    threads: usize,
    f: impl Fn(usize, &mut T) + Sync,
) {
    let threads = threads.max(1);
    if threads == 1 || out.len() < 2 {
        for (i, item) in out.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = out.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (ci, ch) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move |_| {
                for (j, item) in ch.iter_mut().enumerate() {
                    f(ci * chunk + j, item);
                }
            });
        }
    })
    .expect("worker thread panicked in for_each_chunk_parallel");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = init::randn(&mut rng, &[64, 48], 0.0, 1.0);
        let b = init::randn(&mut rng, &[48, 96], 0.0, 1.0);
        let serial = crate::ops::matmul(&a, &b).unwrap();
        for threads in [1, 2, 4, 7] {
            let par = matmul_parallel(&a, &b, threads).unwrap();
            for (s, p) in serial.data().iter().zip(par.data()) {
                assert!((s - p).abs() < 1e-4, "thread count {threads}");
            }
        }
    }

    #[test]
    fn parallel_handles_large_inputs() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = init::randn(&mut rng, &[300, 64], 0.0, 0.1);
        let b = init::randn(&mut rng, &[64, 400], 0.0, 0.1);
        let serial = crate::ops::matmul(&a, &b).unwrap();
        let par = matmul_parallel(&a, &b, default_threads()).unwrap();
        let mut max_diff = 0.0f32;
        for (s, p) in serial.data().iter().zip(par.data()) {
            max_diff = max_diff.max((s - p).abs());
        }
        assert!(max_diff < 1e-4, "max diff {max_diff}");
    }

    #[test]
    fn parallel_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul_parallel(&a, &b, 2).is_err());
        assert!(matmul_parallel_tiered(&a, &b, 2, KernelTier::Fast).is_err());
    }

    #[test]
    fn tiered_front_end_is_bit_identical_across_tiers_and_threads() {
        let mut rng = StdRng::seed_from_u64(3);
        // Big enough to cross the serial-fallback threshold at 4 threads.
        let a = init::randn(&mut rng, &[128, 64], 0.0, 0.5);
        let b = init::randn(&mut rng, &[64, 160], 0.0, 0.5);
        let want = crate::ops::matmul(&a, &b).unwrap();
        for threads in [1, 2, 4] {
            for tier in [KernelTier::Reference, KernelTier::Fast] {
                let got = matmul_parallel_tiered(&a, &b, threads, tier).unwrap();
                for (w, g) in want.data().iter().zip(got.data()) {
                    assert_eq!(w.to_bits(), g.to_bits(), "threads={threads} tier={}", tier.name());
                }
            }
        }
    }

    #[test]
    fn into_front_end_matches_the_allocating_front_end_bitwise() {
        let mut rng = StdRng::seed_from_u64(4);
        for (m, k, n) in [(5usize, 7usize, 9usize), (128, 64, 160)] {
            let mut a = init::randn(&mut rng, &[m, k], 0.0, 0.5);
            // Exact zeros exercise the reference tier's skip branch.
            for v in a.data_mut().iter_mut().step_by(5) {
                *v = 0.0;
            }
            let b = init::randn(&mut rng, &[k, n], 0.0, 0.5);
            for threads in [1usize, 4] {
                for tier in [KernelTier::Reference, KernelTier::Fast] {
                    let want = matmul_parallel_tiered(&a, &b, threads, tier).unwrap();
                    let mut got = vec![0.0f32; m * n];
                    matmul_parallel_tiered_into(a.data(), b.data(), &mut got, m, k, n, threads, tier);
                    for (w, g) in want.data().iter().zip(&got) {
                        assert_eq!(
                            w.to_bits(),
                            g.to_bits(),
                            "({m},{k},{n}) threads={threads} tier={}",
                            tier.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn for_each_chunk_visits_every_index() {
        let mut out = vec![0usize; 37];
        for_each_chunk_parallel(&mut out, 4, |i, slot| *slot = i * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn default_threads_is_sane() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }
}
