//! The dense row-major `f32` [`Tensor`] type.

use crate::shape::Shape;
use crate::{Result, TensorError};

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// The type is intentionally value-like: cloning copies the buffer, and all
/// kernels in [`crate::ops`] allocate fresh outputs. The autograd tape above
/// this layer owns the sharing story; here we keep invariants simple:
///
/// * `data.len() == shape.numel()` always holds.
/// * The layout is row-major (C order).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Build a tensor from a flat buffer and a shape.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch { expected: shape.numel(), got: data.len() });
        }
        Ok(Tensor { data, shape })
    }

    /// Build a rank-0 scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor { data: vec![v], shape: Shape::scalar() }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![0.0; shape.numel()], shape }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Constant-filled tensor of the given shape.
    pub fn full(dims: &[usize], v: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![v; shape.numel()], shape }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Zero tensor with the same shape as `other`.
    pub fn zeros_like(other: &Tensor) -> Self {
        Tensor { data: vec![0.0; other.data.len()], shape: other.shape.clone() }
    }

    /// Shape accessor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Mutable element access by multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> Result<&mut f32> {
        let off = self.shape.offset(index)?;
        Ok(&mut self.data[off])
    }

    /// Convenience accessor for rank-2 tensors: `t.get2(r, c)`.
    ///
    /// Panics on out-of-bounds; use [`Tensor::at`] for checked access.
    pub fn get2(&self, r: usize, c: usize) -> f32 {
        let (_, cols) = self.shape.as_2d().expect("get2 on non-matrix");
        self.data[r * cols + c]
    }

    /// Set a rank-2 element. Panics on out-of-bounds.
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        let (_, cols) = self.shape.as_2d().expect("set2 on non-matrix");
        self.data[r * cols + c] = v;
    }

    /// A borrowed row of a rank-2 tensor.
    pub fn row(&self, r: usize) -> &[f32] {
        let (rows, cols) = self.shape.as_2d().expect("row on non-matrix");
        assert!(r < rows, "row {r} out of bounds for {rows} rows");
        &self.data[r * cols..(r + 1) * cols]
    }

    /// A mutable borrowed row of a rank-2 tensor.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let (rows, cols) = self.shape.as_2d().expect("row_mut on non-matrix");
        assert!(r < rows, "row {r} out of bounds for {rows} rows");
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Reinterpret the buffer with a new shape of equal element count.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                got: self.data.len(),
            });
        }
        Ok(Tensor { data: self.data.clone(), shape })
    }

    /// In-place reshape (no copy). Errors if element counts differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<()> {
        let shape = Shape::new(dims);
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                got: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Apply a scalar function elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Apply a scalar function elementwise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Fill the tensor with a constant.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// `true` if every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute element, or 0.0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm of the flattened tensor.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Transpose a rank-2 tensor.
    pub fn transpose2(&self) -> Result<Tensor> {
        let (r, c) = self.shape.as_2d()?;
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Extract a contiguous block of rows `[start, start+len)` from a
    /// rank-2 tensor.
    pub fn rows_slice(&self, start: usize, len: usize) -> Result<Tensor> {
        let (r, c) = self.shape.as_2d()?;
        if start + len > r {
            return Err(TensorError::OutOfBounds {
                index: vec![start + len],
                shape: self.shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            data: self.data[start * c..(start + len) * c].to_vec(),
            shape: Shape::new(&[len, c]),
        })
    }

    /// Gather rows of a rank-2 tensor by index, producing `(idx.len(), cols)`.
    pub fn gather_rows(&self, idx: &[usize]) -> Result<Tensor> {
        let (r, c) = self.shape.as_2d()?;
        let mut data = Vec::with_capacity(idx.len() * c);
        for &i in idx {
            if i >= r {
                return Err(TensorError::OutOfBounds {
                    index: vec![i],
                    shape: self.shape.dims().to_vec(),
                });
            }
            data.extend_from_slice(&self.data[i * c..(i + 1) * c]);
        }
        Ok(Tensor { data, shape: Shape::new(&[idx.len(), c]) })
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let preview = self.data.iter().take(8).collect::<Vec<_>>();
        for (i, v) in preview.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_respect_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.numel(), 6);
        assert!(t.data().iter().all(|&x| x == 0.0));
        let t = Tensor::ones(&[4]);
        assert!(t.data().iter().all(|&x| x == 1.0));
        let t = Tensor::full(&[2, 2], 3.5);
        assert!(t.data().iter().all(|&x| x == 3.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn eye_is_identity() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.get2(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn row_access_and_mutation() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
        t.row_mut(0)[2] = 9.0;
        assert_eq!(t.get2(0, 2), 9.0);
        t.set2(1, 0, -1.0);
        assert_eq!(t.at(&[1, 0]).unwrap(), -1.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let r = t.reshape(&[2, 6]).unwrap();
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[2, 6]);
        assert!(t.reshape(&[5, 2]).is_err());
    }

    #[test]
    fn transpose2_round_trip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose2().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.get2(0, 1), t.get2(1, 0));
        let back = tt.transpose2().unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rows_slice_extracts_block() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]).unwrap();
        let s = t.rows_slice(1, 2).unwrap();
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert!(t.rows_slice(3, 2).is_err());
    }

    #[test]
    fn gather_rows_selects_and_validates() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]).unwrap();
        let g = t.gather_rows(&[2, 0, 2]).unwrap();
        assert_eq!(g.dims(), &[3, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        assert!(t.gather_rows(&[3]).is_err());
    }

    #[test]
    fn map_and_fill() {
        let mut t = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        let m = t.map(f32::abs);
        assert_eq!(m.data(), &[1.0, 2.0]);
        t.map_in_place(|x| x * 2.0);
        assert_eq!(t.data(), &[2.0, -4.0]);
        t.fill(0.5);
        assert_eq!(t.data(), &[0.5, 0.5]);
    }

    #[test]
    fn finiteness_and_norms() {
        let t = Tensor::from_vec(vec![3.0, -4.0], &[2]).unwrap();
        assert!(t.all_finite());
        assert_eq!(t.sq_norm(), 25.0);
        assert_eq!(t.max_abs(), 4.0);
        let bad = Tensor::from_vec(vec![f32::NAN], &[1]).unwrap();
        assert!(!bad.all_finite());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains("…"));
    }
}
