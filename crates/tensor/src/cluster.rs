//! Deterministic seeded k-means over row-major vector sets — the
//! centroid layer of the clustered maximum-inner-product (MIPS) index
//! (DESIGN.md §12).
//!
//! ## Determinism contract
//!
//! Rebuilding from the same `(data, config)` pair is **bit-reproducible**:
//!
//! * initial centroids are chosen by a [`splitmix64`] stream seeded from
//!   the config, not by any ambient RNG;
//! * assignment scores run through [`matmul_a_bt_into`], whose per-element
//!   fold is a single ascending-`k` scalar fold (the PR 5 blocking rule:
//!   tiling covers output dims only, never splits `k`), so every
//!   row-to-centroid distance is one fixed-order f32 fold;
//! * centroid updates accumulate member rows in ascending row order and
//!   ties in the argmin break toward the lower centroid id.
//!
//! There is no threading in the build: a k-means build is a rare,
//! offline-ish event (model load / checkpoint reload), and a serial build
//! makes the fixed-order fold argument trivial. The expensive inner loop
//! is the blocked score matmul, which already carries the AVX2 codegen
//! twin.

use crate::ops::matmul::matmul_a_bt_into;

/// The splitmix64 mixer — the same generator the data-parallel trainer
/// derives its per-shard streams from. Advances `state` and returns the
/// next value.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Knobs for [`cluster_rows`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmeansConfig {
    /// Number of centroids (clamped to `[1, n]`).
    pub num_clusters: usize,
    /// Lloyd iterations over the training rows.
    pub iters: usize,
    /// Train the centroids on at most this many rows (`0` = all rows);
    /// the final assignment pass always covers every row. Sampling keeps
    /// million-row builds affordable without touching determinism — the
    /// sample is drawn from the same seeded stream.
    pub train_sample: usize,
    /// Seed for the splitmix64 init/sample stream.
    pub seed: u64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        KmeansConfig { num_clusters: 16, iters: 4, train_sample: 65_536, seed: 0x5EED }
    }
}

/// A finished clustering: centroids plus a per-row assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Number of centroids actually built (`min(config, n)`, at least 1).
    pub num_clusters: usize,
    /// Vector width.
    pub dim: usize,
    /// Row-major `(num_clusters, dim)` centroid matrix.
    pub centroids: Vec<f32>,
    /// Centroid id per input row, `(n,)`.
    pub assignments: Vec<u32>,
}

/// Rows scored per blocked assignment pass — amortizes the `(rows, dim) ×
/// (dim, clusters)` matmul without a large score buffer.
const ASSIGN_BLOCK: usize = 256;

/// Deterministic k-means over `n` row-major `dim`-wide vectors in `data`.
///
/// Distances use the expansion `argmin_c ‖x−c‖² = argmin_c (‖c‖²/2 − x·c)`
/// — the `‖x‖²` term is constant per row — with both the dot products and
/// the centroid norms computed as fixed-order ascending folds. See the
/// module docs for the full determinism argument.
///
/// # Panics
/// Panics if `data.len() != n * dim` or `n == 0` or `dim == 0`.
pub fn cluster_rows(data: &[f32], n: usize, dim: usize, cfg: &KmeansConfig) -> Clustering {
    assert!(n > 0 && dim > 0, "cluster_rows needs at least one row and one column");
    assert_eq!(data.len(), n * dim, "data length must be n * dim");
    let k = cfg.num_clusters.clamp(1, n);
    let mut stream = cfg.seed;

    // Seeded init: k distinct row indices from the splitmix64 stream.
    let mut centroids = vec![0.0f32; k * dim];
    let mut taken = std::collections::HashSet::with_capacity(k);
    for c in 0..k {
        let row = loop {
            let r = (splitmix64(&mut stream) % n as u64) as usize;
            if taken.insert(r) {
                break r;
            }
        };
        centroids[c * dim..(c + 1) * dim].copy_from_slice(&data[row * dim..(row + 1) * dim]);
    }

    // Training rows: a seeded sample (ascending order, so the update
    // folds rows in a fixed order) or every row.
    let sample: Vec<usize> = if cfg.train_sample == 0 || cfg.train_sample >= n {
        (0..n).collect()
    } else {
        let mut idx = std::collections::HashSet::with_capacity(cfg.train_sample);
        while idx.len() < cfg.train_sample {
            idx.insert((splitmix64(&mut stream) % n as u64) as usize);
        }
        let mut idx: Vec<usize> = idx.into_iter().collect();
        idx.sort_unstable();
        idx
    };

    let mut sample_assign = vec![0u32; sample.len()];
    let mut sums = vec![0.0f32; k * dim];
    let mut counts = vec![0usize; k];
    for _ in 0..cfg.iters {
        assign_sampled(data, dim, &sample, &centroids, k, &mut sample_assign);
        // Update: fold member rows in ascending row order (the sample is
        // sorted), one fixed-order accumulation per centroid.
        sums.fill(0.0);
        counts.fill(0);
        for (si, &row) in sample.iter().enumerate() {
            let c = sample_assign[si] as usize;
            counts[c] += 1;
            let dst = &mut sums[c * dim..(c + 1) * dim];
            for (s, &x) in dst.iter_mut().zip(&data[row * dim..(row + 1) * dim]) {
                *s += x;
            }
        }
        // An empty cluster keeps its previous centroid — deterministic
        // and harmless (it simply attracts no queries).
        for c in 0..k {
            if counts[c] > 0 {
                let src = &sums[c * dim..(c + 1) * dim];
                let inv = 1.0 / counts[c] as f32;
                for (dst, &s) in centroids[c * dim..(c + 1) * dim].iter_mut().zip(src) {
                    *dst = s * inv;
                }
            }
        }
    }

    // Final assignment over every row.
    let all: Vec<usize> = (0..n).collect();
    let mut assignments = vec![0u32; n];
    assign_sampled(data, dim, &all, &centroids, k, &mut assignments);
    Clustering { num_clusters: k, dim, centroids, assignments }
}

/// Assign each listed row to its nearest centroid (lowest centroid id on
/// ties), writing into `out[i]` for the `i`-th listed row.
fn assign_sampled(
    data: &[f32],
    dim: usize,
    rows: &[usize],
    centroids: &[f32],
    k: usize,
    out: &mut [u32],
) {
    debug_assert_eq!(out.len(), rows.len());
    // ‖c‖²/2 per centroid, ascending fold over dim.
    let mut half_norm = vec![0.0f32; k];
    for (c, h) in half_norm.iter_mut().enumerate() {
        let row = &centroids[c * dim..(c + 1) * dim];
        let mut acc = 0.0f32;
        for &v in row {
            acc += v * v;
        }
        *h = 0.5 * acc;
    }
    let mut block = vec![0.0f32; ASSIGN_BLOCK * dim];
    let mut scores = vec![0.0f32; ASSIGN_BLOCK * k];
    for (chunk_i, chunk) in rows.chunks(ASSIGN_BLOCK).enumerate() {
        let m = chunk.len();
        for (local, &row) in chunk.iter().enumerate() {
            block[local * dim..(local + 1) * dim]
                .copy_from_slice(&data[row * dim..(row + 1) * dim]);
        }
        matmul_a_bt_into(&block[..m * dim], centroids, &mut scores[..m * k], m, dim, k);
        for local in 0..m {
            let row_scores = &scores[local * k..(local + 1) * k];
            let mut best = 0usize;
            let mut best_cost = half_norm[0] - row_scores[0];
            for (c, (&h, &s)) in half_norm.iter().zip(row_scores).enumerate().skip(1) {
                let cost = h - s;
                // Strict `<`: ties keep the lower centroid id.
                if cost < best_cost {
                    best = c;
                    best_cost = cost;
                }
            }
            out[chunk_i * ASSIGN_BLOCK + local] = best as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random rows without any RNG dependency.
    fn rows(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..n * dim)
            .map(|_| (splitmix64(&mut s) % 10_000) as f32 / 5_000.0 - 1.0)
            .collect()
    }

    #[test]
    fn splitmix_is_reproducible_and_mixes() {
        let mut a = 42u64;
        let mut b = 42u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert_eq!(xs.iter().collect::<std::collections::HashSet<_>>().len(), 8);
    }

    #[test]
    fn rebuild_is_bit_identical() {
        let data = rows(300, 9, 7);
        let cfg = KmeansConfig { num_clusters: 12, iters: 4, train_sample: 128, seed: 3 };
        let a = cluster_rows(&data, 300, 9, &cfg);
        let b = cluster_rows(&data, 300, 9, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids.len(), b.centroids.len());
        for (x, y) in a.centroids.iter().zip(&b.centroids) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let data = rows(300, 6, 11);
        let a = cluster_rows(&data, 300, 6, &KmeansConfig { seed: 1, ..KmeansConfig::default() });
        let b = cluster_rows(&data, 300, 6, &KmeansConfig { seed: 2, ..KmeansConfig::default() });
        assert_ne!(a.assignments, b.assignments, "seeds must steer the init");
    }

    #[test]
    fn separated_blobs_are_recovered() {
        // Three far-apart blobs; k-means must put each in its own cluster.
        let dim = 4;
        let mut data = Vec::new();
        for blob in 0..3 {
            let center = blob as f32 * 50.0;
            let mut s = 100 + blob as u64;
            for _ in 0..40 {
                for _ in 0..dim {
                    data.push(center + (splitmix64(&mut s) % 100) as f32 / 100.0);
                }
            }
        }
        let got =
            cluster_rows(&data, 120, dim, &KmeansConfig { num_clusters: 3, iters: 8, train_sample: 0, seed: 9 });
        for blob in 0..3 {
            let first = got.assignments[blob * 40];
            for i in 0..40 {
                assert_eq!(got.assignments[blob * 40 + i], first, "blob {blob} split");
            }
        }
        let distinct: std::collections::HashSet<u32> = got.assignments.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn clamps_cluster_count_to_rows() {
        let data = rows(5, 3, 1);
        let got = cluster_rows(&data, 5, 3, &KmeansConfig { num_clusters: 64, ..KmeansConfig::default() });
        assert_eq!(got.num_clusters, 5);
        assert!(got.assignments.iter().all(|&c| (c as usize) < 5));
    }

    #[test]
    fn sampling_still_assigns_every_row() {
        let data = rows(1000, 5, 13);
        let cfg = KmeansConfig { num_clusters: 8, iters: 3, train_sample: 64, seed: 21 };
        let got = cluster_rows(&data, 1000, 5, &cfg);
        assert_eq!(got.assignments.len(), 1000);
        assert!(got.assignments.iter().all(|&c| (c as usize) < got.num_clusters));
    }

    #[test]
    #[should_panic(expected = "n * dim")]
    fn rejects_bad_lengths() {
        cluster_rows(&[0.0; 7], 2, 4, &KmeansConfig::default());
    }
}
