//! Compact binary tensor serialization via [`bytes`].
//!
//! Used by the checkpointing layer in `vsan-nn` to persist model parameters
//! between training and evaluation binaries. The format is deliberately
//! trivial:
//!
//! ```text
//! magic  u32  = 0x5653_414E  ("VSAN")
//! rank   u32
//! dims   u64 × rank
//! data   f32 × numel        (little-endian)
//! ```

use crate::{Result, Tensor, TensorError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Format magic: ASCII "VSAN".
pub const MAGIC: u32 = 0x5653_414E;

/// Encode a tensor into a fresh byte buffer.
pub fn encode(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + t.rank() * 8 + t.numel() * 4);
    encode_into(t, &mut buf);
    buf.freeze()
}

/// Encode a tensor, appending to an existing buffer (for multi-tensor
/// checkpoint files).
pub fn encode_into(t: &Tensor, buf: &mut BytesMut) {
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(t.rank() as u32);
    for &d in t.dims() {
        buf.put_u64_le(d as u64);
    }
    for &v in t.data() {
        buf.put_f32_le(v);
    }
}

/// Decode one tensor from the front of `buf`, advancing it.
pub fn decode(buf: &mut impl Buf) -> Result<Tensor> {
    if buf.remaining() < 8 {
        return Err(TensorError::Decode("buffer too short for header"));
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(TensorError::Decode("bad magic"));
    }
    let rank = buf.get_u32_le() as usize;
    if rank > 8 {
        return Err(TensorError::Decode("implausible rank"));
    }
    if buf.remaining() < rank * 8 {
        return Err(TensorError::Decode("buffer too short for dims"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(buf.get_u64_le() as usize);
    }
    let numel: usize = dims.iter().product::<usize>().max(if rank == 0 { 1 } else { 0 });
    let numel = if rank == 0 { 1 } else { numel };
    if buf.remaining() < numel * 4 {
        return Err(TensorError::Decode("buffer too short for data"));
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(buf.get_f32_le());
    }
    Tensor::from_vec(data, &dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_tensor() {
        let t = Tensor::from_vec(vec![1.5, -2.25, 0.0, 3.75, 9.125, -0.5], &[2, 3]).unwrap();
        let enc = encode(&t);
        let mut buf = enc.clone();
        let back = decode(&mut buf).unwrap();
        assert_eq!(back, t);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn round_trip_scalar() {
        let t = Tensor::scalar(42.5);
        let mut buf = encode(&t);
        let back = decode(&mut buf).unwrap();
        assert_eq!(back.numel(), 1);
        assert_eq!(back.data()[0], 42.5);
    }

    #[test]
    fn multiple_tensors_in_one_buffer() {
        let a = Tensor::ones(&[3]);
        let b = Tensor::full(&[2, 2], 7.0);
        let mut buf = BytesMut::new();
        encode_into(&a, &mut buf);
        encode_into(&b, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode(&mut bytes).unwrap(), a);
        assert_eq!(decode(&mut bytes).unwrap(), b);
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        // Too short.
        let mut short = Bytes::from_static(&[1, 2, 3]);
        assert!(decode(&mut short).is_err());
        // Bad magic.
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u32_le(1);
        buf.put_u64_le(1);
        buf.put_f32_le(1.0);
        let mut bytes = buf.freeze();
        assert!(decode(&mut bytes).is_err());
        // Truncated data.
        let t = Tensor::ones(&[10]);
        let enc = encode(&t);
        let mut truncated = enc.slice(..enc.len() - 4);
        assert!(decode(&mut truncated).is_err());
    }
}
