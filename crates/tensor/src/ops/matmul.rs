//! Matrix multiplication kernels, in two tiers (DESIGN.md §10):
//!
//! - **Reference kernels** — the cache-friendly `i-k-j` loops the tape
//!   has used since the first training run ([`matmul_into_skip_zeros`]
//!   and the dot loop inside [`matmul_a_bt`]). The graph ops stay on
//!   these: the graph path is the *differential oracle* for the
//!   inference fast path, and an oracle is only worth having if it is
//!   an independent, obviously-correct implementation — if both paths
//!   ran the optimized kernels, a kernel bug would cancel out in the
//!   bitwise compare.
//! - **Optimized kernels** — [`matmul_into`] / [`matmul_a_bt_into`],
//!   the register-tiled, runtime-SIMD-dispatched kernels the inference
//!   fast path runs. Bit-identical to the reference fold by
//!   construction (rules below) and by test
//!   (`blocked_kernel_is_bit_identical_to_naive_fold`, plus the
//!   end-to-end differential suite in `vsan-core`).
//!
//! ## The blocking rule (DESIGN.md §10)
//!
//! The register-tiled kernels tile over the output dimensions `i`/`j`
//! only, **never** over the shared dimension `k`: every output element is
//! still one scalar accumulator folded over `k` in ascending order, so the
//! blocked kernels are bit-identical to the naive triple loop. Splitting
//! `k` would reassociate the sum and break the bitwise-determinism
//! invariant the serve cache and golden fixtures rest on.
//!
//! ## SIMD and bitwise determinism
//!
//! On x86-64 the optimized kernels are compiled twice — baseline and an
//! AVX2-enabled twin selected once at runtime. The twin is the *same
//! Rust body*: vectorization happens along `j`, where every SIMD lane
//! is a **different output element**, so each element's ascending-`k`
//! scalar fold is untouched. FMA is deliberately **not** enabled —
//! a fused multiply-add rounds once instead of twice and would change
//! the bits; Rust/LLVM never contract `a * b + c` on their own.

use crate::{Result, Shape, Tensor, TensorError};

/// Whether the running CPU supports AVX2, probed once.
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Dense `C = A · B` for rank-2 operands `(m, k) × (k, n) → (m, n)`.
///
/// This is the tape's op: it runs the *reference* kernel
/// ([`matmul_into_skip_zeros`], the original `i-k-j` loop), keeping the
/// graph path an implementation-independent oracle for the fast path's
/// optimized kernels (module header).
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    let (kb, n) = b.shape().as_2d()?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    matmul_into_skip_zeros(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// Fast-tier twin of [`matmul`]: same shapes, same bits, but the
/// register-tiled [`matmul_into`] kernel. The tape dispatches here when
/// its graph was built on [`crate::kernel::KernelTier::Fast`].
pub fn matmul_fast(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    let (kb, n) = b.shape().as_2d()?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// Rows of `A` per register tile: four output rows share each streamed
/// `B` vector, quartering `B` bandwidth.
const MR: usize = 4;
/// Columns per register tile: two 8-lane AVX2 vectors' worth of output
/// elements kept in accumulator registers across the whole `k` fold.
const NR: usize = 16;

/// Raw kernel: `c += a · b` over flat row-major buffers — the inference
/// fast path's dense workhorse (projections, FFN, prediction head).
///
/// `c` must be zeroed (or hold a partial sum to accumulate into).
///
/// Register-tiled `MR × NR`: each tile's accumulators live in registers
/// for the entire `k` fold and are stored exactly once, instead of
/// round-tripping `c` through memory on every `k` step. Tiles cover
/// output dimensions only (module header: `k` is never split), so each
/// `c[i][j]` is accumulated in the same fixed ascending-`k` order as the
/// reference loop. Branch-free on purpose: dense activations gain
/// nothing from a zero test per `a` element — use
/// [`matmul_into_skip_zeros`] where the left operand is genuinely
/// sparse (embedding-side padded rows).
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { return matmul_into_avx2(a, b, c, m, k, n) };
    }
    matmul_into_body(a, b, c, m, k, n)
}

/// [`matmul_into`]'s body compiled with AVX2 codegen (module header:
/// same source, wider lanes along `j`, identical bits).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_into_avx2(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_into_body(a, b, c, m, k, n)
}

#[inline(always)]
pub(crate) fn matmul_into_body(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let itiles = m / MR;
    let jtiles = n / NR;
    for it in 0..itiles {
        let i = it * MR;
        for jt in 0..jtiles {
            let j = jt * NR;
            // Load the tile (accumulate-into semantics), fold the whole
            // of `k` in registers, store once.
            let mut acc = [[0.0f32; NR]; MR];
            for (r, acc_row) in acc.iter_mut().enumerate() {
                acc_row.copy_from_slice(&c[(i + r) * n + j..(i + r) * n + j + NR]);
            }
            for kk in 0..k {
                let b_vec = &b[kk * n + j..kk * n + j + NR];
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let ar = a[(i + r) * k + kk];
                    for (av, &bv) in acc_row.iter_mut().zip(b_vec) {
                        *av += ar * bv;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                c[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(acc_row);
            }
        }
        // `j` remainder for this row tile: per-element register folds.
        for jj in jtiles * NR..n {
            for r in 0..MR {
                let mut acc = c[(i + r) * n + jj];
                let a_row = &a[(i + r) * k..(i + r + 1) * k];
                for (kk, &av) in a_row.iter().enumerate() {
                    acc += av * b[kk * n + jj];
                }
                c[(i + r) * n + jj] = acc;
            }
        }
    }
    // `i` remainder rows: same tiling over `j` with a single row.
    for i in itiles * MR..m {
        let a_row = &a[i * k..(i + 1) * k];
        for jt in 0..jtiles {
            let j = jt * NR;
            let mut acc = [0.0f32; NR];
            acc.copy_from_slice(&c[i * n + j..i * n + j + NR]);
            for (kk, &av) in a_row.iter().enumerate() {
                let b_vec = &b[kk * n + j..kk * n + j + NR];
                for (accv, &bv) in acc.iter_mut().zip(b_vec) {
                    *accv += av * bv;
                }
            }
            c[i * n + j..i * n + j + NR].copy_from_slice(&acc);
        }
        for jj in jtiles * NR..n {
            let mut acc = c[i * n + jj];
            for (kk, &av) in a_row.iter().enumerate() {
                acc += av * b[kk * n + jj];
            }
            c[i * n + jj] = acc;
        }
    }
}

/// The reference `i-k-j` kernel (and the tape's kernel — see the module
/// header): skips `a` elements that are exactly zero. The skip pays only
/// when the left operand has entire zero *rows or large zero runs* — the
/// embedding-side case (padded positions gather the pinned all-zero row
/// 0) and dropout-masked training activations. On dense data the
/// per-element branch costs more than the skipped work saves (measured
/// in `vsan-bench`'s `zero_skip` group), which is why the fast path's
/// [`matmul_into`] dropped it.
///
/// Skipping is bitwise-equivalent to adding the zero products: the
/// accumulator starts at `+0.0` and `+0.0 + (±0.0) == +0.0`, so a zero
/// contribution never changes any accumulator bit.
pub fn matmul_into_skip_zeros(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

/// `C = Aᵀ · B` for `(k, m) × (k, n) → (m, n)` without materializing `Aᵀ`.
///
/// This is the gradient-of-weights shape (`dW = Xᵀ · dY`), hit every step.
/// Deliberately keeps the zero-skip branch: `X` here is an activation
/// carrying dropout-masked entries and embedding-side padded rows, where
/// whole zero runs are common enough to pay for the test.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = a.shape().as_2d()?;
    let (kb, n) = b.shape().as_2d()?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_at_b",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    matmul_at_b_ref_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// Raw reference kernel behind [`matmul_at_b`]: `c += aᵀ · b` over flat
/// buffers, `(k, m) × (k, n) → (m, n)`, zero-skip on `a`. `c` must be
/// zeroed (or hold a partial sum). The exact loop [`matmul_at_b`] has
/// always run, factored out so arena buffers can be filled without the
/// output allocation.
pub fn matmul_at_b_ref_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    // Outer loop over the shared dim keeps both reads sequential.
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let o_row = &mut c[i * n..(i + 1) * n];
            for (ov, &bv) in o_row.iter_mut().zip(b_row) {
                *ov += av * bv;
            }
        }
    }
}

/// Fast-tier twin of [`matmul_at_b`]: same shapes, same bits, but the
/// register-tiled [`matmul_at_b_into`] kernel.
pub fn matmul_at_b_fast(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = a.shape().as_2d()?;
    let (kb, n) = b.shape().as_2d()?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_at_b",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    matmul_at_b_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// `C = A · Bᵀ` for `(m, k) × (n, k) → (m, n)` without materializing `Bᵀ`.
///
/// This is the attention-score shape (`Q · Kᵀ`) and the gradient-of-input
/// shape (`dX = dY · Wᵀ`). A tape op, so it runs the reference dot loop
/// (module header); the fast path's register-blocked twin is
/// [`matmul_a_bt_into`].
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    let (n, kb) = b.shape().as_2d()?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_a_bt",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    matmul_a_bt_ref_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// Raw reference kernel behind [`matmul_a_bt`]: `c = a · bᵀ` over flat
/// buffers, `(m, k) × (n, k) → (m, n)`, per-element ascending-`k` dots.
/// Overwrites `c`. The exact loop [`matmul_a_bt`] has always run,
/// factored out so arena buffers can be filled without the output
/// allocation.
pub fn matmul_a_bt_ref_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c[i * n + j] = acc;
        }
    }
}

/// Fast-tier twin of [`matmul_a_bt`]: same shapes, same bits, but
/// computed as **transpose-then-tiled-matmul** instead of per-element
/// dots.
///
/// `A·Bᵀ` is the one dense shape a SIMD twin cannot accelerate in
/// place: each output is a single dot fold over `k`, and lanes within
/// one fold would reassociate the sum. Materializing `Bᵀ` first (pure
/// data movement — no arithmetic, no bits at risk) turns the product
/// into the plain `A·(Bᵀ)` shape, which [`matmul_into`] tiles and
/// vectorizes along `j`. Each `c[i][j]` is still one scalar accumulator
/// folded over the *same* products `a[i][t]·b[j][t]` in the *same*
/// ascending-`t` order as the reference dot, so the result is
/// bit-identical (enforced by `blocked_kernel_is_bit_identical_to_naive_fold`).
/// This shape is the `dX = dY·Wᵀ` half of every matmul backward, so the
/// transpose (one `(n, k)` copy) is paid once per op against an `m·k·n`
/// fold.
pub fn matmul_a_bt_fast(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    let (n, kb) = b.shape().as_2d()?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_a_bt",
        });
    }
    let mut bt = vec![0.0f32; k * n];
    transpose_into(b.data(), &mut bt, n, k);
    let mut out = Tensor::zeros(&[m, n]);
    matmul_into(a.data(), &bt, out.data_mut(), m, k, n);
    Ok(out)
}

/// Scratch-threaded twin of [`matmul_a_bt_fast`] over flat buffers:
/// `c = a · bᵀ` via transpose-then-tiled, with the `Bᵀ` scratch supplied
/// by the caller (arena-recycled on the training tape). `c` must be
/// zeroed ([`matmul_into`] accumulates); `bt_scratch` is fully
/// overwritten. Same fold, same bits as [`matmul_a_bt_fast`].
pub fn matmul_a_bt_fast_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    bt_scratch: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(bt_scratch.len(), k * n);
    transpose_into(b, bt_scratch, n, k);
    matmul_into(a, bt_scratch, c, m, k, n);
}

/// Scratch transpose `(r, c) → (c, r)` over flat row-major buffers —
/// the data-movement half of the fast tier's `A·Bᵀ` kernels. Pure
/// copies: it cannot change any result bit, so the twins that call it
/// under AVX2 codegen stay bit-identical by construction.
#[inline(always)]
pub fn transpose_into(src: &[f32], dst: &mut [f32], r: usize, c: usize) {
    debug_assert_eq!(src.len(), r * c);
    debug_assert_eq!(dst.len(), r * c);
    for i in 0..r {
        for (j, &v) in src[i * c..(i + 1) * c].iter().enumerate() {
            dst[j * r + i] = v;
        }
    }
}

/// Raw kernel behind [`matmul_a_bt`]: `c = a · bᵀ` over flat buffers,
/// `(m, k) × (n, k) → (m, n)`. Overwrites `c` (no accumulation).
///
/// Register-blocked over `j`: four `B` rows are dotted against one hot
/// `A` row per pass, with four independent accumulators. Each `c[i][j]`
/// is still a single scalar fold over `k` in ascending order, so the
/// result is bit-identical to the unblocked dot (module header).
pub fn matmul_a_bt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { return matmul_a_bt_into_avx2(a, b, c, m, k, n) };
    }
    matmul_a_bt_into_body(a, b, c, m, k, n)
}

/// [`matmul_a_bt_into`]'s body compiled with AVX2 codegen (module
/// header: same source, same bits).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_a_bt_into_avx2(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_a_bt_into_body(a, b, c, m, k, n)
}

#[inline(always)]
pub(crate) fn matmul_a_bt_into_body(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    const NR: usize = 4;
    let blocks = n / NR;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut c[i * n..(i + 1) * n];
        for bj in 0..blocks {
            let j = bj * NR;
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (t, &av) in a_row.iter().enumerate() {
                s0 += av * b0[t];
                s1 += av * b1[t];
                s2 += av * b2[t];
                s3 += av * b3[t];
            }
            o_row[j] = s0;
            o_row[j + 1] = s1;
            o_row[j + 2] = s2;
            o_row[j + 3] = s3;
        }
        for (j, ov) in o_row.iter_mut().enumerate().skip(blocks * NR) {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *ov = acc;
        }
    }
}

/// Raw kernel twin of [`matmul_at_b`]: `c += aᵀ · b` over flat buffers,
/// `(k, m) × (k, n) → (m, n)`, without materializing `aᵀ`. `c` must be
/// zeroed (or hold a partial sum to accumulate into).
///
/// This is the gradient-of-weights shape the fast training tier hits
/// every step (`dW = Xᵀ · dY`, plus `dK`/`dV` in the fused attention
/// backward). Register-tiled `MR × NR` exactly like [`matmul_into`] —
/// only the `a` indexing differs (`a[kk * m + i]` instead of
/// `a[i * k + kk]`) — so each `c[i][j]` is one scalar accumulator folded
/// over `kk` in ascending order, the same per-element fold as the
/// reference loop in [`matmul_at_b`]. The reference's zero-skip branch
/// is dropped here, which is bitwise-equivalent: skipped products are
/// exact (±)zeros, and an accumulator that starts at `+0.0` is never
/// changed by adding one (see [`matmul_into_skip_zeros`]).
pub fn matmul_at_b_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { return matmul_at_b_into_avx2(a, b, c, m, k, n) };
    }
    matmul_at_b_into_body(a, b, c, m, k, n)
}

/// [`matmul_at_b_into`]'s body compiled with AVX2 codegen (module
/// header: same source, same bits).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_at_b_into_avx2(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_at_b_into_body(a, b, c, m, k, n)
}

#[inline(always)]
pub(crate) fn matmul_at_b_into_body(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let itiles = m / MR;
    let jtiles = n / NR;
    for it in 0..itiles {
        let i = it * MR;
        for jt in 0..jtiles {
            let j = jt * NR;
            let mut acc = [[0.0f32; NR]; MR];
            for (r, acc_row) in acc.iter_mut().enumerate() {
                acc_row.copy_from_slice(&c[(i + r) * n + j..(i + r) * n + j + NR]);
            }
            for kk in 0..k {
                let b_vec = &b[kk * n + j..kk * n + j + NR];
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let ar = a[kk * m + i + r];
                    for (av, &bv) in acc_row.iter_mut().zip(b_vec) {
                        *av += ar * bv;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                c[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(acc_row);
            }
        }
        for jj in jtiles * NR..n {
            for r in 0..MR {
                let mut acc = c[(i + r) * n + jj];
                for kk in 0..k {
                    acc += a[kk * m + i + r] * b[kk * n + jj];
                }
                c[(i + r) * n + jj] = acc;
            }
        }
    }
    for i in itiles * MR..m {
        for jt in 0..jtiles {
            let j = jt * NR;
            let mut acc = [0.0f32; NR];
            acc.copy_from_slice(&c[i * n + j..i * n + j + NR]);
            for kk in 0..k {
                let av = a[kk * m + i];
                let b_vec = &b[kk * n + j..kk * n + j + NR];
                for (accv, &bv) in acc.iter_mut().zip(b_vec) {
                    *accv += av * bv;
                }
            }
            c[i * n + j..i * n + j + NR].copy_from_slice(&acc);
        }
        for jj in jtiles * NR..n {
            let mut acc = c[i * n + jj];
            for kk in 0..k {
                acc += a[kk * m + i] * b[kk * n + jj];
            }
            c[i * n + jj] = acc;
        }
    }
}

/// Batched matmul for rank-3 operands `(b, m, k) × (b, k, n) → (b, m, n)`.
/// A tape op: reference kernel per batch slice (module header).
pub fn matmul3(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ba, m, k) = a.shape().as_3d()?;
    let (bb, kb, n) = b.shape().as_3d()?;
    if ba != bb || k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul3",
        });
    }
    let mut out = Tensor::zeros(&[ba, m, n]);
    for bi in 0..ba {
        let a_sl = &a.data()[bi * m * k..(bi + 1) * m * k];
        let b_sl = &b.data()[bi * k * n..(bi + 1) * k * n];
        let o_sl = &mut out.data_mut()[bi * m * n..(bi + 1) * m * n];
        matmul_into_skip_zeros(a_sl, b_sl, o_sl, m, k, n);
    }
    Ok(out)
}

/// Matrix–vector product `(m, k) × (k,) → (m,)`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    if x.dims() != [k] {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
            op: "matvec",
        });
    }
    let mut out = Tensor::zeros(&[m]);
    for i in 0..m {
        let row = &a.data()[i * k..(i + 1) * k];
        out.data_mut()[i] = row.iter().zip(x.data()).map(|(&a, &b)| a * b).sum();
    }
    Ok(out)
}

/// Outer product `(m,) × (n,) → (m, n)`.
pub fn outer(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 1 || b.rank() != 1 {
        return Err(TensorError::RankMismatch { expected: 1, got: a.rank().max(b.rank()), op: "outer" });
    }
    let (m, n) = (a.numel(), b.numel());
    let mut data = Vec::with_capacity(m * n);
    for &av in a.data() {
        for &bv in b.data() {
            data.push(av * bv);
        }
    }
    Ok(Tensor::from_vec(data, &[m, n]).expect("sized above"))
}

/// Dot product of two equal-length rank-1 tensors.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32> {
    if !Shape::new(a.dims()).same_as(&Shape::new(b.dims())) || a.rank() != 1 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "dot",
        });
    }
    Ok(a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: Vec<f32>, r: usize, c: usize) -> Tensor {
        Tensor::from_vec(v, &[r, c]).unwrap()
    }

    #[test]
    fn matmul_small_known_result() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = m(vec![5.0, 6.0, 7.0, 8.0], 2, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let c = matmul(&a, &Tensor::eye(3)).unwrap();
        assert_eq!(c, a);
        let c = matmul(&Tensor::eye(2), &a).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = m(vec![0.0; 6], 2, 3);
        let b = m(vec![0.0; 8], 2, 4);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = m(vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0], 3, 2);
        let b = m(vec![2.0, 1.0, 0.0, -1.0, 1.5, 2.5], 3, 2);
        // Aᵀ·B
        let want = matmul(&a.transpose2().unwrap(), &b).unwrap();
        let got = matmul_at_b(&a, &b).unwrap();
        for (w, g) in want.data().iter().zip(got.data()) {
            assert!((w - g).abs() < 1e-6);
        }
        // A·Bᵀ
        let want = matmul(&a, &b.transpose2().unwrap()).unwrap();
        let got = matmul_a_bt(&a, &b).unwrap();
        for (w, g) in want.data().iter().zip(got.data()) {
            assert!((w - g).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul3_runs_per_batch() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], &[2, 2, 2]).unwrap();
        let c = matmul3(&a, &b).unwrap();
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matvec_outer_dot() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let x = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        assert_eq!(matvec(&a, &x).unwrap().data(), &[-1.0, -1.0]);
        let o = outer(&x, &x).unwrap();
        assert_eq!(o.data(), &[1.0, -1.0, -1.0, 1.0]);
        assert_eq!(dot(&x, &x).unwrap(), 2.0);
    }

    #[test]
    fn zero_skip_does_not_change_result() {
        // Rows of zeros (padding) must produce zero rows, same as the naive kernel.
        let a = m(vec![0.0, 0.0, 1.0, 2.0], 2, 2);
        let b = m(vec![3.0, 4.0, 5.0, 6.0], 2, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.row(0), &[0.0, 0.0]);
        assert_eq!(c.row(1), &[13.0, 16.0]);
    }

    /// Reference triple loop with the canonical per-element fold order.
    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn blocked_kernel_is_bit_identical_to_naive_fold() {
        use crate::init;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        // Remainder rows/cols on both sides of the MR/NR tile edges,
        // plus exact-zero entries (the skip-kernel equivalence).
        for (m_, k_, n_) in [
            (1, 3, 5),
            (4, 8, 4),
            (7, 5, 9),
            (13, 16, 6),
            (4, 8, 16),
            (5, 7, 17),
            (9, 4, 33),
            (8, 16, 48),
            (3, 96, 100),
        ] {
            let mut a = init::randn(&mut rng, &[m_, k_], 0.0, 1.0);
            for v in a.data_mut().iter_mut().step_by(3) {
                *v = 0.0;
            }
            let b = init::randn(&mut rng, &[k_, n_], 0.0, 1.0);
            let want = naive(a.data(), b.data(), m_, k_, n_);

            let mut dense = vec![0.0f32; m_ * n_];
            matmul_into(a.data(), b.data(), &mut dense, m_, k_, n_);
            let mut skip = vec![0.0f32; m_ * n_];
            matmul_into_skip_zeros(a.data(), b.data(), &mut skip, m_, k_, n_);
            for ((w, d), s) in want.iter().zip(&dense).zip(&skip) {
                assert_eq!(w.to_bits(), d.to_bits(), "blocked ({m_},{k_},{n_})");
                assert_eq!(w.to_bits(), s.to_bits(), "skip ({m_},{k_},{n_})");
            }

            // A·Bᵀ against the same fold: naive over b transposed.
            let bt = init::randn(&mut rng, &[n_, k_], 0.0, 1.0);
            let mut want_bt = vec![0.0f32; m_ * n_];
            for i in 0..m_ {
                for j in 0..n_ {
                    let mut acc = 0.0f32;
                    for t in 0..k_ {
                        acc += a.data()[i * k_ + t] * bt.data()[j * k_ + t];
                    }
                    want_bt[i * n_ + j] = acc;
                }
            }
            let mut got_bt = vec![0.0f32; m_ * n_];
            matmul_a_bt_into(a.data(), bt.data(), &mut got_bt, m_, k_, n_);
            for (w, g) in want_bt.iter().zip(&got_bt) {
                assert_eq!(w.to_bits(), g.to_bits(), "a_bt ({m_},{k_},{n_})");
            }

            // Aᵀ·B against the reference kernel's ascending-kk fold,
            // with zero entries exercising the skip-vs-dense equivalence
            // (a is (k_, m_) here: the shared dim leads).
            let mut at = init::randn(&mut rng, &[k_, m_], 0.0, 1.0);
            for v in at.data_mut().iter_mut().step_by(3) {
                *v = 0.0;
            }
            let b2 = init::randn(&mut rng, &[k_, n_], 0.0, 1.0);
            let want_at = matmul_at_b(&at, &b2).unwrap();
            let mut got_at = vec![0.0f32; m_ * n_];
            matmul_at_b_into(at.data(), b2.data(), &mut got_at, m_, k_, n_);
            for (w, g) in want_at.data().iter().zip(&got_at) {
                assert_eq!(w.to_bits(), g.to_bits(), "at_b ({m_},{k_},{n_})");
            }

            // The tensor-level fast twins run the tiled kernels through
            // the same shape checks as the tape ops: same bits.
            let fast = matmul_fast(&a, &b).unwrap();
            for (w, g) in want.iter().zip(fast.data()) {
                assert_eq!(w.to_bits(), g.to_bits(), "matmul_fast ({m_},{k_},{n_})");
            }
            let fast = matmul_a_bt_fast(&a, &bt).unwrap();
            for (w, g) in want_bt.iter().zip(fast.data()) {
                assert_eq!(w.to_bits(), g.to_bits(), "a_bt_fast ({m_},{k_},{n_})");
            }
            let fast = matmul_at_b_fast(&at, &b2).unwrap();
            for (w, g) in want_at.data().iter().zip(fast.data()) {
                assert_eq!(w.to_bits(), g.to_bits(), "at_b_fast ({m_},{k_},{n_})");
            }
        }
    }
}
