//! Matrix multiplication kernels.
//!
//! All kernels use the cache-friendly `i-k-j` loop order so the innermost
//! loop walks both the output row and the `B` row contiguously — this
//! autovectorizes well and is the difference between usable and unusable
//! CPU training speed. The parallel front-end lives in [`crate::parallel`].

use crate::{Result, Shape, Tensor, TensorError};

/// Dense `C = A · B` for rank-2 operands `(m, k) × (k, n) → (m, n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    let (kb, n) = b.shape().as_2d()?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// Raw kernel: `c += a · b` over flat row-major buffers.
///
/// `c` must be zeroed (or hold a partial sum to accumulate into).
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue; // padding rows are common in recommender batches
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

/// `C = Aᵀ · B` for `(k, m) × (k, n) → (m, n)` without materializing `Aᵀ`.
///
/// This is the gradient-of-weights shape (`dW = Xᵀ · dY`), hit every step.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = a.shape().as_2d()?;
    let (kb, n) = b.shape().as_2d()?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_at_b",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    // Outer loop over the shared dim keeps both reads sequential.
    for kk in 0..k {
        let a_row = &ad[kk * m..(kk + 1) * m];
        let b_row = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let o_row = &mut od[i * n..(i + 1) * n];
            for (ov, &bv) in o_row.iter_mut().zip(b_row) {
                *ov += av * bv;
            }
        }
    }
    Ok(out)
}

/// `C = A · Bᵀ` for `(m, k) × (n, k) → (m, n)` without materializing `Bᵀ`.
///
/// This is the attention-score shape (`Q · Kᵀ`) and the gradient-of-input
/// shape (`dX = dY · Wᵀ`).
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    let (n, kb) = b.shape().as_2d()?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_a_bt",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let o_row = &mut od[i * n..(i + 1) * n];
        for (j, ov) in o_row.iter_mut().enumerate() {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *ov = acc;
        }
    }
    Ok(out)
}

/// Batched matmul for rank-3 operands `(b, m, k) × (b, k, n) → (b, m, n)`.
pub fn matmul3(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ba, m, k) = a.shape().as_3d()?;
    let (bb, kb, n) = b.shape().as_3d()?;
    if ba != bb || k != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul3",
        });
    }
    let mut out = Tensor::zeros(&[ba, m, n]);
    for bi in 0..ba {
        let a_sl = &a.data()[bi * m * k..(bi + 1) * m * k];
        let b_sl = &b.data()[bi * k * n..(bi + 1) * k * n];
        let o_sl = &mut out.data_mut()[bi * m * n..(bi + 1) * m * n];
        matmul_into(a_sl, b_sl, o_sl, m, k, n);
    }
    Ok(out)
}

/// Matrix–vector product `(m, k) × (k,) → (m,)`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    if x.dims() != [k] {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
            op: "matvec",
        });
    }
    let mut out = Tensor::zeros(&[m]);
    for i in 0..m {
        let row = &a.data()[i * k..(i + 1) * k];
        out.data_mut()[i] = row.iter().zip(x.data()).map(|(&a, &b)| a * b).sum();
    }
    Ok(out)
}

/// Outer product `(m,) × (n,) → (m, n)`.
pub fn outer(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 1 || b.rank() != 1 {
        return Err(TensorError::RankMismatch { expected: 1, got: a.rank().max(b.rank()), op: "outer" });
    }
    let (m, n) = (a.numel(), b.numel());
    let mut data = Vec::with_capacity(m * n);
    for &av in a.data() {
        for &bv in b.data() {
            data.push(av * bv);
        }
    }
    Ok(Tensor::from_vec(data, &[m, n]).expect("sized above"))
}

/// Dot product of two equal-length rank-1 tensors.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32> {
    if !Shape::new(a.dims()).same_as(&Shape::new(b.dims())) || a.rank() != 1 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "dot",
        });
    }
    Ok(a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: Vec<f32>, r: usize, c: usize) -> Tensor {
        Tensor::from_vec(v, &[r, c]).unwrap()
    }

    #[test]
    fn matmul_small_known_result() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = m(vec![5.0, 6.0, 7.0, 8.0], 2, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let c = matmul(&a, &Tensor::eye(3)).unwrap();
        assert_eq!(c, a);
        let c = matmul(&Tensor::eye(2), &a).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = m(vec![0.0; 6], 2, 3);
        let b = m(vec![0.0; 8], 2, 4);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = m(vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0], 3, 2);
        let b = m(vec![2.0, 1.0, 0.0, -1.0, 1.5, 2.5], 3, 2);
        // Aᵀ·B
        let want = matmul(&a.transpose2().unwrap(), &b).unwrap();
        let got = matmul_at_b(&a, &b).unwrap();
        for (w, g) in want.data().iter().zip(got.data()) {
            assert!((w - g).abs() < 1e-6);
        }
        // A·Bᵀ
        let want = matmul(&a, &b.transpose2().unwrap()).unwrap();
        let got = matmul_a_bt(&a, &b).unwrap();
        for (w, g) in want.data().iter().zip(got.data()) {
            assert!((w - g).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul3_runs_per_batch() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], &[2, 2, 2]).unwrap();
        let c = matmul3(&a, &b).unwrap();
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matvec_outer_dot() {
        let a = m(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let x = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        assert_eq!(matvec(&a, &x).unwrap().data(), &[-1.0, -1.0]);
        let o = outer(&x, &x).unwrap();
        assert_eq!(o.data(), &[1.0, -1.0, -1.0, 1.0]);
        assert_eq!(dot(&x, &x).unwrap(), 2.0);
    }

    #[test]
    fn zero_skip_does_not_change_result() {
        // Rows of zeros (padding) must produce zero rows, same as the naive kernel.
        let a = m(vec![0.0, 0.0, 1.0, 2.0], 2, 2);
        let b = m(vec![3.0, 4.0, 5.0, 6.0], 2, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.row(0), &[0.0, 0.0]);
        assert_eq!(c.row(1), &[13.0, 16.0]);
    }
}
