//! Row-wise softmax kernels, including the causal-masked variant used by
//! the self-attention layers (§IV-B of the paper: links between `Q_i` and
//! `K_j` are prohibited for `j > i`).

use crate::{Result, Tensor, TensorError};

/// Numerically stable softmax over each row of a rank-2 tensor.
pub fn softmax_rows(a: &Tensor) -> Result<Tensor> {
    let (r, c) = a.shape().as_2d()?;
    let mut out = a.clone();
    for i in 0..r {
        softmax_slice(&mut out.data_mut()[i * c..(i + 1) * c]);
    }
    Ok(out)
}

/// Stable softmax of a mutable slice in place.
#[inline(always)]
pub fn softmax_slice(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    if !max.is_finite() {
        // Entire row is -inf (fully masked): fall back to uniform to avoid NaN.
        let u = 1.0 / row.len().max(1) as f32;
        row.iter_mut().for_each(|x| *x = u);
        return;
    }
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    row.iter_mut().for_each(|x| *x *= inv);
}

/// Stable log-softmax over each row of a rank-2 tensor.
pub fn log_softmax_rows(a: &Tensor) -> Result<Tensor> {
    let (r, c) = a.shape().as_2d()?;
    let mut out = a.clone();
    for i in 0..r {
        let row = &mut out.data_mut()[i * c..(i + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let lse = max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
        row.iter_mut().for_each(|x| *x -= lse);
    }
    Ok(out)
}

/// Causal-masked softmax for square score matrices.
///
/// Row `i` attends only to columns `j ≤ i`; masked entries come out exactly
/// zero. This implements the attention constraint from SASRec that VSAN
/// inherits in both its inference and generative self-attention layers.
pub fn softmax_rows_masked(scores: &Tensor) -> Result<Tensor> {
    let (r, c) = scores.shape().as_2d()?;
    if r != c {
        return Err(TensorError::ShapeMismatch {
            lhs: scores.dims().to_vec(),
            rhs: scores.dims().to_vec(),
            op: "softmax_rows_masked (square required)",
        });
    }
    let mut out = Tensor::zeros(&[r, c]);
    softmax_rows_masked_body(scores.data(), out.data_mut(), r);
    Ok(out)
}

/// Fast-tier twin of [`softmax_rows_masked`]: the same per-row sequence
/// compiled with AVX2 codegen when the CPU supports it (same source,
/// same bits — see `ops::matmul`'s module header). The fused attention
/// kernel bypasses this op entirely on the fast tier; this twin covers
/// graphs that build `softmax_causal` directly.
pub fn softmax_rows_masked_fast(scores: &Tensor) -> Result<Tensor> {
    let (r, c) = scores.shape().as_2d()?;
    if r != c {
        return Err(TensorError::ShapeMismatch {
            lhs: scores.dims().to_vec(),
            rhs: scores.dims().to_vec(),
            op: "softmax_rows_masked (square required)",
        });
    }
    let mut out = Tensor::zeros(&[r, c]);
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { softmax_rows_masked_avx2(scores.data(), out.data_mut(), r) };
        return Ok(out);
    }
    softmax_rows_masked_body(scores.data(), out.data_mut(), r);
    Ok(out)
}

/// [`softmax_rows_masked_fast`]'s body compiled with AVX2 codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn softmax_rows_masked_avx2(scores: &[f32], out: &mut [f32], r: usize) {
    softmax_rows_masked_body(scores, out, r)
}

#[inline(always)]
fn softmax_rows_masked_body(scores: &[f32], out: &mut [f32], r: usize) {
    let c = r;
    for i in 0..r {
        let src = &scores[i * c..i * c + i + 1];
        let max = src.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f32;
        let dst = &mut out[i * c..(i + 1) * c];
        for j in 0..=i {
            let e = (src[j] - max).exp();
            dst[j] = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for v in dst[..=i].iter_mut() {
            *v *= inv;
        }
        // dst[i+1..] stays zero: future positions carry no weight.
    }
}

// ---------------------------------------------------------------------------
// `_into` kernel tier: arena-friendly variants writing caller buffers.
// Same three-piece idiom as `ops/elementwise.rs`: scalar reference, AVX2
// dispatcher, and a feature-gated twin sharing one `#[inline(always)]`
// body — bit-identical by construction. The max/exp/sum folds inside stay
// strictly sequential (never reassociated); only the copy and normalize
// loops are legal for LLVM to vectorize.
// ---------------------------------------------------------------------------

/// Row softmax over flat row-major buffers: copies each `src` row into
/// `out` and applies [`softmax_slice`] — the exact sequence of
/// [`softmax_rows`] without the output allocation.
pub fn softmax_rows_into(src: &[f32], out: &mut [f32], rows: usize, c: usize) {
    softmax_rows_into_body(src, out, rows, c)
}

/// AVX2-dispatched twin of [`softmax_rows_into`] (shared body, identical
/// bits).
pub fn softmax_rows_into_fast(src: &[f32], out: &mut [f32], rows: usize, c: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::ops::matmul::avx2_available() {
            // SAFETY: AVX2 presence checked at runtime.
            unsafe { softmax_rows_into_avx2(src, out, rows, c) };
            return;
        }
    }
    softmax_rows_into_body(src, out, rows, c)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn softmax_rows_into_avx2(src: &[f32], out: &mut [f32], rows: usize, c: usize) {
    softmax_rows_into_body(src, out, rows, c)
}

#[inline(always)]
fn softmax_rows_into_body(src: &[f32], out: &mut [f32], rows: usize, c: usize) {
    debug_assert_eq!(src.len(), rows * c);
    debug_assert_eq!(out.len(), rows * c);
    for i in 0..rows {
        let dst = &mut out[i * c..(i + 1) * c];
        dst.copy_from_slice(&src[i * c..(i + 1) * c]);
        softmax_slice(dst);
    }
}

/// Causal-masked softmax writing a caller buffer. `out` must be zeroed
/// (masked entries `j > i` are left untouched and must read exactly 0.0),
/// which arena buffers guarantee.
pub fn softmax_rows_masked_into(scores: &[f32], out: &mut [f32], r: usize) {
    debug_assert_eq!(scores.len(), r * r);
    debug_assert_eq!(out.len(), r * r);
    softmax_rows_masked_body(scores, out, r)
}

/// AVX2-dispatched twin of [`softmax_rows_masked_into`] (shared body,
/// identical bits).
pub fn softmax_rows_masked_into_fast(scores: &[f32], out: &mut [f32], r: usize) {
    debug_assert_eq!(scores.len(), r * r);
    debug_assert_eq!(out.len(), r * r);
    #[cfg(target_arch = "x86_64")]
    {
        if crate::ops::matmul::avx2_available() {
            // SAFETY: AVX2 presence checked at runtime.
            unsafe { softmax_rows_masked_avx2(scores, out, r) };
            return;
        }
    }
    softmax_rows_masked_body(scores, out, r)
}

/// Softmax backward over flat buffers: for each row,
/// `dot = Σ_j y[j]·g[j]` (strictly sequential fold) then
/// `out[j] = y[j] * (g[j] - dot)` — the exact per-row sequence of the
/// tape's softmax backward. Covers both the plain and causal-masked
/// variants (masked positions have `y = 0`, contributing nothing).
pub fn softmax_grad_into(y: &[f32], g: &[f32], out: &mut [f32], rows: usize, c: usize) {
    softmax_grad_into_body(y, g, out, rows, c)
}

/// AVX2-dispatched twin of [`softmax_grad_into`] (shared body, identical
/// bits — the dot fold stays sequential in both tiers).
pub fn softmax_grad_into_fast(y: &[f32], g: &[f32], out: &mut [f32], rows: usize, c: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::ops::matmul::avx2_available() {
            // SAFETY: AVX2 presence checked at runtime.
            unsafe { softmax_grad_into_avx2(y, g, out, rows, c) };
            return;
        }
    }
    softmax_grad_into_body(y, g, out, rows, c)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn softmax_grad_into_avx2(y: &[f32], g: &[f32], out: &mut [f32], rows: usize, c: usize) {
    softmax_grad_into_body(y, g, out, rows, c)
}

#[inline(always)]
fn softmax_grad_into_body(y: &[f32], g: &[f32], out: &mut [f32], rows: usize, c: usize) {
    debug_assert_eq!(y.len(), rows * c);
    debug_assert_eq!(g.len(), rows * c);
    debug_assert_eq!(out.len(), rows * c);
    for i in 0..rows {
        let y_row = &y[i * c..(i + 1) * c];
        let g_row = &g[i * c..(i + 1) * c];
        let dot: f32 = y_row.iter().zip(g_row).map(|(a, b)| a * b).sum();
        let o_row = &mut out[i * c..(i + 1) * c];
        for j in 0..c {
            o_row[j] = y_row[j] * (g_row[j] - dot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = softmax_rows(&a).unwrap();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotonic in the logits.
        assert!(s.get2(0, 2) > s.get2(0, 1));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = a.map(|x| x + 1000.0);
        let sa = softmax_rows(&a).unwrap();
        let sb = softmax_rows(&b).unwrap();
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(sb.all_finite());
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = Tensor::from_vec(vec![0.5, -1.5, 2.0, 0.0], &[1, 4]).unwrap();
        let ls = log_softmax_rows(&a).unwrap();
        let s = softmax_rows(&a).unwrap();
        for (l, p) in ls.data().iter().zip(s.data()) {
            assert!((l.exp() - p).abs() < 1e-6);
        }
    }

    #[test]
    fn causal_mask_zeroes_future() {
        let a = Tensor::from_vec(vec![5.0; 9], &[3, 3]).unwrap();
        let s = softmax_rows_masked(&a).unwrap();
        // Row 0 attends only to itself.
        assert_eq!(s.row(0), &[1.0, 0.0, 0.0]);
        // Row 1 splits between 0 and 1.
        assert!((s.get2(1, 0) - 0.5).abs() < 1e-6);
        assert_eq!(s.get2(1, 2), 0.0);
        // Row 2 uniform over all three.
        for j in 0..3 {
            assert!((s.get2(2, j) - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn causal_mask_requires_square() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(softmax_rows_masked(&a).is_err());
        assert!(softmax_rows_masked_fast(&a).is_err());
    }

    #[test]
    fn fast_masked_softmax_is_bit_identical() {
        use crate::init;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1, 2, 7, 16, 33] {
            let a = init::randn(&mut rng, &[n, n], 0.0, 2.0);
            let want = softmax_rows_masked(&a).unwrap();
            let got = softmax_rows_masked_fast(&a).unwrap();
            for (w, g) in want.data().iter().zip(got.data()) {
                assert_eq!(w.to_bits(), g.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn fully_masked_row_falls_back_to_uniform() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_slice(&mut row);
        for v in row {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn into_kernels_are_bit_identical_across_tiers_and_to_the_reference() {
        use crate::init;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        for (r, c) in [(1usize, 1usize), (3, 5), (16, 16), (50, 64), (7, 200)] {
            let a = init::randn(&mut rng, &[r, c], 0.0, 3.0);
            let want = softmax_rows(&a).unwrap();
            let mut ref_out = vec![0.0f32; r * c];
            let mut fast_out = vec![0.0f32; r * c];
            softmax_rows_into(a.data(), &mut ref_out, r, c);
            softmax_rows_into_fast(a.data(), &mut fast_out, r, c);
            for j in 0..r * c {
                assert_eq!(want.data()[j].to_bits(), ref_out[j].to_bits(), "ref {r}x{c}");
                assert_eq!(ref_out[j].to_bits(), fast_out[j].to_bits(), "fast {r}x{c}");
            }
            // Backward: dot-then-scale sequence, both tiers.
            let g = init::randn(&mut rng, &[r, c], 0.0, 1.0);
            let mut dref = vec![0.0f32; r * c];
            let mut dfast = vec![0.0f32; r * c];
            softmax_grad_into(ref_out.as_slice(), g.data(), &mut dref, r, c);
            softmax_grad_into_fast(ref_out.as_slice(), g.data(), &mut dfast, r, c);
            for j in 0..r * c {
                assert_eq!(dref[j].to_bits(), dfast[j].to_bits(), "grad {r}x{c}");
            }
        }
    }

    #[test]
    fn masked_into_matches_the_tensor_entry_points() {
        use crate::init;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 4, 17, 33] {
            let a = init::randn(&mut rng, &[n, n], 0.0, 2.0);
            let want = softmax_rows_masked(&a).unwrap();
            let mut ref_out = vec![0.0f32; n * n];
            let mut fast_out = vec![0.0f32; n * n];
            softmax_rows_masked_into(a.data(), &mut ref_out, n);
            softmax_rows_masked_into_fast(a.data(), &mut fast_out, n);
            for j in 0..n * n {
                assert_eq!(want.data()[j].to_bits(), ref_out[j].to_bits(), "n={n}");
                assert_eq!(ref_out[j].to_bits(), fast_out[j].to_bits(), "n={n}");
            }
        }
    }
}
