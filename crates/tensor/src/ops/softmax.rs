//! Row-wise softmax kernels, including the causal-masked variant used by
//! the self-attention layers (§IV-B of the paper: links between `Q_i` and
//! `K_j` are prohibited for `j > i`).

use crate::{Result, Tensor, TensorError};

/// Numerically stable softmax over each row of a rank-2 tensor.
pub fn softmax_rows(a: &Tensor) -> Result<Tensor> {
    let (r, c) = a.shape().as_2d()?;
    let mut out = a.clone();
    for i in 0..r {
        softmax_slice(&mut out.data_mut()[i * c..(i + 1) * c]);
    }
    Ok(out)
}

/// Stable softmax of a mutable slice in place.
pub fn softmax_slice(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    if !max.is_finite() {
        // Entire row is -inf (fully masked): fall back to uniform to avoid NaN.
        let u = 1.0 / row.len().max(1) as f32;
        row.iter_mut().for_each(|x| *x = u);
        return;
    }
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    row.iter_mut().for_each(|x| *x *= inv);
}

/// Stable log-softmax over each row of a rank-2 tensor.
pub fn log_softmax_rows(a: &Tensor) -> Result<Tensor> {
    let (r, c) = a.shape().as_2d()?;
    let mut out = a.clone();
    for i in 0..r {
        let row = &mut out.data_mut()[i * c..(i + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let lse = max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
        row.iter_mut().for_each(|x| *x -= lse);
    }
    Ok(out)
}

/// Causal-masked softmax for square score matrices.
///
/// Row `i` attends only to columns `j ≤ i`; masked entries come out exactly
/// zero. This implements the attention constraint from SASRec that VSAN
/// inherits in both its inference and generative self-attention layers.
pub fn softmax_rows_masked(scores: &Tensor) -> Result<Tensor> {
    let (r, c) = scores.shape().as_2d()?;
    if r != c {
        return Err(TensorError::ShapeMismatch {
            lhs: scores.dims().to_vec(),
            rhs: scores.dims().to_vec(),
            op: "softmax_rows_masked (square required)",
        });
    }
    let mut out = Tensor::zeros(&[r, c]);
    softmax_rows_masked_body(scores.data(), out.data_mut(), r);
    Ok(out)
}

/// Fast-tier twin of [`softmax_rows_masked`]: the same per-row sequence
/// compiled with AVX2 codegen when the CPU supports it (same source,
/// same bits — see `ops::matmul`'s module header). The fused attention
/// kernel bypasses this op entirely on the fast tier; this twin covers
/// graphs that build `softmax_causal` directly.
pub fn softmax_rows_masked_fast(scores: &Tensor) -> Result<Tensor> {
    let (r, c) = scores.shape().as_2d()?;
    if r != c {
        return Err(TensorError::ShapeMismatch {
            lhs: scores.dims().to_vec(),
            rhs: scores.dims().to_vec(),
            op: "softmax_rows_masked (square required)",
        });
    }
    let mut out = Tensor::zeros(&[r, c]);
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { softmax_rows_masked_avx2(scores.data(), out.data_mut(), r) };
        return Ok(out);
    }
    softmax_rows_masked_body(scores.data(), out.data_mut(), r);
    Ok(out)
}

/// [`softmax_rows_masked_fast`]'s body compiled with AVX2 codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn softmax_rows_masked_avx2(scores: &[f32], out: &mut [f32], r: usize) {
    softmax_rows_masked_body(scores, out, r)
}

#[inline(always)]
fn softmax_rows_masked_body(scores: &[f32], out: &mut [f32], r: usize) {
    let c = r;
    for i in 0..r {
        let src = &scores[i * c..i * c + i + 1];
        let max = src.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f32;
        let dst = &mut out[i * c..(i + 1) * c];
        for j in 0..=i {
            let e = (src[j] - max).exp();
            dst[j] = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for v in dst[..=i].iter_mut() {
            *v *= inv;
        }
        // dst[i+1..] stays zero: future positions carry no weight.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = softmax_rows(&a).unwrap();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotonic in the logits.
        assert!(s.get2(0, 2) > s.get2(0, 1));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = a.map(|x| x + 1000.0);
        let sa = softmax_rows(&a).unwrap();
        let sb = softmax_rows(&b).unwrap();
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(sb.all_finite());
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = Tensor::from_vec(vec![0.5, -1.5, 2.0, 0.0], &[1, 4]).unwrap();
        let ls = log_softmax_rows(&a).unwrap();
        let s = softmax_rows(&a).unwrap();
        for (l, p) in ls.data().iter().zip(s.data()) {
            assert!((l.exp() - p).abs() < 1e-6);
        }
    }

    #[test]
    fn causal_mask_zeroes_future() {
        let a = Tensor::from_vec(vec![5.0; 9], &[3, 3]).unwrap();
        let s = softmax_rows_masked(&a).unwrap();
        // Row 0 attends only to itself.
        assert_eq!(s.row(0), &[1.0, 0.0, 0.0]);
        // Row 1 splits between 0 and 1.
        assert!((s.get2(1, 0) - 0.5).abs() < 1e-6);
        assert_eq!(s.get2(1, 2), 0.0);
        // Row 2 uniform over all three.
        for j in 0..3 {
            assert!((s.get2(2, j) - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn causal_mask_requires_square() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(softmax_rows_masked(&a).is_err());
        assert!(softmax_rows_masked_fast(&a).is_err());
    }

    #[test]
    fn fast_masked_softmax_is_bit_identical() {
        use crate::init;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1, 2, 7, 16, 33] {
            let a = init::randn(&mut rng, &[n, n], 0.0, 2.0);
            let want = softmax_rows_masked(&a).unwrap();
            let got = softmax_rows_masked_fast(&a).unwrap();
            for (w, g) in want.data().iter().zip(got.data()) {
                assert_eq!(w.to_bits(), g.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn fully_masked_row_falls_back_to_uniform() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_slice(&mut row);
        for v in row {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }
}
