//! Layer-normalization statistics (Ba et al. 2016), applied per row.
//!
//! The paper applies LayerNorm after both the attention and feed-forward
//! sub-layers of each self-attention block (Eqs. 7, 9, 16). The forward
//! kernel lives here; the autograd layer reuses the cached statistics for
//! the backward pass.

use crate::{Result, Tensor};

/// Cached per-row statistics from a layer-norm forward pass.
#[derive(Debug, Clone)]
pub struct LayerNormStats {
    /// Per-row mean.
    pub mean: Vec<f32>,
    /// Per-row inverse standard deviation `1 / sqrt(var + eps)`.
    pub inv_std: Vec<f32>,
}

/// Default epsilon used across the workspace.
pub const LN_EPS: f32 = 1e-5;

/// Normalize each row of a rank-2 tensor to zero mean / unit variance and
/// apply the learned affine transform `gamma ⊙ x̂ + beta`.
///
/// Returns the output along with the cached statistics needed by the
/// backward pass.
pub fn layer_norm_rows(
    x: &Tensor,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> Result<(Tensor, LayerNormStats)> {
    let (r, c) = x.shape().as_2d()?;
    assert_eq!(gamma.len(), c, "gamma length must match row width");
    assert_eq!(beta.len(), c, "beta length must match row width");
    let mut out = Tensor::zeros(&[r, c]);
    let mut mean = Vec::with_capacity(r);
    let mut inv_std = Vec::with_capacity(r);
    for i in 0..r {
        let row = &x.data()[i * c..(i + 1) * c];
        let o_row = &mut out.data_mut()[i * c..(i + 1) * c];
        let (m, is) = layer_norm_row(row, gamma, beta, eps, o_row);
        mean.push(m);
        inv_std.push(is);
    }
    Ok((out, LayerNormStats { mean, inv_std }))
}

/// Allocation-free LayerNorm over flat row-major buffers (the inference
/// fast path's variant): normalizes `rows × c` from `x` into `out`.
/// Shares [`layer_norm_row`] with [`layer_norm_rows`], so the two are
/// bit-identical by construction.
pub fn layer_norm_rows_into(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    rows: usize,
    c: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(x.len(), rows * c);
    debug_assert_eq!(out.len(), rows * c);
    debug_assert_eq!(gamma.len(), c);
    debug_assert_eq!(beta.len(), c);
    for i in 0..rows {
        let row = &x[i * c..(i + 1) * c];
        let o_row = &mut out[i * c..(i + 1) * c];
        layer_norm_row(row, gamma, beta, eps, o_row);
    }
}

/// Like [`layer_norm_rows_into`], but also captures the per-row statistics
/// into caller-provided vectors (pushed in row order) so the autograd tape
/// can run the backward pass from arena-owned buffers. Shares
/// [`layer_norm_row`] with both other entry points, so all three are
/// bit-identical by construction.
#[allow(clippy::too_many_arguments)]
pub fn layer_norm_rows_stats_into(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    rows: usize,
    c: usize,
    out: &mut [f32],
    mean: &mut Vec<f32>,
    inv_std: &mut Vec<f32>,
) {
    assert_eq!(gamma.len(), c, "gamma length must match row width");
    assert_eq!(beta.len(), c, "beta length must match row width");
    debug_assert_eq!(x.len(), rows * c);
    debug_assert_eq!(out.len(), rows * c);
    for i in 0..rows {
        let row = &x[i * c..(i + 1) * c];
        let o_row = &mut out[i * c..(i + 1) * c];
        let (m, is) = layer_norm_row(row, gamma, beta, eps, o_row);
        mean.push(m);
        inv_std.push(is);
    }
}

/// Normalize one row; returns `(mean, inv_std)`. The single definition
/// both entry points use — the fixed accumulation order here is part of
/// the workspace-wide bitwise-determinism contract.
#[inline]
fn layer_norm_row(row: &[f32], gamma: &[f32], beta: &[f32], eps: f32, o_row: &mut [f32]) -> (f32, f32) {
    let c = row.len();
    let m: f32 = row.iter().sum::<f32>() / c as f32;
    let var: f32 = row.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / c as f32;
    let is = 1.0 / (var + eps).sqrt();
    for j in 0..c {
        o_row[j] = gamma[j] * (row[j] - m) * is + beta[j];
    }
    (m, is)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_rows_have_zero_mean_unit_var() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]).unwrap();
        let gamma = vec![1.0; 4];
        let beta = vec![0.0; 4];
        let (y, _) = layer_norm_rows(&x, &gamma, &beta, LN_EPS).unwrap();
        for i in 0..2 {
            let row = y.row(i);
            let m: f32 = row.iter().sum::<f32>() / 4.0;
            let v: f32 = row.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / 4.0;
            assert!(m.abs() < 1e-5, "mean {m}");
            assert!((v - 1.0).abs() < 1e-3, "var {v}");
        }
    }

    #[test]
    fn affine_params_shift_and_scale() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let (plain, _) = layer_norm_rows(&x, &[1.0; 4], &[0.0; 4], LN_EPS).unwrap();
        let (scaled, _) = layer_norm_rows(&x, &[2.0; 4], &[1.0; 4], LN_EPS).unwrap();
        for (p, s) in plain.data().iter().zip(scaled.data()) {
            assert!((s - (2.0 * p + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn constant_row_is_handled_by_eps() {
        let x = Tensor::from_vec(vec![5.0; 4], &[1, 4]).unwrap();
        let (y, stats) = layer_norm_rows(&x, &[1.0; 4], &[0.0; 4], LN_EPS).unwrap();
        assert!(y.all_finite());
        assert!(y.data().iter().all(|&v| v.abs() < 1e-3));
        assert!(stats.inv_std[0].is_finite());
    }

    #[test]
    fn stats_are_cached_per_row() {
        let x = Tensor::from_vec(vec![0.0, 2.0, 100.0, 102.0], &[2, 2]).unwrap();
        let (_, stats) = layer_norm_rows(&x, &[1.0; 2], &[0.0; 2], LN_EPS).unwrap();
        assert!((stats.mean[0] - 1.0).abs() < 1e-6);
        assert!((stats.mean[1] - 101.0).abs() < 1e-5);
        // Same spread → same inv_std.
        assert!((stats.inv_std[0] - stats.inv_std[1]).abs() < 1e-4);
    }
}
