//! Numeric kernels on [`crate::Tensor`].
//!
//! Kernels are free functions that allocate fresh outputs; the autograd tape
//! composes them. Submodules group by family; the most common entry points
//! are re-exported here.

pub mod attention;
pub mod elementwise;
pub mod matmul;
pub mod norm;
pub mod reduce;
pub mod softmax;

pub use attention::{
    causal_attention_append_into, causal_attention_into, causal_attention_last_row_into,
    causal_attention_resume_into, causal_attention_train_backward, causal_attention_train_forward,
};
pub use elementwise::{add, add_scaled_into, axpy, hadamard, scale, sub};
pub use matmul::{
    matmul, matmul_at_b, matmul_at_b_fast, matmul_at_b_into, matmul_a_bt, matmul_a_bt_fast,
    matmul_a_bt_into, matmul_fast, matmul3,
};
pub use norm::{layer_norm_rows, layer_norm_rows_into, LayerNormStats};
pub use reduce::{mean_all, sum_all, sum_axis0, sum_rows};
pub use softmax::{log_softmax_rows, softmax_rows, softmax_rows_masked, softmax_rows_masked_fast};
