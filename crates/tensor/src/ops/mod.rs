//! Numeric kernels on [`crate::Tensor`].
//!
//! Kernels are free functions that allocate fresh outputs; the autograd tape
//! composes them. Submodules group by family; the most common entry points
//! are re-exported here.

pub mod attention;
pub mod elementwise;
pub mod matmul;
pub mod norm;
pub mod reduce;
pub mod softmax;

pub use attention::{
    causal_attention_append_into, causal_attention_into, causal_attention_last_row_into,
    causal_attention_resume_into, causal_attention_train_backward, causal_attention_train_forward,
};
pub use elementwise::{
    add, add_into, add_into_fast, add_row_broadcast_into, add_row_broadcast_into_fast,
    add_scaled_into, affine_into, affine_into_fast, axpy, exp_into, exp_into_fast, hadamard,
    hadamard_into, hadamard_into_fast, relu_grad_into, relu_grad_into_fast, relu_into,
    relu_into_fast, scale, scale_into, scale_into_fast, sigmoid_grad_into, sigmoid_grad_into_fast,
    sigmoid_into, sigmoid_into_fast, sub, sub_into, sub_into_fast, tanh_grad_into,
    tanh_grad_into_fast, tanh_into, tanh_into_fast,
};
pub use matmul::{
    matmul, matmul_at_b, matmul_at_b_fast, matmul_at_b_into, matmul_at_b_ref_into, matmul_a_bt,
    matmul_a_bt_fast, matmul_a_bt_fast_into, matmul_a_bt_into, matmul_a_bt_ref_into, matmul_fast,
    matmul3, transpose_into,
};
pub use norm::{
    layer_norm_rows, layer_norm_rows_into, layer_norm_rows_stats_into, LayerNormStats,
};
pub use reduce::{mean_all, sum_all, sum_axis0, sum_rows};
pub use softmax::{
    log_softmax_rows, softmax_grad_into, softmax_grad_into_fast, softmax_rows, softmax_rows_into,
    softmax_rows_into_fast, softmax_rows_masked, softmax_rows_masked_fast,
    softmax_rows_masked_into, softmax_rows_masked_into_fast,
};
