//! Reduction kernels: sums, means, and axis reductions.

use crate::{Result, Tensor};

/// Sum of all elements.
pub fn sum_all(a: &Tensor) -> f32 {
    a.data().iter().sum()
}

/// Mean of all elements (0.0 for empty tensors).
pub fn mean_all(a: &Tensor) -> f32 {
    if a.numel() == 0 {
        0.0
    } else {
        sum_all(a) / a.numel() as f32
    }
}

/// Row sums of a rank-2 tensor: `(r, c) → (r,)`.
pub fn sum_rows(a: &Tensor) -> Result<Tensor> {
    let (r, c) = a.shape().as_2d()?;
    let mut out = Tensor::zeros(&[r]);
    for i in 0..r {
        out.data_mut()[i] = a.data()[i * c..(i + 1) * c].iter().sum();
    }
    Ok(out)
}

/// Column sums of a rank-2 tensor: `(r, c) → (c,)`.
///
/// This is the bias-gradient reduction (`db = Σ_rows dY`).
pub fn sum_axis0(a: &Tensor) -> Result<Tensor> {
    let (r, c) = a.shape().as_2d()?;
    let mut out = Tensor::zeros(&[c]);
    let od = out.data_mut();
    for i in 0..r {
        let row = &a.data()[i * c..(i + 1) * c];
        for (o, &x) in od.iter_mut().zip(row) {
            *o += x;
        }
    }
    Ok(out)
}

/// Row max of a rank-2 tensor: `(r, c) → (r,)`. Empty rows yield `-inf`.
pub fn max_rows(a: &Tensor) -> Result<Tensor> {
    let (r, c) = a.shape().as_2d()?;
    let mut out = Tensor::full(&[r], f32::NEG_INFINITY);
    for i in 0..r {
        let m = a.data()[i * c..(i + 1) * c].iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        out.data_mut()[i] = m;
    }
    Ok(out)
}

/// Per-row argmax of a rank-2 tensor. Ties break to the lowest index.
pub fn argmax_rows(a: &Tensor) -> Result<Vec<usize>> {
    let (r, c) = a.shape().as_2d()?;
    let mut out = Vec::with_capacity(r);
    for i in 0..r {
        let row = &a.data()[i * c..(i + 1) * c];
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (j, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = j;
            }
        }
        out.push(best);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_reductions() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(sum_all(&a), 10.0);
        assert_eq!(mean_all(&a), 2.5);
    }

    #[test]
    fn axis_reductions() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(sum_rows(&a).unwrap().data(), &[6.0, 15.0]);
        assert_eq!(sum_axis0(&a).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(max_rows(&a).unwrap().data(), &[3.0, 6.0]);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        let a = Tensor::from_vec(vec![1.0, 5.0, 5.0, 0.0, -1.0, -2.0], &[2, 3]).unwrap();
        assert_eq!(argmax_rows(&a).unwrap(), vec![1, 0]);
    }

    #[test]
    fn rank_checks() {
        let v = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        assert!(sum_rows(&v).is_err());
        assert!(sum_axis0(&v).is_err());
        assert!(max_rows(&v).is_err());
        assert!(argmax_rows(&v).is_err());
    }
}
