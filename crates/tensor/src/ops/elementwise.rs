//! Elementwise binary/unary kernels and fused accumulation helpers.

use crate::{Result, Tensor, TensorError};

fn check_same(a: &Tensor, b: &Tensor, op: &'static str) -> Result<()> {
    if !a.shape().same_as(b.shape()) {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op,
        });
    }
    Ok(())
}

/// Elementwise `a + b` (identical shapes).
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "add")?;
    let mut out = a.clone();
    for (o, &x) in out.data_mut().iter_mut().zip(b.data()) {
        *o += x;
    }
    Ok(out)
}

/// Elementwise `a - b` (identical shapes).
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "sub")?;
    let mut out = a.clone();
    for (o, &x) in out.data_mut().iter_mut().zip(b.data()) {
        *o -= x;
    }
    Ok(out)
}

/// Elementwise product `a ⊙ b` (identical shapes).
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "hadamard")?;
    let mut out = a.clone();
    for (o, &x) in out.data_mut().iter_mut().zip(b.data()) {
        *o *= x;
    }
    Ok(out)
}

/// Scalar multiple `s · a`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// In-place accumulation `dst += s · src` (identical shapes).
///
/// This is the hot path of the backward pass (gradient accumulation), so it
/// avoids any allocation.
pub fn add_scaled_into(dst: &mut Tensor, src: &Tensor, s: f32) -> Result<()> {
    check_same(dst, src, "add_scaled_into")?;
    for (d, &x) in dst.data_mut().iter_mut().zip(src.data()) {
        *d += s * x;
    }
    Ok(())
}

/// `a + s·b` producing a new tensor (the classic axpy).
pub fn axpy(a: &Tensor, b: &Tensor, s: f32) -> Result<Tensor> {
    let mut out = a.clone();
    add_scaled_into(&mut out, b, s)?;
    Ok(out)
}

/// Broadcast-add a row vector `bias` (shape `(cols,)`) to every row of a
/// rank-2 tensor.
pub fn add_row_broadcast(a: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let (rows, cols) = a.shape().as_2d()?;
    if bias.dims() != [cols] {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: bias.dims().to_vec(),
            op: "add_row_broadcast",
        });
    }
    let mut out = a.clone();
    let b = bias.data();
    for r in 0..rows {
        let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
        for (o, &x) in row.iter_mut().zip(b) {
            *o += x;
        }
    }
    Ok(out)
}

/// ReLU activation.
pub fn relu(a: &Tensor) -> Tensor {
    a.map(|x| x.max(0.0))
}

/// Sigmoid activation (numerically stable two-branch form).
pub fn sigmoid(a: &Tensor) -> Tensor {
    a.map(stable_sigmoid)
}

/// Scalar stable sigmoid.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Hyperbolic tangent activation.
pub fn tanh(a: &Tensor) -> Tensor {
    a.map(f32::tanh)
}

/// Elementwise exponential.
pub fn exp(a: &Tensor) -> Tensor {
    a.map(f32::exp)
}

// ---------------------------------------------------------------------------
// `_into` kernel tier: arena-friendly variants writing caller buffers.
//
// Each kernel comes in three pieces, following the `ops/matmul.rs` /
// `softmax_rows_masked_fast` idiom:
//
//   * `<name>_into`       — the scalar reference kernel;
//   * `<name>_into_fast`  — runtime AVX2 dispatcher;
//   * an `unsafe` twin compiled with `target_feature(enable = "avx2")`
//     that calls the *same* `#[inline(always)]` body.
//
// Because both tiers execute one shared per-element definition (and the
// transcendentals stay scalar libm calls — no polynomial approximations,
// no reassociation), the fast tier is bit-identical to the reference by
// construction. LLVM is free to vectorize the legal parts (loads, stores,
// add/mul lanes) under the AVX2 feature. The differential proptest wall in
// `vsan-autograd` enforces the equivalence end to end.
// ---------------------------------------------------------------------------

macro_rules! unary_into_kernel {
    ($(#[$doc:meta])* $name:ident, $fast:ident, $avx2:ident, $body:ident,
     |$x:ident| $expr:expr) => {
        $(#[$doc])*
        pub fn $name(src: &[f32], out: &mut [f32]) {
            $body(src, out)
        }

        /// AVX2-dispatched twin of the scalar kernel — same
        /// `#[inline(always)]` body recompiled under the feature gate, so
        /// results are bit-identical by construction.
        pub fn $fast(src: &[f32], out: &mut [f32]) {
            #[cfg(target_arch = "x86_64")]
            {
                if crate::ops::matmul::avx2_available() {
                    // SAFETY: AVX2 presence checked at runtime.
                    unsafe { $avx2(src, out) };
                    return;
                }
            }
            $body(src, out)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2(src: &[f32], out: &mut [f32]) {
            $body(src, out)
        }

        #[inline(always)]
        fn $body(src: &[f32], out: &mut [f32]) {
            debug_assert_eq!(src.len(), out.len());
            for (o, &$x) in out.iter_mut().zip(src) {
                *o = $expr;
            }
        }
    };
}

macro_rules! binary_into_kernel {
    ($(#[$doc:meta])* $name:ident, $fast:ident, $avx2:ident, $body:ident,
     |$x:ident, $y:ident| $expr:expr) => {
        $(#[$doc])*
        pub fn $name(a: &[f32], b: &[f32], out: &mut [f32]) {
            $body(a, b, out)
        }

        /// AVX2-dispatched twin of the scalar kernel — same
        /// `#[inline(always)]` body recompiled under the feature gate, so
        /// results are bit-identical by construction.
        pub fn $fast(a: &[f32], b: &[f32], out: &mut [f32]) {
            #[cfg(target_arch = "x86_64")]
            {
                if crate::ops::matmul::avx2_available() {
                    // SAFETY: AVX2 presence checked at runtime.
                    unsafe { $avx2(a, b, out) };
                    return;
                }
            }
            $body(a, b, out)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2(a: &[f32], b: &[f32], out: &mut [f32]) {
            $body(a, b, out)
        }

        #[inline(always)]
        fn $body(a: &[f32], b: &[f32], out: &mut [f32]) {
            debug_assert_eq!(a.len(), b.len());
            debug_assert_eq!(a.len(), out.len());
            for i in 0..out.len() {
                let $x = a[i];
                let $y = b[i];
                out[i] = $expr;
            }
        }
    };
}

binary_into_kernel!(
    /// `out[i] = a[i] + b[i]` (same fold as [`add`]).
    add_into, add_into_fast, add_into_avx2, add_into_body, |x, y| x + y
);
binary_into_kernel!(
    /// `out[i] = a[i] - b[i]` (same fold as [`sub`]).
    sub_into, sub_into_fast, sub_into_avx2, sub_into_body, |x, y| x - y
);
binary_into_kernel!(
    /// `out[i] = a[i] * b[i]` (same fold as [`hadamard`]; also the dropout
    /// mask application forward and backward).
    hadamard_into, hadamard_into_fast, hadamard_into_avx2, hadamard_into_body, |x, y| x * y
);
binary_into_kernel!(
    /// Sigmoid backward: `out[i] = g[i] * (y[i] * (1 - y[i]))` with `a = g`
    /// (upstream grad) and `b = y` (saved activation) — the exact grouping
    /// of the reference backward loop.
    sigmoid_grad_into, sigmoid_grad_into_fast, sigmoid_grad_into_avx2, sigmoid_grad_into_body,
    |x, y| x * (y * (1.0 - y))
);
binary_into_kernel!(
    /// Tanh backward: `out[i] = g[i] * (1 - y[i]²)` with `a = g`, `b = y`.
    tanh_grad_into, tanh_grad_into_fast, tanh_grad_into_avx2, tanh_grad_into_body,
    |x, y| x * (1.0 - y * y)
);
binary_into_kernel!(
    /// ReLU backward: `out[i] = if x[i] <= 0 { 0 } else { g[i] }` with
    /// `a = g`, `b = x` (saved input).
    relu_grad_into, relu_grad_into_fast, relu_grad_into_avx2, relu_grad_into_body,
    |x, y| if y <= 0.0 { 0.0 } else { x }
);

unary_into_kernel!(
    /// `out[i] = max(src[i], 0)` (same definition as [`relu`]).
    relu_into, relu_into_fast, relu_into_avx2, relu_into_body, |x| x.max(0.0)
);
unary_into_kernel!(
    /// Stable two-branch sigmoid per element (same definition as
    /// [`sigmoid`]; the `exp` stays a scalar libm call in both tiers).
    sigmoid_into, sigmoid_into_fast, sigmoid_into_avx2, sigmoid_into_body,
    |x| stable_sigmoid(x)
);
unary_into_kernel!(
    /// `out[i] = tanh(src[i])` (scalar libm call in both tiers).
    tanh_into, tanh_into_fast, tanh_into_avx2, tanh_into_body, |x| x.tanh()
);
unary_into_kernel!(
    /// `out[i] = exp(src[i])` (scalar libm call in both tiers).
    exp_into, exp_into_fast, exp_into_avx2, exp_into_body, |x| x.exp()
);

/// `out[i] = src[i] * s` (same order as [`scale`]).
pub fn scale_into(src: &[f32], s: f32, out: &mut [f32]) {
    scale_into_body(src, s, out)
}

/// AVX2-dispatched twin of [`scale_into`] (shared body, identical bits).
pub fn scale_into_fast(src: &[f32], s: f32, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::ops::matmul::avx2_available() {
            // SAFETY: AVX2 presence checked at runtime.
            unsafe { scale_into_avx2(src, s, out) };
            return;
        }
    }
    scale_into_body(src, s, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scale_into_avx2(src: &[f32], s: f32, out: &mut [f32]) {
    scale_into_body(src, s, out)
}

#[inline(always)]
fn scale_into_body(src: &[f32], s: f32, out: &mut [f32]) {
    debug_assert_eq!(src.len(), out.len());
    for (o, &x) in out.iter_mut().zip(src) {
        *o = x * s;
    }
}

/// `out[i] = scale * src[i] + shift` (same order as the tape's affine map).
pub fn affine_into(src: &[f32], scale: f32, shift: f32, out: &mut [f32]) {
    affine_into_body(src, scale, shift, out)
}

/// AVX2-dispatched twin of [`affine_into`] (shared body, identical bits).
pub fn affine_into_fast(src: &[f32], scale: f32, shift: f32, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::ops::matmul::avx2_available() {
            // SAFETY: AVX2 presence checked at runtime.
            unsafe { affine_into_avx2(src, scale, shift, out) };
            return;
        }
    }
    affine_into_body(src, scale, shift, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn affine_into_avx2(src: &[f32], scale: f32, shift: f32, out: &mut [f32]) {
    affine_into_body(src, scale, shift, out)
}

#[inline(always)]
fn affine_into_body(src: &[f32], scale: f32, shift: f32, out: &mut [f32]) {
    debug_assert_eq!(src.len(), out.len());
    for (o, &x) in out.iter_mut().zip(src) {
        *o = scale * x + shift;
    }
}

/// Row-broadcast bias add over flat row-major buffers:
/// `out[r*c + j] = src[r*c + j] + bias[j]` (same fold as
/// [`add_row_broadcast`]).
pub fn add_row_broadcast_into(src: &[f32], bias: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    add_row_broadcast_into_body(src, bias, out, rows, cols)
}

/// AVX2-dispatched twin of [`add_row_broadcast_into`] (shared body,
/// identical bits).
pub fn add_row_broadcast_into_fast(
    src: &[f32],
    bias: &[f32],
    out: &mut [f32],
    rows: usize,
    cols: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::ops::matmul::avx2_available() {
            // SAFETY: AVX2 presence checked at runtime.
            unsafe { add_row_broadcast_into_avx2(src, bias, out, rows, cols) };
            return;
        }
    }
    add_row_broadcast_into_body(src, bias, out, rows, cols)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_row_broadcast_into_avx2(
    src: &[f32],
    bias: &[f32],
    out: &mut [f32],
    rows: usize,
    cols: usize,
) {
    add_row_broadcast_into_body(src, bias, out, rows, cols)
}

#[inline(always)]
fn add_row_broadcast_into_body(src: &[f32], bias: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    debug_assert_eq!(bias.len(), cols);
    for r in 0..rows {
        let s_row = &src[r * cols..(r + 1) * cols];
        let o_row = &mut out[r * cols..(r + 1) * cols];
        for ((o, &x), &b) in o_row.iter_mut().zip(s_row).zip(bias) {
            *o = x + b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn add_sub_hadamard() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(hadamard(&a, &b).unwrap().data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.0, 3.0]);
        assert!(add(&a, &b).is_err());
        assert!(sub(&a, &b).is_err());
        assert!(hadamard(&a, &b).is_err());
        let mut d = a.clone();
        assert!(add_scaled_into(&mut d, &b, 1.0).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let a = t(&[1.0, 1.0]);
        let b = t(&[2.0, 4.0]);
        assert_eq!(axpy(&a, &b, 0.5).unwrap().data(), &[2.0, 3.0]);
        let mut d = a.clone();
        add_scaled_into(&mut d, &b, -1.0).unwrap();
        assert_eq!(d.data(), &[-1.0, -3.0]);
    }

    #[test]
    fn row_broadcast_adds_bias_to_every_row() {
        let a = Tensor::from_vec(vec![0.0; 6], &[2, 3]).unwrap();
        let bias = t(&[1.0, 2.0, 3.0]);
        let out = add_row_broadcast(&a, &bias).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
        assert!(add_row_broadcast(&a, &t(&[1.0])).is_err());
    }

    #[test]
    fn activations() {
        let a = t(&[-1.0, 0.0, 2.0]);
        assert_eq!(relu(&a).data(), &[0.0, 0.0, 2.0]);
        let s = sigmoid(&a);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[0] < 0.5 && s.data()[2] > 0.5);
        let th = tanh(&a);
        assert!((th.data()[1]).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(stable_sigmoid(100.0), 1.0);
        assert!(stable_sigmoid(-100.0) >= 0.0);
        assert!(stable_sigmoid(-100.0) < 1e-20);
        assert!(stable_sigmoid(-100.0).is_finite());
    }

    #[test]
    fn scale_and_exp() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(scale(&a, 3.0).data(), &[3.0, -6.0]);
        let e = exp(&t(&[0.0, 1.0]));
        assert!((e.data()[0] - 1.0).abs() < 1e-6);
        assert!((e.data()[1] - std::f32::consts::E).abs() < 1e-5);
    }

    fn awkward_inputs(n: usize) -> (Vec<f32>, Vec<f32>) {
        // Deterministic, sign-mixed, denormal-adjacent values that would
        // expose any fast-tier reassociation or approximation.
        let a: Vec<f32> = (0..n)
            .map(|i| ((i as f32) * 0.37 - 11.0) * if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let b: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.11 - 3.0).sin() * 7.5).collect();
        (a, b)
    }

    fn assert_bits_eq(lhs: &[f32], rhs: &[f32], what: &str) {
        assert_eq!(lhs.len(), rhs.len());
        for (i, (l, r)) in lhs.iter().zip(rhs).enumerate() {
            assert_eq!(l.to_bits(), r.to_bits(), "{what} diverged at {i}: {l} vs {r}");
        }
    }

    #[test]
    fn into_kernels_match_the_tensor_reference_bitwise() {
        for n in [1usize, 7, 64, 150, 768] {
            let (av, bv) = awkward_inputs(n);
            let at = Tensor::from_vec(av.clone(), &[n]).unwrap();
            let bt = Tensor::from_vec(bv.clone(), &[n]).unwrap();
            let mut out = vec![0.0f32; n];
            add_into(&av, &bv, &mut out);
            assert_bits_eq(&out, add(&at, &bt).unwrap().data(), "add");
            sub_into(&av, &bv, &mut out);
            assert_bits_eq(&out, sub(&at, &bt).unwrap().data(), "sub");
            hadamard_into(&av, &bv, &mut out);
            assert_bits_eq(&out, hadamard(&at, &bt).unwrap().data(), "hadamard");
            scale_into(&av, -0.73, &mut out);
            assert_bits_eq(&out, scale(&at, -0.73).data(), "scale");
            affine_into(&av, 1.25, -0.5, &mut out);
            assert_bits_eq(&out, at.map(|e| 1.25 * e + -0.5).data(), "affine");
            relu_into(&av, &mut out);
            assert_bits_eq(&out, relu(&at).data(), "relu");
            sigmoid_into(&av, &mut out);
            assert_bits_eq(&out, sigmoid(&at).data(), "sigmoid");
            tanh_into(&av, &mut out);
            assert_bits_eq(&out, tanh(&at).data(), "tanh");
            exp_into(&av, &mut out);
            assert_bits_eq(&out, exp(&at).data(), "exp");
        }
    }

    #[test]
    fn fast_tier_is_bit_identical_to_scalar_reference() {
        for n in [1usize, 8, 63, 200, 768] {
            let (av, bv) = awkward_inputs(n);
            let mut r = vec![0.0f32; n];
            let mut f = vec![0.0f32; n];
            macro_rules! check2 {
                ($refk:ident, $fastk:ident) => {
                    $refk(&av, &bv, &mut r);
                    $fastk(&av, &bv, &mut f);
                    assert_bits_eq(&r, &f, stringify!($refk));
                };
            }
            macro_rules! check1 {
                ($refk:ident, $fastk:ident) => {
                    $refk(&av, &mut r);
                    $fastk(&av, &mut f);
                    assert_bits_eq(&r, &f, stringify!($refk));
                };
            }
            check2!(add_into, add_into_fast);
            check2!(sub_into, sub_into_fast);
            check2!(hadamard_into, hadamard_into_fast);
            check2!(sigmoid_grad_into, sigmoid_grad_into_fast);
            check2!(tanh_grad_into, tanh_grad_into_fast);
            check2!(relu_grad_into, relu_grad_into_fast);
            check1!(relu_into, relu_into_fast);
            check1!(sigmoid_into, sigmoid_into_fast);
            check1!(tanh_into, tanh_into_fast);
            check1!(exp_into, exp_into_fast);
            scale_into(&av, 0.125, &mut r);
            scale_into_fast(&av, 0.125, &mut f);
            assert_bits_eq(&r, &f, "scale_into");
            affine_into(&av, -2.5, 0.3, &mut r);
            affine_into_fast(&av, -2.5, 0.3, &mut f);
            assert_bits_eq(&r, &f, "affine_into");
        }
        let (av, bias) = awkward_inputs(6);
        let src: Vec<f32> = av.iter().chain(av.iter()).copied().collect();
        let mut r = vec![0.0f32; 12];
        let mut f = vec![0.0f32; 12];
        add_row_broadcast_into(&src, &bias, &mut r, 2, 6);
        add_row_broadcast_into_fast(&src, &bias, &mut f, 2, 6);
        assert_bits_eq(&r, &f, "add_row_broadcast_into");
        let at = Tensor::from_vec(src.clone(), &[2, 6]).unwrap();
        let bt = Tensor::from_vec(bias.clone(), &[6]).unwrap();
        assert_bits_eq(&r, add_row_broadcast(&at, &bt).unwrap().data(), "add_row_broadcast ref");
    }

    #[test]
    fn grad_kernels_match_the_tape_formulas() {
        let (g, y) = awkward_inputs(40);
        let mut out = vec![0.0f32; 40];
        sigmoid_grad_into(&g, &y, &mut out);
        for i in 0..40 {
            assert_eq!(out[i].to_bits(), (g[i] * (y[i] * (1.0 - y[i]))).to_bits());
        }
        tanh_grad_into(&g, &y, &mut out);
        for i in 0..40 {
            assert_eq!(out[i].to_bits(), (g[i] * (1.0 - y[i] * y[i])).to_bits());
        }
        relu_grad_into(&g, &y, &mut out);
        for i in 0..40 {
            let want = if y[i] <= 0.0 { 0.0f32 } else { g[i] };
            assert_eq!(out[i].to_bits(), want.to_bits());
        }
    }
}
