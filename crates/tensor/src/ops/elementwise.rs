//! Elementwise binary/unary kernels and fused accumulation helpers.

use crate::{Result, Tensor, TensorError};

fn check_same(a: &Tensor, b: &Tensor, op: &'static str) -> Result<()> {
    if !a.shape().same_as(b.shape()) {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op,
        });
    }
    Ok(())
}

/// Elementwise `a + b` (identical shapes).
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "add")?;
    let mut out = a.clone();
    for (o, &x) in out.data_mut().iter_mut().zip(b.data()) {
        *o += x;
    }
    Ok(out)
}

/// Elementwise `a - b` (identical shapes).
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "sub")?;
    let mut out = a.clone();
    for (o, &x) in out.data_mut().iter_mut().zip(b.data()) {
        *o -= x;
    }
    Ok(out)
}

/// Elementwise product `a ⊙ b` (identical shapes).
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same(a, b, "hadamard")?;
    let mut out = a.clone();
    for (o, &x) in out.data_mut().iter_mut().zip(b.data()) {
        *o *= x;
    }
    Ok(out)
}

/// Scalar multiple `s · a`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// In-place accumulation `dst += s · src` (identical shapes).
///
/// This is the hot path of the backward pass (gradient accumulation), so it
/// avoids any allocation.
pub fn add_scaled_into(dst: &mut Tensor, src: &Tensor, s: f32) -> Result<()> {
    check_same(dst, src, "add_scaled_into")?;
    for (d, &x) in dst.data_mut().iter_mut().zip(src.data()) {
        *d += s * x;
    }
    Ok(())
}

/// `a + s·b` producing a new tensor (the classic axpy).
pub fn axpy(a: &Tensor, b: &Tensor, s: f32) -> Result<Tensor> {
    let mut out = a.clone();
    add_scaled_into(&mut out, b, s)?;
    Ok(out)
}

/// Broadcast-add a row vector `bias` (shape `(cols,)`) to every row of a
/// rank-2 tensor.
pub fn add_row_broadcast(a: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let (rows, cols) = a.shape().as_2d()?;
    if bias.dims() != [cols] {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: bias.dims().to_vec(),
            op: "add_row_broadcast",
        });
    }
    let mut out = a.clone();
    let b = bias.data();
    for r in 0..rows {
        let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
        for (o, &x) in row.iter_mut().zip(b) {
            *o += x;
        }
    }
    Ok(out)
}

/// ReLU activation.
pub fn relu(a: &Tensor) -> Tensor {
    a.map(|x| x.max(0.0))
}

/// Sigmoid activation (numerically stable two-branch form).
pub fn sigmoid(a: &Tensor) -> Tensor {
    a.map(stable_sigmoid)
}

/// Scalar stable sigmoid.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Hyperbolic tangent activation.
pub fn tanh(a: &Tensor) -> Tensor {
    a.map(f32::tanh)
}

/// Elementwise exponential.
pub fn exp(a: &Tensor) -> Tensor {
    a.map(f32::exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn add_sub_hadamard() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(hadamard(&a, &b).unwrap().data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.0, 3.0]);
        assert!(add(&a, &b).is_err());
        assert!(sub(&a, &b).is_err());
        assert!(hadamard(&a, &b).is_err());
        let mut d = a.clone();
        assert!(add_scaled_into(&mut d, &b, 1.0).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let a = t(&[1.0, 1.0]);
        let b = t(&[2.0, 4.0]);
        assert_eq!(axpy(&a, &b, 0.5).unwrap().data(), &[2.0, 3.0]);
        let mut d = a.clone();
        add_scaled_into(&mut d, &b, -1.0).unwrap();
        assert_eq!(d.data(), &[-1.0, -3.0]);
    }

    #[test]
    fn row_broadcast_adds_bias_to_every_row() {
        let a = Tensor::from_vec(vec![0.0; 6], &[2, 3]).unwrap();
        let bias = t(&[1.0, 2.0, 3.0]);
        let out = add_row_broadcast(&a, &bias).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
        assert!(add_row_broadcast(&a, &t(&[1.0])).is_err());
    }

    #[test]
    fn activations() {
        let a = t(&[-1.0, 0.0, 2.0]);
        assert_eq!(relu(&a).data(), &[0.0, 0.0, 2.0]);
        let s = sigmoid(&a);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[0] < 0.5 && s.data()[2] > 0.5);
        let th = tanh(&a);
        assert!((th.data()[1]).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(stable_sigmoid(100.0), 1.0);
        assert!(stable_sigmoid(-100.0) >= 0.0);
        assert!(stable_sigmoid(-100.0) < 1e-20);
        assert!(stable_sigmoid(-100.0).is_finite());
    }

    #[test]
    fn scale_and_exp() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(scale(&a, 3.0).data(), &[3.0, -6.0]);
        let e = exp(&t(&[0.0, 1.0]));
        assert!((e.data()[0] - 1.0).abs() < 1e-6);
        assert!((e.data()[1] - std::f32::consts::E).abs() < 1e-5);
    }
}
