//! Fused single-pass causal attention (the inference fast path's core
//! kernel, DESIGN.md §10).
//!
//! The graph path computes attention as four tape ops — `Q·Kᵀ`, scale,
//! causal-masked softmax, `·V` — materializing two `(n, n)` tensors per
//! sample per block. This kernel produces the same output one query row
//! at a time: the score row lives in an `n`-length scratch slice and is
//! consumed immediately, so nothing quadratic is ever allocated.
//!
//! Bit-compatibility contract: every arithmetic step reproduces the
//! composed ops exactly —
//! - scores are single-accumulator dots over `k` in ascending order
//!   (= [`crate::ops::matmul::matmul_a_bt_into`]'s per-element fold),
//!   mapped through `scale * s + 0.0` (= the tape's affine/scale op);
//! - the masked softmax is [`crate::ops::softmax::softmax_rows_masked`]'s
//!   per-row sequence verbatim: max fold over `j ≤ i`, exp + sum in
//!   ascending `j`, then one `1.0/sum` multiply;
//! - the output row folds `p_j · v_j` in ascending `j`, matching
//!   `matmul(attn, v)` (the masked entries it skips are exact zeros,
//!   whose products never change an accumulator bit).

/// Causal attention for one sample: `out = softmax_causal(q·kᵀ·scale)·v`
/// over flat row-major `(n, d)` buffers.
///
/// `scores` is caller-provided scratch of length ≥ `n` (reused across
/// rows; only `scores[..=i]` is meaningful during row `i`). `out` is
/// overwritten.
#[allow(clippy::too_many_arguments)]
pub fn causal_attention_into(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { return causal_attention_into_avx2(q, k, v, n, d, scale, scores, out) };
    }
    causal_attention_into_body(q, k, v, n, d, scale, scores, out)
}

/// [`causal_attention_into`]'s body compiled with AVX2 codegen — same
/// source, vector lanes only across independent output columns, so the
/// bits match the baseline build (see `ops::matmul`'s module header).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn causal_attention_into_avx2(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    causal_attention_into_body(q, k, v, n, d, scale, scores, out)
}

/// The last query row of [`causal_attention_into`] on its own:
/// `out_row = softmax(q_last·kᵀ·scale)·v` over all `n` key/value rows.
///
/// Causality makes this the whole story for the *terminal* block of the
/// inference stack — row `n-1`'s output feeds nothing but the prediction
/// readout, and no earlier row's output is consumed at all — so the fast
/// path computes just this row there (DESIGN.md §10). Bit-compatibility:
/// this is literally the `i = n-1` iteration of the full kernel's loop,
/// and rows are computed independently in both, so the bits match the
/// full kernel's last row exactly.
#[allow(clippy::too_many_arguments)]
pub fn causal_attention_last_row_into(
    q_row: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { return causal_attention_last_row_into_avx2(q_row, k, v, n, d, scale, scores, out_row) };
    }
    causal_attention_last_row_into_body(q_row, k, v, n, d, scale, scores, out_row)
}

/// [`causal_attention_last_row_into`]'s body compiled with AVX2 codegen
/// (same source, same bits — see `ops::matmul`'s module header).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn causal_attention_last_row_into_avx2(
    q_row: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    causal_attention_last_row_into_body(q_row, k, v, n, d, scale, scores, out_row)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn causal_attention_last_row_into_body(
    q_row: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    debug_assert_eq!(q_row.len(), d);
    debug_assert_eq!(k.len(), n * d);
    debug_assert_eq!(v.len(), n * d);
    debug_assert!(scores.len() >= n);
    debug_assert_eq!(out_row.len(), d);
    for (j, s) in scores[..n].iter_mut().enumerate() {
        let k_row = &k[j * d..(j + 1) * d];
        let mut acc = 0.0f32;
        for (&qv, &kv) in q_row.iter().zip(k_row) {
            acc += qv * kv;
        }
        *s = scale * acc + 0.0;
    }
    let max = scores[..n].iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0f32;
    for s in scores[..n].iter_mut() {
        let e = (*s - max).exp();
        *s = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for s in scores[..n].iter_mut() {
        *s *= inv;
    }
    out_row.fill(0.0);
    for (j, &p) in scores[..n].iter().enumerate() {
        let v_row = &v[j * d..(j + 1) * d];
        for (ov, &vv) in out_row.iter_mut().zip(v_row) {
            *ov += p * vv;
        }
    }
}

/// One-new-row attention against a cached key/value prefix (the
/// session fold-in kernel, DESIGN.md §11): `out_row =
/// softmax([q·k_prefixᵀ, q·k_lastᵀ]·scale)·[v_prefix; v_last]` where
/// `k_prefix`/`v_prefix` are the `m` cached rows of an incremental
/// session state and `k_last`/`v_last` are the freshly projected row of
/// the appended event.
///
/// Bit-compatibility: with `K = [k_prefix; k_last]` and `V = [v_prefix;
/// v_last]` this is [`causal_attention_last_row_into`] over `n = m + 1`
/// rows verbatim — scores fold ascending over the prefix rows then the
/// new row (exactly key order `0..n`), the softmax max/exp/sum/scale
/// sequence is identical, and the output folds `p_j · v_j` in the same
/// ascending order. The split merely avoids materializing the
/// concatenated buffers. `m = 0` (empty prefix: `n = 1` windows) is
/// valid and attends to the new row alone.
#[allow(clippy::too_many_arguments)]
pub fn causal_attention_append_into(
    q_row: &[f32],
    k_prefix: &[f32],
    k_last: &[f32],
    v_prefix: &[f32],
    v_last: &[f32],
    m: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe {
            return causal_attention_append_into_avx2(
                q_row, k_prefix, k_last, v_prefix, v_last, m, d, scale, scores, out_row,
            );
        };
    }
    causal_attention_append_into_body(q_row, k_prefix, k_last, v_prefix, v_last, m, d, scale, scores, out_row)
}

/// [`causal_attention_append_into`]'s body compiled with AVX2 codegen
/// (same source, same bits — see `ops::matmul`'s module header).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn causal_attention_append_into_avx2(
    q_row: &[f32],
    k_prefix: &[f32],
    k_last: &[f32],
    v_prefix: &[f32],
    v_last: &[f32],
    m: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    causal_attention_append_into_body(q_row, k_prefix, k_last, v_prefix, v_last, m, d, scale, scores, out_row)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn causal_attention_append_into_body(
    q_row: &[f32],
    k_prefix: &[f32],
    k_last: &[f32],
    v_prefix: &[f32],
    v_last: &[f32],
    m: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    let n = m + 1;
    debug_assert_eq!(q_row.len(), d);
    debug_assert_eq!(k_prefix.len(), m * d);
    debug_assert_eq!(v_prefix.len(), m * d);
    debug_assert_eq!(k_last.len(), d);
    debug_assert_eq!(v_last.len(), d);
    debug_assert!(scores.len() >= n);
    debug_assert_eq!(out_row.len(), d);
    // Scores in ascending key order: the m prefix rows, then the new row
    // — the same `j = 0..n` fold the contiguous last-row kernel runs.
    for (j, s) in scores[..n].iter_mut().enumerate() {
        let k_row = if j < m { &k_prefix[j * d..(j + 1) * d] } else { k_last };
        let mut acc = 0.0f32;
        for (&qv, &kv) in q_row.iter().zip(k_row) {
            acc += qv * kv;
        }
        *s = scale * acc + 0.0;
    }
    let max = scores[..n].iter().fold(f32::NEG_INFINITY, |mx, &x| mx.max(x));
    let mut sum = 0.0f32;
    for s in scores[..n].iter_mut() {
        let e = (*s - max).exp();
        *s = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for s in scores[..n].iter_mut() {
        *s *= inv;
    }
    out_row.fill(0.0);
    for (j, &p) in scores[..n].iter().enumerate() {
        let v_row = if j < m { &v_prefix[j * d..(j + 1) * d] } else { v_last };
        for (ov, &vv) in out_row.iter_mut().zip(v_row) {
            *ov += p * vv;
        }
    }
}

/// Rows `start..m` of [`causal_attention_into`] given full `(m, d)`
/// key/value buffers — the session *prepare* kernel: when the first
/// `start` rows of a window are shared with a cached donor state
/// (left-padding slots, DESIGN.md §11), only the trailing real rows'
/// attention outputs are needed; their keys/values still span all `m`
/// rows, causally truncated per query row.
///
/// `q` and `out` hold only the `m - start` trailing rows (row `i` of the
/// window at local offset `i - start`). Bit-compatibility: each row of
/// the full kernel is an independent per-row computation; this runs the
/// identical per-row sequence for exactly the rows it covers.
#[allow(clippy::too_many_arguments)]
pub fn causal_attention_resume_into(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    m: usize,
    d: usize,
    start: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { return causal_attention_resume_into_avx2(q, k, v, m, d, start, scale, scores, out) };
    }
    causal_attention_resume_into_body(q, k, v, m, d, start, scale, scores, out)
}

/// [`causal_attention_resume_into`]'s body compiled with AVX2 codegen
/// (same source, same bits — see `ops::matmul`'s module header).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn causal_attention_resume_into_avx2(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    m: usize,
    d: usize,
    start: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    causal_attention_resume_into_body(q, k, v, m, d, start, scale, scores, out)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn causal_attention_resume_into_body(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    m: usize,
    d: usize,
    start: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    debug_assert!(start <= m);
    let rows = m - start;
    debug_assert_eq!(q.len(), rows * d);
    debug_assert_eq!(k.len(), m * d);
    debug_assert_eq!(v.len(), m * d);
    debug_assert!(scores.len() >= m);
    debug_assert_eq!(out.len(), rows * d);
    for local in 0..rows {
        let i = start + local;
        let q_row = &q[local * d..(local + 1) * d];
        for (j, s) in scores[..=i].iter_mut().enumerate() {
            let k_row = &k[j * d..(j + 1) * d];
            let mut acc = 0.0f32;
            for (&qv, &kv) in q_row.iter().zip(k_row) {
                acc += qv * kv;
            }
            *s = scale * acc + 0.0;
        }
        let max = scores[..=i].iter().fold(f32::NEG_INFINITY, |mx, &x| mx.max(x));
        let mut sum = 0.0f32;
        for s in scores[..=i].iter_mut() {
            let e = (*s - max).exp();
            *s = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for s in scores[..=i].iter_mut() {
            *s *= inv;
        }
        let o_row = &mut out[local * d..(local + 1) * d];
        o_row.fill(0.0);
        for (j, &p) in scores[..=i].iter().enumerate() {
            let v_row = &v[j * d..(j + 1) * d];
            for (ov, &vv) in o_row.iter_mut().zip(v_row) {
                *ov += p * vv;
            }
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn causal_attention_into_body(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    debug_assert_eq!(q.len(), n * d);
    debug_assert_eq!(k.len(), n * d);
    debug_assert_eq!(v.len(), n * d);
    debug_assert!(scores.len() >= n);
    debug_assert_eq!(out.len(), n * d);
    for i in 0..n {
        let q_row = &q[i * d..(i + 1) * d];
        for (j, s) in scores[..=i].iter_mut().enumerate() {
            let k_row = &k[j * d..(j + 1) * d];
            let mut acc = 0.0f32;
            for (&qv, &kv) in q_row.iter().zip(k_row) {
                acc += qv * kv;
            }
            *s = scale * acc + 0.0;
        }
        let max = scores[..=i].iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f32;
        for s in scores[..=i].iter_mut() {
            let e = (*s - max).exp();
            *s = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for s in scores[..=i].iter_mut() {
            *s *= inv;
        }
        let o_row = &mut out[i * d..(i + 1) * d];
        o_row.fill(0.0);
        for (j, &p) in scores[..=i].iter().enumerate() {
            let v_row = &v[j * d..(j + 1) * d];
            for (ov, &vv) in o_row.iter_mut().zip(v_row) {
                *ov += p * vv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, matmul_a_bt, softmax_rows_masked};
    use crate::{init, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The composed-op reference: exactly what the autograd tape runs.
    fn composed(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32) -> Tensor {
        let scores = matmul_a_bt(q, k).unwrap();
        let scaled = scores.map(|x| scale * x + 0.0);
        let attn = softmax_rows_masked(&scaled).unwrap();
        matmul(&attn, v).unwrap()
    }

    #[test]
    fn fused_matches_composed_ops_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(42);
        for (n, d) in [(1, 4), (5, 8), (16, 12), (50, 20)] {
            let q = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let k = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let v = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let scale = 1.0 / (d as f32).sqrt();
            let want = composed(&q, &k, &v, scale);
            let mut scores = vec![0.0f32; n];
            let mut out = vec![0.0f32; n * d];
            causal_attention_into(q.data(), k.data(), v.data(), n, d, scale, &mut scores, &mut out);
            for (idx, (w, g)) in want.data().iter().zip(&out).enumerate() {
                assert_eq!(
                    w.to_bits(),
                    g.to_bits(),
                    "(n={n}, d={d}) element {idx}: composed {w}, fused {g}"
                );
            }
        }
    }

    #[test]
    fn last_row_kernel_matches_full_kernel_last_row() {
        let mut rng = StdRng::seed_from_u64(99);
        for (n, d) in [(1, 4), (7, 10), (48, 96)] {
            let q = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let k = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let v = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let scale = 1.0 / (d as f32).sqrt();
            let mut scores = vec![0.0f32; n];
            let mut full = vec![0.0f32; n * d];
            causal_attention_into(q.data(), k.data(), v.data(), n, d, scale, &mut scores, &mut full);
            let mut row = vec![0.0f32; d];
            causal_attention_last_row_into(
                &q.data()[(n - 1) * d..],
                k.data(),
                v.data(),
                n,
                d,
                scale,
                &mut scores,
                &mut row,
            );
            for (c, (w, g)) in full[(n - 1) * d..].iter().zip(&row).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "(n={n}, d={d}) col {c}");
            }
        }
    }

    #[test]
    fn append_kernel_matches_last_row_over_concatenated_kv() {
        let mut rng = StdRng::seed_from_u64(11);
        for (m, d) in [(0, 4), (1, 4), (6, 10), (47, 96)] {
            let n = m + 1;
            let q_row = init::randn(&mut rng, &[1, d], 0.0, 1.0);
            let k = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let v = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let scale = 1.0 / (d as f32).sqrt();
            let mut scores = vec![0.0f32; n];
            let mut want = vec![0.0f32; d];
            causal_attention_last_row_into(q_row.data(), k.data(), v.data(), n, d, scale, &mut scores, &mut want);
            let mut got = vec![0.0f32; d];
            causal_attention_append_into(
                q_row.data(),
                &k.data()[..m * d],
                &k.data()[m * d..],
                &v.data()[..m * d],
                &v.data()[m * d..],
                m,
                d,
                scale,
                &mut scores,
                &mut got,
            );
            for (c, (w, g)) in want.iter().zip(&got).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "(m={m}, d={d}) col {c}");
            }
        }
    }

    #[test]
    fn resume_kernel_matches_full_kernel_row_range() {
        let mut rng = StdRng::seed_from_u64(23);
        for (m, d, start) in [(1, 4, 0), (5, 8, 0), (9, 6, 4), (16, 12, 15), (16, 12, 16)] {
            let q = init::randn(&mut rng, &[m, d], 0.0, 1.0);
            let k = init::randn(&mut rng, &[m, d], 0.0, 1.0);
            let v = init::randn(&mut rng, &[m, d], 0.0, 1.0);
            let scale = 1.0 / (d as f32).sqrt();
            let mut scores = vec![0.0f32; m];
            let mut full = vec![0.0f32; m * d];
            causal_attention_into(q.data(), k.data(), v.data(), m, d, scale, &mut scores, &mut full);
            let rows = m - start;
            let mut got = vec![0.0f32; rows * d];
            causal_attention_resume_into(
                &q.data()[start * d..],
                k.data(),
                v.data(),
                m,
                d,
                start,
                scale,
                &mut scores,
                &mut got,
            );
            for (idx, (w, g)) in full[start * d..].iter().zip(&got).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "(m={m}, d={d}, start={start}) element {idx}");
            }
        }
    }

    #[test]
    fn first_row_attends_only_to_itself() {
        // Row 0's output must be exactly v[0] (softmax over one score = 1).
        let mut rng = StdRng::seed_from_u64(7);
        let (n, d) = (4, 6);
        let q = init::randn(&mut rng, &[n, d], 0.0, 1.0);
        let k = init::randn(&mut rng, &[n, d], 0.0, 1.0);
        let v = init::randn(&mut rng, &[n, d], 0.0, 1.0);
        let mut scores = vec![0.0f32; n];
        let mut out = vec![0.0f32; n * d];
        causal_attention_into(q.data(), k.data(), v.data(), n, d, 0.5, &mut scores, &mut out);
        for (o, &vv) in out[..d].iter().zip(&v.data()[..d]) {
            assert_eq!(o.to_bits(), (1.0f32 * vv).to_bits());
        }
    }
}
