//! Fused single-pass causal attention (the inference fast path's core
//! kernel, DESIGN.md §10).
//!
//! The graph path computes attention as four tape ops — `Q·Kᵀ`, scale,
//! causal-masked softmax, `·V` — materializing two `(n, n)` tensors per
//! sample per block. This kernel produces the same output one query row
//! at a time: the score row lives in an `n`-length scratch slice and is
//! consumed immediately, so nothing quadratic is ever allocated.
//!
//! Bit-compatibility contract: every arithmetic step reproduces the
//! composed ops exactly —
//! - scores are single-accumulator dots over `k` in ascending order
//!   (= [`crate::ops::matmul::matmul_a_bt_into`]'s per-element fold),
//!   mapped through `scale * s + 0.0` (= the tape's affine/scale op);
//! - the masked softmax is [`crate::ops::softmax::softmax_rows_masked`]'s
//!   per-row sequence verbatim: max fold over `j ≤ i`, exp + sum in
//!   ascending `j`, then one `1.0/sum` multiply;
//! - the output row folds `p_j · v_j` in ascending `j`, matching
//!   `matmul(attn, v)` (the masked entries it skips are exact zeros,
//!   whose products never change an accumulator bit).

/// Causal attention for one sample: `out = softmax_causal(q·kᵀ·scale)·v`
/// over flat row-major `(n, d)` buffers.
///
/// `scores` is caller-provided scratch of length ≥ `n` (reused across
/// rows; only `scores[..=i]` is meaningful during row `i`). `out` is
/// overwritten.
#[allow(clippy::too_many_arguments)]
pub fn causal_attention_into(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { return causal_attention_into_avx2(q, k, v, n, d, scale, scores, out) };
    }
    causal_attention_into_body(q, k, v, n, d, scale, scores, out)
}

/// [`causal_attention_into`]'s body compiled with AVX2 codegen — same
/// source, vector lanes only across independent output columns, so the
/// bits match the baseline build (see `ops::matmul`'s module header).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn causal_attention_into_avx2(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    causal_attention_into_body(q, k, v, n, d, scale, scores, out)
}

/// The last query row of [`causal_attention_into`] on its own:
/// `out_row = softmax(q_last·kᵀ·scale)·v` over all `n` key/value rows.
///
/// Causality makes this the whole story for the *terminal* block of the
/// inference stack — row `n-1`'s output feeds nothing but the prediction
/// readout, and no earlier row's output is consumed at all — so the fast
/// path computes just this row there (DESIGN.md §10). Bit-compatibility:
/// this is literally the `i = n-1` iteration of the full kernel's loop,
/// and rows are computed independently in both, so the bits match the
/// full kernel's last row exactly.
#[allow(clippy::too_many_arguments)]
pub fn causal_attention_last_row_into(
    q_row: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { return causal_attention_last_row_into_avx2(q_row, k, v, n, d, scale, scores, out_row) };
    }
    causal_attention_last_row_into_body(q_row, k, v, n, d, scale, scores, out_row)
}

/// [`causal_attention_last_row_into`]'s body compiled with AVX2 codegen
/// (same source, same bits — see `ops::matmul`'s module header).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn causal_attention_last_row_into_avx2(
    q_row: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    causal_attention_last_row_into_body(q_row, k, v, n, d, scale, scores, out_row)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn causal_attention_last_row_into_body(
    q_row: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    debug_assert_eq!(q_row.len(), d);
    debug_assert_eq!(k.len(), n * d);
    debug_assert_eq!(v.len(), n * d);
    debug_assert!(scores.len() >= n);
    debug_assert_eq!(out_row.len(), d);
    for (j, s) in scores[..n].iter_mut().enumerate() {
        let k_row = &k[j * d..(j + 1) * d];
        let mut acc = 0.0f32;
        for (&qv, &kv) in q_row.iter().zip(k_row) {
            acc += qv * kv;
        }
        *s = scale * acc + 0.0;
    }
    let max = scores[..n].iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0f32;
    for s in scores[..n].iter_mut() {
        let e = (*s - max).exp();
        *s = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for s in scores[..n].iter_mut() {
        *s *= inv;
    }
    out_row.fill(0.0);
    for (j, &p) in scores[..n].iter().enumerate() {
        let v_row = &v[j * d..(j + 1) * d];
        for (ov, &vv) in out_row.iter_mut().zip(v_row) {
            *ov += p * vv;
        }
    }
}

/// One-new-row attention against a cached key/value prefix (the
/// session fold-in kernel, DESIGN.md §11): `out_row =
/// softmax([q·k_prefixᵀ, q·k_lastᵀ]·scale)·[v_prefix; v_last]` where
/// `k_prefix`/`v_prefix` are the `m` cached rows of an incremental
/// session state and `k_last`/`v_last` are the freshly projected row of
/// the appended event.
///
/// Bit-compatibility: with `K = [k_prefix; k_last]` and `V = [v_prefix;
/// v_last]` this is [`causal_attention_last_row_into`] over `n = m + 1`
/// rows verbatim — scores fold ascending over the prefix rows then the
/// new row (exactly key order `0..n`), the softmax max/exp/sum/scale
/// sequence is identical, and the output folds `p_j · v_j` in the same
/// ascending order. The split merely avoids materializing the
/// concatenated buffers. `m = 0` (empty prefix: `n = 1` windows) is
/// valid and attends to the new row alone.
#[allow(clippy::too_many_arguments)]
pub fn causal_attention_append_into(
    q_row: &[f32],
    k_prefix: &[f32],
    k_last: &[f32],
    v_prefix: &[f32],
    v_last: &[f32],
    m: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe {
            return causal_attention_append_into_avx2(
                q_row, k_prefix, k_last, v_prefix, v_last, m, d, scale, scores, out_row,
            );
        };
    }
    causal_attention_append_into_body(q_row, k_prefix, k_last, v_prefix, v_last, m, d, scale, scores, out_row)
}

/// [`causal_attention_append_into`]'s body compiled with AVX2 codegen
/// (same source, same bits — see `ops::matmul`'s module header).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn causal_attention_append_into_avx2(
    q_row: &[f32],
    k_prefix: &[f32],
    k_last: &[f32],
    v_prefix: &[f32],
    v_last: &[f32],
    m: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    causal_attention_append_into_body(q_row, k_prefix, k_last, v_prefix, v_last, m, d, scale, scores, out_row)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn causal_attention_append_into_body(
    q_row: &[f32],
    k_prefix: &[f32],
    k_last: &[f32],
    v_prefix: &[f32],
    v_last: &[f32],
    m: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out_row: &mut [f32],
) {
    let n = m + 1;
    debug_assert_eq!(q_row.len(), d);
    debug_assert_eq!(k_prefix.len(), m * d);
    debug_assert_eq!(v_prefix.len(), m * d);
    debug_assert_eq!(k_last.len(), d);
    debug_assert_eq!(v_last.len(), d);
    debug_assert!(scores.len() >= n);
    debug_assert_eq!(out_row.len(), d);
    // Scores in ascending key order: the m prefix rows, then the new row
    // — the same `j = 0..n` fold the contiguous last-row kernel runs.
    for (j, s) in scores[..n].iter_mut().enumerate() {
        let k_row = if j < m { &k_prefix[j * d..(j + 1) * d] } else { k_last };
        let mut acc = 0.0f32;
        for (&qv, &kv) in q_row.iter().zip(k_row) {
            acc += qv * kv;
        }
        *s = scale * acc + 0.0;
    }
    let max = scores[..n].iter().fold(f32::NEG_INFINITY, |mx, &x| mx.max(x));
    let mut sum = 0.0f32;
    for s in scores[..n].iter_mut() {
        let e = (*s - max).exp();
        *s = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for s in scores[..n].iter_mut() {
        *s *= inv;
    }
    out_row.fill(0.0);
    for (j, &p) in scores[..n].iter().enumerate() {
        let v_row = if j < m { &v_prefix[j * d..(j + 1) * d] } else { v_last };
        for (ov, &vv) in out_row.iter_mut().zip(v_row) {
            *ov += p * vv;
        }
    }
}

/// Rows `start..m` of [`causal_attention_into`] given full `(m, d)`
/// key/value buffers — the session *prepare* kernel: when the first
/// `start` rows of a window are shared with a cached donor state
/// (left-padding slots, DESIGN.md §11), only the trailing real rows'
/// attention outputs are needed; their keys/values still span all `m`
/// rows, causally truncated per query row.
///
/// `q` and `out` hold only the `m - start` trailing rows (row `i` of the
/// window at local offset `i - start`). Bit-compatibility: each row of
/// the full kernel is an independent per-row computation; this runs the
/// identical per-row sequence for exactly the rows it covers.
#[allow(clippy::too_many_arguments)]
pub fn causal_attention_resume_into(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    m: usize,
    d: usize,
    start: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { return causal_attention_resume_into_avx2(q, k, v, m, d, start, scale, scores, out) };
    }
    causal_attention_resume_into_body(q, k, v, m, d, start, scale, scores, out)
}

/// [`causal_attention_resume_into`]'s body compiled with AVX2 codegen
/// (same source, same bits — see `ops::matmul`'s module header).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn causal_attention_resume_into_avx2(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    m: usize,
    d: usize,
    start: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    causal_attention_resume_into_body(q, k, v, m, d, start, scale, scores, out)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn causal_attention_resume_into_body(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    m: usize,
    d: usize,
    start: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    debug_assert!(start <= m);
    let rows = m - start;
    debug_assert_eq!(q.len(), rows * d);
    debug_assert_eq!(k.len(), m * d);
    debug_assert_eq!(v.len(), m * d);
    debug_assert!(scores.len() >= m);
    debug_assert_eq!(out.len(), rows * d);
    for local in 0..rows {
        let i = start + local;
        let q_row = &q[local * d..(local + 1) * d];
        for (j, s) in scores[..=i].iter_mut().enumerate() {
            let k_row = &k[j * d..(j + 1) * d];
            let mut acc = 0.0f32;
            for (&qv, &kv) in q_row.iter().zip(k_row) {
                acc += qv * kv;
            }
            *s = scale * acc + 0.0;
        }
        let max = scores[..=i].iter().fold(f32::NEG_INFINITY, |mx, &x| mx.max(x));
        let mut sum = 0.0f32;
        for s in scores[..=i].iter_mut() {
            let e = (*s - max).exp();
            *s = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for s in scores[..=i].iter_mut() {
            *s *= inv;
        }
        let o_row = &mut out[local * d..(local + 1) * d];
        o_row.fill(0.0);
        for (j, &p) in scores[..=i].iter().enumerate() {
            let v_row = &v[j * d..(j + 1) * d];
            for (ov, &vv) in o_row.iter_mut().zip(v_row) {
                *ov += p * vv;
            }
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn causal_attention_into_body(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    debug_assert_eq!(q.len(), n * d);
    debug_assert_eq!(k.len(), n * d);
    debug_assert_eq!(v.len(), n * d);
    debug_assert!(scores.len() >= n);
    debug_assert_eq!(out.len(), n * d);
    for i in 0..n {
        let q_row = &q[i * d..(i + 1) * d];
        for (j, s) in scores[..=i].iter_mut().enumerate() {
            let k_row = &k[j * d..(j + 1) * d];
            let mut acc = 0.0f32;
            for (&qv, &kv) in q_row.iter().zip(k_row) {
                acc += qv * kv;
            }
            *s = scale * acc + 0.0;
        }
        let max = scores[..=i].iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f32;
        for s in scores[..=i].iter_mut() {
            let e = (*s - max).exp();
            *s = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for s in scores[..=i].iter_mut() {
            *s *= inv;
        }
        let o_row = &mut out[i * d..(i + 1) * d];
        o_row.fill(0.0);
        for (j, &p) in scores[..=i].iter().enumerate() {
            let v_row = &v[j * d..(j + 1) * d];
            for (ov, &vv) in o_row.iter_mut().zip(v_row) {
                *ov += p * vv;
            }
        }
    }
}

/// Fused causal-attention *training* forward: `out =
/// softmax_causal(q·kᵀ·scale)·v` over flat `(n, d)` buffers, saving the
/// full `(n, n)` softmax matrix into `probs` for the backward pass.
///
/// This is the fast training tier's replacement for the tape's four-op
/// composition (`matmul_a_bt` → affine → `softmax_causal` → `matmul`).
/// Unlike [`causal_attention_into`], which streams one score row through
/// scratch, training must keep the probabilities — they are the saved
/// activation [`causal_attention_train_backward`] consumes — so `probs`
/// is a persistent `(n, n)` buffer (row `i`: columns `..=i` hold the
/// softmax row, columns `i+1..` are written to exact `0.0`, the same
/// layout `softmax_rows_masked` produces).
///
/// Bit-compatibility with the composed ops: the score matrix is the
/// tiled [`crate::ops::matmul::matmul_into`] over a transposed key
/// buffer (`Q·(Kᵀ)` — same products `q[i][t]·k[j][t]`, same ascending-`t`
/// fold per element as the reference dot, the transpose itself being
/// pure data movement; see [`crate::ops::matmul::matmul_a_bt_fast`]),
/// mapped through `scale * s + 0.0` (the tape's affine); the masked
/// softmax is `softmax_rows_masked`'s per-row sequence verbatim (the
/// above-diagonal scores this computes eagerly are overwritten with the
/// mask's exact zeros before anything reads them); and the output is
/// the tiled `matmul_into` over the full probability matrix — whose
/// masked entries are exact zeros, and adding a zero product never
/// changes an accumulator bit (see
/// `ops::matmul::matmul_into_skip_zeros`, which is what the tape runs).
#[allow(clippy::too_many_arguments)]
pub fn causal_attention_train_forward(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    probs: &mut [f32],
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { return causal_attention_train_forward_avx2(q, k, v, n, d, scale, probs, out) };
    }
    causal_attention_train_forward_body(q, k, v, n, d, scale, probs, out)
}

/// [`causal_attention_train_forward`]'s body compiled with AVX2 codegen
/// (same source, same bits — see `ops::matmul`'s module header).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn causal_attention_train_forward_avx2(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    probs: &mut [f32],
    out: &mut [f32],
) {
    causal_attention_train_forward_body(q, k, v, n, d, scale, probs, out)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn causal_attention_train_forward_body(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    probs: &mut [f32],
    out: &mut [f32],
) {
    use crate::ops::matmul::{matmul_into_body, transpose_into};
    debug_assert_eq!(q.len(), n * d);
    debug_assert_eq!(k.len(), n * d);
    debug_assert_eq!(v.len(), n * d);
    debug_assert_eq!(probs.len(), n * n);
    debug_assert_eq!(out.len(), n * d);
    // All n² scores in one tiled pass over a transposed key buffer
    // (header: same products, same ascending-k folds as the reference
    // dots). The above-diagonal half is computed eagerly but every one
    // of those entries is overwritten with the mask's exact 0.0 below
    // before anything reads it.
    let mut kt = vec![0.0f32; n * d];
    transpose_into(k, &mut kt, n, d);
    probs.fill(0.0);
    matmul_into_body(q, &kt, probs, n, d, n);
    for i in 0..n {
        let row = &mut probs[i * n..(i + 1) * n];
        for s in row[..=i].iter_mut() {
            *s = scale * *s + 0.0;
        }
        let max = row[..=i].iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f32;
        for s in row[..=i].iter_mut() {
            let e = (*s - max).exp();
            *s = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for s in row[..=i].iter_mut() {
            *s *= inv;
        }
        // Future positions carry exactly zero weight, matching the
        // softmax_rows_masked layout the backward pass relies on.
        row[i + 1..].fill(0.0);
    }
    out.fill(0.0);
    matmul_into_body(probs, v, out, n, n, d);
}

/// Fused causal-attention *training* backward: given the saved softmax
/// matrix from [`causal_attention_train_forward`] and the upstream
/// gradient `d_out`, computes `dq`/`dk`/`dv` in one tiled pass.
/// `dscores` is caller-provided `(n, n)` scratch; `dq`/`dk`/`dv` are
/// overwritten.
///
/// Bit-compatibility with the tape's composed backward chain
/// (`Op::MatMul` → `Op::SoftmaxCausal` → `Op::Affine` → `Op::MatMulABt`
/// in reverse):
/// - `dV = probsᵀ · d_out` — [`crate::ops::matmul::matmul_at_b_into`]'s
///   ascending-`kk` fold, identical to the reference `matmul_at_b` with
///   its zero-skip (masked probabilities are exact zeros; zero products
///   never change an accumulator bit);
/// - `dP = d_out · vᵀ` over the *full* `(n, n)` matrix — the tiled
///   [`crate::ops::matmul::matmul_into`] over a transposed value buffer
///   (same products, same ascending-`t` folds as the reference dots;
///   see [`crate::ops::matmul::matmul_a_bt_fast`]), exactly what the
///   tape's `matmul_a_bt(g, v)` computes (including the masked columns:
///   the softmax backward below multiplies them by an exact zero, just
///   as the tape does);
/// - softmax + affine backward per row: `dot = Σ_j y[j]·dp[j]` folded
///   ascending over **all** `n` columns (the tape's fold; masked terms
///   contribute exact-zero products), then `ds[j] = scale · (y[j] ·
///   (dp[j] − dot))` — the same two multiplies, in the same order, as
///   the tape's softmax-backward elementwise pass followed by its
///   affine-backward `scale · x` pass;
/// - `dQ = ds · k` (tiled [`crate::ops::matmul::matmul_into`]) and
///   `dK = dsᵀ · q` ([`crate::ops::matmul::matmul_at_b_into`]) — same
///   per-element folds as the tape's reference kernels; the masked `ds`
///   entries are exact (±)zeros, which the reference kernels skip and
///   these dense kernels add, a bitwise no-op either way.
#[allow(clippy::too_many_arguments)]
pub fn causal_attention_train_backward(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    probs: &[f32],
    d_out: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    dq: &mut [f32],
    dk: &mut [f32],
    dv: &mut [f32],
    dscores: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::ops::matmul::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe {
            return causal_attention_train_backward_avx2(
                q, k, v, probs, d_out, n, d, scale, dq, dk, dv, dscores,
            );
        };
    }
    causal_attention_train_backward_body(q, k, v, probs, d_out, n, d, scale, dq, dk, dv, dscores)
}

/// [`causal_attention_train_backward`]'s body compiled with AVX2
/// codegen (same source, same bits — see `ops::matmul`'s module header).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn causal_attention_train_backward_avx2(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    probs: &[f32],
    d_out: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    dq: &mut [f32],
    dk: &mut [f32],
    dv: &mut [f32],
    dscores: &mut [f32],
) {
    causal_attention_train_backward_body(q, k, v, probs, d_out, n, d, scale, dq, dk, dv, dscores)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn causal_attention_train_backward_body(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    probs: &[f32],
    d_out: &[f32],
    n: usize,
    d: usize,
    scale: f32,
    dq: &mut [f32],
    dk: &mut [f32],
    dv: &mut [f32],
    dscores: &mut [f32],
) {
    use crate::ops::matmul::{matmul_at_b_into_body, matmul_into_body, transpose_into};
    debug_assert_eq!(q.len(), n * d);
    debug_assert_eq!(k.len(), n * d);
    debug_assert_eq!(v.len(), n * d);
    debug_assert_eq!(probs.len(), n * n);
    debug_assert_eq!(d_out.len(), n * d);
    debug_assert_eq!(dq.len(), n * d);
    debug_assert_eq!(dk.len(), n * d);
    debug_assert_eq!(dv.len(), n * d);
    debug_assert_eq!(dscores.len(), n * n);
    // dV = probsᵀ · d_out.
    dv.fill(0.0);
    matmul_at_b_into_body(probs, d_out, dv, n, n, d);
    // dP = d_out · vᵀ (full n×n, masked columns included — they meet an
    // exact-zero y below, exactly as on the tape), via the tiled kernel
    // over a transposed value buffer (header: same folds, same bits).
    let mut vt = vec![0.0f32; n * d];
    transpose_into(v, &mut vt, n, d);
    dscores.fill(0.0);
    matmul_into_body(d_out, &vt, dscores, n, d, n);
    // Softmax backward + affine backward, in place: dscores becomes dS.
    for i in 0..n {
        let y_row = &probs[i * n..(i + 1) * n];
        let ds_row = &mut dscores[i * n..(i + 1) * n];
        let mut dot = 0.0f32;
        for (&yv, &dp) in y_row.iter().zip(ds_row.iter()) {
            dot += yv * dp;
        }
        for (dsv, &yv) in ds_row.iter_mut().zip(y_row) {
            *dsv = scale * (yv * (*dsv - dot));
        }
    }
    // dQ = dS · k, dK = dSᵀ · q.
    dq.fill(0.0);
    matmul_into_body(dscores, k, dq, n, n, d);
    dk.fill(0.0);
    matmul_at_b_into_body(dscores, q, dk, n, n, d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, matmul_a_bt, softmax_rows_masked};
    use crate::{init, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The composed-op reference: exactly what the autograd tape runs.
    fn composed(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32) -> Tensor {
        let scores = matmul_a_bt(q, k).unwrap();
        let scaled = scores.map(|x| scale * x + 0.0);
        let attn = softmax_rows_masked(&scaled).unwrap();
        matmul(&attn, v).unwrap()
    }

    #[test]
    fn fused_matches_composed_ops_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(42);
        for (n, d) in [(1, 4), (5, 8), (16, 12), (50, 20)] {
            let q = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let k = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let v = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let scale = 1.0 / (d as f32).sqrt();
            let want = composed(&q, &k, &v, scale);
            let mut scores = vec![0.0f32; n];
            let mut out = vec![0.0f32; n * d];
            causal_attention_into(q.data(), k.data(), v.data(), n, d, scale, &mut scores, &mut out);
            for (idx, (w, g)) in want.data().iter().zip(&out).enumerate() {
                assert_eq!(
                    w.to_bits(),
                    g.to_bits(),
                    "(n={n}, d={d}) element {idx}: composed {w}, fused {g}"
                );
            }
        }
    }

    #[test]
    fn last_row_kernel_matches_full_kernel_last_row() {
        let mut rng = StdRng::seed_from_u64(99);
        for (n, d) in [(1, 4), (7, 10), (48, 96)] {
            let q = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let k = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let v = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let scale = 1.0 / (d as f32).sqrt();
            let mut scores = vec![0.0f32; n];
            let mut full = vec![0.0f32; n * d];
            causal_attention_into(q.data(), k.data(), v.data(), n, d, scale, &mut scores, &mut full);
            let mut row = vec![0.0f32; d];
            causal_attention_last_row_into(
                &q.data()[(n - 1) * d..],
                k.data(),
                v.data(),
                n,
                d,
                scale,
                &mut scores,
                &mut row,
            );
            for (c, (w, g)) in full[(n - 1) * d..].iter().zip(&row).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "(n={n}, d={d}) col {c}");
            }
        }
    }

    #[test]
    fn append_kernel_matches_last_row_over_concatenated_kv() {
        let mut rng = StdRng::seed_from_u64(11);
        for (m, d) in [(0, 4), (1, 4), (6, 10), (47, 96)] {
            let n = m + 1;
            let q_row = init::randn(&mut rng, &[1, d], 0.0, 1.0);
            let k = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let v = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let scale = 1.0 / (d as f32).sqrt();
            let mut scores = vec![0.0f32; n];
            let mut want = vec![0.0f32; d];
            causal_attention_last_row_into(q_row.data(), k.data(), v.data(), n, d, scale, &mut scores, &mut want);
            let mut got = vec![0.0f32; d];
            causal_attention_append_into(
                q_row.data(),
                &k.data()[..m * d],
                &k.data()[m * d..],
                &v.data()[..m * d],
                &v.data()[m * d..],
                m,
                d,
                scale,
                &mut scores,
                &mut got,
            );
            for (c, (w, g)) in want.iter().zip(&got).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "(m={m}, d={d}) col {c}");
            }
        }
    }

    #[test]
    fn resume_kernel_matches_full_kernel_row_range() {
        let mut rng = StdRng::seed_from_u64(23);
        for (m, d, start) in [(1, 4, 0), (5, 8, 0), (9, 6, 4), (16, 12, 15), (16, 12, 16)] {
            let q = init::randn(&mut rng, &[m, d], 0.0, 1.0);
            let k = init::randn(&mut rng, &[m, d], 0.0, 1.0);
            let v = init::randn(&mut rng, &[m, d], 0.0, 1.0);
            let scale = 1.0 / (d as f32).sqrt();
            let mut scores = vec![0.0f32; m];
            let mut full = vec![0.0f32; m * d];
            causal_attention_into(q.data(), k.data(), v.data(), m, d, scale, &mut scores, &mut full);
            let rows = m - start;
            let mut got = vec![0.0f32; rows * d];
            causal_attention_resume_into(
                &q.data()[start * d..],
                k.data(),
                v.data(),
                m,
                d,
                start,
                scale,
                &mut scores,
                &mut got,
            );
            for (idx, (w, g)) in full[start * d..].iter().zip(&got).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "(m={m}, d={d}, start={start}) element {idx}");
            }
        }
    }

    #[test]
    fn train_forward_matches_composed_ops_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(311);
        for (n, d) in [(1, 1), (1, 4), (3, 5), (5, 8), (16, 12), (17, 16), (50, 20)] {
            let q = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let k = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let v = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let scale = 1.0 / (d as f32).sqrt();
            let scores = matmul_a_bt(&q, &k).unwrap();
            let scaled = scores.map(|x| scale * x + 0.0);
            let want_probs = softmax_rows_masked(&scaled).unwrap();
            let want_out = matmul(&want_probs, &v).unwrap();
            let mut probs = vec![f32::NAN; n * n];
            let mut out = vec![f32::NAN; n * d];
            causal_attention_train_forward(q.data(), k.data(), v.data(), n, d, scale, &mut probs, &mut out);
            for (idx, (w, g)) in want_probs.data().iter().zip(&probs).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "(n={n}, d={d}) probs element {idx}");
            }
            for (idx, (w, g)) in want_out.data().iter().zip(&out).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "(n={n}, d={d}) out element {idx}");
            }
        }
    }

    /// The tape's composed backward chain, run on the reference kernels:
    /// exactly what `Graph::backward` does for `matmul_a_bt` → affine →
    /// `softmax_causal` → `matmul`, in reverse.
    fn composed_backward(
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        probs: &Tensor,
        g_out: &Tensor,
        scale: f32,
    ) -> (Tensor, Tensor, Tensor) {
        use crate::ops::matmul_at_b;
        // out = matmul(probs, v): dProbs = g·vᵀ, dV = probsᵀ·g.
        let d_probs = matmul_a_bt(g_out, v).unwrap();
        let dv = matmul_at_b(probs, g_out).unwrap();
        // softmax backward (over all columns, as the tape does).
        let n = probs.dims()[0];
        let mut d_scaled = Tensor::zeros(&[n, n]);
        for i in 0..n {
            let y_row = &probs.data()[i * n..(i + 1) * n];
            let g_row = &d_probs.data()[i * n..(i + 1) * n];
            let dot: f32 = y_row.iter().zip(g_row).map(|(&a, &b)| a * b).sum();
            let d_row = &mut d_scaled.data_mut()[i * n..(i + 1) * n];
            for j in 0..n {
                d_row[j] = y_row[j] * (g_row[j] - dot);
            }
        }
        // affine backward: d_scores = scale · d_scaled.
        let d_scores = d_scaled.map(|x| scale * x);
        // scores = matmul_a_bt(q, k): dQ = dS·k, dK = dSᵀ·q.
        let dq = matmul(&d_scores, k).unwrap();
        let dk = matmul_at_b(&d_scores, q).unwrap();
        (dq, dk, dv)
    }

    #[test]
    fn train_backward_matches_composed_chain_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(409);
        for (n, d) in [(1, 1), (1, 4), (3, 5), (5, 8), (16, 12), (17, 16), (50, 20)] {
            let q = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let k = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let v = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let g_out = init::randn(&mut rng, &[n, d], 0.0, 1.0);
            let scale = 1.0 / (d as f32).sqrt();
            let mut probs = vec![0.0f32; n * n];
            let mut out = vec![0.0f32; n * d];
            causal_attention_train_forward(q.data(), k.data(), v.data(), n, d, scale, &mut probs, &mut out);
            let probs_t = Tensor::from_vec(probs.clone(), &[n, n]).unwrap();
            let (want_dq, want_dk, want_dv) = composed_backward(&q, &k, &v, &probs_t, &g_out, scale);
            let mut dq = vec![f32::NAN; n * d];
            let mut dk = vec![f32::NAN; n * d];
            let mut dv = vec![f32::NAN; n * d];
            let mut dscores = vec![0.0f32; n * n];
            causal_attention_train_backward(
                q.data(),
                k.data(),
                v.data(),
                &probs,
                g_out.data(),
                n,
                d,
                scale,
                &mut dq,
                &mut dk,
                &mut dv,
                &mut dscores,
            );
            for (name, want, got) in
                [("dq", &want_dq, &dq), ("dk", &want_dk, &dk), ("dv", &want_dv, &dv)]
            {
                for (idx, (w, g)) in want.data().iter().zip(got.iter()).enumerate() {
                    assert_eq!(w.to_bits(), g.to_bits(), "(n={n}, d={d}) {name} element {idx}");
                }
            }
        }
    }

    #[test]
    fn first_row_attends_only_to_itself() {
        // Row 0's output must be exactly v[0] (softmax over one score = 1).
        let mut rng = StdRng::seed_from_u64(7);
        let (n, d) = (4, 6);
        let q = init::randn(&mut rng, &[n, d], 0.0, 1.0);
        let k = init::randn(&mut rng, &[n, d], 0.0, 1.0);
        let v = init::randn(&mut rng, &[n, d], 0.0, 1.0);
        let mut scores = vec![0.0f32; n];
        let mut out = vec![0.0f32; n * d];
        causal_attention_into(q.data(), k.data(), v.data(), n, d, 0.5, &mut scores, &mut out);
        for (o, &vv) in out[..d].iter().zip(&v.data()[..d]) {
            assert_eq!(o.to_bits(), (1.0f32 * vv).to_bits());
        }
    }
}
