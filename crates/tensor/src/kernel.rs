//! Kernel-tier selection shared by inference and training (DESIGN.md §10).
//!
//! The workspace carries two implementations of every hot kernel:
//!
//! - **Reference** — the original scalar loops (`i-k-j` matmul, composed
//!   attention ops). Obviously correct, kept as the *differential
//!   oracle*: an oracle is only worth having if it is an independent
//!   implementation, so nothing routes the oracle paths onto the
//!   optimized kernels.
//! - **Fast** — the register-tiled, runtime-AVX2-dispatched kernels
//!   (`matmul_into`, `matmul_a_bt_into`, `matmul_at_b_into`, the fused
//!   causal-attention pair). Bit-identical to the reference fold by
//!   construction (tiles cover output dims only, `k` is never split)
//!   and by the differential test wall.
//!
//! Inference picked between the tiers per entry point since PR 5; this
//! module names the choice so the *training* tape can make it too. The
//! process-level pin is `VSAN_DISABLE_FAST_PATH=1` — the same
//! environment toggle that reroutes inference to the graph oracle also
//! forces training onto the reference tier, read once per process.

use std::sync::OnceLock;

/// Which implementation tier a tape (or plan) runs its kernels on.
///
/// Both tiers produce bit-identical results — that is the invariant the
/// differential suites enforce — so the choice is purely about speed
/// versus oracle independence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// The original scalar kernels: the differential oracle.
    Reference,
    /// The register-tiled / AVX2-dispatched kernels.
    Fast,
}

impl KernelTier {
    /// Short lowercase name, for report JSON and test labels.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Reference => "reference",
            KernelTier::Fast => "fast",
        }
    }
}

/// Whether `VSAN_DISABLE_FAST_PATH=1` pins this process to the
/// reference tier. Read once: the pin is process-level on purpose, so a
/// whole test run (or a whole training job) is rerouted at the same
/// point the production entry points consult.
pub fn fast_path_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| {
        std::env::var("VSAN_DISABLE_FAST_PATH").map(|v| v == "1").unwrap_or(false)
    })
}

/// The tier training entry points run when the caller did not choose
/// explicitly: [`KernelTier::Fast`] unless the process is pinned by
/// `VSAN_DISABLE_FAST_PATH=1`.
///
/// Explicit selection (e.g. `NeuralConfig::with_kernel_tier` in
/// `vsan-models`) wins over the pin, mirroring how inference's explicit
/// `_fast`/`_graph` entry points bypass it — that is what lets a single
/// test process compare both tiers regardless of the environment.
pub fn default_train_tier() -> KernelTier {
    if fast_path_disabled() {
        KernelTier::Reference
    } else {
        KernelTier::Fast
    }
}

/// Whether the running CPU dispatches the AVX2 twins of the fast-tier
/// kernels. Exposed so CI can assert the fast tier was genuinely
/// exercised (`VSAN_REQUIRE_AVX2=1` in the parallel-train matrix): a
/// host without AVX2 still runs the fast tier bit-identically, but a
/// gate that silently measured the baseline build would not attest what
/// it claims to.
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        crate::ops::matmul::avx2_available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(KernelTier::Reference.name(), "reference");
        assert_eq!(KernelTier::Fast.name(), "fast");
    }

    #[test]
    fn default_tier_respects_the_pin() {
        // The OnceLock reads the real process environment; assert the
        // mapping is consistent with whatever this process was started
        // with (verify.sh runs the suite under both settings).
        let pinned = std::env::var("VSAN_DISABLE_FAST_PATH").map(|v| v == "1").unwrap_or(false);
        assert_eq!(fast_path_disabled(), pinned);
        let want = if pinned { KernelTier::Reference } else { KernelTier::Fast };
        assert_eq!(default_train_tier(), want);
    }
}
