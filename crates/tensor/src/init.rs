//! Random tensor initializers.
//!
//! All initializers take a caller-supplied [`rand::Rng`] so every experiment
//! in the workspace is reproducible from a single seed. Gaussian sampling is
//! implemented with the Box–Muller transform (we avoid `rand_distr` to keep
//! the dependency footprint at the offline-approved set).

use crate::Tensor;
use rand::Rng;

/// Draw a standard-normal sample via the Box–Muller transform.
///
/// Uses the polar-free classic form: `sqrt(-2 ln u1) * cos(2π u2)`.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Guard against log(0) by nudging u1 away from zero.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Tensor filled with `N(mean, std²)` samples.
pub fn randn<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], mean: f32, std: f32) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = mean + std * sample_standard_normal(rng);
    }
    t
}

/// Tensor filled with `U(lo, hi)` samples.
pub fn rand_uniform<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = rng.gen_range(lo..hi);
    }
    t
}

/// Xavier/Glorot-uniform initialization for a weight of shape
/// `(fan_in, fan_out)` (or any rank ≥ 1; fan sizes come from the first and
/// last dims).
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, dims: &[usize]) -> Tensor {
    let fan_in = *dims.first().unwrap_or(&1) as f32;
    let fan_out = *dims.last().unwrap_or(&1) as f32;
    let bound = (6.0 / (fan_in + fan_out)).sqrt();
    rand_uniform(rng, dims, -bound, bound)
}

/// Truncated-normal-ish init used for embeddings: `N(0, std²)` clamped to
/// ±2 std, the common recipe for stable embedding tables.
pub fn embedding_init<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], std: f32) -> Tensor {
    let mut t = randn(rng, dims, 0.0, std);
    let lim = 2.0 * std;
    t.map_in_place(|x| x.clamp(-lim, lim));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_has_roughly_correct_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = randn(&mut rng, &[10_000], 0.0, 1.0);
        let mean: f32 = t.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn randn_respects_mean_and_std() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = randn(&mut rng, &[20_000], 3.0, 0.5);
        let mean: f32 = t.data().iter().sum::<f32>() / 20_000.0;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = rand_uniform(&mut rng, &[1000], -0.25, 0.75);
        assert!(t.data().iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    fn xavier_bound_matches_formula() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = xavier_uniform(&mut rng, &[30, 50]);
        let bound = (6.0f32 / 80.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
        // Should actually use most of the range.
        assert!(t.max_abs() > bound * 0.8);
    }

    #[test]
    fn embedding_init_clamps_tails() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = embedding_init(&mut rng, &[500, 16], 0.02);
        assert!(t.data().iter().all(|&x| x.abs() <= 0.04 + 1e-6));
    }

    #[test]
    fn same_seed_same_tensor() {
        let a = randn(&mut StdRng::seed_from_u64(42), &[64], 0.0, 1.0);
        let b = randn(&mut StdRng::seed_from_u64(42), &[64], 0.0, 1.0);
        assert_eq!(a, b);
    }
}
