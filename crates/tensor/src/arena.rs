//! Step-scoped tensor arena: size-bucketed free lists over `f32` buffers.
//!
//! Training rebuilds the autograd tape every step (define-by-run), and
//! before this module every node value, saved softmax matrix, and backward
//! gradient buffer round-tripped the global allocator. The arena recycles
//! those buffers across steps: a buffer released after step `t` is handed
//! back out at step `t+1` for the same-shaped tensor, so a steady-state
//! training step performs **zero** tensor-buffer allocations.
//!
//! ## Why reuse cannot change bits
//!
//! The arena only changes *where* a buffer's memory comes from, never what
//! is written into it. [`TensorArena::take`] returns a buffer of exactly
//! the requested length with every element set to `0.0` — bit-identical to
//! a fresh `vec![0.0; len]` — and [`TensorArena::take_empty`] returns a
//! cleared buffer that callers fill before use. Kernels then write the
//! same values in the same order as before. The policy is therefore
//! orthogonal to the kernel tier, and [`BufferPolicy::Fresh`] (which
//! simply allocates) remains the independent oracle: the differential
//! suites bit-compare losses and every parameter gradient across
//! {fresh, arena} × {Reference, Fast}.
//!
//! ## Lifecycle
//!
//! Each shard-worker [`Graph`](../../vsan_autograd/struct.Graph.html) owns
//! one `TensorArena`. Buffers that escape the graph (parameter gradients
//! travelling to the optimizer) are returned through a [`SharedBufferPool`]
//! — the executor releases merged duplicates during the gradient tree
//! reduction and the training loop recycles the final gradients after the
//! optimizer step, so supply meets demand and the steady state allocates
//! nothing.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Where tensor buffers come from during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferPolicy {
    /// Allocate every buffer fresh from the global allocator (the
    /// reference oracle; pre-arena behavior).
    Fresh,
    /// Recycle buffers through a step-scoped [`TensorArena`].
    Arena,
}

impl BufferPolicy {
    /// Stable lowercase name (for logs / JSON).
    pub fn name(&self) -> &'static str {
        match self {
            BufferPolicy::Fresh => "fresh",
            BufferPolicy::Arena => "arena",
        }
    }
}

/// Policy used when a config does not pin one explicitly.
///
/// Mirrors [`crate::kernel::default_train_tier`]: `VSAN_DISABLE_FAST_PATH=1`
/// pins the whole process to the fresh-allocation reference tape so one
/// environment switch yields the full independent oracle (scalar kernels
/// *and* fresh buffers).
pub fn default_buffer_policy() -> BufferPolicy {
    if crate::kernel::fast_path_disabled() {
        BufferPolicy::Fresh
    } else {
        BufferPolicy::Arena
    }
}

/// Monotone counters + current inventory for one arena.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers that had to come from the global allocator.
    pub fresh_allocs: u64,
    /// Bytes of those fresh allocations (f32 payload only).
    pub fresh_bytes: u64,
    /// Buffers served from the arena's own free lists.
    pub reuses: u64,
    /// Buffers served from the attached [`SharedBufferPool`].
    pub pool_takes: u64,
    /// Bytes currently held in the arena's free lists.
    pub held_bytes: u64,
}

impl ArenaStats {
    /// Element-wise sum (for aggregating per-shard arenas).
    pub fn merged(self, other: ArenaStats) -> ArenaStats {
        ArenaStats {
            fresh_allocs: self.fresh_allocs + other.fresh_allocs,
            fresh_bytes: self.fresh_bytes + other.fresh_bytes,
            reuses: self.reuses + other.reuses,
            pool_takes: self.pool_takes + other.pool_takes,
            held_bytes: self.held_bytes + other.held_bytes,
        }
    }
}

/// A size-bucketed free list of `f32` buffers owned by one graph/worker.
///
/// Buckets are keyed by buffer *capacity*; every buffer the arena hands
/// out has capacity exactly equal to the requested length, so the keys
/// stay aligned across take/release cycles.
#[derive(Debug)]
pub struct TensorArena {
    policy: BufferPolicy,
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    pool: Option<SharedBufferPool>,
    stats: ArenaStats,
}

impl TensorArena {
    /// New arena with the given policy and no shared pool.
    pub fn new(policy: BufferPolicy) -> Self {
        TensorArena { policy, buckets: HashMap::new(), pool: None, stats: ArenaStats::default() }
    }

    /// Attach a shared pool used as a fallback before fresh allocation.
    pub fn with_pool(mut self, pool: SharedBufferPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The arena's buffer policy.
    pub fn policy(&self) -> BufferPolicy {
        self.policy
    }

    /// Switch the buffer policy in place (keeps any attached pool).
    pub fn set_policy(&mut self, policy: BufferPolicy) {
        self.policy = policy;
    }

    /// Attach (or replace) the shared fallback pool in place.
    pub fn set_pool(&mut self, pool: SharedBufferPool) {
        self.pool = Some(pool);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// A cleared buffer with capacity ≥ `n` (free list → pool → fresh).
    fn obtain(&mut self, n: usize) -> Vec<f32> {
        if self.policy == BufferPolicy::Fresh {
            self.stats.fresh_allocs += 1;
            self.stats.fresh_bytes += 4 * n as u64;
            return Vec::with_capacity(n);
        }
        if let Some(list) = self.buckets.get_mut(&n) {
            if let Some(mut buf) = list.pop() {
                self.stats.held_bytes -= 4 * buf.capacity() as u64;
                self.stats.reuses += 1;
                buf.clear();
                return buf;
            }
        }
        if let Some(pool) = &self.pool {
            if let Some(mut buf) = pool.take(n) {
                self.stats.pool_takes += 1;
                buf.clear();
                return buf;
            }
        }
        self.stats.fresh_allocs += 1;
        self.stats.fresh_bytes += 4 * n as u64;
        Vec::with_capacity(n)
    }

    /// A zeroed buffer of exactly `len` elements — bit-identical to
    /// `vec![0.0f32; len]`.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.obtain(len);
        buf.resize(len, 0.0);
        buf
    }

    /// An empty (length 0) buffer with capacity ≥ `capacity`, for callers
    /// that build contents by `extend`/`push` (e.g. dropout masks).
    pub fn take_empty(&mut self, capacity: usize) -> Vec<f32> {
        self.obtain(capacity)
    }

    /// Return a buffer to the free lists (dropped under `Fresh`).
    ///
    /// Each capacity class keeps at most [`MAX_BUFFERS_PER_BUCKET`]
    /// buffers; overflow is dropped. This bounds inventory growth from
    /// buffers that *enter* the cycle from outside the arena (e.g.
    /// model-built constants released by a tape reset) without ever
    /// starving per-step reuse — one step's demand per shape class is far
    /// below the cap.
    pub fn release(&mut self, mut buf: Vec<f32>) {
        if self.policy == BufferPolicy::Fresh {
            return;
        }
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        let list = self.buckets.entry(cap).or_default();
        if list.len() >= MAX_BUFFERS_PER_BUCKET {
            return;
        }
        buf.clear();
        self.stats.held_bytes += 4 * cap as u64;
        list.push(buf);
    }
}

/// Free-list depth bound per capacity class (arena and shared pool).
const MAX_BUFFERS_PER_BUCKET: usize = 256;

/// A thread-safe buffer pool shared across shard workers.
///
/// Closes the loop for buffers that escape a shard graph: parameter
/// gradients leave with the [`Gradients`](../../vsan_autograd/struct.Gradients.html)
/// result, get merged (duplicates released here) and, after the optimizer
/// step, recycled here — so the next step's arenas find them again.
#[derive(Debug, Clone, Default)]
pub struct SharedBufferPool {
    inner: Arc<Mutex<PoolInner>>,
}

#[derive(Debug, Default)]
struct PoolInner {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    held_bytes: u64,
}

impl SharedBufferPool {
    /// New empty pool.
    pub fn new() -> Self {
        SharedBufferPool::default()
    }

    /// Pop a buffer with capacity exactly `len`, if one is pooled.
    pub fn take(&self, len: usize) -> Option<Vec<f32>> {
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        let buf = inner.buckets.get_mut(&len)?.pop()?;
        inner.held_bytes -= 4 * buf.capacity() as u64;
        Some(buf)
    }

    /// Return a buffer to the pool (bounded per capacity class like
    /// [`TensorArena::release`]).
    pub fn release(&self, mut buf: Vec<f32>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        let list = inner.buckets.entry(cap).or_default();
        if list.len() >= MAX_BUFFERS_PER_BUCKET {
            return;
        }
        buf.clear();
        list.push(buf);
        inner.held_bytes += 4 * cap as u64;
    }

    /// Bytes currently held in the pool.
    pub fn held_bytes(&self) -> u64 {
        self.inner.lock().expect("buffer pool poisoned").held_bytes
    }

    /// Number of pooled buffers.
    pub fn pooled(&self) -> usize {
        let inner = self.inner.lock().expect("buffer pool poisoned");
        inner.buckets.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_bit_identical_to_fresh_zeros() {
        let mut arena = TensorArena::new(BufferPolicy::Arena);
        let buf = arena.take(16);
        assert_eq!(buf, vec![0.0f32; 16]);
        assert!(buf.iter().all(|v| v.to_bits() == 0));
        // Dirty it, release, take again: still all-zero bits.
        let mut buf = buf;
        buf.iter_mut().for_each(|v| *v = f32::NAN);
        arena.release(buf);
        let again = arena.take(16);
        assert!(again.iter().all(|v| v.to_bits() == 0));
        assert_eq!(arena.stats().reuses, 1);
        assert_eq!(arena.stats().fresh_allocs, 1);
    }

    #[test]
    fn release_then_take_reuses_exact_capacity() {
        let mut arena = TensorArena::new(BufferPolicy::Arena);
        let a = arena.take(8);
        let b = arena.take(4);
        arena.release(a);
        arena.release(b);
        assert_eq!(arena.stats().held_bytes, 4 * 12);
        let _a2 = arena.take(8);
        let _b2 = arena.take(4);
        let s = arena.stats();
        assert_eq!(s.fresh_allocs, 2);
        assert_eq!(s.reuses, 2);
        assert_eq!(s.held_bytes, 0);
    }

    #[test]
    fn fresh_policy_never_pools() {
        let mut arena = TensorArena::new(BufferPolicy::Fresh);
        let a = arena.take(8);
        arena.release(a);
        let _b = arena.take(8);
        let s = arena.stats();
        assert_eq!(s.fresh_allocs, 2);
        assert_eq!(s.reuses, 0);
        assert_eq!(s.held_bytes, 0);
    }

    #[test]
    fn take_empty_has_capacity_and_zero_len() {
        let mut arena = TensorArena::new(BufferPolicy::Arena);
        let buf = arena.take_empty(32);
        assert_eq!(buf.len(), 0);
        assert!(buf.capacity() >= 32);
    }

    #[test]
    fn shared_pool_round_trips_buffers() {
        let pool = SharedBufferPool::new();
        pool.release(vec![1.0f32; 10]);
        assert_eq!(pool.pooled(), 1);
        assert_eq!(pool.held_bytes(), 40);
        let got = pool.take(10).expect("pooled buffer");
        assert_eq!(got.len(), 0);
        assert!(got.capacity() >= 10);
        assert!(pool.take(10).is_none());
        assert_eq!(pool.held_bytes(), 0);
    }

    #[test]
    fn arena_falls_back_to_shared_pool_before_allocating() {
        let pool = SharedBufferPool::new();
        pool.release(vec![0.0f32; 6]);
        let mut arena = TensorArena::new(BufferPolicy::Arena).with_pool(pool.clone());
        let buf = arena.take(6);
        assert_eq!(buf, vec![0.0f32; 6]);
        let s = arena.stats();
        assert_eq!(s.pool_takes, 1);
        assert_eq!(s.fresh_allocs, 0);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn default_policy_tracks_the_fast_path_pin() {
        // Process-wide env pin is read once (OnceLock); just assert the
        // resolver agrees with the kernel-tier resolver's view of it.
        let expect = if crate::kernel::fast_path_disabled() {
            BufferPolicy::Fresh
        } else {
            BufferPolicy::Arena
        };
        assert_eq!(default_buffer_policy(), expect);
        assert_eq!(expect.name(), default_buffer_policy().name());
    }

    #[test]
    fn stats_merge_is_elementwise() {
        let a = ArenaStats { fresh_allocs: 1, fresh_bytes: 4, reuses: 2, pool_takes: 3, held_bytes: 8 };
        let b = ArenaStats { fresh_allocs: 10, fresh_bytes: 40, reuses: 20, pool_takes: 30, held_bytes: 80 };
        let m = a.merged(b);
        assert_eq!(m.fresh_allocs, 11);
        assert_eq!(m.fresh_bytes, 44);
        assert_eq!(m.reuses, 22);
        assert_eq!(m.pool_takes, 33);
        assert_eq!(m.held_bytes, 88);
    }
}
