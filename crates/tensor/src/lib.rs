#![warn(missing_docs)]

//! # vsan-tensor
//!
//! A dense, row-major, `f32` tensor substrate built from scratch for the
//! VSAN (ICDE 2021) reproduction. No BLAS, no external numeric crates —
//! just carefully written loops (with a crossbeam-based parallel matmul)
//! sized for training small-to-medium neural recommenders on CPU.
//!
//! The crate deliberately keeps the surface area small: the autograd layer
//! (`vsan-autograd`) composes these kernels into differentiable ops, and
//! the NN layer builds modules on top of that.
//!
//! ## Layout
//!
//! * [`shape`] — shapes, strides, and index arithmetic.
//! * [`tensor`] — the [`Tensor`] type and its constructors/accessors.
//! * [`init`] — random initializers (uniform, normal via Box–Muller,
//!   Xavier/Glorot) driven by a seedable PRNG.
//! * [`ops`] — elementwise kernels, matrix multiplication (serial and
//!   parallel), reductions, row softmax, and layer-norm statistics.
//! * [`serialize`] — compact binary encode/decode via [`bytes`].
//! * [`cluster`] — deterministic seeded k-means for the clustered
//!   retrieval index (DESIGN.md §12).
//! * [`arena`] — step-scoped buffer recycling for allocation-free
//!   training steps (DESIGN.md §14).
//!
//! ## Example
//!
//! ```
//! use vsan_tensor::{Tensor, ops};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = ops::matmul(&a, &b).unwrap();
//! assert_eq!(c.data(), a.data());
//! ```

pub mod arena;
pub mod cluster;
pub mod init;
pub mod kernel;
pub mod ops;
pub mod parallel;
pub mod serialize;
pub mod shape;
pub mod tensor;

pub use arena::{default_buffer_policy, ArenaStats, BufferPolicy, SharedBufferPool, TensorArena};
pub use kernel::KernelTier;
pub use shape::Shape;
pub use tensor::Tensor;

/// Errors produced by tensor construction and kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant docs describe the named fields
pub enum TensorError {
    /// The number of elements does not match the product of the shape dims.
    LengthMismatch { expected: usize, got: usize },
    /// Two operands had incompatible shapes for the requested kernel.
    ShapeMismatch { lhs: Vec<usize>, rhs: Vec<usize>, op: &'static str },
    /// The kernel requires a specific rank (e.g. matmul wants rank 2).
    RankMismatch { expected: usize, got: usize, op: &'static str },
    /// An index was out of bounds for the tensor's shape.
    OutOfBounds { index: Vec<usize>, shape: Vec<usize> },
    /// Decoding a serialized tensor failed.
    Decode(&'static str),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: shape wants {expected} elements, got {got}")
            }
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch { expected, got, op } => {
                write!(f, "rank mismatch in {op}: expected rank {expected}, got {got}")
            }
            TensorError::OutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::Decode(msg) => write!(f, "decode error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = TensorError::LengthMismatch { expected: 4, got: 3 };
        assert!(e.to_string().contains("4"));
        let e = TensorError::ShapeMismatch { lhs: vec![2], rhs: vec![3], op: "add" };
        assert!(e.to_string().contains("add"));
        let e = TensorError::RankMismatch { expected: 2, got: 1, op: "matmul" };
        assert!(e.to_string().contains("matmul"));
        let e = TensorError::OutOfBounds { index: vec![9], shape: vec![2] };
        assert!(e.to_string().contains("[9]"));
        let e = TensorError::Decode("bad magic");
        assert!(e.to_string().contains("bad magic"));
    }
}
