//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_tensor::ops;
use vsan_tensor::parallel::matmul_parallel;
use vsan_tensor::serialize;
use vsan_tensor::{init, Tensor};

fn seeded_randn(seed: u64, dims: &[usize]) -> Tensor {
    init::randn(&mut StdRng::seed_from_u64(seed), dims, 0.0, 1.0)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

fn small_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]).unwrap())
    })
}

proptest! {
    #[test]
    fn add_is_commutative(a in small_matrix()) {
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = ops::add(&a, &b).unwrap();
        let ba = ops::add(&b, &a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn sub_then_add_round_trips(a in small_matrix()) {
        let b = a.map(|x| x.sin());
        let d = ops::sub(&a, &b).unwrap();
        let back = ops::add(&d, &b).unwrap();
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn double_transpose_is_identity(a in small_matrix()) {
        let tt = a.transpose2().unwrap().transpose2().unwrap();
        prop_assert_eq!(tt.data(), a.data());
    }

    #[test]
    fn matmul_identity_left_and_right(a in small_matrix()) {
        let (r, c) = (a.dims()[0], a.dims()[1]);
        let left = ops::matmul(&Tensor::eye(r), &a).unwrap();
        let right = ops::matmul(&a, &Tensor::eye(c)).unwrap();
        for (x, y) in left.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
        for (x, y) in right.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        a in small_matrix(),
    ) {
        // (A + A') B == AB + A'B with A' a deterministic transform of A.
        let a2 = a.map(|x| x * 0.25 + 0.5);
        let c = a.dims()[1];
        let b = Tensor::from_vec((0..c * 3).map(|i| (i as f32 * 0.37).cos()).collect(), &[c, 3]).unwrap();
        let lhs = ops::matmul(&ops::add(&a, &a2).unwrap(), &b).unwrap();
        let rhs = ops::add(&ops::matmul(&a, &b).unwrap(), &ops::matmul(&a2, &b).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "lhs {} rhs {}", x, y);
        }
    }

    #[test]
    fn softmax_rows_are_probabilities(a in small_matrix()) {
        let s = ops::softmax_rows(&a).unwrap();
        let (r, _) = (a.dims()[0], a.dims()[1]);
        for i in 0..r {
            let row = s.row(i);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn masked_softmax_rows_are_probabilities(n in 1usize..8) {
        let a = Tensor::from_vec((0..n * n).map(|i| ((i * 31 % 17) as f32) - 8.0).collect(), &[n, n]).unwrap();
        let s = ops::softmax_rows_masked(&a).unwrap();
        for i in 0..n {
            let row = s.row(i);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for (j, &v) in row.iter().enumerate() {
                if j > i {
                    prop_assert_eq!(v, 0.0);
                }
            }
        }
    }

    #[test]
    fn serialization_round_trips(a in small_matrix()) {
        let mut enc = serialize::encode(&a);
        let back = serialize::decode(&mut enc).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn sum_axis0_matches_manual(a in small_matrix()) {
        let s = ops::sum_axis0(&a).unwrap();
        let (r, c) = (a.dims()[0], a.dims()[1]);
        for j in 0..c {
            let manual: f32 = (0..r).map(|i| a.get2(i, j)).sum();
            prop_assert!((s.data()[j] - manual).abs() < 1e-4);
        }
    }

    // ---- matmul_parallel ≡ matmul, bit for bit -------------------------
    //
    // The parallel kernel partitions output rows; each row is produced by
    // the same i-k-j inner loop as the serial kernel, so the contract is
    // exact bitwise equality (not tolerance) for any shape × thread count.

    #[test]
    fn matmul_parallel_matches_serial_below_threshold(
        m in 1usize..9,
        k in 1usize..9,
        n in 1usize..9,
        threads in 1usize..17,
        seed in 0u64..1_000_000,
    ) {
        // m·k·n < 1e6 here, so this pins the serial-fallback branch.
        let a = seeded_randn(seed, &[m, k]);
        let b = seeded_randn(seed ^ 0xab54_a98c, &[k, n]);
        let serial = ops::matmul(&a, &b).unwrap();
        let par = matmul_parallel(&a, &b, threads).unwrap();
        prop_assert_eq!(bits(&par), bits(&serial));
    }

    #[test]
    fn matmul_parallel_matches_serial_above_threshold(
        m in 1usize..7,
        k in 2usize..17,
        threads in 2usize..17,
        extra in 1usize..512,
        seed in 0u64..1_000_000,
    ) {
        // Pick n so m·k·n ≥ 1e6: the genuinely threaded branch. Small m
        // with threads up to 16 also covers the m < threads clamp.
        let n = 1_000_000usize.div_ceil(m * k) + extra;
        let a = seeded_randn(seed, &[m, k]);
        let b = seeded_randn(seed ^ 0x5151_f00d, &[k, n]);
        let serial = ops::matmul(&a, &b).unwrap();
        let par = matmul_parallel(&a, &b, threads).unwrap();
        prop_assert_eq!(bits(&par), bits(&serial));
    }

    #[test]
    fn layer_norm_output_is_normalized(a in small_matrix()) {
        let c = a.dims()[1];
        prop_assume!(c > 1);
        let (y, _) = ops::layer_norm_rows(&a, &vec![1.0; c], &vec![0.0; c], 1e-5).unwrap();
        for i in 0..a.dims()[0] {
            let row = y.row(i);
            let m: f32 = row.iter().sum::<f32>() / c as f32;
            prop_assert!(m.abs() < 1e-3);
        }
    }
}

#[test]
fn matmul_parallel_thread_sweep_is_bitwise_stable() {
    // One fixed threshold-crossing shape across the full thread sweep,
    // including counts exceeding the row count (clamped internally).
    let (m, k, n) = (6, 24, 7_000); // m·k·n ≈ 1.0e6 ≥ threshold
    let a = seeded_randn(11, &[m, k]);
    let b = seeded_randn(12, &[k, n]);
    let baseline = bits(&ops::matmul(&a, &b).unwrap());
    for threads in [1, 2, 3, 4, 5, 8, 16] {
        let par = matmul_parallel(&a, &b, threads).unwrap();
        assert_eq!(bits(&par), baseline, "diverged at threads={threads}");
    }
}
