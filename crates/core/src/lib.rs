#![warn(missing_docs)]

//! # vsan-core
//!
//! The **Variational Self-Attention Network** (VSAN) of Zhao et al.,
//! *"Variational Self-attention Network for Sequential Recommendation"*,
//! ICDE 2021 — the primary contribution this workspace reproduces.
//!
//! VSAN marries a variational autoencoder with causal self-attention
//! (Fig. 2 of the paper):
//!
//! ```text
//!            ┌───────────────────────────────────────────────┐
//!  items ───►│ Embedding: I = A + P (item + position, §IV-A) │
//!            └───────────────┬───────────────────────────────┘
//!                            ▼
//!            ┌───────────────────────────────────────────────┐
//!            │ Inference SAN: h₁ causal blocks → G_i  (§IV-B)│
//!            │ heads: μ = l₁(G_i),  log σ² = l₂(G_i) (Eq.12) │
//!            └───────────────┬───────────────────────────────┘
//!                            ▼
//!            ┌───────────────────────────────────────────────┐
//!            │ Latent: z = μ + σ ⊙ ε   (Eq. 13, §IV-C)       │
//!            │ (evaluation uses z = μ)                        │
//!            └───────────────┬───────────────────────────────┘
//!                            ▼
//!            ┌───────────────────────────────────────────────┐
//!            │ Generative SAN: h₂ causal blocks → G_g (§IV-D)│
//!            └───────────────┬───────────────────────────────┘
//!                            ▼
//!            ┌───────────────────────────────────────────────┐
//!            │ Prediction: softmax(G_g W_g + b_g)   (Eq. 19) │
//!            └───────────────────────────────────────────────┘
//! ```
//!
//! trained by minimizing the β-weighted negative ELBO (Eq. 20):
//! `β·KL[q(z|S)‖N(0,I)] + CE(next items)`, with KL annealing and an
//! optional next-`k` multi-hot target (Eq. 18).
//!
//! Note on Eq. 12: the paper writes `σ_λ = l₂(G)`, a direct linear head
//! for the standard deviation; like every practical VAE implementation
//! (including the SVAE baseline the paper builds on) we parameterize the
//! head as `log σ²` so positivity holds by construction. This is recorded
//! in DESIGN.md.
//!
//! ## Modules
//!
//! * [`config`] — [`VsanConfig`]: paper presets ((h₁,h₂) = (1,1) Beauty /
//!   (3,1) ML-1M, k = 2, d = 200 …) and ablation constructors
//!   (`vsan_z`, `all_feed`, `infer_feed`, `gene_feed` — Tables V–VI).
//! * [`model`] — the trainable [`Vsan`] network and its
//!   [`vsan_eval::Scorer`] implementation.
//! * [`uncertainty`] — posterior introspection: per-user `(μ, σ)` so the
//!   Fig. 1 uncertainty story can be measured, not just told.
//! * [`retrieval`] — clustered MIPS top-k over the prediction head with
//!   the exact brute-force path kept as the always-available oracle
//!   (`VSAN_DISABLE_ANN=1`).

pub mod config;
pub mod infer;
pub mod model;
pub mod retrieval;
pub mod uncertainty;

pub use config::VsanConfig;
pub use infer::{fast_path_disabled, SessionState, Workspace};
pub use model::Vsan;
pub use retrieval::{ann_disabled, ClusteredConfig, ItemIndex, QueryStats, Retrieval};
pub use uncertainty::PosteriorStats;
