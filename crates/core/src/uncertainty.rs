//! Posterior introspection: measuring the uncertainty VSAN claims to
//! capture.
//!
//! Fig. 1 of the paper argues that a *distributional* user representation
//! separates multi-modal preferences a fixed point cannot. This module
//! exposes the learned posterior `q(z | S^u) = N(μ, σ²)` of the final
//! position so experiments (and the `uncertainty_probe` example) can test
//! that story quantitatively — e.g. users with mixed-category histories
//! should carry larger posterior variance than single-category users.

use crate::model::Vsan;

/// Posterior parameters of the last sequence position for one user.
#[derive(Debug, Clone)]
pub struct PosteriorStats {
    /// Posterior mean `μ_λ` (length `d`).
    pub mu: Vec<f32>,
    /// Posterior standard deviation `σ_λ` (length `d`).
    pub sigma: Vec<f32>,
}

impl PosteriorStats {
    /// Mean of `σ` across latent dimensions — a scalar uncertainty score.
    pub fn mean_sigma(&self) -> f32 {
        if self.sigma.is_empty() {
            return 0.0;
        }
        self.sigma.iter().sum::<f32>() / self.sigma.len() as f32
    }

    /// Differential entropy of the diagonal Gaussian (up to constants):
    /// `Σ_j log σ_j`.
    pub fn log_volume(&self) -> f32 {
        self.sigma.iter().map(|s| s.max(1e-20).ln()).sum()
    }
}

impl Vsan {
    /// Monte-Carlo expected scores under the posterior (extension; §IV-E
    /// evaluates at the posterior *mean*, this marginalizes instead):
    /// draws `samples` latents `z ~ q(z|S)`, decodes each through the
    /// generative layer, and averages the item probabilities. With
    /// `samples = 0` it degenerates to the paper's mean-field scoring.
    ///
    /// This is the operational payoff of modelling uncertainty (Fig. 1):
    /// a user whose posterior spans two preference modes gets items from
    /// *both* modes ranked highly, where the mean collapses to a midpoint.
    pub fn score_items_sampled<R: rand::Rng + ?Sized>(
        &self,
        fold_in: &[u32],
        samples: usize,
        rng: &mut R,
    ) -> Result<Vec<f32>, String> {
        use vsan_eval::Scorer;
        if samples == 0 {
            return Ok(self.score_items(fold_in));
        }
        let stats = self.posterior(fold_in)?;
        let d = stats.mu.len();
        let mut acc = vec![0.0f32; self.vocab()];
        for _ in 0..samples {
            let z: Vec<f32> = (0..d)
                .map(|j| {
                    stats.mu[j] + stats.sigma[j] * vsan_tensor::init::sample_standard_normal(rng)
                })
                .collect();
            let probs = self.decode_latent_probs(fold_in, &z)?;
            for (a, p) in acc.iter_mut().zip(&probs) {
                *a += p;
            }
        }
        let inv = 1.0 / samples as f32;
        acc.iter_mut().for_each(|a| *a *= inv);
        Ok(acc)
    }

    /// Posterior `(μ, σ)` of the last position for a fold-in history.
    pub fn posterior(&self, fold_in: &[u32]) -> Result<PosteriorStats, String> {
        let n = self.config().base.max_seq_len;
        let (g, mu, logvar) = self.forward_posterior(fold_in).map_err(|e| e.to_string())?;
        let mu_row = g.value(mu).row(n - 1).to_vec();
        let sigma_row: Vec<f32> =
            g.value(logvar).row(n - 1).iter().map(|&lv| (0.5 * lv).exp()).collect();
        Ok(PosteriorStats { mu: mu_row, sigma: sigma_row })
    }

    /// Average posterior uncertainty (mean σ) over a set of histories.
    pub fn mean_uncertainty(&self, histories: &[Vec<u32>]) -> Result<f32, String> {
        if histories.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0f32;
        for h in histories {
            total += self.posterior(h)?.mean_sigma();
        }
        Ok(total / histories.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VsanConfig;
    use vsan_data::Dataset;

    fn model() -> Vsan {
        let sequences = (0..16u32)
            .map(|u| (0..8).map(|t| (u + t) % 6 + 1).collect())
            .collect();
        let ds = Dataset { name: "t".into(), num_items: 6, sequences };
        let users: Vec<usize> = (0..16).collect();
        let mut cfg = VsanConfig::smoke();
        cfg.base = cfg.base.with_epochs(3);
        Vsan::train(&ds, &users, &cfg).unwrap()
    }

    #[test]
    fn posterior_has_model_width_and_positive_sigma() {
        let m = model();
        let stats = m.posterior(&[1, 2, 3]).unwrap();
        assert_eq!(stats.mu.len(), m.config().base.dim);
        assert_eq!(stats.sigma.len(), m.config().base.dim);
        assert!(stats.sigma.iter().all(|&s| s > 0.0));
        assert!(stats.mean_sigma() > 0.0);
        assert!(stats.log_volume().is_finite());
    }

    #[test]
    fn posterior_depends_on_history() {
        let m = model();
        let a = m.posterior(&[1, 2, 3]).unwrap();
        let b = m.posterior(&[4, 5, 6]).unwrap();
        let diff: f32 = a.mu.iter().zip(&b.mu).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "different histories must map to different posteriors");
    }

    #[test]
    fn sampled_scores_are_probabilities_and_converge_to_mean() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use vsan_eval::Scorer;
        let m = model();
        let mut rng = StdRng::seed_from_u64(1);
        let sampled = m.score_items_sampled(&[1, 2, 3], 8, &mut rng).unwrap();
        assert_eq!(sampled.len(), m.vocab());
        let total: f32 = sampled.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "averaged probabilities sum to 1, got {total}");
        assert!(sampled.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // samples = 0 falls back to the deterministic mean scoring.
        let zero = m.score_items_sampled(&[1, 2, 3], 0, &mut rng).unwrap();
        assert_eq!(zero, m.score_items(&[1, 2, 3]));
        // More samples → ranking correlates with the mean decode: the top
        // mean item should be well ranked under sampling too (same data).
        let mean_probs = m.decode_latent_probs(&[1, 2, 3], &m.posterior(&[1, 2, 3]).unwrap().mu).unwrap();
        let argmax = |v: &[f32]| {
            v.iter().enumerate().skip(1).max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0
        };
        let best_mean = argmax(&mean_probs);
        let rank_of_best: usize = sampled
            .iter()
            .skip(1)
            .filter(|&&p| p > sampled[best_mean])
            .count();
        assert!(rank_of_best < 4, "mean-best item fell to rank {rank_of_best} under sampling");
    }

    #[test]
    fn mean_uncertainty_aggregates() {
        let m = model();
        let hists = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let mu = m.mean_uncertainty(&hists).unwrap();
        assert!(mu > 0.0);
        assert_eq!(m.mean_uncertainty(&[]).unwrap(), 0.0);
    }
}
