//! Graph-free inference fast path (DESIGN.md §10).
//!
//! The autograd [`Graph`](vsan_autograd::Graph) exists to record a tape
//! for the backward pass; at serve time that is pure overhead — every op
//! allocates a fresh `Tensor`, pushes a node, and clones parameters into
//! the tape. This module executes the same eval forward (embedding
//! gather → h₁ inference blocks → μ head → h₂ generative blocks →
//! last-position logits, `z = μ_λ` per §IV-E of the paper) directly on
//! `vsan-tensor` kernels:
//!
//! - [`InferencePlan`] pre-resolves the parameter ids the forward needs,
//!   in execution order, so the hot loop is just slice lookups;
//! - [`Workspace`] owns every intermediate buffer, sized once from the
//!   config and reused across batches (a serve worker holds one for its
//!   whole life — steady-state batches allocate only the output rows);
//! - the kernels ([`causal_attention_into`], `matmul_into_parallel`,
//!   `layer_norm_rows_into`) fold every output element in the exact
//!   per-row order the graph ops use, so fast-path logits are
//!   **bit-identical** to the graph path — the determinism invariant the
//!   serve cache, the chaos suite, and `tests/golden_logits.rs` rest on.
//!
//! `VSAN_DISABLE_FAST_PATH=1` routes [`crate::Vsan::score_items_batch`]
//! back through the graph, keeping the old path alive as a differential-
//! testing oracle (`scripts/verify.sh` runs the suite both ways).

use std::cell::RefCell;

use vsan_data::sequence::pad_left;
use vsan_nn::{Linear, ParamId, ParamStore, SelfAttentionBlock};
use vsan_tensor::ops::attention::{
    causal_attention_append_into, causal_attention_into, causal_attention_last_row_into,
    causal_attention_resume_into,
};
use vsan_tensor::ops::norm::{layer_norm_rows_into, LN_EPS};
use vsan_tensor::parallel::matmul_into_parallel;

/// `true` when `VSAN_DISABLE_FAST_PATH=1` pins scoring to the graph
/// path. Read once per process: the flag is a deployment/CI toggle, not
/// a per-call switch (tests that need both paths in one process call
/// the explicit `score_items_batch_graph` / `_fast_with` entry points).
/// Public so the session layer (`vsan-session`) can honour the same
/// toggle by falling back to full recompute.
///
/// Delegates to [`vsan_tensor::kernel::fast_path_disabled`] so the *one*
/// pin governs every fast tier in the workspace: this inference path and
/// the training kernel tier ([`vsan_tensor::kernel::default_train_tier`])
/// read the same OnceLock and can never disagree about the environment.
pub fn fast_path_disabled() -> bool {
    vsan_tensor::kernel::fast_path_disabled()
}

/// One attention block's pre-resolved parameters.
struct BlockPlan {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    ln1_gamma: ParamId,
    ln1_beta: ParamId,
    ffn: Option<FfnPlan>,
}

/// The point-wise FFN sublayer's parameters (always biased).
struct FfnPlan {
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    ln2_gamma: ParamId,
    ln2_beta: ParamId,
}

impl BlockPlan {
    fn from_block(block: &SelfAttentionBlock) -> Self {
        assert_eq!(block.heads(), 1, "the fast path covers the paper's single-head blocks");
        let ffn = block.ffn_parts().map(|(w1, w2, ln2)| FfnPlan {
            w1: w1.w,
            b1: w1.b.expect("FFN w1 is biased"),
            w2: w2.w,
            b2: w2.b.expect("FFN w2 is biased"),
            ln2_gamma: ln2.gamma,
            ln2_beta: ln2.beta,
        });
        BlockPlan {
            wq: block.wq().w,
            wk: block.wk().w,
            wv: block.wv().w,
            ln1_gamma: block.ln1().gamma,
            ln1_beta: block.ln1().beta,
            ffn,
        }
    }
}

/// The eval forward, compiled to a flat parameter-id schedule.
///
/// Built once per model (ids stay valid across checkpoint restores —
/// `load_values` replaces tensor contents, never ids) and executed
/// against a [`Workspace`].
pub struct InferencePlan {
    item_table: ParamId,
    pos_table: ParamId,
    infer_blocks: Vec<BlockPlan>,
    /// `None` for VSAN-z (`use_latent = false`): h feeds the generative
    /// stack directly.
    mu: Option<(ParamId, ParamId)>,
    gene_blocks: Vec<BlockPlan>,
    /// `None` in tied mode (scores against the item table instead).
    prediction: Option<(ParamId, ParamId)>,
    n: usize,
    d: usize,
    vocab: usize,
    threads: usize,
}

impl InferencePlan {
    /// Resolve the schedule from the model's layers.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        item_table: ParamId,
        pos_table: ParamId,
        infer_blocks: &[SelfAttentionBlock],
        mu_head: &Linear,
        gene_blocks: &[SelfAttentionBlock],
        prediction: &Linear,
        cfg: &crate::VsanConfig,
        vocab: usize,
    ) -> Self {
        InferencePlan {
            item_table,
            pos_table,
            infer_blocks: infer_blocks.iter().map(BlockPlan::from_block).collect(),
            mu: cfg
                .use_latent
                .then(|| (mu_head.w, mu_head.b.expect("mu head is biased"))),
            gene_blocks: gene_blocks.iter().map(BlockPlan::from_block).collect(),
            prediction: (!cfg.tie_prediction)
                .then(|| (prediction.w, prediction.b.expect("prediction layer is biased"))),
            n: cfg.base.max_seq_len,
            d: cfg.base.dim,
            vocab,
            threads: cfg.base.threads,
        }
    }

    /// Run the forward for `fold_ins` into `ws`, returning one logit row
    /// per history. Errors on out-of-vocabulary item ids (the same
    /// condition the graph path's `gather_rows` rejects).
    pub(crate) fn execute(
        &self,
        store: &ParamStore,
        fold_ins: &[&[u32]],
        ws: &mut Workspace,
    ) -> Result<Vec<Vec<f32>>, String> {
        let b = self.execute_hidden(store, fold_ins, ws)?;
        if b == 0 {
            return Ok(Vec::new());
        }
        self.project_logits(store, b, ws);
        Ok(ws.logits[..b * self.vocab].chunks(self.vocab).map(<[f32]>::to_vec).collect())
    }

    /// The forward up to (and including) each history's final hidden row:
    /// embedding gather → inference blocks → μ → generative blocks,
    /// leaving one `(d,)` row per history in `ws.last[..b·d]`. Returns
    /// the batch size. This is the shared prefix of the dense projection
    /// ([`Self::project_logits`]) and the clustered retrieval path, which
    /// scores the same rows against a centroid index instead of the full
    /// vocabulary.
    pub(crate) fn execute_hidden(
        &self,
        store: &ParamStore,
        fold_ins: &[&[u32]],
        ws: &mut Workspace,
    ) -> Result<usize, String> {
        let b = fold_ins.len();
        if b == 0 {
            return Ok(0);
        }
        let (n, d) = (self.n, self.d);
        let rows = b * n;
        ws.ensure(rows, d, n, b, self.vocab);

        // Embedding layer (Eq. 4): item row + position row per slot.
        ws.idx.clear();
        for fold_in in fold_ins {
            ws.idx.extend(pad_left(fold_in, n).iter().map(|&i| i as usize));
        }
        let table = store.get(self.item_table).data();
        let pos = store.get(self.pos_table).data();
        for (r, &item) in ws.idx.iter().enumerate() {
            if item >= self.vocab {
                return Err(format!("item id {item} out of vocabulary ({})", self.vocab));
            }
            let h_row = &mut ws.h[r * d..(r + 1) * d];
            h_row.copy_from_slice(&table[item * d..(item + 1) * d]);
            let p_row = &pos[(r % n) * d..(r % n + 1) * d];
            for (hv, &pv) in h_row.iter_mut().zip(p_row) {
                *hv += pv;
            }
        }

        // Only the *terminal* stage's last row per sample feeds the
        // prediction readout: every earlier stage must run at all
        // positions (its rows become the next stage's keys/values), but
        // the final stage's non-last rows feed nothing — causality lets
        // the fast path skip them entirely, bit-exactly (each row is an
        // independent per-row fold in every kernel involved).
        let trim_gene = !self.gene_blocks.is_empty();
        let trim_mu = !trim_gene && self.mu.is_some();
        let trim_infer = !trim_gene && !trim_mu && !self.infer_blocks.is_empty();

        // Inference self-attention layer (Eqs. 5–11), dropout off.
        let full_infer = self.infer_blocks.len() - usize::from(trim_infer);
        for block in &self.infer_blocks[..full_infer] {
            self.run_block(store, block, rows, b, ws);
        }
        for block in &self.infer_blocks[full_infer..] {
            self.run_block_tail(store, block, b, ws);
        }

        // Latent variable layer at eval: z = μ_λ, no sampling (§IV-E).
        if let Some((w, bias)) = self.mu {
            if trim_mu {
                // Terminal stage: project only each sample's last row.
                for s in 0..b {
                    let src = (s * n + n - 1) * d;
                    ws.last_in[s * d..(s + 1) * d].copy_from_slice(&ws.h[src..src + d]);
                }
                let dst = &mut ws.last[..b * d];
                dst.fill(0.0);
                matmul_into_parallel(&ws.last_in[..b * d], store.get(w).data(), dst, b, d, d, self.threads);
                add_bias_rows(dst, store.get(bias).data(), b);
            } else {
                self.linear_into_tmp(store, w, Some(bias), rows, d, ws);
                std::mem::swap(&mut ws.h, &mut ws.q);
            }
        }

        // Generative self-attention layer (Eqs. 15–17).
        let full_gene = self.gene_blocks.len() - usize::from(trim_gene);
        for block in &self.gene_blocks[..full_gene] {
            self.run_block(store, block, rows, b, ws);
        }
        for block in &self.gene_blocks[full_gene..] {
            self.run_block_tail(store, block, b, ws);
        }

        // Last-position rows (Eq. 18). A trimmed terminal stage already
        // left them in `ws.last`.
        if !(trim_gene || trim_mu || trim_infer) {
            for s in 0..b {
                let src = (s * n + n - 1) * d;
                ws.last[s * d..(s + 1) * d].copy_from_slice(&ws.h[src..src + d]);
            }
        }
        Ok(b)
    }

    /// Project the `b` hidden rows left in `ws.last` by
    /// [`Self::execute_hidden`] to full-vocabulary logits (Eq. 19) in
    /// `ws.logits[..b·vocab]`.
    pub(crate) fn project_logits(&self, store: &ParamStore, b: usize, ws: &mut Workspace) {
        let d = self.d;
        let table = store.get(self.item_table).data();
        match self.prediction {
            Some((w, bias)) => {
                ws.logits[..b * self.vocab].fill(0.0);
                matmul_into_parallel(
                    &ws.last[..b * d],
                    store.get(w).data(),
                    &mut ws.logits[..b * self.vocab],
                    b,
                    d,
                    self.vocab,
                    self.threads,
                );
                add_bias_rows(&mut ws.logits[..b * self.vocab], store.get(bias).data(), b);
            }
            None => {
                // Tied mode: score against the item-embedding table,
                // exactly the graph's `matmul_a_bt(last, table)`.
                vsan_tensor::ops::matmul_a_bt_into(
                    &ws.last[..b * d],
                    table,
                    &mut ws.logits[..b * self.vocab],
                    b,
                    d,
                    self.vocab,
                );
            }
        }
    }

    /// `ws.q[..rows*out] = h · store[w] (+ bias)`, zero-filled first.
    fn linear_into_tmp(
        &self,
        store: &ParamStore,
        w: ParamId,
        bias: Option<ParamId>,
        rows: usize,
        out_dim: usize,
        ws: &mut Workspace,
    ) {
        let d = self.d;
        let dst = &mut ws.q[..rows * out_dim];
        dst.fill(0.0);
        matmul_into_parallel(
            &ws.h[..rows * d],
            store.get(w).data(),
            dst,
            rows,
            d,
            out_dim,
            self.threads,
        );
        if let Some(bias) = bias {
            add_bias_rows(dst, store.get(bias).data(), rows);
        }
    }

    /// One self-attention block over `ws.h` in place, mirroring
    /// [`SelfAttentionBlock::forward`] op for op (eval mode: the dropout
    /// between attention and residual is the identity).
    fn run_block(&self, store: &ParamStore, block: &BlockPlan, rows: usize, b: usize, ws: &mut Workspace) {
        let (n, d) = (self.n, self.d);
        let threads = self.threads;
        // q/k/v projections over the whole flattened batch (no bias).
        for (dst, w) in [(&mut ws.q, block.wq), (&mut ws.k, block.wk), (&mut ws.v, block.wv)] {
            let dst = &mut dst[..rows * d];
            dst.fill(0.0);
            matmul_into_parallel(&ws.h[..rows * d], store.get(w).data(), dst, rows, d, d, threads);
        }
        let scale = 1.0 / (d as f32).sqrt();
        // Per-sample fused causal attention into `tmp`.
        for s in 0..b {
            let span = s * n * d..(s + 1) * n * d;
            causal_attention_into(
                &ws.q[span.clone()],
                &ws.k[span.clone()],
                &ws.v[span.clone()],
                n,
                d,
                scale,
                &mut ws.score,
                &mut ws.tmp[span],
            );
        }
        // Residual + LayerNorm (Eq. 7): h = LN1(attn + x).
        for (tv, &hv) in ws.tmp[..rows * d].iter_mut().zip(&ws.h[..rows * d]) {
            *tv += hv;
        }
        layer_norm_rows_into(
            &ws.tmp[..rows * d],
            store.get(block.ln1_gamma).data(),
            store.get(block.ln1_beta).data(),
            LN_EPS,
            rows,
            d,
            &mut ws.h[..rows * d],
        );
        // Point-wise FFN + residual + LayerNorm (Eqs. 8–9), if enabled.
        if let Some(ffn) = &block.ffn {
            self.linear_into_tmp(store, ffn.w1, Some(ffn.b1), rows, d, ws);
            for v in ws.q[..rows * d].iter_mut() {
                *v = v.max(0.0);
            }
            let f = &mut ws.k[..rows * d];
            f.fill(0.0);
            matmul_into_parallel(&ws.q[..rows * d], store.get(ffn.w2).data(), f, rows, d, d, threads);
            add_bias_rows(f, store.get(ffn.b2).data(), rows);
            for (fv, &hv) in f.iter_mut().zip(&ws.h[..rows * d]) {
                *fv += hv;
            }
            layer_norm_rows_into(
                &ws.k[..rows * d],
                store.get(ffn.ln2_gamma).data(),
                store.get(ffn.ln2_beta).data(),
                LN_EPS,
                rows,
                d,
                &mut ws.h[..rows * d],
            );
        }
    }

    /// The terminal block, computing only each sample's last row of
    /// output (into `ws.last`): keys and values are still projected at
    /// every position — the last query attends to all of them — but the
    /// query projection, attention, residual+LN and FFN run on `b` rows
    /// instead of `b·n`. Bit-exact per the row-independence argument on
    /// [`causal_attention_last_row_into`].
    fn run_block_tail(&self, store: &ParamStore, block: &BlockPlan, b: usize, ws: &mut Workspace) {
        let (n, d) = (self.n, self.d);
        let rows = b * n;
        let threads = self.threads;
        for (dst, w) in [(&mut ws.k, block.wk), (&mut ws.v, block.wv)] {
            let dst = &mut dst[..rows * d];
            dst.fill(0.0);
            matmul_into_parallel(&ws.h[..rows * d], store.get(w).data(), dst, rows, d, d, threads);
        }
        // Each sample's last input row doubles as the residual source.
        for s in 0..b {
            let src = (s * n + n - 1) * d;
            ws.last_in[s * d..(s + 1) * d].copy_from_slice(&ws.h[src..src + d]);
        }
        let q_last = &mut ws.q[..b * d];
        q_last.fill(0.0);
        matmul_into_parallel(&ws.last_in[..b * d], store.get(block.wq).data(), q_last, b, d, d, threads);
        let scale = 1.0 / (d as f32).sqrt();
        for s in 0..b {
            let span = s * n * d..(s + 1) * n * d;
            causal_attention_last_row_into(
                &ws.q[s * d..(s + 1) * d],
                &ws.k[span.clone()],
                &ws.v[span],
                n,
                d,
                scale,
                &mut ws.score,
                &mut ws.tmp[s * d..(s + 1) * d],
            );
        }
        // Residual + LayerNorm (Eq. 7) over the `b` last rows.
        for (tv, &hv) in ws.tmp[..b * d].iter_mut().zip(&ws.last_in[..b * d]) {
            *tv += hv;
        }
        layer_norm_rows_into(
            &ws.tmp[..b * d],
            store.get(block.ln1_gamma).data(),
            store.get(block.ln1_beta).data(),
            LN_EPS,
            b,
            d,
            &mut ws.last[..b * d],
        );
        // Point-wise FFN + residual + LayerNorm (Eqs. 8–9), if enabled.
        if let Some(ffn) = &block.ffn {
            let h1 = &mut ws.q[..b * d];
            h1.fill(0.0);
            matmul_into_parallel(&ws.last[..b * d], store.get(ffn.w1).data(), h1, b, d, d, threads);
            add_bias_rows(h1, store.get(ffn.b1).data(), b);
            for v in h1.iter_mut() {
                *v = v.max(0.0);
            }
            let f = &mut ws.tmp[..b * d];
            f.fill(0.0);
            matmul_into_parallel(&ws.q[..b * d], store.get(ffn.w2).data(), f, b, d, d, threads);
            add_bias_rows(f, store.get(ffn.b2).data(), b);
            for (fv, &hv) in f.iter_mut().zip(&ws.last[..b * d]) {
                *fv += hv;
            }
            layer_norm_rows_into(
                &ws.tmp[..b * d],
                store.get(ffn.ln2_gamma).data(),
                store.get(ffn.ln2_beta).data(),
                LN_EPS,
                b,
                d,
                &mut ws.last[..b * d],
            );
        }
    }
}

impl InferencePlan {
    /// Prepare `state` for incremental appends onto `history`
    /// (DESIGN.md §11): run the forward over the `(n-1)`-slot window
    /// `pad_left(history, n-1)` and cache every block's K/V projections.
    ///
    /// Because histories are **left-padded** to the fixed window and
    /// position embeddings are slot-absolute, appending an item re-aligns
    /// every slot — naive per-append K/V reuse is *not* bit-exact here.
    /// What causality does guarantee is slot-aligned prefix determinism:
    /// the `(n-1)`-prefix window occupies slots `0..n-2` of the next full
    /// `n`-window *for any appended item*, with identical position rows,
    /// so this prepared state yields exactly the first `n-1` rows of
    /// every block of the next full forward.
    ///
    /// `donor` (normally the all-padding state from preparing an empty
    /// history) lets the leading `pads` all-padding rows be copied
    /// instead of recomputed: those rows attend only to other padding
    /// rows, so they are bit-identical across windows. With a donor, the
    /// per-prepare cost is `O(min(len, n-1))` rows instead of `O(n)`.
    ///
    /// The terminal block in combined (inference → generative) order only
    /// gets its K/V cached — its attention/FFN output feeds nothing that
    /// [`InferencePlan::append_session`] cannot recompute for the one new
    /// row, mirroring the terminal-stage trimming in `execute`.
    pub(crate) fn prepare_session(
        &self,
        store: &ParamStore,
        history: &[u32],
        donor: Option<&SessionState>,
        state: &mut SessionState,
        ws: &mut Workspace,
    ) -> Result<(), String> {
        let (n, d) = (self.n, self.d);
        let m = n.saturating_sub(1);
        let total = self.infer_blocks.len() + self.gene_blocks.len();
        let window = pad_left(history, m);
        let pads = m - history.len().min(m);
        if let Some(donor) = donor {
            if !donor.prepared || donor.m != m || donor.blocks.len() != total || donor.pads < pads
            {
                return Err("session donor does not cover this window's padding prefix".into());
            }
        }
        let start = if donor.is_some() { pads } else { 0 };

        state.prepared = false;
        state.m = m;
        state.pads = pads;
        state.blocks.resize_with(total, LayerKv::default);
        for kv in &mut state.blocks {
            kv.k.resize(m * d, 0.0);
            kv.v.resize(m * d, 0.0);
        }
        if let Some(donor) = donor {
            for (dst, src) in state.blocks.iter_mut().zip(&donor.blocks) {
                dst.k[..start * d].copy_from_slice(&src.k[..start * d]);
                dst.v[..start * d].copy_from_slice(&src.v[..start * d]);
            }
        }

        let rows = m - start;
        if rows > 0 {
            ws.ensure(rows, d, n, 1, self.vocab);
            let table = store.get(self.item_table).data();
            let pos = store.get(self.pos_table).data();
            for (local, &it) in window[start..].iter().enumerate() {
                let item = it as usize;
                if item >= self.vocab {
                    return Err(format!("item id {item} out of vocabulary ({})", self.vocab));
                }
                let r = start + local;
                let h_row = &mut ws.h[local * d..(local + 1) * d];
                h_row.copy_from_slice(&table[item * d..(item + 1) * d]);
                for (hv, &pv) in h_row.iter_mut().zip(&pos[r * d..(r + 1) * d]) {
                    *hv += pv;
                }
            }
            let mut bi = 0;
            for block in &self.infer_blocks {
                self.prepare_block(store, block, &mut state.blocks[bi], m, start, bi + 1 == total, ws);
                bi += 1;
            }
            // z = μ_λ between the stacks, exactly where `execute` applies
            // it when the generative stack consumes the latent rows. With
            // no generative blocks μ only touches the terminal row, which
            // `append_session` handles itself.
            if !self.gene_blocks.is_empty() {
                if let Some((w, bias)) = self.mu {
                    self.linear_into_tmp(store, w, Some(bias), rows, d, ws);
                    std::mem::swap(&mut ws.h, &mut ws.q);
                }
            }
            for block in &self.gene_blocks {
                self.prepare_block(store, block, &mut state.blocks[bi], m, start, bi + 1 == total, ws);
                bi += 1;
            }
        }
        state.prepared = true;
        Ok(())
    }

    /// One block of [`InferencePlan::prepare_session`]: project K/V for
    /// the `m - start` real rows into the cached buffers (padding rows
    /// `0..start` were donor-copied), then — unless this is the terminal
    /// block — run attention over the full cached window plus the
    /// residual/LN/FFN sublayers on the real rows only, advancing `ws.h`.
    #[allow(clippy::too_many_arguments)]
    fn prepare_block(
        &self,
        store: &ParamStore,
        block: &BlockPlan,
        kv: &mut LayerKv,
        m: usize,
        start: usize,
        is_terminal: bool,
        ws: &mut Workspace,
    ) {
        let d = self.d;
        let threads = self.threads;
        let rows = m - start;
        for (dst, w) in [(&mut kv.k, block.wk), (&mut kv.v, block.wv)] {
            let dst = &mut dst[start * d..m * d];
            dst.fill(0.0);
            matmul_into_parallel(&ws.h[..rows * d], store.get(w).data(), dst, rows, d, d, threads);
        }
        if is_terminal {
            return;
        }
        let q = &mut ws.q[..rows * d];
        q.fill(0.0);
        matmul_into_parallel(&ws.h[..rows * d], store.get(block.wq).data(), q, rows, d, d, threads);
        let scale = 1.0 / (d as f32).sqrt();
        causal_attention_resume_into(
            &ws.q[..rows * d],
            &kv.k,
            &kv.v,
            m,
            d,
            start,
            scale,
            &mut ws.score,
            &mut ws.tmp[..rows * d],
        );
        for (tv, &hv) in ws.tmp[..rows * d].iter_mut().zip(&ws.h[..rows * d]) {
            *tv += hv;
        }
        layer_norm_rows_into(
            &ws.tmp[..rows * d],
            store.get(block.ln1_gamma).data(),
            store.get(block.ln1_beta).data(),
            LN_EPS,
            rows,
            d,
            &mut ws.h[..rows * d],
        );
        if let Some(ffn) = &block.ffn {
            self.linear_into_tmp(store, ffn.w1, Some(ffn.b1), rows, d, ws);
            for v in ws.q[..rows * d].iter_mut() {
                *v = v.max(0.0);
            }
            let f = &mut ws.k[..rows * d];
            f.fill(0.0);
            matmul_into_parallel(&ws.q[..rows * d], store.get(ffn.w2).data(), f, rows, d, d, threads);
            add_bias_rows(f, store.get(ffn.b2).data(), rows);
            for (fv, &hv) in f.iter_mut().zip(&ws.h[..rows * d]) {
                *fv += hv;
            }
            layer_norm_rows_into(
                &ws.k[..rows * d],
                store.get(ffn.ln2_gamma).data(),
                store.get(ffn.ln2_beta).data(),
                LN_EPS,
                rows,
                d,
                &mut ws.h[..rows * d],
            );
        }
    }

    /// Fold one new event into a prepared session: the appended item
    /// lands in slot `n-1` of the full window, so one embedding row, one
    /// q/k/v projection row per block, one-new-row attention against the
    /// cached K/V ([`causal_attention_append_into`]) and the row-local
    /// μ/prediction tail reproduce `execute` on `pad_left(history ++
    /// [item], n)` **bit-for-bit** — the differential oracle in
    /// `tests/session_incremental.rs` and `scripts/verify.sh` holds this.
    ///
    /// The state is borrowed immutably: folding the new row *into* the
    /// cache would shift slot alignment (see [`prepare_session`]); the
    /// caller re-prepares instead, which the session runtime overlaps
    /// with returning the logits.
    pub(crate) fn append_session(
        &self,
        store: &ParamStore,
        state: &SessionState,
        item: u32,
        ws: &mut Workspace,
    ) -> Result<Vec<f32>, String> {
        let (n, d) = (self.n, self.d);
        let m = n.saturating_sub(1);
        let total = self.infer_blocks.len() + self.gene_blocks.len();
        if !state.prepared || state.m != m || state.blocks.len() != total {
            return Err("session state is not prepared for this model".into());
        }
        let item_idx = item as usize;
        if item_idx >= self.vocab {
            return Err(format!("item id {item_idx} out of vocabulary ({})", self.vocab));
        }
        ws.ensure(n, d, n, 1, self.vocab);
        {
            let table = store.get(self.item_table).data();
            let pos = store.get(self.pos_table).data();
            let h_row = &mut ws.last_in[..d];
            h_row.copy_from_slice(&table[item_idx * d..(item_idx + 1) * d]);
            for (hv, &pv) in h_row.iter_mut().zip(&pos[m * d..(m + 1) * d]) {
                *hv += pv;
            }
        }
        let mut bi = 0;
        for block in &self.infer_blocks {
            self.append_block(store, block, &state.blocks[bi], ws);
            bi += 1;
        }
        // Latent variable layer at eval: z = μ_λ on the one new row —
        // row-local, so it matches both the trimmed and full-μ branches
        // of `execute`.
        if let Some((w, bias)) = self.mu {
            let dst = &mut ws.q[..d];
            dst.fill(0.0);
            matmul_into_parallel(&ws.last_in[..d], store.get(w).data(), dst, 1, d, d, self.threads);
            add_bias_rows(dst, store.get(bias).data(), 1);
            ws.last_in[..d].copy_from_slice(&ws.q[..d]);
        }
        for block in &self.gene_blocks {
            self.append_block(store, block, &state.blocks[bi], ws);
            bi += 1;
        }
        ws.last[..d].copy_from_slice(&ws.last_in[..d]);
        match self.prediction {
            Some((w, bias)) => {
                ws.logits[..self.vocab].fill(0.0);
                matmul_into_parallel(
                    &ws.last[..d],
                    store.get(w).data(),
                    &mut ws.logits[..self.vocab],
                    1,
                    d,
                    self.vocab,
                    self.threads,
                );
                add_bias_rows(&mut ws.logits[..self.vocab], store.get(bias).data(), 1);
            }
            None => {
                vsan_tensor::ops::matmul_a_bt_into(
                    &ws.last[..d],
                    store.get(self.item_table).data(),
                    &mut ws.logits[..self.vocab],
                    1,
                    d,
                    self.vocab,
                );
            }
        }
        Ok(ws.logits[..self.vocab].to_vec())
    }

    /// One block of [`InferencePlan::append_session`]: the new row's
    /// q/k/v projections, one-new-row attention over `m` cached prefix
    /// rows plus the fresh K/V row, then residual/LN/FFN on that single
    /// row. Input arrives in `ws.last_in[..d]` and the block's output is
    /// left there for the next block.
    fn append_block(&self, store: &ParamStore, block: &BlockPlan, kv: &LayerKv, ws: &mut Workspace) {
        let d = self.d;
        let m = kv.k.len() / d;
        let threads = self.threads;
        for (dst, w) in [(&mut ws.q, block.wq), (&mut ws.k, block.wk), (&mut ws.v, block.wv)] {
            let dst = &mut dst[..d];
            dst.fill(0.0);
            matmul_into_parallel(&ws.last_in[..d], store.get(w).data(), dst, 1, d, d, threads);
        }
        let scale = 1.0 / (d as f32).sqrt();
        causal_attention_append_into(
            &ws.q[..d],
            &kv.k,
            &ws.k[..d],
            &kv.v,
            &ws.v[..d],
            m,
            d,
            scale,
            &mut ws.score,
            &mut ws.tmp[..d],
        );
        for (tv, &hv) in ws.tmp[..d].iter_mut().zip(&ws.last_in[..d]) {
            *tv += hv;
        }
        layer_norm_rows_into(
            &ws.tmp[..d],
            store.get(block.ln1_gamma).data(),
            store.get(block.ln1_beta).data(),
            LN_EPS,
            1,
            d,
            &mut ws.last[..d],
        );
        if let Some(ffn) = &block.ffn {
            let h1 = &mut ws.q[..d];
            h1.fill(0.0);
            matmul_into_parallel(&ws.last[..d], store.get(ffn.w1).data(), h1, 1, d, d, threads);
            add_bias_rows(h1, store.get(ffn.b1).data(), 1);
            for v in h1.iter_mut() {
                *v = v.max(0.0);
            }
            let f = &mut ws.tmp[..d];
            f.fill(0.0);
            matmul_into_parallel(&ws.q[..d], store.get(ffn.w2).data(), f, 1, d, d, threads);
            add_bias_rows(f, store.get(ffn.b2).data(), 1);
            for (fv, &hv) in f.iter_mut().zip(&ws.last[..d]) {
                *fv += hv;
            }
            layer_norm_rows_into(
                &ws.tmp[..d],
                store.get(ffn.ln2_gamma).data(),
                store.get(ffn.ln2_beta).data(),
                LN_EPS,
                1,
                d,
                &mut ws.last_in[..d],
            );
        } else {
            ws.last_in[..d].copy_from_slice(&ws.last[..d]);
        }
    }
}

/// Per-block cached key/value projections of a prepared session window
/// (`m` rows × `d` columns each, flat row-major).
#[derive(Debug, Default, Clone)]
struct LayerKv {
    k: Vec<f32>,
    v: Vec<f32>,
}

/// Prepared incremental-session state (DESIGN.md §11): every attention
/// block's K/V projections over the `(n-1)`-slot prefix window of a
/// history, ready for O(n·d²)-per-event folding via
/// [`crate::Vsan::append_session_logits`].
///
/// The state is a *window* cache, not an LLM-style growing KV cache:
/// VSAN left-pads to a fixed window with slot-absolute positions, so the
/// invariant that makes appends bit-exact is slot-aligned prefix
/// determinism, not append-only growth. See the DESIGN.md section for
/// the full argument.
#[derive(Debug, Default, Clone)]
pub struct SessionState {
    /// Cached slots per block — `n - 1` for the owning model.
    m: usize,
    /// Leading all-padding slots of the prepared window.
    pads: usize,
    /// Set once every block's buffers hold a consistent window.
    prepared: bool,
    blocks: Vec<LayerKv>,
}

impl SessionState {
    /// An unprepared state; appending into it errors until a prepare
    /// fills it.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` once the state holds a fully prepared window.
    pub fn is_prepared(&self) -> bool {
        self.prepared
    }

    /// Cached slots per block (`n - 1`); 0 until first prepared.
    pub fn slots(&self) -> usize {
        self.m
    }

    /// Leading all-padding slots of the prepared window.
    pub fn pad_slots(&self) -> usize {
        self.pads
    }

    /// Real (non-padding) history slots materialised in the window.
    pub fn real_slots(&self) -> usize {
        self.m - self.pads
    }

    /// Resident bytes of the cached K/V buffers (capacity, so it tracks
    /// what eviction actually frees).
    pub fn bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|kv| (kv.k.capacity() + kv.v.capacity()) * std::mem::size_of::<f32>())
            .sum()
    }

    /// Mark the state unprepared; buffers are kept for reuse by the next
    /// prepare.
    pub fn clear(&mut self) {
        self.prepared = false;
    }
}

/// Broadcast-add a `(cols,)` bias to every row of a flat `(rows, cols)`
/// buffer — the graph's `add_row_broadcast` without the allocation.
fn add_bias_rows(x: &mut [f32], bias: &[f32], rows: usize) {
    let c = bias.len();
    debug_assert_eq!(x.len(), rows * c);
    for row in x.chunks_mut(c) {
        for (xv, &bv) in row.iter_mut().zip(bias) {
            *xv += bv;
        }
    }
}

/// Reusable buffer arena for [`InferencePlan::execute`].
///
/// All buffers grow to the high-water mark of the batches they serve and
/// are then reused as-is: a serve worker that processes same-shaped
/// batches allocates nothing after the first one. One workspace serves
/// one thread — the serve worker pool holds one per worker.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Padded item indices, `(b·n,)`.
    idx: Vec<usize>,
    /// Current activations, `(b·n, d)`.
    h: Vec<f32>,
    /// Projection / FFN scratch, `(b·n, d)` each.
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    /// Attention-output / residual scratch, `(b·n, d)`.
    tmp: Vec<f32>,
    /// One attention score row, `(n,)`.
    score: Vec<f32>,
    /// Last-position activations, `(b, d)`.
    last: Vec<f32>,
    /// The terminal stage's gathered input rows, `(b, d)` (also the
    /// residual source for the trimmed block).
    last_in: Vec<f32>,
    /// Output logits, `(b, vocab)`.
    logits: Vec<f32>,
}

impl Workspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size for batches of `max_batch` histories under `cfg` (what a
    /// serve worker does at startup so the hot path never grows).
    pub fn for_config(cfg: &crate::VsanConfig, vocab: usize, max_batch: usize) -> Self {
        let mut ws = Self::new();
        let rows = max_batch.max(1) * cfg.base.max_seq_len;
        ws.ensure(rows, cfg.base.dim, cfg.base.max_seq_len, max_batch.max(1), vocab);
        ws
    }

    /// Grow every buffer to the sizes this batch needs (no-op once at
    /// the high-water mark).
    fn ensure(&mut self, rows: usize, d: usize, n: usize, b: usize, vocab: usize) {
        grow(&mut self.idx, rows, 0);
        let flat = rows * d;
        grow(&mut self.h, flat, 0.0);
        // q also holds the μ-head output that is swapped into `h`, so it
        // must be exactly as long as `h` for the swap to be shape-safe.
        grow(&mut self.q, flat, 0.0);
        grow(&mut self.k, flat, 0.0);
        grow(&mut self.v, flat, 0.0);
        grow(&mut self.tmp, flat, 0.0);
        grow(&mut self.score, n, 0.0);
        grow(&mut self.last, b * d, 0.0);
        grow(&mut self.last_in, b * d, 0.0);
        grow(&mut self.logits, b * vocab, 0.0);
    }

    /// The `b` final hidden rows left by [`InferencePlan::execute_hidden`],
    /// flat `(b, d)` — read by the clustered retrieval path.
    pub(crate) fn last_rows(&self, b: usize, d: usize) -> &[f32] {
        &self.last[..b * d]
    }
}

fn grow<T: Clone>(buf: &mut Vec<T>, len: usize, fill: T) {
    if buf.len() < len {
        buf.resize(len, fill);
    }
}

/// Run `f` with this thread's lazily-created workspace — the fallback
/// for callers that do not hold a [`Workspace`] of their own (offline
/// eval, tests). Dedicated workers should own one explicitly.
pub(crate) fn with_thread_workspace<T>(f: impl FnOnce(&mut Workspace) -> T) -> T {
    thread_local! {
        static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
    }
    WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}
