//! The trainable VSAN network.

use crate::config::VsanConfig;
use crate::infer::{self, InferencePlan, Workspace};
use crate::retrieval::{self, ItemIndex, Retrieval};
use vsan_data::sequence::{next_k_example, pad_left, SeqExampleK};
use vsan_data::Dataset;
use vsan_eval::Scorer;
use vsan_models::common::{position_indices, train_epochs};
use vsan_models::Recommender;
use vsan_nn::{Dropout, Embedding, Linear, ParamStore, SelfAttentionBlock};

use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_autograd::{Graph, Result as AgResult, Var};
use vsan_tensor::init;

/// The Variational Self-Attention Network (Fig. 2).
pub struct Vsan {
    store: ParamStore,
    item_emb: Embedding,
    pos_emb: Embedding,
    /// Inference self-attention blocks (`h₁` of them).
    infer_blocks: Vec<SelfAttentionBlock>,
    /// Variational heads (Eq. 12; log-variance parameterization).
    mu_head: Linear,
    logvar_head: Linear,
    /// Generative self-attention blocks (`h₂` of them).
    gene_blocks: Vec<SelfAttentionBlock>,
    /// Prediction layer `W_g, b_g` (Eq. 19) — a separate output matrix,
    /// not weight-tied, exactly as the paper writes it.
    prediction: Linear,
    /// Pre-resolved graph-free eval schedule (see [`crate::infer`]).
    plan: InferencePlan,
    /// How `recommend_batch` retrieves top-k (see [`crate::retrieval`]).
    retrieval: Retrieval,
    /// The clustered index, built by [`Self::rebuild_retrieval_index`].
    index: Option<ItemIndex>,
    cfg: VsanConfig,
    vocab: usize,
    /// Mean training loss (CE + β·KL) per epoch.
    pub train_losses: Vec<f32>,
}

impl Vsan {
    /// Build and train VSAN on the training users' sequences.
    pub fn train(ds: &Dataset, train_users: &[usize], cfg: &VsanConfig) -> Result<Self, String> {
        let mut model = Self::init(ds.vocab(), cfg);
        let n = cfg.base.max_seq_len;
        let examples: Vec<SeqExampleK> = train_users
            .iter()
            .filter_map(|&u| next_k_example(&ds.sequences[u], n, cfg.next_k))
            .collect();
        if examples.is_empty() {
            return Ok(model);
        }

        // Proxy examples: train_epochs shuffles/batches indices for us.
        let proxies: Vec<vsan_data::sequence::SeqExample> = (0..examples.len())
            .map(|i| vsan_data::sequence::SeqExample { input: vec![i as u32], targets: vec![] })
            .collect();

        let item_emb = model.item_emb.clone();
        let pos_emb = model.pos_emb.clone();
        let infer_blocks = model.infer_blocks.clone();
        let mu_head = model.mu_head.clone();
        let logvar_head = model.logvar_head.clone();
        let gene_blocks = model.gene_blocks.clone();
        let prediction = model.prediction.clone();
        let vcfg = cfg.clone();
        let dropout = Dropout::new(cfg.base.dropout);

        let losses = train_epochs(
            &cfg.base,
            &mut model.store,
            &proxies,
            |g, store, batch, rng, step| {
                let b = batch.len();
                let mut inputs = Vec::with_capacity(b * n);
                let mut targets: Vec<Vec<usize>> = Vec::with_capacity(b * n);
                for proxy in batch {
                    let ex = &examples[proxy.input[0] as usize];
                    inputs.extend(ex.input.iter().map(|&i| i as usize));
                    targets.extend(ex.targets.iter().cloned());
                }
                let kl_mask: Vec<bool> = targets.iter().map(|t| !t.is_empty()).collect();

                // Embedding layer (Eq. 4) + dropout. The table var is
                // reused by the tied prediction path when enabled.
                let table = store.var(g, item_emb.table);
                let items = g.gather_rows(table, &inputs)?;
                let pos = pos_emb.lookup(g, store, &position_indices(b, n))?;
                let mut h = g.add(items, pos)?;
                h = dropout.forward(g, rng, h, true)?;

                // Inference self-attention layer (Eqs. 5–11).
                for block in &infer_blocks {
                    h = block.forward(g, store, h, b, n, &dropout, rng, true)?;
                }

                // Variational heads + latent variable layer (Eqs. 12–13).
                let (z, kl) = if vcfg.use_latent {
                    let mu = mu_head.forward(g, store, h)?;
                    let logvar = logvar_head.forward(g, store, h)?;
                    let half = g.scale(logvar, 0.5);
                    let sigma = g.exp(half);
                    let eps =
                        g.constant(init::randn(rng, &[b * n, vcfg.base.dim], 0.0, 1.0));
                    let noise = g.mul(sigma, eps)?;
                    let z = g.add(mu, noise)?;
                    let kl = g.kl_std_normal(mu, logvar, &kl_mask)?;
                    (z, Some(kl))
                } else {
                    // VSAN-z: the inference output feeds the generative
                    // layer directly (Table V).
                    (h, None)
                };

                // Generative self-attention layer (Eqs. 15–17).
                let mut gz = z;
                for block in &gene_blocks {
                    gz = block.forward(g, store, gz, b, n, &dropout, rng, true)?;
                }

                // Prediction layer + loss (Eqs. 18–20). Tied mode scores
                // against the item embedding (extension flag, see config).
                let logits = if vcfg.tie_prediction {
                    g.matmul_a_bt(gz, table)?
                } else {
                    prediction.forward(g, store, gz)?
                };
                let ce = g.ce_multi_hot(logits, &targets)?;
                match kl {
                    Some(kl) => {
                        let beta = vcfg.beta.beta(step);
                        let weighted = g.scale(kl, beta);
                        let loss = g.add(ce, weighted)?;
                        let stats = vsan_nn::ShardStats {
                            ce: g.value(ce).data()[0],
                            kl: g.value(kl).data()[0],
                            beta,
                        };
                        Ok((loss, stats))
                    }
                    None => {
                        let ce_val = g.value(ce).data()[0];
                        Ok((ce, vsan_nn::ShardStats::ce_only(ce_val)))
                    }
                }
            },
            |store| {
                item_emb.zero_padding(store);
            },
        )?;
        model.train_losses = losses;
        Ok(model)
    }

    /// Initialize an untrained model (exposed for checkpoint loading).
    pub fn init(vocab: usize, cfg: &VsanConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.base.seed);
        let d = cfg.base.dim;
        let item_emb = Embedding::new(&mut store, &mut rng, "item_emb", vocab, d, true);
        let pos_emb = Embedding::new(&mut store, &mut rng, "pos_emb", cfg.base.max_seq_len, d, false);
        let infer_blocks: Vec<SelfAttentionBlock> = (0..cfg.h1)
            .map(|i| SelfAttentionBlock::new(&mut store, &mut rng, &format!("infer{i}"), d, cfg.infer_ffn))
            .collect();
        let mu_head = Linear::new(&mut store, &mut rng, "mu_head", d, d, true);
        let logvar_head = Linear::new(&mut store, &mut rng, "logvar_head", d, d, true);
        // Start the posterior nearly deterministic (σ ≈ e⁻² ≈ 0.14): with
        // Xavier init the head outputs log σ² ≈ 0, i.e. unit-variance noise
        // that drowns the reparameterized signal before the decoder can
        // learn anything — the encoder then collapses to the prior and the
        // reconstruction loss never moves. Zero weights + a −4 bias give
        // the μ path a clean channel first; KL and the data then negotiate
        // σ upward. (Documented in DESIGN.md; the paper's Eq. 12 does not
        // specify the head initialization.)
        store.get_mut(logvar_head.w).fill(0.0);
        if let Some(b) = logvar_head.b {
            store.get_mut(b).fill(-4.0);
        }
        let gene_blocks: Vec<SelfAttentionBlock> = (0..cfg.h2)
            .map(|i| SelfAttentionBlock::new(&mut store, &mut rng, &format!("gene{i}"), d, cfg.gene_ffn))
            .collect();
        let prediction = Linear::new(&mut store, &mut rng, "prediction", d, vocab, true);
        let plan = InferencePlan::new(
            item_emb.table,
            pos_emb.table,
            &infer_blocks,
            &mu_head,
            &gene_blocks,
            &prediction,
            cfg,
            vocab,
        );
        Vsan {
            store,
            item_emb,
            pos_emb,
            infer_blocks,
            mu_head,
            logvar_head,
            gene_blocks,
            prediction,
            plan,
            retrieval: Retrieval::Exact,
            index: None,
            cfg: cfg.clone(),
            vocab,
            train_losses: Vec::new(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &VsanConfig {
        &self.cfg
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Borrow the parameter store (checkpointing).
    pub fn params(&self) -> &ParamStore {
        &self.store
    }

    /// Mutably borrow the parameter store (checkpoint restore).
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Evaluation forward pass to the inference posterior of every
    /// position: returns `(graph, mu, logvar)` with dropout disabled.
    pub(crate) fn forward_posterior(&self, fold_in: &[u32]) -> AgResult<(Graph, Var, Var)> {
        let n = self.cfg.base.max_seq_len;
        let input = pad_left(fold_in, n);
        let mut g = Graph::with_threads(self.cfg.base.threads);
        let mut rng = StdRng::seed_from_u64(0);
        let dropout = Dropout::new(0.0);
        let idx: Vec<usize> = input.iter().map(|&i| i as usize).collect();
        let table = self.store.var(&mut g, self.item_emb.table);
        let items = g.gather_rows(table, &idx)?;
        let pos = self.pos_emb.lookup(&mut g, &self.store, &position_indices(1, n))?;
        let mut h = g.add(items, pos)?;
        for block in &self.infer_blocks {
            h = block.forward(&mut g, &self.store, h, 1, n, &dropout, &mut rng, false)?;
        }
        let mu = self.mu_head.forward(&mut g, &self.store, h)?;
        let logvar = self.logvar_head.forward(&mut g, &self.store, h)?;
        Ok((g, mu, logvar))
    }

    /// Convenience: top-`n` recommendations for a history, excluding the
    /// already-seen items (the evaluation protocol's view, packaged for
    /// application code).
    ///
    /// Ranks with heap-based partial selection directly over the raw
    /// prediction logits: Eq. 19's softmax is rank-monotonic, so skipping
    /// it changes nothing about the ordering while avoiding a full-vocab
    /// exp/normalize per request (verified against the softmax-and-sort
    /// reference in the tests below).
    pub fn recommend(&self, history: &[u32], n: usize) -> Vec<u32> {
        self.recommend_batch(&[history], n).pop().unwrap_or_default()
    }

    /// Batched [`Self::recommend`]: one evaluation forward for `b`
    /// histories. Identical results to calling `recommend` per history
    /// (same kernels over the same rows, batched along the row axis);
    /// the batching amortizes graph construction and per-op dispatch and
    /// is the compute path of the `vsan-serve` micro-batcher.
    ///
    /// Dispatches per [`Self::set_retrieval`]: exact brute-force by
    /// default, or the clustered index when one is built (and neither
    /// `VSAN_DISABLE_ANN=1` nor `VSAN_DISABLE_FAST_PATH=1` pins the
    /// process to the oracle). Legacy zero-fallback wrapper around
    /// [`Self::try_recommend_batch`]: an internal error degrades to
    /// ranking all-zero logits, exactly as `score_items_batch` + rank
    /// always did — serving code uses the `try_` variant.
    pub fn recommend_batch(&self, histories: &[&[u32]], n: usize) -> Vec<Vec<u32>> {
        use std::collections::HashSet;
        self.try_recommend_batch(histories, n).unwrap_or_else(|_| {
            let zeros = vec![0.0; self.vocab];
            histories
                .iter()
                .map(|history| {
                    let seen: HashSet<u32> = history.iter().copied().collect();
                    vsan_eval::top_n_excluding(&zeros, n, &seen)
                })
                .collect()
        })
    }

    /// Batched top-`n` recommendation, surfacing internal errors and
    /// honouring the configured [`Retrieval`] mode.
    pub fn try_recommend_batch(&self, histories: &[&[u32]], n: usize) -> Result<Vec<Vec<u32>>, String> {
        if self.clustered_active() {
            self.recommend_batch_clustered(histories, n)
        } else {
            self.recommend_batch_exact(histories, n)
        }
    }

    /// The exact oracle unconditionally (no env gate, no index): full
    /// logits, then heap top-k — the clustered path's counterpart for
    /// differential tests that exercise both in one process.
    pub fn recommend_batch_exact(&self, histories: &[&[u32]], n: usize) -> Result<Vec<Vec<u32>>, String> {
        use std::collections::HashSet;
        Ok(self
            .try_score_items_batch(histories)?
            .into_iter()
            .zip(histories)
            .map(|(scores, history)| {
                let seen: HashSet<u32> = history.iter().copied().collect();
                vsan_eval::top_n_excluding(&scores, n, &seen)
            })
            .collect())
    }

    /// The clustered path unconditionally: hidden rows through the fast
    /// path, then a two-stage index query per history (never the full
    /// `(b, d) × (d, N)` projection). Errors if no index is built or on
    /// the same out-of-vocabulary condition the exact path rejects.
    pub fn recommend_batch_clustered(&self, histories: &[&[u32]], n: usize) -> Result<Vec<Vec<u32>>, String> {
        use std::collections::HashSet;
        let index = self.index.as_ref().ok_or("clustered retrieval index not built")?;
        let d = self.cfg.base.dim;
        let hidden = infer::with_thread_workspace(|ws| -> Result<Vec<f32>, String> {
            let b = self.plan.execute_hidden(&self.store, histories, ws)?;
            Ok(ws.last_rows(b, d).to_vec())
        })?;
        Ok(histories
            .iter()
            .enumerate()
            .map(|(i, history)| {
                let seen: HashSet<u32> = history.iter().copied().collect();
                index.query(&hidden[i * d..(i + 1) * d], n, &seen)
            })
            .collect())
    }

    /// Configure how [`Self::recommend_batch`] retrieves top-k and
    /// (re)build the clustered index if the mode needs one. Callers that
    /// restore a checkpoint afterwards must call
    /// [`Self::rebuild_retrieval_index`] — the index is derived data over
    /// the prediction parameters, not part of the checkpoint.
    pub fn set_retrieval(&mut self, retrieval: Retrieval) {
        self.retrieval = retrieval;
        self.rebuild_retrieval_index();
    }

    /// Rebuild the clustered index from the *current* parameter values
    /// (a no-op in [`Retrieval::Exact`] mode). Deterministic: the same
    /// parameters and config produce a bit-identical index.
    pub fn rebuild_retrieval_index(&mut self) {
        let d = self.cfg.base.dim;
        self.index = match &self.retrieval {
            Retrieval::Exact => None,
            Retrieval::Clustered(cfg) => Some(if self.cfg.tie_prediction {
                ItemIndex::from_tied(self.store.get(self.item_emb.table).data(), d, self.vocab, cfg)
            } else {
                let bias = self.prediction.b.expect("prediction layer is biased");
                ItemIndex::from_untied(
                    self.store.get(self.prediction.w).data(),
                    self.store.get(bias).data(),
                    d,
                    self.vocab,
                    cfg,
                )
            }),
        };
    }

    /// The configured retrieval mode.
    pub fn retrieval(&self) -> &Retrieval {
        &self.retrieval
    }

    /// The built clustered index, if any.
    pub fn retrieval_index(&self) -> Option<&ItemIndex> {
        self.index.as_ref()
    }

    /// `true` when `recommend_batch` will route through the clustered
    /// index: an index is built and neither oracle pin
    /// (`VSAN_DISABLE_ANN=1`, `VSAN_DISABLE_FAST_PATH=1`) is set — the
    /// clustered path needs the fast path's hidden rows, so pinning to
    /// the graph path also pins retrieval to exact.
    pub fn clustered_active(&self) -> bool {
        self.index.is_some() && !retrieval::ann_disabled() && !infer::fast_path_disabled()
    }

    /// Final hidden rows (one `(d,)` row per history, flat) through the
    /// fast path against a caller-owned workspace — what a serve worker
    /// feeds per-request index queries with.
    pub fn try_last_hidden_batch_with(
        &self,
        fold_ins: &[&[u32]],
        ws: &mut Workspace,
    ) -> Result<Vec<f32>, String> {
        let b = self.plan.execute_hidden(&self.store, fold_ins, ws)?;
        Ok(ws.last_rows(b, self.cfg.base.dim).to_vec())
    }

    /// Top-`k` via the clustered index for one precomputed hidden row
    /// (from [`Self::try_last_hidden_batch_with`]), excluding `history`.
    /// Errors if no index is built.
    pub fn recommend_from_hidden(&self, hidden: &[f32], history: &[u32], k: usize) -> Result<Vec<u32>, String> {
        self.recommend_from_hidden_stats(hidden, history, k).map(|(ids, _)| ids)
    }

    /// [`Self::recommend_from_hidden`] plus the per-query probe
    /// telemetry ([`retrieval::QueryStats`]) the serving layer records.
    /// Returned ids are bit-identical to the stats-free variant.
    pub fn recommend_from_hidden_stats(
        &self,
        hidden: &[f32],
        history: &[u32],
        k: usize,
    ) -> Result<(Vec<u32>, retrieval::QueryStats), String> {
        use std::collections::HashSet;
        let index = self.index.as_ref().ok_or("clustered retrieval index not built")?;
        let seen: HashSet<u32> = history.iter().copied().collect();
        Ok(index.query_with_probe_stats(hidden, k, &seen, index.nprobe()))
    }

    /// Batched [`vsan_eval::Scorer::score_items`]: last-position logits
    /// for each history, one row per history.
    ///
    /// Legacy zero-fallback wrapper around [`Self::try_score_items_batch`]:
    /// an internal error comes back as all-zero rows, indistinguishable
    /// from real scores. Serving code must use the `try_` variant and
    /// handle the error explicitly (DESIGN.md §10).
    pub fn score_items_batch(&self, fold_ins: &[&[u32]]) -> Vec<Vec<f32>> {
        self.try_score_items_batch(fold_ins)
            .unwrap_or_else(|_| vec![vec![0.0; self.vocab]; fold_ins.len()])
    }

    /// Batched last-position logits, surfacing internal errors.
    ///
    /// Runs the graph-free fast path ([`crate::infer`]) against a
    /// per-thread workspace unless `VSAN_DISABLE_FAST_PATH=1` pins the
    /// process to the graph path. Both paths are bit-identical (the
    /// differential suite in `tests/fast_path.rs` and the golden fixture
    /// assert it).
    pub fn try_score_items_batch(&self, fold_ins: &[&[u32]]) -> Result<Vec<Vec<f32>>, String> {
        if infer::fast_path_disabled() {
            self.score_items_batch_graph(fold_ins)
        } else {
            infer::with_thread_workspace(|ws| self.plan.execute(&self.store, fold_ins, ws))
        }
    }

    /// [`Self::try_score_items_batch`] against a caller-owned
    /// [`Workspace`] — what a serve worker uses so its buffers persist
    /// across batches (zero steady-state allocation).
    pub fn try_score_items_batch_with(
        &self,
        fold_ins: &[&[u32]],
        ws: &mut Workspace,
    ) -> Result<Vec<Vec<f32>>, String> {
        if infer::fast_path_disabled() {
            self.score_items_batch_graph(fold_ins)
        } else {
            self.plan.execute(&self.store, fold_ins, ws)
        }
    }

    /// A reusable [`Workspace`] pre-sized for this model at `max_batch`
    /// fold-ins — what each `vsan-serve` worker holds so the fast path
    /// allocates nothing in steady state.
    pub fn workspace(&self, max_batch: usize) -> Workspace {
        Workspace::for_config(&self.cfg, self.vocab, max_batch)
    }

    /// The all-padding donor state for incremental sessions: the
    /// prepared `(n-1)`-slot window of the *empty* history. Computed once
    /// per runtime and shared (read-only) by every
    /// [`Self::prepare_session_into`] call, which copies its leading
    /// padding rows instead of recomputing them (DESIGN.md §11).
    pub fn pad_session_state(&self) -> Result<crate::SessionState, String> {
        let mut state = crate::SessionState::new();
        infer::with_thread_workspace(|ws| {
            self.plan.prepare_session(&self.store, &[], None, &mut state, ws)
        })?;
        Ok(state)
    }

    /// Prepare `state` so [`Self::append_session_logits`] can fold the
    /// *next* event onto `history` in O(n·d²). `donor` is normally the
    /// shared [`Self::pad_session_state`]; with it, the prepare computes
    /// only `min(len, n-1)` real rows. Without a donor the padding rows
    /// are computed from scratch (how the pad state itself is built).
    pub fn prepare_session_into(
        &self,
        history: &[u32],
        donor: Option<&crate::SessionState>,
        state: &mut crate::SessionState,
        ws: &mut Workspace,
    ) -> Result<(), String> {
        self.plan.prepare_session(&self.store, history, donor, state, ws)
    }

    /// Last-position logits for `history ++ [item]` where `state` was
    /// prepared for `history` — bit-identical to
    /// `try_score_items_batch(&[fold_in_window(history ++ [item])])` on
    /// the fast path (the append-vs-recompute differential suite and
    /// `scripts/verify.sh` assert it), at O(n·d²) instead of O(n²·d +
    /// n·d²) per event.
    pub fn append_session_logits(
        &self,
        state: &crate::SessionState,
        item: u32,
        ws: &mut Workspace,
    ) -> Result<Vec<f32>, String> {
        self.plan.append_session(&self.store, state, item, ws)
    }

    /// The graph-path forward, kept as the differential-testing oracle:
    /// builds the full autograd tape exactly as training eval did before
    /// the fast path existed. Slow; for tests and benchmarks.
    pub fn score_items_batch_graph(&self, fold_ins: &[&[u32]]) -> Result<Vec<Vec<f32>>, String> {
        self.forward_logits_batch(fold_ins).map_err(|e| e.to_string())
    }

    /// The fast path unconditionally (no env gate) — the oracle's
    /// counterpart for differential tests that exercise both paths in
    /// one process.
    pub fn score_items_batch_fast(&self, fold_ins: &[&[u32]]) -> Result<Vec<Vec<f32>>, String> {
        infer::with_thread_workspace(|ws| self.plan.execute(&self.store, fold_ins, ws))
    }

    /// The fold-in window the model actually reads: the last
    /// `max_seq_len` items of a history. Histories equal on this window
    /// produce identical scores — the key equivalence behind the
    /// `vsan-serve` sequence cache.
    pub fn fold_in_window<'h>(&self, history: &'h [u32]) -> &'h [u32] {
        let n = self.cfg.base.max_seq_len;
        &history[history.len().saturating_sub(n)..]
    }

    /// Decode a caller-supplied latent for the *last* position (earlier
    /// positions keep their posterior means) into item probabilities.
    /// Powers the Monte-Carlo scoring extension in [`crate::uncertainty`].
    pub(crate) fn decode_latent_probs(
        &self,
        fold_in: &[u32],
        z_last: &[f32],
    ) -> Result<Vec<f32>, String> {
        let n = self.cfg.base.max_seq_len;
        let d = self.cfg.base.dim;
        if z_last.len() != d {
            return Err(format!("latent width {} != model dim {d}", z_last.len()));
        }
        let (g_post, mu, _) = self.forward_posterior(fold_in).map_err(|e| e.to_string())?;
        let mut z_mat = g_post.value(mu).clone();
        z_mat.row_mut(n - 1).copy_from_slice(z_last);
        drop(g_post);

        let mut g = Graph::with_threads(self.cfg.base.threads);
        let mut rng = StdRng::seed_from_u64(0);
        let dropout = Dropout::new(0.0);
        let mut z = g.constant(z_mat);
        for block in &self.gene_blocks {
            z = block
                .forward(&mut g, &self.store, z, 1, n, &dropout, &mut rng, false)
                .map_err(|e| e.to_string())?;
        }
        let last = g.gather_rows(z, &[n - 1]).map_err(|e| e.to_string())?;
        let logits = if self.cfg.tie_prediction {
            let table = self.store.var(&mut g, self.item_emb.table);
            g.matmul_a_bt(last, table).map_err(|e| e.to_string())?
        } else {
            self.prediction.forward(&mut g, &self.store, last).map_err(|e| e.to_string())?
        };
        let probs = g.softmax_rows(logits).map_err(|e| e.to_string())?;
        Ok(g.value(probs).data().to_vec())
    }

    /// Batched evaluation forward: `b` left-padded fold-in windows run as
    /// one `(b·n, d)` pass through both attention stacks, predicting only
    /// the `b` last positions. Evaluation mode throughout: dropout off,
    /// latent `z = μ_λ` (no sampling), exactly as the single-request path.
    ///
    /// Every kernel in the stack (matmul, layer norm, masked softmax)
    /// operates row-wise with a fixed per-row accumulation order, so each
    /// history's logits are bit-identical to its `b = 1` forward — the
    /// invariant the serving engine's determinism guarantee rests on
    /// (asserted by `batched_forward_matches_sequential`).
    fn forward_logits_batch(&self, fold_ins: &[&[u32]]) -> AgResult<Vec<Vec<f32>>> {
        let b = fold_ins.len();
        if b == 0 {
            return Ok(Vec::new());
        }
        let n = self.cfg.base.max_seq_len;
        let mut g = Graph::with_threads(self.cfg.base.threads);
        let mut rng = StdRng::seed_from_u64(0);
        let dropout = Dropout::new(0.0);
        let mut idx: Vec<usize> = Vec::with_capacity(b * n);
        for fold_in in fold_ins {
            idx.extend(pad_left(fold_in, n).iter().map(|&i| i as usize));
        }
        let table = self.store.var(&mut g, self.item_emb.table);
        let items = g.gather_rows(table, &idx)?;
        let pos = self.pos_emb.lookup(&mut g, &self.store, &position_indices(b, n))?;
        let mut h = g.add(items, pos)?;
        for block in &self.infer_blocks {
            h = block.forward(&mut g, &self.store, h, b, n, &dropout, &mut rng, false)?;
        }
        let mut z = if self.cfg.use_latent {
            self.mu_head.forward(&mut g, &self.store, h)?
        } else {
            h
        };
        for block in &self.gene_blocks {
            z = block.forward(&mut g, &self.store, z, b, n, &dropout, &mut rng, false)?;
        }
        let last_rows: Vec<usize> = (0..b).map(|i| i * n + n - 1).collect();
        let last = g.gather_rows(z, &last_rows)?;
        let logits = if self.cfg.tie_prediction {
            g.matmul_a_bt(last, table)?
        } else {
            self.prediction.forward(&mut g, &self.store, last)?
        };
        let flat = g.value(logits).data();
        Ok(flat.chunks(self.vocab).map(<[f32]>::to_vec).collect())
    }
}

impl Scorer for Vsan {
    fn score_items(&self, fold_in: &[u32]) -> Vec<f32> {
        // Single-history scoring is the b = 1 batch — same dispatch, so
        // the fast path serves offline evaluation too.
        self.try_score_items_batch(&[fold_in])
            .ok()
            .and_then(|mut rows| rows.pop())
            .unwrap_or_else(|| vec![0.0; self.vocab])
    }
    fn vocab(&self) -> usize {
        self.vocab
    }
}

impl Recommender for Vsan {
    fn name(&self) -> &'static str {
        "VSAN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VsanConfig;

    fn chain_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
        let sequences = (0..users)
            .map(|u| (0..len).map(|t| ((u + t) % num_items + 1) as u32).collect())
            .collect();
        Dataset { name: "chain".into(), num_items, sequences }
    }

    #[test]
    fn training_reduces_loss() {
        // Fixed β so the loss is comparable across epochs (under annealing
        // the growing KL weight can mask the falling reconstruction term).
        let ds = chain_dataset(8, 24, 10);
        let users: Vec<usize> = (0..24).collect();
        let mut cfg = VsanConfig::smoke().with_beta(vsan_nn::BetaSchedule::Fixed(0.05));
        cfg.base = cfg.base.with_epochs(6);
        let model = Vsan::train(&ds, &users, &cfg).unwrap();
        assert!(model.train_losses.last().unwrap() < &model.train_losses[0]);
    }

    #[test]
    fn learns_deterministic_chain() {
        let ds = chain_dataset(6, 30, 12);
        let users: Vec<usize> = (0..30).collect();
        let mut cfg = VsanConfig::smoke();
        cfg.base = cfg.base.with_epochs(40);
        let model = Vsan::train(&ds, &users, &cfg).unwrap();
        let scores = model.score_items(&[3, 4]);
        let best = (1..=6).max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap()).unwrap();
        assert_eq!(best, 5, "scores {:?}", &scores[1..]);
    }

    #[test]
    fn evaluation_is_deterministic_posterior_mean() {
        let ds = chain_dataset(6, 12, 8);
        let users: Vec<usize> = (0..12).collect();
        let mut cfg = VsanConfig::smoke();
        cfg.base = cfg.base.with_epochs(2);
        let model = Vsan::train(&ds, &users, &cfg).unwrap();
        assert_eq!(model.score_items(&[1, 2]), model.score_items(&[1, 2]));
    }

    #[test]
    fn all_variants_train() {
        let ds = chain_dataset(6, 16, 8);
        let users: Vec<usize> = (0..16).collect();
        let base = {
            let mut c = VsanConfig::smoke();
            c.base = c.base.with_epochs(2);
            c
        };
        for cfg in [
            base.clone(),
            base.clone().vsan_z(),
            base.clone().all_feed(),
            base.clone().infer_feed(),
            base.clone().gene_feed(),
        ] {
            let name = cfg.variant_name();
            let model = Vsan::train(&ds, &users, &cfg).unwrap();
            assert!(
                model.train_losses.iter().all(|l| l.is_finite()),
                "{name} produced non-finite losses"
            );
            assert!(model.score_items(&[1, 2]).iter().all(|s| s.is_finite()), "{name}");
        }
    }

    #[test]
    fn block_count_grid_trains_including_zeroes() {
        let ds = chain_dataset(6, 12, 8);
        let users: Vec<usize> = (0..12).collect();
        for (h1, h2) in [(0, 0), (0, 1), (1, 0), (2, 1)] {
            let mut cfg = VsanConfig::smoke().with_blocks(h1, h2);
            cfg.base = cfg.base.with_epochs(1);
            let model = Vsan::train(&ds, &users, &cfg).unwrap();
            assert!(model.train_losses[0].is_finite(), "(h1,h2)=({h1},{h2})");
        }
    }

    #[test]
    fn next_k_grows_the_target_sets() {
        let ds = chain_dataset(6, 12, 10);
        let users: Vec<usize> = (0..12).collect();
        for k in [1, 2, 3] {
            let mut cfg = VsanConfig::smoke().with_next_k(k);
            cfg.base = cfg.base.with_epochs(1);
            let model = Vsan::train(&ds, &users, &cfg).unwrap();
            assert!(model.train_losses[0].is_finite(), "k={k}");
        }
    }

    #[test]
    fn vsan_z_has_same_params_but_no_kl_path() {
        // VSAN-z keeps the heads registered (same param count) but the
        // latent path is bypassed, so the μ head receives no gradient.
        let ds = chain_dataset(6, 12, 8);
        let users: Vec<usize> = (0..12).collect();
        let mut cfg = VsanConfig::smoke().vsan_z();
        cfg.base = cfg.base.with_epochs(1);
        let model = Vsan::train(&ds, &users, &cfg).unwrap();
        assert!(model.num_parameters() > 0);
        assert_eq!(model.config().variant_name(), "VSAN-z");
    }

    #[test]
    fn recommend_excludes_history_and_bounds_n() {
        let ds = chain_dataset(6, 16, 10);
        let users: Vec<usize> = (0..16).collect();
        let mut cfg = VsanConfig::smoke();
        cfg.base = cfg.base.with_epochs(2);
        let model = Vsan::train(&ds, &users, &cfg).unwrap();
        let history = vec![1u32, 2, 3];
        let recs = model.recommend(&history, 4);
        assert!(recs.len() <= 4);
        for r in &recs {
            assert!(!history.contains(r), "recommended an already-seen item");
            assert_ne!(*r, 0, "recommended the padding item");
        }
        // Asking for more than the catalogue returns everything unseen.
        let all = model.recommend(&history, 100);
        assert_eq!(all.len(), 6 - 3);
    }

    #[test]
    fn heap_top_k_matches_softmax_sort_reference() {
        // `recommend` ranks by heap-based partial selection over raw
        // logits. The reference path — full softmax over the vocabulary,
        // then a complete sort — is what Eq. 19 literally writes; softmax
        // is rank-monotonic, so the two must agree exactly.
        let ds = chain_dataset(8, 20, 10);
        let users: Vec<usize> = (0..20).collect();
        let mut cfg = VsanConfig::smoke();
        cfg.base = cfg.base.with_epochs(3);
        let model = Vsan::train(&ds, &users, &cfg).unwrap();
        for history in [vec![1u32, 2], vec![3, 4, 5], vec![7]] {
            for k in [1, 3, 6] {
                let fast = model.recommend(&history, k);

                // Reference: softmax + full stable sort + exclusion.
                let logits = model.score_items(&history);
                let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = logits.iter().map(|l| (l - max).exp()).collect();
                let z: f32 = exps.iter().sum();
                let probs: Vec<f32> = exps.iter().map(|e| e / z).collect();
                let mut ids: Vec<u32> = (1..probs.len() as u32)
                    .filter(|i| !history.contains(i))
                    .collect();
                ids.sort_by(|&a, &b| {
                    probs[b as usize]
                        .partial_cmp(&probs[a as usize])
                        .unwrap()
                        .then_with(|| a.cmp(&b))
                });
                ids.truncate(k);
                assert_eq!(fast, ids, "history {history:?} k {k}");
            }
        }
    }

    #[test]
    fn batched_forward_matches_sequential() {
        let ds = chain_dataset(7, 24, 10);
        let users: Vec<usize> = (0..24).collect();
        let mut cfg = VsanConfig::smoke();
        cfg.base = cfg.base.with_epochs(2);
        let model = Vsan::train(&ds, &users, &cfg).unwrap();
        let histories: Vec<Vec<u32>> =
            vec![vec![1, 2, 3], vec![4], vec![5, 6, 7, 1, 2, 3, 4, 5, 6, 7], vec![2, 4]];
        let refs: Vec<&[u32]> = histories.iter().map(Vec::as_slice).collect();

        let batched = model.score_items_batch(&refs);
        assert_eq!(batched.len(), histories.len());
        for (h, row) in histories.iter().zip(&batched) {
            assert_eq!(row, &model.score_items(h), "scores must be bit-identical");
        }

        let recs = model.recommend_batch(&refs, 3);
        for (h, rec) in histories.iter().zip(&recs) {
            assert_eq!(rec, &model.recommend(h, 3));
        }
        assert!(model.recommend_batch(&[], 3).is_empty());
    }

    #[test]
    fn fold_in_window_is_the_model_view() {
        let cfg = VsanConfig::smoke(); // max_seq_len = 8
        let model = Vsan::init(10, &cfg);
        let long: Vec<u32> = (1..=20).map(|i| (i % 9 + 1) as u32).collect();
        let window = model.fold_in_window(&long);
        assert_eq!(window.len(), 8);
        assert_eq!(window, &long[12..]);
        // Scores depend only on the window.
        assert_eq!(model.score_items(&long), model.score_items(window));
        let short = [3u32, 4];
        assert_eq!(model.fold_in_window(&short), &short);
    }

    #[test]
    fn checkpoint_round_trip_preserves_scores() {
        let ds = chain_dataset(6, 12, 8);
        let users: Vec<usize> = (0..12).collect();
        let mut cfg = VsanConfig::smoke();
        cfg.base = cfg.base.with_epochs(2);
        let model = Vsan::train(&ds, &users, &cfg).unwrap();
        let blob = model.params().save();
        let mut restored = Vsan::init(model.vocab(), &cfg);
        let count = restored.params_mut().load_values(blob).unwrap();
        assert_eq!(count, restored.params().len());
        assert_eq!(model.score_items(&[1, 2]), restored.score_items(&[1, 2]));
    }
}
