//! Clustered maximum-inner-product retrieval over the prediction head
//! (DESIGN.md §12).
//!
//! The dense `(b, d) × (d, N)` prediction matmul dominates inference as
//! the catalog grows; at N = 10⁶ it *is* the budget. Softmax is
//! rank-monotonic, so serving only needs top-k set fidelity over raw
//! logits — which a two-stage index delivers:
//!
//! 1. **Coarse stage**: score the query against `num_clusters` k-means
//!    centroids ([`vsan_tensor::cluster`]) of the item vectors and pick
//!    the top `nprobe` clusters;
//! 2. **Exact re-rank**: score every item in the probed clusters with the
//!    same ascending-k fold the exact path uses, and select top-k with
//!    the same `(score desc, id asc)` heap
//!    ([`vsan_eval::top_n_excluding_pairs`]).
//!
//! Survivor scores are **bit-identical** to the exact path's logits: in
//! tied mode both are `matmul_a_bt` folds over the same item rows; in
//! untied mode the index stores `[W[:, j] ; b_j]` and augments the query
//! with a trailing `1.0`, so the fold ends with `… + 1.0·b_j`, the same
//! IEEE sequence as the exact path's matmul-then-`add_bias_rows`. With
//! `nprobe = num_clusters` every item is a candidate, so the result
//! equals exact top-k bit-for-bit and in order — the property the
//! differential suite in `tests/retrieval.rs` enforces. Smaller `nprobe`
//! trades recall for speed; `results/BENCH_retrieval.json` gates
//! recall@50 ≥ 0.95 against the exact oracle.
//!
//! `VSAN_DISABLE_ANN=1` pins every consumer back to exact brute-force
//! scoring, mirroring `VSAN_DISABLE_FAST_PATH` — the oracle is always
//! deployable.

use std::collections::HashSet;
use std::sync::OnceLock;

use vsan_tensor::cluster::{cluster_rows, KmeansConfig};
use vsan_tensor::ops::matmul_a_bt_into;

/// `true` when `VSAN_DISABLE_ANN=1` pins recommendation to exact
/// brute-force scoring even if a clustered index is configured. Read once
/// per process, mirroring [`crate::fast_path_disabled`]: the flag is a
/// deployment/CI toggle, not a per-call switch (tests that need both
/// paths in one process call the explicit `recommend_batch_exact` /
/// `recommend_batch_clustered` entry points).
pub fn ann_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| std::env::var("VSAN_DISABLE_ANN").is_ok_and(|v| v == "1"))
}

/// How [`crate::Vsan::recommend_batch`] retrieves top-k items.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Retrieval {
    /// Brute-force scoring of the full vocabulary — the oracle.
    #[default]
    Exact,
    /// Two-stage clustered MIPS with exact re-rank of survivors.
    Clustered(ClusteredConfig),
}

/// Knobs for the clustered index. `0` means "derive from the catalog
/// size" for the two query-shape knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredConfig {
    /// Centroid count; `0` → `ceil(sqrt(N))`.
    pub num_clusters: usize,
    /// Clusters visited per query; `0` → `max(4, num_clusters / 10)`.
    /// Clamped to `num_clusters`. The query also keeps probing past this
    /// floor until it has at least `k + |exclude|` candidates, so result
    /// *length* always matches the exact path (only ranking fidelity is
    /// approximate).
    pub nprobe: usize,
    /// Lloyd iterations for the centroid build.
    pub kmeans_iters: usize,
    /// Training-sample cap for the centroid build (`0` = all items).
    pub train_sample: usize,
    /// Seed of the deterministic k-means stream.
    pub seed: u64,
}

impl Default for ClusteredConfig {
    fn default() -> Self {
        ClusteredConfig { num_clusters: 0, nprobe: 0, kmeans_iters: 4, train_sample: 65_536, seed: 0x5EED }
    }
}

impl ClusteredConfig {
    fn resolve(&self, indexed: usize) -> (usize, usize) {
        let nc = if self.num_clusters == 0 {
            (indexed as f64).sqrt().ceil() as usize
        } else {
            self.num_clusters
        }
        .clamp(1, indexed.max(1));
        let np = if self.nprobe == 0 { (nc / 10).max(4) } else { self.nprobe }.clamp(1, nc);
        (nc, np)
    }
}

/// The built index: centroids plus item vectors regrouped by cluster for
/// contiguous re-rank scans.
///
/// Item id 0 (the padding slot) is never indexed; row `i` of the input
/// corresponds to item id `i + 1`. Builds are bit-reproducible from the
/// same parameters and config ([`vsan_tensor::cluster`]'s determinism
/// contract), which `tests/retrieval.rs` asserts across rebuilds and
/// checkpoint restores.
pub struct ItemIndex {
    /// Stored vector width: `d`, or `d + 1` with the bias component.
    dim: usize,
    /// `true` when vectors carry a trailing bias and queries get `1.0`.
    augmented: bool,
    num_clusters: usize,
    nprobe: usize,
    /// `(num_clusters, dim)` centroids.
    centroids: Vec<f32>,
    /// Item vectors regrouped by cluster, `(indexed, dim)`.
    vecs: Vec<f32>,
    /// Item id of each regrouped row.
    ids: Vec<u32>,
    /// Cluster row ranges into `vecs`/`ids`, `num_clusters + 1` entries.
    offsets: Vec<usize>,
    /// Cluster per item, indexed by `item_id - 1`.
    assignments: Vec<u32>,
    indexed: usize,
}

impl ItemIndex {
    /// Index a tied prediction head: item vectors are the embedding-table
    /// rows themselves (ids `1..vocab`; the id-0 padding row is skipped).
    pub fn from_tied(table: &[f32], d: usize, vocab: usize, cfg: &ClusteredConfig) -> Self {
        assert!(vocab >= 2, "need at least one real item besides padding");
        assert_eq!(table.len(), vocab * d, "table must be (vocab, d)");
        let vectors = table[d..vocab * d].to_vec();
        Self::build(vectors, d, vocab - 1, false, cfg)
    }

    /// Index an untied prediction head `logits = h·W + b` with `W` of
    /// shape `(d, vocab)` row-major: item `j`'s vector is
    /// `[W[0][j], …, W[d-1][j], b[j]]` and queries append `1.0`, so the
    /// re-rank fold reproduces the exact path's matmul + bias add
    /// bit-for-bit (`1.0·b == b` and the addition order is unchanged).
    pub fn from_untied(w: &[f32], bias: &[f32], d: usize, vocab: usize, cfg: &ClusteredConfig) -> Self {
        assert!(vocab >= 2, "need at least one real item besides padding");
        assert_eq!(w.len(), d * vocab, "W must be (d, vocab)");
        assert_eq!(bias.len(), vocab, "bias must be (vocab,)");
        let dim = d + 1;
        let mut vectors = vec![0.0f32; (vocab - 1) * dim];
        for j in 1..vocab {
            let row = &mut vectors[(j - 1) * dim..j * dim];
            for (k, slot) in row[..d].iter_mut().enumerate() {
                *slot = w[k * vocab + j];
            }
            row[d] = bias[j];
        }
        Self::build(vectors, dim, vocab - 1, true, cfg)
    }

    fn build(vectors: Vec<f32>, dim: usize, indexed: usize, augmented: bool, cfg: &ClusteredConfig) -> Self {
        let (num_clusters, nprobe) = cfg.resolve(indexed);
        let km = KmeansConfig {
            num_clusters,
            iters: cfg.kmeans_iters,
            train_sample: cfg.train_sample,
            seed: cfg.seed,
        };
        let clustering = cluster_rows(&vectors, indexed, dim, &km);
        let num_clusters = clustering.num_clusters;

        // Regroup rows by cluster, ascending item id within each cluster
        // (counting sort over an ascending scan is stable), so the
        // re-rank scan feeds `top_n_excluding_pairs` contiguously.
        let mut counts = vec![0usize; num_clusters];
        for &c in &clustering.assignments {
            counts[c as usize] += 1;
        }
        let mut offsets = vec![0usize; num_clusters + 1];
        for c in 0..num_clusters {
            offsets[c + 1] = offsets[c] + counts[c];
        }
        let mut cursor = offsets[..num_clusters].to_vec();
        let mut vecs = vec![0.0f32; indexed * dim];
        let mut ids = vec![0u32; indexed];
        for (row, &c) in clustering.assignments.iter().enumerate() {
            let slot = cursor[c as usize];
            cursor[c as usize] += 1;
            vecs[slot * dim..(slot + 1) * dim].copy_from_slice(&vectors[row * dim..(row + 1) * dim]);
            ids[slot] = (row + 1) as u32;
        }
        ItemIndex {
            dim,
            augmented,
            num_clusters,
            nprobe: nprobe.min(num_clusters),
            centroids: clustering.centroids,
            vecs,
            ids,
            offsets,
            assignments: clustering.assignments,
            indexed,
        }
    }

    /// Centroid count actually built.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Default clusters visited per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Items in the index (`vocab - 1`; padding is never indexed).
    pub fn indexed_items(&self) -> usize {
        self.indexed
    }

    /// Cluster assignment per item, indexed by `item_id - 1` — exposed so
    /// rebuild-determinism tests can compare builds directly.
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Top-`k` item ids for a `(d,)` hidden row at the index's default
    /// `nprobe`, excluding `exclude` (and always the padding id).
    pub fn query(&self, hidden: &[f32], k: usize, exclude: &HashSet<u32>) -> Vec<u32> {
        self.query_with_probe(hidden, k, exclude, self.nprobe)
    }

    /// [`Self::query`] with an explicit probe width. `nprobe >=
    /// num_clusters` visits everything and is therefore bit-identical, in
    /// order, to exact top-k — the oracle anchor of the differential
    /// suite. The probed-cluster list under `(score desc, id asc)` is a
    /// prefix of the list for any larger probe width, so the candidate
    /// set — and hence recall against exact — is monotone in `nprobe`.
    pub fn query_with_probe(
        &self,
        hidden: &[f32],
        k: usize,
        exclude: &HashSet<u32>,
        nprobe: usize,
    ) -> Vec<u32> {
        self.query_with_probe_stats(hidden, k, exclude, nprobe).0
    }

    /// [`Self::query_with_probe`] plus per-query [`QueryStats`] — the
    /// probe telemetry the serving layer records. The stats are derived
    /// from values the query computes anyway (loop trip count, candidate
    /// length) and never influence the result, so the ranked ids are
    /// bit-identical to the stats-free entry points.
    pub fn query_with_probe_stats(
        &self,
        hidden: &[f32],
        k: usize,
        exclude: &HashSet<u32>,
        nprobe: usize,
    ) -> (Vec<u32>, QueryStats) {
        let d = self.dim - usize::from(self.augmented);
        assert_eq!(hidden.len(), d, "query width must match the model dim");
        if k == 0 {
            return (Vec::new(), QueryStats::default());
        }
        let mut q = Vec::with_capacity(self.dim);
        q.extend_from_slice(hidden);
        if self.augmented {
            q.push(1.0);
        }

        // Coarse stage: inner product against every centroid.
        let mut cscores = vec![0.0f32; self.num_clusters];
        matmul_a_bt_into(&q, &self.centroids, &mut cscores, 1, self.dim, self.num_clusters);
        let mut order: Vec<usize> = (0..self.num_clusters).collect();
        order.sort_by(|&a, &b| {
            cscores[b]
                .partial_cmp(&cscores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });

        // Visit clusters until the probe budget is spent AND enough
        // candidates exist to fill k even if every excluded id were among
        // them — so result length always matches the exact path.
        let nprobe = nprobe.clamp(1, self.num_clusters);
        let need = k.saturating_add(exclude.len());
        let mut pairs: Vec<(u32, f32)> = Vec::new();
        let mut scores: Vec<f32> = Vec::new();
        let mut probed = 0usize;
        for (visited, &c) in order.iter().enumerate() {
            if visited >= nprobe && pairs.len() >= need {
                break;
            }
            probed += 1;
            let (lo, hi) = (self.offsets[c], self.offsets[c + 1]);
            let cnt = hi - lo;
            if cnt == 0 {
                continue;
            }
            scores.resize(cnt, 0.0);
            matmul_a_bt_into(
                &q,
                &self.vecs[lo * self.dim..hi * self.dim],
                &mut scores[..cnt],
                1,
                self.dim,
                cnt,
            );
            pairs.extend(self.ids[lo..hi].iter().zip(&scores[..cnt]).map(|(&id, &s)| (id, s)));
        }
        let stats = QueryStats { probed_clusters: probed, survivors: pairs.len() };
        (vsan_eval::top_n_excluding_pairs(pairs, k, exclude), stats)
    }
}

/// Per-query probe telemetry from the clustered index: how wide the
/// coarse stage went and how many candidates survived into the exact
/// re-rank. Pure observation — derived from the query's own loop
/// bookkeeping, never fed back into retrieval decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Clusters whose members were considered (includes empty clusters
    /// the probe loop visited; ≥ `nprobe` only when the candidate floor
    /// forced extra probes).
    pub probed_clusters: usize,
    /// Candidate pairs that entered the exact re-rank heap (before
    /// top-k selection and exclusion filtering).
    pub survivors: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsan_tensor::cluster::splitmix64;

    fn table(vocab: usize, d: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        let mut t: Vec<f32> =
            (0..vocab * d).map(|_| (splitmix64(&mut s) % 2000) as f32 / 1000.0 - 1.0).collect();
        t[..d].fill(0.0); // padding row
        t
    }

    fn exact_top_k(table: &[f32], q: &[f32], d: usize, vocab: usize, k: usize) -> Vec<u32> {
        let mut logits = vec![0.0f32; vocab];
        matmul_a_bt_into(q, table, &mut logits, 1, d, vocab);
        vsan_eval::top_n_excluding(&logits, k, &HashSet::new())
    }

    #[test]
    fn full_probe_equals_exact_bitwise() {
        let (vocab, d) = (97, 6);
        let t = table(vocab, d, 5);
        let idx = ItemIndex::from_tied(&t, d, vocab, &ClusteredConfig {
            num_clusters: 9,
            ..ClusteredConfig::default()
        });
        let mut s = 77u64;
        for _ in 0..10 {
            let q: Vec<f32> =
                (0..d).map(|_| (splitmix64(&mut s) % 1000) as f32 / 500.0 - 1.0).collect();
            let exact = exact_top_k(&t, &q, d, vocab, 10);
            let clustered = idx.query_with_probe(&q, 10, &HashSet::new(), idx.num_clusters());
            assert_eq!(clustered, exact);
        }
    }

    #[test]
    fn untied_bias_fold_matches_matmul_plus_bias() {
        let (vocab, d) = (41, 5);
        let mut s = 9u64;
        let w: Vec<f32> =
            (0..d * vocab).map(|_| (splitmix64(&mut s) % 1000) as f32 / 500.0 - 1.0).collect();
        let bias: Vec<f32> =
            (0..vocab).map(|_| (splitmix64(&mut s) % 1000) as f32 / 500.0 - 1.0).collect();
        let idx = ItemIndex::from_untied(&w, &bias, d, vocab, &ClusteredConfig {
            num_clusters: 4,
            ..ClusteredConfig::default()
        });
        let q: Vec<f32> = (0..d).map(|i| 0.3 * i as f32 - 0.7).collect();
        // Exact: h·W then += bias, per the fast path's projection.
        let mut logits = vec![0.0f32; vocab];
        vsan_tensor::parallel::matmul_into_parallel(&q, &w, &mut logits, 1, d, vocab, 1);
        for (l, &b) in logits.iter_mut().zip(&bias) {
            *l += b;
        }
        let exact = vsan_eval::top_n_excluding(&logits, 7, &HashSet::new());
        let clustered = idx.query_with_probe(&q, 7, &HashSet::new(), idx.num_clusters());
        assert_eq!(clustered, exact);
    }

    #[test]
    fn result_length_matches_exact_even_with_small_probe() {
        let (vocab, d) = (33, 4);
        let t = table(vocab, d, 3);
        let idx = ItemIndex::from_tied(&t, d, vocab, &ClusteredConfig {
            num_clusters: 8,
            nprobe: 1,
            ..ClusteredConfig::default()
        });
        let q = vec![0.5f32; d];
        // k beyond the catalog: everything comes back.
        let got = idx.query(&q, 100, &HashSet::new());
        assert_eq!(got.len(), vocab - 1);
        // Exclusions don't shrink the answer below what exact returns.
        let exclude: HashSet<u32> = (1..=10).collect();
        assert_eq!(idx.query(&q, 25, &exclude).len(), vocab - 1 - 10);
    }

    #[test]
    fn auto_knobs_scale_with_catalog() {
        let cfg = ClusteredConfig::default();
        assert_eq!(cfg.resolve(10_000), (100, 10));
        let (nc, np) = cfg.resolve(9);
        assert_eq!(nc, 3);
        assert_eq!(np, 3); // max(4, …) clamped to num_clusters
    }

    #[test]
    fn rebuilds_are_bit_identical() {
        let (vocab, d) = (120, 7);
        let t = table(vocab, d, 21);
        let cfg = ClusteredConfig { num_clusters: 10, ..ClusteredConfig::default() };
        let a = ItemIndex::from_tied(&t, d, vocab, &cfg);
        let b = ItemIndex::from_tied(&t, d, vocab, &cfg);
        assert_eq!(a.assignments(), b.assignments());
        for (x, y) in a.centroids.iter().zip(&b.centroids) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let q = vec![0.1f32; d];
        assert_eq!(a.query(&q, 12, &HashSet::new()), b.query(&q, 12, &HashSet::new()));
    }
}
