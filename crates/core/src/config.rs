//! VSAN configuration: paper presets and ablation variants.

use vsan_models::NeuralConfig;
use vsan_nn::BetaSchedule;

/// Full VSAN hyper-parameter set.
#[derive(Debug, Clone)]
pub struct VsanConfig {
    /// Shared neural knobs (d, n, epochs, batch, lr, dropout, seed).
    pub base: NeuralConfig,
    /// Inference self-attention blocks `h₁` (0 = pass the embedding
    /// straight to the variational heads — the Table IV `h₁ = 0` cell).
    pub h1: usize,
    /// Generative self-attention blocks `h₂` (0 = predict directly from
    /// `z` — the Table IV `h₂ = 0` cell).
    pub h2: usize,
    /// Next-`k` prediction window (Eq. 18; the paper picks k = 2).
    pub next_k: usize,
    /// β schedule for the KL term (paper: KL annealing; Fig. 6 sweeps
    /// fixed values).
    pub beta: BetaSchedule,
    /// `false` builds VSAN-z (Table V): the latent variable layer is
    /// removed and the inference output feeds the generative layer
    /// directly.
    pub use_latent: bool,
    /// Point-wise FFN in the inference blocks (`false` in VSAN-all-feed /
    /// VSAN-infer-feed, Table VI).
    pub infer_ffn: bool,
    /// Point-wise FFN in the generative blocks (`false` in VSAN-all-feed /
    /// VSAN-gene-feed, Table VI).
    pub gene_ffn: bool,
    /// **Extension flag** (not in the paper): tie the prediction layer to
    /// the item-embedding matrix (`score = G_g·Eᵀ`, as SASRec does)
    /// instead of the paper's separate `W_g, b_g` (Eq. 19). The separate
    /// matrix needs far more data/epochs to train; tying makes small-scale
    /// comparisons against SASRec apples-to-apples. Defaults to `false`
    /// (paper-faithful); the repro-scale preset enables it and DESIGN.md
    /// records the deviation.
    pub tie_prediction: bool,
}

impl VsanConfig {
    /// Paper-faithful preset for a dataset (§V-D): `(h₁, h₂)` = (1, 1) on
    /// Beauty-like data, (3, 1) on ML-1M-like data; k = 2; KL annealing.
    pub fn paper(dataset: &str) -> Self {
        let base = NeuralConfig::paper(dataset);
        Self::from_base(dataset, base)
    }

    /// Repro-scale preset: same structure at CPU-friendly sizes.
    pub fn repro(dataset: &str) -> Self {
        let base = NeuralConfig::repro(dataset);
        Self::from_base(dataset, base)
    }

    /// Tiny configuration for unit tests.
    pub fn smoke() -> Self {
        VsanConfig {
            base: NeuralConfig::smoke(),
            h1: 1,
            h2: 1,
            next_k: 1,
            beta: BetaSchedule::LinearAnneal { warmup_steps: 20, max_beta: 0.2 },
            use_latent: true,
            infer_ffn: true,
            gene_ffn: true,
            tie_prediction: false,
        }
    }

    fn from_base(dataset: &str, base: NeuralConfig) -> Self {
        let beauty_like = dataset.to_ascii_lowercase().contains("beauty");
        // KL weight: the paper anneals to β = 1 at its scale (d = 200,
        // hundreds of epochs). At the CPU repro scale the KL (summed over
        // d dims per position) would dominate the per-position CE and
        // collapse the posterior, so smaller budgets anneal to a smaller
        // ceiling — the annealing *shape* (Fig. 6's dotted line) is kept.
        let (warmup, max_beta) = if base.epochs >= 100 { (500, 1.0) } else { (300, 0.02) };
        VsanConfig {
            base,
            h1: if beauty_like { 1 } else { 3 },
            h2: 1,
            next_k: 2,
            beta: BetaSchedule::LinearAnneal { warmup_steps: warmup, max_beta },
            use_latent: true,
            infer_ffn: true,
            gene_ffn: true,
            // Untied everywhere: measured at repro scale, tying not only
            // deviates from Eq. 19 but *hurts* (see EXPERIMENTS.md).
            tie_prediction: false,
        }
    }

    /// Table V ablation: remove the latent variable layer (VSAN-z).
    pub fn vsan_z(mut self) -> Self {
        self.use_latent = false;
        self
    }

    /// Table VI ablation: remove every point-wise FFN (VSAN-all-feed).
    pub fn all_feed(mut self) -> Self {
        self.infer_ffn = false;
        self.gene_ffn = false;
        self
    }

    /// Table VI ablation: remove only the inference-layer FFN
    /// (VSAN-infer-feed).
    pub fn infer_feed(mut self) -> Self {
        self.infer_ffn = false;
        self
    }

    /// Table VI ablation: remove only the generative-layer FFN
    /// (VSAN-gene-feed).
    pub fn gene_feed(mut self) -> Self {
        self.gene_ffn = false;
        self
    }

    /// Builder: set the block counts (Table IV grid).
    pub fn with_blocks(mut self, h1: usize, h2: usize) -> Self {
        self.h1 = h1;
        self.h2 = h2;
        self
    }

    /// Builder: set the next-`k` window (Fig. 3 sweep).
    pub fn with_next_k(mut self, k: usize) -> Self {
        self.next_k = k.max(1);
        self
    }

    /// Builder: set the β schedule (Fig. 6 sweep).
    pub fn with_beta(mut self, beta: BetaSchedule) -> Self {
        self.beta = beta;
        self
    }

    /// Builder: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base = self.base.with_seed(seed);
        self
    }

    /// Builder: set the worker-thread count for the data-parallel trainer.
    /// Trained parameters are bit-identical for every value; `1` runs the
    /// shard schedule inline (§IV-F parallel-scaling claims; DESIGN.md §7).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.base = self.base.with_threads(threads);
        self
    }

    /// Builder: attach a training observer (telemetry only; the trained
    /// parameters are bit-identical with or without one, DESIGN.md §8).
    pub fn with_observer(mut self, observer: vsan_models::ObserverHandle) -> Self {
        self.base = self.base.with_observer(observer);
        self
    }

    /// Builder: pin the training kernel tier, overriding the
    /// `VSAN_DISABLE_FAST_PATH` environment default. Both tiers train
    /// bit-identical parameters (DESIGN.md §10); the pin exists so one
    /// process can train under both tiers and assert exactly that.
    pub fn with_kernel_tier(mut self, tier: vsan_tensor::KernelTier) -> Self {
        self.base = self.base.with_kernel_tier(tier);
        self
    }

    /// Builder: pin the training buffer policy, overriding the
    /// `VSAN_DISABLE_FAST_PATH` environment default. Both policies train
    /// bit-identical parameters (DESIGN.md §14); the pin exists so one
    /// process can train under both and assert exactly that.
    pub fn with_buffer_policy(mut self, policy: vsan_tensor::BufferPolicy) -> Self {
        self.base = self.base.with_buffer_policy(policy);
        self
    }

    /// Human-readable variant label for experiment tables.
    pub fn variant_name(&self) -> &'static str {
        match (self.use_latent, self.infer_ffn, self.gene_ffn) {
            (false, _, _) => "VSAN-z",
            (true, false, false) => "VSAN-all-feed",
            (true, false, true) => "VSAN-infer-feed",
            (true, true, false) => "VSAN-gene-feed",
            (true, true, true) => "VSAN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_section_v_d() {
        let b = VsanConfig::paper("Beauty-sim");
        assert_eq!((b.h1, b.h2), (1, 1));
        assert_eq!(b.next_k, 2);
        assert_eq!(b.base.dim, 200);
        assert_eq!(b.base.max_seq_len, 50);
        assert_eq!(b.base.dropout, 0.5);
        let m = VsanConfig::paper("ML-1M-sim");
        assert_eq!((m.h1, m.h2), (3, 1));
        assert_eq!(m.base.max_seq_len, 200);
        assert_eq!(m.base.dropout, 0.2);
    }

    #[test]
    fn variant_constructors_and_names() {
        let c = VsanConfig::smoke();
        assert_eq!(c.variant_name(), "VSAN");
        assert_eq!(c.clone().vsan_z().variant_name(), "VSAN-z");
        assert_eq!(c.clone().all_feed().variant_name(), "VSAN-all-feed");
        assert_eq!(c.clone().infer_feed().variant_name(), "VSAN-infer-feed");
        assert_eq!(c.clone().gene_feed().variant_name(), "VSAN-gene-feed");
    }

    #[test]
    fn builders_apply() {
        let c = VsanConfig::smoke().with_blocks(2, 3).with_next_k(4).with_seed(9);
        assert_eq!((c.h1, c.h2), (2, 3));
        assert_eq!(c.next_k, 4);
        assert_eq!(c.base.seed, 9);
        // k = 0 clamps to 1 (Eq. 18 needs at least the next item).
        assert_eq!(VsanConfig::smoke().with_next_k(0).next_k, 1);
        // The kernel-tier pin forwards into the shared base config.
        let c = VsanConfig::smoke().with_kernel_tier(vsan_tensor::KernelTier::Fast);
        assert_eq!(c.base.kernel_tier, Some(vsan_tensor::KernelTier::Fast));
        // So does the buffer-policy pin.
        let c = VsanConfig::smoke().with_buffer_policy(vsan_tensor::BufferPolicy::Arena);
        assert_eq!(c.base.buffer_policy, Some(vsan_tensor::BufferPolicy::Arena));
    }
}
