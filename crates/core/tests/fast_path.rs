//! Differential property suite: the graph-free inference fast path
//! ([`vsan_core::infer`]) must produce **bit-identical** logits to the
//! autograd graph path for every configuration the model can take.
//!
//! The fixture test (`tests/golden_logits.rs`) pins one trained
//! configuration across commits; this suite samples the configuration
//! space — width, sequence length, block counts, the latent/FFN/tied
//! ablation axes, thread counts, and batch shapes including `b = 1`
//! and empty histories — on freshly initialized (seeded, untrained)
//! models. Equality is `f32::to_bits`, no tolerance: the fast path's
//! contract is *the same floats*, not close floats (DESIGN.md §10).

use proptest::prelude::*;
use vsan_core::{Vsan, VsanConfig};

/// Build an untrained model for one sampled point of the config space.
#[allow(clippy::too_many_arguments)]
fn build_model(
    dim: usize,
    n: usize,
    vocab: usize,
    h1: usize,
    h2: usize,
    flags: u8,
    threads: usize,
    seed: u64,
) -> Vsan {
    let mut cfg = VsanConfig::smoke().with_blocks(h1, h2).with_seed(seed).with_threads(threads);
    cfg.base.dim = dim;
    cfg.base.max_seq_len = n;
    cfg.use_latent = flags & 1 != 0;
    cfg.infer_ffn = flags & 2 != 0;
    cfg.gene_ffn = flags & 4 != 0;
    cfg.tie_prediction = flags & 8 != 0;
    Vsan::init(vocab, &cfg)
}

/// Clamp sampled raw ids into the valid item range `1..vocab`.
fn clamp_histories(raw: &[Vec<u32>], vocab: usize) -> Vec<Vec<u32>> {
    raw.iter()
        .map(|h| h.iter().map(|&r| 1 + r % (vocab as u32 - 1)).collect())
        .collect()
}

proptest! {
    #[test]
    fn fast_path_matches_graph_path_bit_for_bit(
        dim in 2usize..14,
        n in 1usize..9,
        vocab in 3usize..24,
        h1 in 0usize..3,
        h2 in 0usize..3,
        flags in 0u8..16,
        threads in 1usize..3,
        seed in 0u64..10_000,
        raw_histories in collection::vec(collection::vec(0u32..4096, 0..20), 1..5),
    ) {
        let model = build_model(dim, n, vocab, h1, h2, flags, threads, seed);
        let histories = clamp_histories(&raw_histories, vocab);
        let refs: Vec<&[u32]> = histories.iter().map(Vec::as_slice).collect();

        let fast = model.score_items_batch_fast(&refs).expect("fast path");
        let graph = model.score_items_batch_graph(&refs).expect("graph path");

        prop_assert_eq!(fast.len(), graph.len());
        for (i, (f_row, g_row)) in fast.iter().zip(&graph).enumerate() {
            prop_assert_eq!(f_row.len(), g_row.len());
            for (j, (f, g)) in f_row.iter().zip(g_row).enumerate() {
                prop_assert!(
                    f.to_bits() == g.to_bits(),
                    "logit [{}][{}] diverged: fast {} ({:08x}) vs graph {} ({:08x}) \
                     at dim={} n={} vocab={} h1={} h2={} flags={:04b} threads={}",
                    i, j, f, f.to_bits(), g, g.to_bits(),
                    dim, n, vocab, h1, h2, flags, threads
                );
            }
        }
    }

    #[test]
    fn single_fold_in_matches_batched_fast_path(
        dim in 2usize..10,
        n in 1usize..7,
        vocab in 3usize..16,
        seed in 0u64..10_000,
        raw_histories in collection::vec(collection::vec(0u32..4096, 0..14), 2..5),
    ) {
        // Batching along the row axis must not change any bits either:
        // scoring b histories at once equals b independent b=1 calls.
        let model = build_model(dim, n, vocab, 1, 1, 0b0111, 1, seed);
        let histories = clamp_histories(&raw_histories, vocab);
        let refs: Vec<&[u32]> = histories.iter().map(Vec::as_slice).collect();
        let batched = model.score_items_batch_fast(&refs).expect("batched");
        for (history, row) in refs.iter().zip(&batched) {
            let single = model.score_items_batch_fast(&[history]).expect("b=1");
            for (f, g) in single[0].iter().zip(row) {
                prop_assert!(f.to_bits() == g.to_bits(), "batch-size dependence in fast path");
            }
        }
    }
}

/// The error paths must agree too: an out-of-vocabulary id fails on
/// both forwards (no path silently gathers garbage).
#[test]
fn both_paths_reject_out_of_vocab_ids() {
    let model = build_model(6, 4, 8, 1, 1, 0b0111, 1, 7);
    let bad: &[&[u32]] = &[&[1, 2, 300]];
    assert!(model.score_items_batch_fast(bad).is_err(), "fast path must reject id 300");
    assert!(model.score_items_batch_graph(bad).is_err(), "graph path must reject id 300");
}
