//! Serial-equivalence harness for the deterministic data-parallel trainer.
//!
//! The contract under test (DESIGN.md §7): for a fixed seed, training is
//! **bit-identical for every thread count** — shard boundaries, per-shard
//! RNG streams, and the pairwise-tree gradient reduction are all functions
//! of the batch alone, so `threads` may only change wall-clock time, never
//! a single bit of the parameters or the loss curve.
//!
//! Since PR 9 the contract is two-dimensional: the sweep runs the full
//! **threads × kernel-tier grid** — the reference scalar tape and the
//! fast tiled/fused tier (DESIGN.md §10) must train the same bits as the
//! serial reference baseline in every cell.
//!
//! The thread matrix can be overridden from CI via `VSAN_THREADS_MATRIX`
//! (comma-separated counts, e.g. `VSAN_THREADS_MATRIX=1,2,8`); the default
//! covers serial, even, odd, and threads-greater-than-batch-size cases.
//! CI additionally exports `VSAN_REQUIRE_AVX2=1` on AVX2-capable hosts so
//! a fast tier that silently fell back to non-dispatched kernels (or a
//! build that lost the `target_feature` twins) fails the suite instead of
//! vacuously passing it.

use vsan_core::{Vsan, VsanConfig};
use vsan_data::Dataset;
use vsan_models::NeuralConfig;
use vsan_nn::BetaSchedule;
use vsan_tensor::KernelTier;

/// Thread counts to sweep: env override or the default matrix.
fn thread_matrix() -> Vec<usize> {
    match std::env::var("VSAN_THREADS_MATRIX") {
        Ok(spec) => spec
            .split(',')
            .filter_map(|t| t.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .collect(),
        // 1 = inline serial; 2/4 = even pools; 3 = odd; 64 > batch size.
        Err(_) => vec![1, 2, 3, 4, 64],
    }
}

/// Mildly irregular synthetic dataset: overlapping item chains with
/// varying lengths, so batches are ragged-free but shards see different
/// content and the last batch of each epoch is partial.
fn chain_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
    let sequences = (0..users)
        .map(|u| (0..len + u % 3).map(|t| ((u + t) % num_items + 1) as u32).collect())
        .collect();
    Dataset { name: "chain".into(), num_items, sequences }
}

/// Fingerprint a trained VSAN: per-epoch losses plus every parameter
/// tensor, all as raw bit patterns (no tolerance — the contract is exact).
fn train_fingerprint(
    threads: usize,
    tier: KernelTier,
    cfg: &VsanConfig,
) -> (Vec<u32>, Vec<(String, Vec<u32>)>) {
    // 22 users with batch 16 → one full batch + one partial per epoch;
    // shard size 8 → shards of 8, 8 and 6.
    let ds = chain_dataset(10, 22, 9);
    let users: Vec<usize> = (0..ds.sequences.len()).collect();
    let model =
        Vsan::train(&ds, &users, &cfg.clone().with_threads(threads).with_kernel_tier(tier))
            .unwrap();
    let losses = model.train_losses.iter().map(|l| l.to_bits()).collect();
    let params = model
        .params()
        .iter()
        .map(|(_, name, t)| (name.to_string(), t.data().iter().map(|x| x.to_bits()).collect()))
        .collect();
    (losses, params)
}

fn assert_identical(
    label: &str,
    baseline: &(Vec<u32>, Vec<(String, Vec<u32>)>),
    got: &(Vec<u32>, Vec<(String, Vec<u32>)>),
) {
    assert_eq!(got.0, baseline.0, "per-epoch losses diverged at {label}");
    assert_eq!(got.1.len(), baseline.1.len(), "parameter count differs at {label}");
    for ((name_b, bits_b), (name_g, bits_g)) in baseline.1.iter().zip(&got.1) {
        assert_eq!(name_b, name_g, "parameter order differs at {label}");
        assert_eq!(bits_b, bits_g, "parameter `{name_b}` is not bit-identical at {label}");
    }
}

#[test]
fn vsan_training_is_bit_identical_across_the_thread_tier_grid() {
    // Multi-epoch with the default smoke KL-annealing schedule
    // (LinearAnneal, warmup 20): β varies across the ~12 optimizer steps,
    // so a thread-dependent step counter would show up immediately. The
    // serial reference run is the baseline for *every* other grid cell —
    // thread counts and kernel tiers alike may only change wall-clock.
    let mut cfg = VsanConfig::smoke();
    cfg.base = cfg.base.with_epochs(4);
    assert!(matches!(cfg.beta, BetaSchedule::LinearAnneal { .. }));

    let matrix = thread_matrix();
    let baseline = train_fingerprint(1, KernelTier::Reference, &cfg);
    assert_eq!(baseline.0.len(), 4, "expected one loss per epoch");
    for tier in [KernelTier::Reference, KernelTier::Fast] {
        for &threads in &matrix {
            if threads == 1 && tier == KernelTier::Reference {
                continue; // the baseline itself
            }
            let got = train_fingerprint(threads, tier, &cfg);
            assert_identical(&format!("threads={threads} tier={}", tier.name()), &baseline, &got);
        }
    }
}

#[test]
fn equivalence_holds_with_dropout_and_fixed_beta() {
    // Heavier dropout stresses the per-shard RNG streams (masks are the
    // largest RNG consumers); fixed β checks the no-annealing path too.
    let mut cfg = VsanConfig::smoke().with_beta(BetaSchedule::Fixed(0.1));
    cfg.base = cfg.base.with_epochs(2).with_dropout(0.5).with_seed(123);

    let baseline = train_fingerprint(1, KernelTier::Reference, &cfg);
    for threads in [2, 5] {
        for tier in [KernelTier::Reference, KernelTier::Fast] {
            let got = train_fingerprint(threads, tier, &cfg);
            assert_identical(&format!("threads={threads} tier={}", tier.name()), &baseline, &got);
        }
    }
}

#[test]
fn fast_tier_grid_runs_with_real_simd_dispatch_when_required() {
    // `VSAN_REQUIRE_AVX2=1` (exported by scripts/verify.sh on hosts whose
    // /proc/cpuinfo advertises avx2) turns "the fast tier happened to run
    // scalar bodies" from a silent vacuous pass into a failure: the grid
    // above only proves something about the SIMD twins if the dispatcher
    // actually selected them.
    if std::env::var("VSAN_REQUIRE_AVX2").is_ok_and(|v| v == "1") {
        assert!(
            vsan_tensor::kernel::avx2_supported(),
            "VSAN_REQUIRE_AVX2=1 but AVX2 dispatch is unavailable — the \
             tier grid just ran without exercising the SIMD kernels"
        );
    }
}

#[test]
fn recommendations_from_parallel_training_match_serial() {
    // End-to-end: not just parameters, but the user-facing ranking.
    let ds = chain_dataset(8, 20, 10);
    let users: Vec<usize> = (0..ds.sequences.len()).collect();
    let mut cfg = VsanConfig::smoke();
    cfg.base = cfg.base.with_epochs(3);

    let serial = Vsan::train(&ds, &users, &cfg.clone().with_threads(1)).unwrap();
    let parallel = Vsan::train(&ds, &users, &cfg.clone().with_threads(4)).unwrap();
    for history in [&[1u32, 2, 3][..], &[5, 6][..], &[7][..]] {
        assert_eq!(
            serial.recommend(history, 5),
            parallel.recommend(history, 5),
            "rankings diverged for history {history:?}"
        );
    }
}

#[test]
fn sasrec_baseline_inherits_thread_invariance() {
    // The shared train_epochs driver routes every baseline through the
    // executor; SASRec's loss curve must carry the same exact-bits contract.
    let ds = chain_dataset(9, 18, 8);
    let users: Vec<usize> = (0..ds.sequences.len()).collect();
    let cfg = NeuralConfig::smoke().with_epochs(3);

    let serial = vsan_models::sasrec::SasRec::train(&ds, &users, &cfg.clone().with_threads(1))
        .unwrap()
        .train_losses;
    for threads in [2, 3, 64] {
        let parallel =
            vsan_models::sasrec::SasRec::train(&ds, &users, &cfg.clone().with_threads(threads))
                .unwrap()
                .train_losses;
        let serial_bits: Vec<u32> = serial.iter().map(|l| l.to_bits()).collect();
        let parallel_bits: Vec<u32> = parallel.iter().map(|l| l.to_bits()).collect();
        assert_eq!(serial_bits, parallel_bits, "SASRec losses diverged at threads={threads}");
    }
}
