//! Golden-value regression for *training*: three optimizer steps of the
//! seeded smoke VSAN, pinned bit-for-bit in
//! `tests/fixtures/golden_train.txt` — a parameter-bits hash plus the
//! per-epoch loss decomposition (loss / CE / KL / β).
//!
//! `tests/golden_logits.rs` (workspace root) pins the eval forward; this
//! fixture pins the *training* computation — forward, backward, tree
//! reduction, Adam update — across commits. Any refactor that changes a
//! single mantissa bit anywhere in that chain fails here loudly.
//!
//! The fixture is asserted under **both kernel tiers, both buffer
//! policies, and threads 1 and 4** (the policy/tier/thread grid):
//! reference and fast tiers — and fresh-allocation vs arena-reuse
//! training — must train the *same pinned bits*, which is the
//! DESIGN.md §10/§14 training contract in its strongest form — not
//! merely "variants agree with each other" but "variants agree with the
//! committed history".
//!
//! Regenerate (after a change that intentionally alters training) with:
//!
//! ```text
//! VSAN_REGEN_GOLDEN=1 cargo test -p vsan-core --test golden_train
//! ```

use std::sync::Arc;

use vsan_core::{Vsan, VsanConfig};
use vsan_data::Dataset;
use vsan_obs::{CollectingObserver, ObserverHandle};
use vsan_tensor::{BufferPolicy, KernelTier};

/// 12 users < smoke batch size 16 → exactly one optimizer step per epoch;
/// 3 epochs → the three pinned steps.
fn golden_dataset() -> Dataset {
    let num_items = 8;
    let users = 12;
    let sequences = (0..users)
        .map(|u| (0..9 + u % 3).map(|t| ((u + t) % num_items + 1) as u32).collect())
        .collect();
    Dataset { name: "golden-train".into(), num_items, sequences }
}

/// FNV-1a over every parameter's f32 bit patterns, in store order — one
/// u64 that moves if any trained bit moves.
fn param_hash(model: &Vsan) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (_, _, t) in model.params().iter() {
        for v in t.data() {
            for byte in v.to_bits().to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// One epoch's pinned decomposition, all as bit patterns.
#[derive(Debug, PartialEq, Eq)]
struct EpochBits {
    loss: u32,
    ce: u32,
    kl: u32,
    beta: u32,
}

fn run_train(threads: usize, tier: KernelTier, policy: BufferPolicy) -> (u64, Vec<EpochBits>) {
    let ds = golden_dataset();
    let users: Vec<usize> = (0..ds.sequences.len()).collect();
    let collector = Arc::new(CollectingObserver::new());
    let mut cfg = VsanConfig::smoke()
        .with_threads(threads)
        .with_kernel_tier(tier)
        .with_buffer_policy(policy)
        .with_observer(ObserverHandle::new(collector.clone()));
    cfg.base.epochs = 3;
    let model = Vsan::train(&ds, &users, &cfg).expect("smoke training");
    assert_eq!(model.train_losses.len(), 3, "expected exactly three optimizer steps");
    let epochs = collector
        .records()
        .iter()
        .map(|r| EpochBits {
            loss: r.loss.to_bits(),
            ce: r.ce.to_bits(),
            kl: r.kl.to_bits(),
            beta: r.beta.to_bits(),
        })
        .collect();
    (param_hash(&model), epochs)
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_train.txt")
}

fn render(hash: u64, epochs: &[EpochBits]) -> String {
    let mut out = String::from(
        "# Golden VSAN training run: 3 steps from seeded init.\n\
         # param_hash = FNV-1a over all parameter f32 bits (store order);\n\
         # epoch lines are f32 bit patterns in hex.\n\
         # Regenerate: VSAN_REGEN_GOLDEN=1 cargo test -p vsan-core --test golden_train\n",
    );
    out.push_str(&format!("param_hash {hash:016x}\n"));
    for (i, e) in epochs.iter().enumerate() {
        out.push_str(&format!(
            "epoch {i} loss {:08x} ce {:08x} kl {:08x} beta {:08x}\n",
            e.loss, e.ce, e.kl, e.beta
        ));
    }
    out
}

fn parse_fixture(text: &str) -> (u64, Vec<EpochBits>) {
    let mut hash = None;
    let mut epochs = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("param_hash ") {
            hash = Some(u64::from_str_radix(rest.trim(), 16).expect("hash hex"));
        } else if line.starts_with("epoch ") {
            let tok: Vec<&str> = line.split_whitespace().collect();
            // epoch <i> loss <x> ce <x> kl <x> beta <x>
            assert_eq!(tok.len(), 10, "malformed epoch line: {line}");
            let bits = |j: usize| u32::from_str_radix(tok[j], 16).expect("epoch hex");
            epochs.push(EpochBits { loss: bits(3), ce: bits(5), kl: bits(7), beta: bits(9) });
        }
    }
    (hash.expect("fixture missing param_hash line"), epochs)
}

#[test]
fn three_training_steps_match_the_golden_fixture_on_every_tier_and_thread_count() {
    let path = fixture_path();

    if std::env::var("VSAN_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        // Regenerate from the most conservative cell of the grid: the
        // reference tier, fresh allocations, serial. The assertion pass
        // below then holds the other seven cells to these bits.
        let (hash, epochs) = run_train(1, KernelTier::Reference, BufferPolicy::Fresh);
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixtures dir");
        std::fs::write(&path, render(hash, &epochs)).expect("write fixture");
        eprintln!("golden training fixture regenerated at {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with VSAN_REGEN_GOLDEN=1",
            path.display()
        )
    });
    let (gold_hash, gold_epochs) = parse_fixture(&text);
    assert_eq!(gold_epochs.len(), 3, "fixture pins three steps");

    for policy in [BufferPolicy::Fresh, BufferPolicy::Arena] {
        for tier in [KernelTier::Reference, KernelTier::Fast] {
            for threads in [1, 4] {
                let (hash, epochs) = run_train(threads, tier, policy);
                assert_eq!(
                    hash,
                    gold_hash,
                    "trained parameter bits drifted from the fixture \
                     (tier={}, policy={policy:?}, threads={threads}): \
                     got {hash:016x}, pinned {gold_hash:016x}",
                    tier.name()
                );
                assert_eq!(
                    epochs,
                    gold_epochs,
                    "loss decomposition drifted from the fixture \
                     (tier={}, policy={policy:?}, threads={threads})",
                    tier.name()
                );
            }
        }
    }
}

#[test]
fn env_pin_routes_every_entry_point_consistently() {
    // The `VSAN_DISABLE_FAST_PATH` contract across all four
    // (env setting × entry point) combinations. The pin is read once per
    // process, so one test run observes one env value and checks both
    // entry points under it; `scripts/verify.sh` runs this test with the
    // variable unset *and* set to 1, covering the full matrix.
    let pinned = std::env::var("VSAN_DISABLE_FAST_PATH").is_ok_and(|v| v == "1");

    // Entry point 1: inference scoring (graph-free fast path vs graph
    // oracle) — vsan-core's routing flag delegates to the shared pin.
    assert_eq!(
        vsan_core::fast_path_disabled(),
        pinned,
        "inference routing disagrees with the environment"
    );
    assert_eq!(vsan_core::fast_path_disabled(), vsan_tensor::kernel::fast_path_disabled());

    // Entry point 2: the training kernel tier. Pinned ⇒ reference tier;
    // unpinned ⇒ fast tier.
    let expected_tier = if pinned { KernelTier::Reference } else { KernelTier::Fast };
    assert_eq!(
        vsan_tensor::kernel::default_train_tier(),
        expected_tier,
        "training tier default disagrees with the environment"
    );

    // Entry point 3: the training buffer policy. Pinned ⇒ fresh
    // allocations (the oracle memory discipline); unpinned ⇒ arena reuse.
    let expected_policy = if pinned { BufferPolicy::Fresh } else { BufferPolicy::Arena };
    assert_eq!(
        vsan_tensor::default_buffer_policy(),
        expected_policy,
        "buffer-policy default disagrees with the environment"
    );

    // The training config resolvers follow the same defaults when nothing
    // is pinned in-config, and an explicit pin always wins over the env.
    let unpinned = vsan_models::NeuralConfig::smoke();
    assert_eq!(unpinned.resolved_kernel_tier(), expected_tier);
    assert_eq!(unpinned.resolved_buffer_policy(), expected_policy);
    for tier in [KernelTier::Reference, KernelTier::Fast] {
        let cfg = VsanConfig::smoke().with_kernel_tier(tier);
        assert_eq!(cfg.base.resolved_kernel_tier(), tier);
    }
    for policy in [BufferPolicy::Fresh, BufferPolicy::Arena] {
        let cfg = VsanConfig::smoke().with_buffer_policy(policy);
        assert_eq!(cfg.base.resolved_buffer_policy(), policy);
    }
}
