//! Differential property suite for incremental session inference
//! (DESIGN.md §11): for **any** interleaving of appends, cold starts,
//! and evictions, `Vsan::append_session_logits` over a prepared
//! [`SessionState`] must produce logits bit-identical to a full
//! recompute of the same history.
//!
//! The recompute oracle is `try_score_items_batch`, which routes by
//! `VSAN_DISABLE_FAST_PATH`: `scripts/verify.sh` runs this suite both
//! ways, so the streaming path is held against the graph-free fast path
//! *and* the autograd graph. The deterministic grid test additionally
//! pins the graph oracle explicitly, independent of the env toggle.
//! Equality is `f32::to_bits`, no tolerance.

use proptest::prelude::*;
use vsan_core::{SessionState, Vsan, VsanConfig, Workspace};

/// Build an untrained model for one sampled point of the config space.
fn build_model(dim: usize, n: usize, vocab: usize, h1: usize, h2: usize, flags: u8, seed: u64) -> Vsan {
    let mut cfg = VsanConfig::smoke().with_blocks(h1, h2).with_seed(seed).with_threads(1);
    cfg.base.dim = dim;
    cfg.base.max_seq_len = n;
    cfg.use_latent = flags & 1 != 0;
    cfg.infer_ffn = flags & 2 != 0;
    cfg.gene_ffn = flags & 4 != 0;
    cfg.tie_prediction = flags & 8 != 0;
    Vsan::init(vocab, &cfg)
}

/// One streaming user: the history seen so far plus the prepared state
/// (`None` ≈ evicted — the next event is a transparent cold start).
struct Session {
    history: Vec<u32>,
    state: Option<SessionState>,
}

/// Drive an op stream `(user, raw item, evict-first)` through the
/// session path and hold every event's logits against the recompute
/// oracle(s). Mirrors what the `vsan-session` runtime does per event:
/// cold-prepare when no state exists, append, then re-prepare for the
/// grown history (the state caches a *window*, so each append re-aligns
/// slots — see DESIGN.md §11).
fn run_stream(
    model: &Vsan,
    pad: &SessionState,
    ops: &[(u8, u32, u8)],
    vocab: usize,
    check_graph: bool,
) {
    let mut ws = Workspace::new();
    let mut sessions: Vec<Session> =
        (0..4).map(|_| Session { history: Vec::new(), state: None }).collect();
    for &(user, raw, evict) in ops {
        let s = &mut sessions[(user % 4) as usize];
        if evict == 0 {
            // Eviction drops only the cached state; the client-side
            // history survives and the next event cold-starts.
            s.state = None;
        }
        let item = 1 + raw % (vocab as u32 - 1);
        if s.state.is_none() {
            let mut st = SessionState::new();
            model
                .prepare_session_into(&s.history, Some(pad), &mut st, &mut ws)
                .expect("cold prepare");
            s.state = Some(st);
        }
        let got = model
            .append_session_logits(s.state.as_ref().unwrap(), item, &mut ws)
            .expect("append");
        s.history.push(item);
        model
            .prepare_session_into(&s.history, Some(pad), s.state.as_mut().unwrap(), &mut ws)
            .expect("re-prepare");

        let window = model.fold_in_window(&s.history);
        let oracle = model
            .try_score_items_batch(&[window])
            .expect("recompute oracle")
            .pop()
            .unwrap();
        prop_assert_eq!(got.len(), oracle.len());
        for (j, (a, b)) in got.iter().zip(&oracle).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "logit [{}] diverged after history {:?}: append {} ({:08x}) vs recompute {} ({:08x})",
                j,
                s.history,
                a,
                a.to_bits(),
                b,
                b.to_bits()
            );
        }
        if check_graph {
            let graph = model
                .score_items_batch_graph(&[window])
                .expect("graph oracle")
                .pop()
                .unwrap();
            for (j, (a, b)) in got.iter().zip(&graph).enumerate() {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "logit [{}] diverged from the graph oracle after history {:?}",
                    j,
                    s.history
                );
            }
        }
    }
}

#[test]
fn streaming_appends_match_recompute_across_the_config_grid() {
    // Every block-count shape the model supports × the ablation flags,
    // with three interleaved users, two evictions, and histories that
    // grow past the fold-in window (n = 6, 28 events over 3 users).
    for (h1, h2) in [(0, 0), (1, 0), (0, 1), (1, 1), (2, 1)] {
        for flags in [0b0000u8, 0b0111, 0b1000, 0b1111] {
            let vocab = 13;
            let model = build_model(8, 6, vocab, h1, h2, flags, 7);
            let pad = model.pad_session_state().expect("pad state");
            let ops: Vec<(u8, u32, u8)> = (0..28)
                .map(|i| ((i % 3) as u8, (i * 7 + 1) as u32, u8::from(i != 9 && i != 17)))
                .collect();
            run_stream(&model, &pad, &ops, vocab, true);
        }
    }
}

#[test]
fn single_slot_window_appends_are_pure_cold_starts() {
    // n = 1 means the prefix window is empty (m = 0): every append is
    // attention over exactly one fresh row. The degenerate end of the
    // slot-aligned-prefix invariant.
    let vocab = 9;
    let model = build_model(4, 1, vocab, 1, 1, 0b0101, 3);
    let pad = model.pad_session_state().expect("pad state");
    let ops: Vec<(u8, u32, u8)> = (0..6).map(|i| (0u8, (i * 5 + 2) as u32, 1u8)).collect();
    run_stream(&model, &pad, &ops, vocab, true);
}

#[test]
fn prepare_without_donor_matches_donor_assisted_prepare() {
    // The donor only short-circuits the all-padding rows; computing them
    // from scratch must land on the same bits.
    let vocab = 11;
    let model = build_model(6, 8, vocab, 1, 1, 0b0011, 5);
    let pad = model.pad_session_state().expect("pad state");
    let mut ws = Workspace::new();
    let history = [3u32, 7, 1, 4];
    let mut with_donor = SessionState::new();
    let mut without = SessionState::new();
    model.prepare_session_into(&history, Some(&pad), &mut with_donor, &mut ws).unwrap();
    model.prepare_session_into(&history, None, &mut without, &mut ws).unwrap();
    let a = model.append_session_logits(&with_donor, 9, &mut ws).unwrap();
    let b = model.append_session_logits(&without, 9, &mut ws).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(with_donor.pad_slots(), 8 - 1 - history.len());
    assert_eq!(with_donor.real_slots(), history.len());
    assert!(with_donor.bytes() > 0);
}

#[test]
fn invalid_session_inputs_error_instead_of_crashing() {
    let vocab = 9;
    let model = build_model(4, 4, vocab, 1, 0, 0b0001, 1);
    let mut ws = Workspace::new();

    // Appending into an unprepared state is a handled error (the serve
    // layer turns it into a cold start, never a panic).
    let unprepared = SessionState::new();
    assert!(model.append_session_logits(&unprepared, 1, &mut ws).is_err());

    let pad = model.pad_session_state().unwrap();
    let mut state = SessionState::new();
    model.prepare_session_into(&[1, 2], Some(&pad), &mut state, &mut ws).unwrap();
    // Out-of-vocabulary ids are rejected at append and at prepare, the
    // same condition `execute` rejects.
    assert!(model.append_session_logits(&state, 500, &mut ws).is_err());
    assert!(model.prepare_session_into(&[500], Some(&pad), &mut state, &mut ws).is_err());
    // A cleared state refuses appends until re-prepared.
    model.prepare_session_into(&[1, 2], Some(&pad), &mut state, &mut ws).unwrap();
    state.clear();
    assert!(!state.is_prepared());
    assert!(model.append_session_logits(&state, 1, &mut ws).is_err());
}

proptest! {
    #[test]
    fn any_interleaving_of_append_cold_evict_matches_recompute(
        dim in 2usize..10,
        n in 1usize..8,
        vocab in 3usize..16,
        h1 in 0usize..3,
        h2 in 0usize..3,
        flags in 0u8..16,
        seed in 0u64..10_000,
        // (user, raw item, evict-first when 0 — a 25% eviction rate)
        ops in collection::vec((0u8..4, 0u32..4096, 0u8..4), 1..24),
    ) {
        let model = build_model(dim, n, vocab, h1, h2, flags, seed);
        let pad = model.pad_session_state().expect("pad state");
        run_stream(&model, &pad, &ops, vocab, false);
    }
}
