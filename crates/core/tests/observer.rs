//! Integration tests for training telemetry on the real VSAN trainer:
//! the JSONL stream of an instrumented run is well-formed and carries
//! the loss decomposition, and observing a run never changes the
//! trained bits (DESIGN.md §8).

use std::sync::Arc;

use vsan_core::{Vsan, VsanConfig};
use vsan_data::Dataset;
use vsan_obs::{parse, CollectingObserver, JsonlTrainObserver, MemorySink, ObserverHandle};

fn chain_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
    let sequences = (0..users)
        .map(|u| (0..len + u % 3).map(|t| ((u + t) % num_items + 1) as u32).collect())
        .collect();
    Dataset { name: "chain".into(), num_items, sequences }
}

fn train_with(cfg: &VsanConfig, observer: ObserverHandle) -> Vsan {
    let ds = chain_dataset(10, 22, 9);
    let users: Vec<usize> = (0..ds.sequences.len()).collect();
    Vsan::train(&ds, &users, &cfg.clone().with_observer(observer)).unwrap()
}

#[test]
fn instrumented_run_emits_wellformed_monotone_jsonl() {
    let cfg = VsanConfig::smoke();
    let mut two_epoch = cfg.clone();
    two_epoch.base = two_epoch.base.with_epochs(2);

    let sink = MemorySink::new();
    let observer = ObserverHandle::new(Arc::new(JsonlTrainObserver::new(Arc::new(sink.clone()))));
    let model = train_with(&two_epoch, observer);
    assert_eq!(model.train_losses.len(), 2);

    let lines = sink.lines();
    // run_header + 2 epochs + run_end.
    assert_eq!(lines.len(), 4, "unexpected stream: {lines:#?}");
    let records: Vec<_> =
        lines.iter().map(|l| parse(l).unwrap_or_else(|e| panic!("bad JSONL {l:?}: {e}"))).collect();

    let header = &records[0];
    assert_eq!(header.get("type").unwrap().as_str(), Some("run_header"));
    assert_eq!(header.get("seed").unwrap().as_u64(), Some(two_epoch.base.seed));
    let config = header.get("config").unwrap();
    assert_eq!(config.get("epochs").unwrap().as_u64(), Some(2));
    assert_eq!(config.get("dim").unwrap().as_u64(), Some(two_epoch.base.dim as u64));

    let mut prev_epoch: Option<u64> = None;
    let mut prev_steps = 0u64;
    for rec in &records[1..3] {
        assert_eq!(rec.get("type").unwrap().as_str(), Some("epoch"));
        let epoch = rec.get("epoch").unwrap().as_u64().unwrap();
        assert_eq!(epoch, prev_epoch.map_or(0, |p| p + 1), "epochs must be consecutive");
        prev_epoch = Some(epoch);
        let steps = rec.get("steps").unwrap().as_u64().unwrap();
        assert!(steps > prev_steps, "step counter must be strictly increasing");
        prev_steps = steps;
        // Finite loss decomposition with a live latent path.
        for key in ["loss", "ce", "kl", "beta", "grad_norm_pre", "grad_norm_post"] {
            let v = rec.get(key).unwrap().as_f64().unwrap();
            assert!(v.is_finite(), "{key} must be finite, got {v}");
        }
        assert!(rec.get("kl").unwrap().as_f64().unwrap() > 0.0, "latent VSAN must report KL");
        assert!(rec.get("shards").unwrap().as_u64().unwrap() > 0);
    }
    assert_eq!(records[3].get("type").unwrap().as_str(), Some("run_end"));
}

#[test]
fn epoch_beta_follows_the_annealing_schedule() {
    let mut cfg = VsanConfig::smoke();
    cfg.base = cfg.base.with_epochs(3);

    let collector = Arc::new(CollectingObserver::new());
    let _ = train_with(&cfg, ObserverHandle::new(collector.clone()));

    let records = collector.records();
    assert_eq!(records.len(), 3);
    let mut last_beta = -1.0f32;
    for rec in &records {
        // The recorded β is the schedule's value at the epoch's final
        // optimizer step (steps counts completed steps, so the last
        // step index is steps - 1).
        let expected = cfg.beta.beta(rec.steps - 1);
        assert_eq!(rec.beta, expected, "epoch {}: β diverged from schedule", rec.epoch);
        // LinearAnneal within warmup: β is non-decreasing across epochs.
        assert!(rec.beta >= last_beta, "annealing β must not decrease");
        last_beta = rec.beta;
    }
}

#[test]
fn observed_training_is_bit_identical_across_thread_counts() {
    // The acceptance gate: telemetry attached, threads=1 vs threads=4
    // must still produce bit-identical trained parameters.
    let mut cfg = VsanConfig::smoke();
    cfg.base = cfg.base.with_epochs(2);

    let fingerprint = |threads: usize| {
        let collector = Arc::new(CollectingObserver::new());
        let model = train_with(
            &cfg.clone().with_threads(threads),
            ObserverHandle::new(collector.clone()),
        );
        let bits: Vec<Vec<u32>> = model
            .params()
            .iter()
            .map(|(_, _, t)| t.data().iter().map(|x| x.to_bits()).collect())
            .collect();
        (bits, collector.records())
    };

    let (serial_bits, serial_records) = fingerprint(1);
    let (parallel_bits, parallel_records) = fingerprint(4);
    assert_eq!(serial_bits, parallel_bits, "observer broke cross-thread bit-identity");
    // The telemetry itself (minus wall-clock) is thread-invariant too:
    // ce/kl/β come out of the same deterministic tree reduction.
    assert_eq!(serial_records.len(), parallel_records.len());
    for (s, p) in serial_records.iter().zip(&parallel_records) {
        assert_eq!(s.loss.to_bits(), p.loss.to_bits());
        assert_eq!(s.ce.to_bits(), p.ce.to_bits());
        assert_eq!(s.kl.to_bits(), p.kl.to_bits());
        assert_eq!(s.beta.to_bits(), p.beta.to_bits());
        assert_eq!(s.steps, p.steps);
        assert_eq!(s.shards, p.shards);
    }
}

#[test]
fn unobserved_training_matches_observed_training() {
    // Attaching an observer must not change the trained bits relative
    // to a plain run either.
    let mut cfg = VsanConfig::smoke();
    cfg.base = cfg.base.with_epochs(2);

    let plain = train_with(&cfg, ObserverHandle::none());
    let observed = train_with(&cfg, ObserverHandle::new(Arc::new(CollectingObserver::new())));
    let bits = |m: &Vsan| -> Vec<Vec<u32>> {
        m.params().iter().map(|(_, _, t)| t.data().iter().map(|x| x.to_bits()).collect()).collect()
    };
    assert_eq!(bits(&plain), bits(&observed), "observer changed the trained parameters");
}
