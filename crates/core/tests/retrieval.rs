//! Differential suite: clustered retrieval vs the exact brute-force
//! oracle ([`vsan_core::retrieval`], DESIGN.md §12).
//!
//! The clustered index is an *approximation with an exactness mode*:
//! with `nprobe = num_clusters` every cluster is visited, the survivor
//! re-rank runs the same IEEE fold as the exact prediction matmul, and
//! the shared `(score desc, id asc)` comparator makes selection a pure
//! function of the candidate set — so the full-probe clustered top-k
//! must equal the exact top-k **bit for bit and in order**, on every
//! configuration, tied or untied. Smaller probes may drop items but
//! recall is monotone in `nprobe` (the probed-cluster list is a prefix
//! of the larger probe's), result lengths never differ, and both paths
//! reject the same errors. `scripts/verify.sh` runs this suite with
//! `VSAN_DISABLE_ANN` unset and `=1`; the assertions hold under both.

use std::collections::HashSet;

use proptest::prelude::*;
use vsan_core::{ann_disabled, fast_path_disabled, ClusteredConfig, Retrieval, Vsan, VsanConfig};

/// Build an untrained model for one sampled point of the config space.
#[allow(clippy::too_many_arguments)]
fn build_model(
    dim: usize,
    n: usize,
    vocab: usize,
    h1: usize,
    h2: usize,
    flags: u8,
    seed: u64,
) -> Vsan {
    let mut cfg = VsanConfig::smoke().with_blocks(h1, h2).with_seed(seed).with_threads(1);
    cfg.base.dim = dim;
    cfg.base.max_seq_len = n;
    cfg.use_latent = flags & 1 != 0;
    cfg.infer_ffn = flags & 2 != 0;
    cfg.gene_ffn = flags & 4 != 0;
    cfg.tie_prediction = flags & 8 != 0;
    Vsan::init(vocab, &cfg)
}

/// Clamp sampled raw ids into the valid item range `1..vocab`.
fn clamp_histories(raw: &[Vec<u32>], vocab: usize) -> Vec<Vec<u32>> {
    raw.iter()
        .map(|h| h.iter().map(|&r| 1 + r % (vocab as u32 - 1)).collect())
        .collect()
}

/// A small, fast index config with every knob pinned.
fn cluster_cfg(num_clusters: usize, nprobe: usize, seed: u64) -> ClusteredConfig {
    ClusteredConfig { num_clusters, nprobe, kmeans_iters: 2, train_sample: 4096, seed }
}

proptest! {
    /// The exactness mode: `nprobe = num_clusters` must reproduce the
    /// oracle's ranking bit for bit and in order, across widths, block
    /// counts, the ablation flags (bit 3 = tied prediction, exercising
    /// both index layouts), cluster counts, and batch shapes.
    #[test]
    fn full_probe_equals_exact_in_order(
        dim in 2usize..10,
        n in 1usize..7,
        vocab in 4usize..40,
        h1 in 0usize..2,
        h2 in 0usize..2,
        flags in 0u8..16,
        nc in 1usize..8,
        k in 1usize..12,
        seed in 0u64..10_000,
        raw_histories in collection::vec(collection::vec(0u32..4096, 0..12), 1..4),
    ) {
        let mut model = build_model(dim, n, vocab, h1, h2, flags, seed);
        model.set_retrieval(Retrieval::Clustered(cluster_cfg(nc, nc, seed)));
        let histories = clamp_histories(&raw_histories, vocab);
        let refs: Vec<&[u32]> = histories.iter().map(Vec::as_slice).collect();

        let exact = model.recommend_batch_exact(&refs, k).expect("exact oracle");
        let clustered = model.recommend_batch_clustered(&refs, k).expect("clustered path");
        prop_assert_eq!(
            &exact, &clustered,
            "full probe diverged at dim={} n={} vocab={} h1={} h2={} flags={:04b} nc={}",
            dim, n, vocab, h1, h2, flags, nc
        );
    }

    /// Structural recall property: the probed-cluster list under the
    /// shared total order is a prefix of any larger probe's list, so
    /// oracle hits can only be gained as `nprobe` grows — never lost.
    /// (A displaced candidate is only displaced by a higher-ranked one,
    /// which itself belongs to the oracle top-k.)
    #[test]
    fn recall_is_monotone_in_nprobe(
        dim in 2usize..8,
        vocab in 8usize..48,
        nc in 2usize..8,
        k in 1usize..10,
        seed in 0u64..10_000,
        raw_history in collection::vec(0u32..4096, 0..10),
    ) {
        let mut model = build_model(dim, 4, vocab, 1, 1, 0b1000, seed);
        model.set_retrieval(Retrieval::Clustered(cluster_cfg(nc, nc, seed)));
        let history = clamp_histories(&[raw_history], vocab).pop().unwrap();
        let refs: Vec<&[u32]> = vec![&history];

        let index = model.retrieval_index().expect("index built");
        let hidden = {
            let mut ws = model.workspace(1);
            model.try_last_hidden_batch_with(&refs, &mut ws).expect("hidden row")
        };
        let seen: HashSet<u32> = history.iter().copied().collect();
        let oracle: HashSet<u32> = index
            .query_with_probe(&hidden, k, &seen, index.num_clusters())
            .into_iter()
            .collect();

        let mut prev_hits = 0usize;
        for np in 1..=index.num_clusters() {
            let got = index.query_with_probe(&hidden, k, &seen, np);
            let hits = got.iter().filter(|item| oracle.contains(item)).count();
            prop_assert!(
                hits >= prev_hits,
                "recall dropped from {} to {} when nprobe grew to {} (of {})",
                prev_hits, hits, np, index.num_clusters()
            );
            prev_hits = hits;
        }
        prop_assert_eq!(prev_hits, oracle.len(), "full probe must recover the oracle set");
    }

    /// Result-length parity: the clustered path keeps probing past
    /// `nprobe` until it holds enough candidates, so even `nprobe = 1`
    /// returns exactly as many items as the oracle — including the
    /// `k > N` regime where both exhaust the catalog.
    #[test]
    fn result_lengths_match_at_any_probe(
        dim in 2usize..8,
        vocab in 4usize..32,
        nc in 1usize..8,
        np in 1usize..8,
        k in 1usize..64,
        seed in 0u64..10_000,
        raw_history in collection::vec(0u32..4096, 0..10),
    ) {
        let mut model = build_model(dim, 4, vocab, 1, 1, 0b1000, seed);
        model.set_retrieval(Retrieval::Clustered(cluster_cfg(nc, np, seed)));
        let history = clamp_histories(&[raw_history], vocab).pop().unwrap();
        let refs: Vec<&[u32]> = vec![&history];

        let exact = model.recommend_batch_exact(&refs, k).expect("exact oracle");
        let clustered = model.recommend_batch_clustered(&refs, k).expect("clustered path");
        prop_assert_eq!(exact[0].len(), clustered[0].len());
    }
}

/// Numeric recall floor on a *structured* catalog (topic-clustered
/// embeddings, like the benchmark's `million_item` preset): probing a
/// fifth of the clusters must recover nearly all of the oracle top-10.
/// Random-Gaussian catalogs get no such floor — their clusters carry
/// no signal, which is what the monotonicity property above is for.
#[test]
fn structured_catalog_recall_floor() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let (num_items, dim, topics) = (2_000usize, 16usize, 16usize);
    let mut model = build_model(dim, 4, num_items + 1, 1, 1, 0b1000, 5);
    let mut rng = StdRng::seed_from_u64(5);
    let mut centers = vec![0.0f32; topics * dim];
    for c in centers.iter_mut() {
        *c = rng.gen_range(-1.0..1.0f32);
    }
    let mut table = vec![0.0f32; (num_items + 1) * dim];
    for item in 1..=num_items {
        let t = rng.gen_range(0..topics);
        for j in 0..dim {
            table[item * dim + j] = centers[t * dim + j] + rng.gen_range(-0.1..0.1f32);
        }
    }
    let id = model.params_mut().id_of("item_emb").expect("item table");
    model.params_mut().get_mut(id).data_mut().copy_from_slice(&table);
    model.set_retrieval(Retrieval::Clustered(cluster_cfg(40, 8, 5)));

    let histories: Vec<Vec<u32>> =
        (0..16).map(|_| (0..4).map(|_| rng.gen_range(1..=num_items as u32)).collect()).collect();
    let refs: Vec<&[u32]> = histories.iter().map(Vec::as_slice).collect();
    let exact = model.recommend_batch_exact(&refs, 10).expect("exact oracle");
    let clustered = model.recommend_batch_clustered(&refs, 10).expect("clustered path");

    let mut hits = 0usize;
    let mut total = 0usize;
    for (e, c) in exact.iter().zip(&clustered) {
        let oracle: HashSet<u32> = e.iter().copied().collect();
        hits += c.iter().filter(|item| oracle.contains(item)).count();
        total += e.len();
    }
    let recall = hits as f64 / total.max(1) as f64;
    assert!(recall >= 0.9, "recall@10 {recall} on a topic-structured catalog (8/40 probes)");
}

/// Both paths must reject an out-of-vocabulary id with the *same*
/// error — the clustered path reuses the exact path's embedding gather,
/// so no path can silently score garbage.
#[test]
fn both_paths_reject_oov_identically() {
    let mut model = build_model(4, 4, 8, 1, 1, 0b1000, 7);
    model.set_retrieval(Retrieval::Clustered(cluster_cfg(2, 2, 7)));
    let bad: &[&[u32]] = &[&[1, 2, 300]];
    let exact = model.recommend_batch_exact(bad, 3).expect_err("exact must reject id 300");
    let clustered =
        model.recommend_batch_clustered(bad, 3).expect_err("clustered must reject id 300");
    assert_eq!(exact, clustered, "the two paths must fail with the same message");
}

/// `k` far beyond the catalog: both paths return every rankable item,
/// identically ordered, under exclusions.
#[test]
fn k_beyond_catalog_is_identical() {
    let mut model = build_model(6, 4, 33, 1, 1, 0b1000, 11);
    model.set_retrieval(Retrieval::Clustered(cluster_cfg(4, 1, 11)));
    let history: Vec<u32> = (1..=10).collect();
    let refs: Vec<&[u32]> = vec![&history];
    let exact = model.recommend_batch_exact(&refs, 500).expect("exact oracle");
    let clustered = model.recommend_batch_clustered(&refs, 500).expect("clustered path");
    assert_eq!(exact[0].len(), 22, "32 items minus 10 excluded");
    assert_eq!(exact, clustered, "exhausting the catalog must visit every cluster");
}

/// Deterministic tie-breaking: when every item scores identically
/// (identical tied-table rows), both paths must order by ascending item
/// id — selection is a pure function of the candidate set, not of heap
/// insertion order.
#[test]
fn equal_scores_order_by_item_id_on_both_paths() {
    let (vocab, dim) = (24usize, 4usize);
    let mut model = build_model(dim, 4, vocab, 1, 1, 0b1000, 13);
    let mut table = vec![0.0f32; vocab * dim];
    for item in 1..vocab {
        for j in 0..dim {
            table[item * dim + j] = 0.25 + j as f32 * 0.5; // every item identical
        }
    }
    let id = model.params_mut().id_of("item_emb").expect("item table");
    model.params_mut().get_mut(id).data_mut().copy_from_slice(&table);
    model.set_retrieval(Retrieval::Clustered(cluster_cfg(3, 3, 13)));

    let history: Vec<u32> = vec![2, 5];
    let refs: Vec<&[u32]> = vec![&history];
    let expected: Vec<u32> = (1..vocab as u32).filter(|i| ![2, 5].contains(i)).take(8).collect();
    let exact = model.recommend_batch_exact(&refs, 8).expect("exact oracle");
    let clustered = model.recommend_batch_clustered(&refs, 8).expect("clustered path");
    assert_eq!(exact[0], expected, "exact ties must break to ascending id");
    assert_eq!(clustered[0], expected, "clustered ties must break to ascending id");
}

/// Index rebuild determinism: the same parameters and config produce a
/// bit-identical index — twice in one model, and again after a
/// checkpoint round-trip into a *differently seeded* model.
#[test]
fn index_rebuild_is_deterministic_across_checkpoint_reload() {
    let cfg = cluster_cfg(5, 2, 17);
    let mut a = build_model(6, 4, 40, 1, 1, 0b1000, 17);
    a.set_retrieval(Retrieval::Clustered(cfg.clone()));
    let assign_1 = a.retrieval_index().unwrap().assignments().to_vec();
    a.rebuild_retrieval_index();
    let assign_2 = a.retrieval_index().unwrap().assignments().to_vec();
    assert_eq!(assign_1, assign_2, "rebuild from unchanged parameters must be bit-identical");

    let histories: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![7, 9], vec![4]];
    let refs: Vec<&[u32]> = histories.iter().map(Vec::as_slice).collect();
    let results_a = a.recommend_batch_clustered(&refs, 6).expect("clustered path");

    let blob = a.params().save();
    let mut b = build_model(6, 4, 40, 1, 1, 0b1000, 99); // different init weights
    b.params_mut().load_values(blob).expect("checkpoint reload");
    b.set_retrieval(Retrieval::Clustered(cfg));
    assert_eq!(
        assign_1,
        b.retrieval_index().unwrap().assignments(),
        "the restored checkpoint must rebuild the same clustering"
    );
    assert_eq!(
        results_a,
        b.recommend_batch_clustered(&refs, 6).expect("clustered path"),
        "the restored checkpoint must answer queries identically"
    );
}

/// The env gates route `recommend_batch`: with an index built, the
/// clustered path serves unless `VSAN_DISABLE_ANN=1` or
/// `VSAN_DISABLE_FAST_PATH=1` pins the process to the oracle. This
/// assertion is written against whatever the current process env says,
/// so the suite passes under every setting `scripts/verify.sh` uses.
#[test]
fn recommend_batch_honours_env_gates() {
    let mut model = build_model(4, 4, 20, 1, 1, 0b1000, 23);
    model.set_retrieval(Retrieval::Clustered(cluster_cfg(3, 1, 23)));
    assert_eq!(
        model.clustered_active(),
        !ann_disabled() && !fast_path_disabled(),
        "clustered_active must reflect both env pins"
    );
    let histories: Vec<Vec<u32>> = vec![vec![1, 2], vec![3]];
    let refs: Vec<&[u32]> = histories.iter().map(Vec::as_slice).collect();
    let got = model.recommend_batch(&refs, 5);
    let expected = if model.clustered_active() {
        model.recommend_batch_clustered(&refs, 5).expect("clustered path")
    } else {
        model.recommend_batch_exact(&refs, 5).expect("exact oracle")
    };
    assert_eq!(got, expected);
}
