//! POP: rank items by global popularity in the training split.

use crate::traits::Recommender;
use vsan_data::Dataset;
use vsan_eval::Scorer;

/// The popularity baseline: every user receives the same ranking, the
/// items most frequently interacted with by training users.
#[derive(Debug, Clone)]
pub struct Pop {
    counts: Vec<f32>,
}

impl Pop {
    /// Count item frequencies over the training users' full histories.
    pub fn train(ds: &Dataset, train_users: &[usize]) -> Self {
        let mut counts = vec![0.0f32; ds.vocab()];
        for &u in train_users {
            for &item in &ds.sequences[u] {
                counts[item as usize] += 1.0;
            }
        }
        counts[0] = 0.0; // padding never recommended
        Pop { counts }
    }

    /// Popularity count of an item.
    pub fn count(&self, item: u32) -> f32 {
        self.counts[item as usize]
    }
}

impl Scorer for Pop {
    fn score_items(&self, _fold_in: &[u32]) -> Vec<f32> {
        self.counts.clone()
    }
    fn vocab(&self) -> usize {
        self.counts.len()
    }
}

impl Recommender for Pop {
    fn name(&self) -> &'static str {
        "POP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset {
            name: "t".into(),
            num_items: 4,
            sequences: vec![vec![1, 2, 1], vec![1, 3], vec![4, 4, 4, 4]],
        }
    }

    #[test]
    fn counts_only_training_users() {
        let model = Pop::train(&ds(), &[0, 1]);
        assert_eq!(model.count(1), 3.0);
        assert_eq!(model.count(2), 1.0);
        assert_eq!(model.count(3), 1.0);
        assert_eq!(model.count(4), 0.0); // user 2 excluded
    }

    #[test]
    fn scores_are_identical_for_all_users() {
        let model = Pop::train(&ds(), &[0, 1, 2]);
        assert_eq!(model.score_items(&[1, 2]), model.score_items(&[3]));
        assert_eq!(model.vocab(), 5);
    }

    #[test]
    fn most_popular_item_ranks_first() {
        use std::collections::HashSet;
        let model = Pop::train(&ds(), &[0, 1, 2]);
        let top = vsan_eval::top_n_excluding(&model.score_items(&[]), 2, &HashSet::new());
        assert_eq!(top[0], 4); // 4 appearances
        assert_eq!(top[1], 1); // 3 appearances
    }
}
