#![warn(missing_docs)]

//! # vsan-models
//!
//! The eight baseline recommenders the paper compares VSAN against
//! (Table III), trained end-to-end on `vsan-data` datasets and evaluated
//! through `vsan-eval`'s strong-generalization protocol:
//!
//! | Model | Family | Module |
//! |---|---|---|
//! | POP | popularity | [`pop`] |
//! | BPR | matrix factorization, pairwise loss | [`bpr`] |
//! | FPMC | factorized Markov chain | [`fpmc`] |
//! | TransRec | translation embedding | [`transrec`] |
//! | GRU4Rec | RNN | [`gru4rec`] |
//! | Caser | CNN | [`caser`] |
//! | SVAE | RNN + VAE | [`svae`] |
//! | SASRec | self-attention | [`sasrec`] |
//!
//! Held-out users are unseen during training (strong generalization), so
//! models that natively need a user embedding (BPR, FPMC, TransRec, Caser)
//! fold a held-out user in from their history — BPR/FPMC average the
//! fold-in item factors, TransRec uses the learned global translation,
//! Caser drops its user embedding — the same adaptation the paper applies
//! via SVAE's protocol ("for the baselines that can only provide
//! meaningful predictions for users who are already utilized during the
//! training phase, we adopt the same operation as [33]").
//!
//! Neural baselines are trained with full-softmax cross-entropy (rather
//! than the sampled losses some original papers used) for comparability
//! with VSAN's Eq. 20 objective; this is noted per-model.
//!
//! [`itemknn`] adds Item-kNN as a workspace extension beyond the paper's
//! baseline set (see its module docs).

pub mod bpr;
pub mod caser;
pub mod common;
pub mod fpmc;
pub mod gru4rec;
pub mod itemknn;
pub mod pop;
pub mod sasrec;
pub mod svae;
pub mod transrec;
pub mod traits;

pub use bpr::Bpr;
pub use caser::Caser;
pub use common::NeuralConfig;
// Telemetry types callers need to attach observers to a config.
pub use vsan_obs::{
    CollectingObserver, EpochRecord, JsonlTrainObserver, ObserverHandle, TrainObserver,
    TrainRunInfo,
};
pub use fpmc::Fpmc;
pub use gru4rec::Gru4Rec;
pub use itemknn::ItemKnn;
pub use pop::Pop;
pub use sasrec::SasRec;
pub use svae::Svae;
pub use transrec::TransRec;
pub use traits::Recommender;
