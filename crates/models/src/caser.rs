//! Caser: convolutional sequence embedding (Tang & Wang 2018).
//!
//! The last `L` items are embedded into an `(L, d)` "image"; horizontal
//! filters (heights 1..=L, full width) capture union-level sequential
//! patterns via max-over-time pooling, and vertical filters (weighted sums
//! over the `L` rows) capture point-level patterns. Both feature groups
//! feed a fully-connected layer and a softmax over items.
//!
//! The original concatenates a user embedding before the output layer;
//! under strong generalization held-out users are unseen, so we use the
//! sequence-only variant (noted in the crate docs).

use crate::common::{train_epochs, NeuralConfig};
use crate::traits::Recommender;
use vsan_data::sequence::{pad_left, SeqExample};
use vsan_data::Dataset;
use vsan_eval::Scorer;
use vsan_nn::{Embedding, Linear, ParamStore};

use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_autograd::{Graph, Result as AgResult, Var};

/// Caser-specific hyper-parameters on top of [`NeuralConfig`].
#[derive(Debug, Clone)]
pub struct CaserConfig {
    /// Markov window length `L` (the "image" height).
    pub window: usize,
    /// Horizontal filters per height (heights 1..=L each get this many).
    pub h_filters: usize,
    /// Number of vertical filters.
    pub v_filters: usize,
    /// Maximum training windows sampled per user per epoch (bounds cost on
    /// long ML-1M-like histories).
    pub max_windows_per_user: usize,
}

impl Default for CaserConfig {
    fn default() -> Self {
        CaserConfig { window: 5, h_filters: 4, v_filters: 2, max_windows_per_user: 12 }
    }
}

/// Trained Caser model.
pub struct Caser {
    store: ParamStore,
    item_emb: Embedding,
    /// One horizontal filter bank per height `h`: weight `(h·d, F)`.
    h_banks: Vec<Linear>,
    /// Vertical filter bank `(v_filters, L)` applied as `W · E`.
    v_bank: usize, // param id
    fc: Linear,
    out: Linear,
    cfg: NeuralConfig,
    ccfg: CaserConfig,
    vocab: usize,
    /// Mean training loss per epoch.
    pub train_losses: Vec<f32>,
}

impl Caser {
    /// Train on sliding windows from the training users.
    pub fn train(
        ds: &Dataset,
        train_users: &[usize],
        cfg: &NeuralConfig,
        ccfg: &CaserConfig,
    ) -> Result<Self, String> {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let item_emb = Embedding::new(&mut store, &mut rng, "item_emb", ds.vocab(), cfg.dim, true);
        let l = ccfg.window;
        let h_banks: Vec<Linear> = (1..=l)
            .map(|h| Linear::new(&mut store, &mut rng, &format!("hconv{h}"), h * cfg.dim, ccfg.h_filters, true))
            .collect();
        let v_bank = store.add(
            "vconv",
            vsan_tensor::init::xavier_uniform(&mut rng, &[ccfg.v_filters, l]),
        );
        let feat_dim = l * ccfg.h_filters + ccfg.v_filters * cfg.dim;
        let fc = Linear::new(&mut store, &mut rng, "fc", feat_dim, cfg.dim, true);
        let out = Linear::new(&mut store, &mut rng, "out", cfg.dim, ds.vocab(), true);

        // Sliding windows: (last-L-items, next-item) pairs, capped per user.
        let mut examples: Vec<SeqExample> = Vec::new();
        for &u in train_users {
            let seq = &ds.sequences[u];
            if seq.len() < 2 {
                continue;
            }
            let starts: Vec<usize> = (1..seq.len()).collect();
            let take = starts.len().min(ccfg.max_windows_per_user);
            // Deterministic stride so every epoch sees the same windows.
            let stride = (starts.len() / take).max(1);
            for &t in starts.iter().step_by(stride).take(take) {
                examples.push(SeqExample {
                    input: pad_left(&seq[..t], l),
                    targets: vec![seq[t] as usize],
                });
            }
        }

        let mut model = Caser {
            store,
            item_emb,
            h_banks,
            v_bank,
            fc,
            out,
            cfg: cfg.clone(),
            ccfg: ccfg.clone(),
            vocab: ds.vocab(),
            train_losses: Vec::new(),
        };
        if examples.is_empty() {
            return Ok(model);
        }

        let item_emb = model.item_emb.clone();
        let h_banks = model.h_banks.clone();
        let v_bank = model.v_bank;
        let fc = model.fc.clone();
        let out = model.out.clone();
        let l_ = l;
        let losses = train_epochs(
            cfg,
            &mut model.store,
            &examples,
            |g, store, batch, _rng, _step| {
                let b = batch.len();
                let mut inputs = Vec::with_capacity(b * l_);
                let mut targets = Vec::with_capacity(b);
                for ex in batch {
                    inputs.extend(ex.input.iter().map(|&i| i as usize));
                    targets.push(ex.targets[0]);
                }
                let table = store.var(g, item_emb.table);
                let emb = g.gather_rows(table, &inputs)?; // (B·L, d)
                let feats =
                    caser_features(g, store, emb, b, l_, &h_banks, v_bank, &fc)?;
                let logits = out.forward(g, store, feats)?;
                let loss = g.ce_one_hot(logits, &targets)?;
                let ce = g.value(loss).data()[0];
                Ok((loss, vsan_nn::ShardStats::ce_only(ce)))
            },
            |store| {
                item_emb.zero_padding(store);
            },
        )?;
        model.train_losses = losses;
        Ok(model)
    }

    fn forward_logits(&self, fold_in: &[u32]) -> AgResult<Vec<f32>> {
        let l = self.ccfg.window;
        let window = pad_left(fold_in, l);
        let mut g = Graph::with_threads(self.cfg.threads);
        let idx: Vec<usize> = window.iter().map(|&i| i as usize).collect();
        let emb = self.item_emb.lookup(&mut g, &self.store, &idx)?;
        let feats = caser_features(
            &mut g,
            &self.store,
            emb,
            1,
            l,
            &self.h_banks,
            self.v_bank,
            &self.fc,
        )?;
        let logits = self.out.forward(&mut g, &self.store, feats)?;
        Ok(g.value(logits).data().to_vec())
    }
}

/// Shared conv feature extractor: `(B·L, d)` embeddings → `(B, dim)`
/// sequence features (ReLU-activated fully connected fusion).
#[allow(clippy::too_many_arguments)]
fn caser_features(
    g: &mut Graph,
    store: &ParamStore,
    emb: Var,
    b: usize,
    l: usize,
    h_banks: &[Linear],
    v_bank: usize,
    fc: &Linear,
) -> AgResult<Var> {
    let mut per_sample_feats: Vec<Var> = Vec::with_capacity(b);
    let v_w = store.var(g, v_bank); // (F_v, L)
    for s in 0..b {
        let mut parts: Vec<Var> = Vec::new();
        // Horizontal convolutions with max-over-time pooling.
        for (h_idx, bank) in h_banks.iter().enumerate() {
            let h = h_idx + 1;
            let n_offsets = l - h + 1;
            // im2col: rows are windows, built as column-concat of shifted gathers.
            let mut cols: Vec<Var> = Vec::with_capacity(h);
            for r in 0..h {
                let idx: Vec<usize> = (0..n_offsets).map(|o| s * l + o + r).collect();
                cols.push(g.gather_rows(emb, &idx)?);
            }
            let im2col = if cols.len() == 1 { cols[0] } else { g.concat_cols(&cols)? };
            let conv = bank.forward(g, store, im2col)?; // (n_offsets, F)
            let conv = g.relu(conv);
            let pooled = g.max_axis0(conv)?; // (F,)
            parts.push(g.reshape(pooled, &[1, bank.out_dim()])?);
        }
        // Vertical convolution: W_v (F_v, L) × E_s (L, d) → (F_v, d).
        let sample_idx: Vec<usize> = (0..l).map(|r| s * l + r).collect();
        let e_s = g.gather_rows(emb, &sample_idx)?;
        let v_out = g.matmul(v_w, e_s)?;
        let d = g.value(e_s).dims()[1];
        let f_v = g.value(v_w).dims()[0];
        parts.push(g.reshape(v_out, &[1, f_v * d])?);
        per_sample_feats.push(g.concat_cols(&parts)?);
    }
    let feats = g.concat_rows(&per_sample_feats)?; // (B, feat_dim)
    let fused = fc.forward(g, store, feats)?;
    Ok(g.relu(fused))
}

impl Scorer for Caser {
    fn score_items(&self, fold_in: &[u32]) -> Vec<f32> {
        self.forward_logits(fold_in).unwrap_or_else(|_| vec![0.0; self.vocab])
    }
    fn vocab(&self) -> usize {
        self.vocab
    }
}

impl Recommender for Caser {
    fn name(&self) -> &'static str {
        "Caser"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
        let sequences = (0..users)
            .map(|u| (0..len).map(|t| ((u + t) % num_items + 1) as u32).collect())
            .collect();
        Dataset { name: "chain".into(), num_items, sequences }
    }

    #[test]
    fn training_reduces_loss() {
        let ds = chain_dataset(6, 20, 10);
        let users: Vec<usize> = (0..20).collect();
        let cfg = NeuralConfig::smoke().with_epochs(6);
        let model = Caser::train(&ds, &users, &cfg, &CaserConfig::default()).unwrap();
        assert!(model.train_losses.last().unwrap() < &model.train_losses[0]);
    }

    #[test]
    fn learns_local_patterns() {
        let ds = chain_dataset(5, 30, 12);
        let users: Vec<usize> = (0..30).collect();
        let cfg = NeuralConfig::smoke().with_epochs(15);
        let model = Caser::train(&ds, &users, &cfg, &CaserConfig::default()).unwrap();
        let scores = model.score_items(&[4, 5, 1]);
        let best = (1..=5).max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap()).unwrap();
        assert_eq!(best, 2, "scores {:?}", &scores[1..]);
    }

    #[test]
    fn short_fold_in_is_padded() {
        let ds = chain_dataset(5, 10, 8);
        let users: Vec<usize> = (0..10).collect();
        let cfg = NeuralConfig::smoke().with_epochs(1);
        let model = Caser::train(&ds, &users, &cfg, &CaserConfig::default()).unwrap();
        let scores = model.score_items(&[3]);
        assert_eq!(scores.len(), 6);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn window_cap_bounds_example_count() {
        let ds = chain_dataset(5, 4, 40);
        let users: Vec<usize> = (0..4).collect();
        let cfg = NeuralConfig::smoke().with_epochs(1);
        let ccfg = CaserConfig { max_windows_per_user: 3, ..CaserConfig::default() };
        // Indirect check: training completes quickly and produces losses.
        let model = Caser::train(&ds, &users, &cfg, &ccfg).unwrap();
        assert_eq!(model.train_losses.len(), 1);
    }
}
