//! TransRec: translation-based recommendation (He, Kang & McAuley 2017).
//!
//! Items are points in a latent "transition space"; each user is a
//! translation vector `t_u = t + t̂_u` (global + personal offset). The
//! score of moving from previous item `l` to item `i` is
//! `β_i − ‖γ_l + t_u − γ_i‖²`, trained with a BPR pairwise objective.

use crate::traits::Recommender;
use rand::Rng;
use vsan_data::Dataset;
use vsan_eval::Scorer;
use vsan_tensor::{init, Tensor};

/// TransRec hyper-parameters.
#[derive(Debug, Clone)]
pub struct TransRecConfig {
    /// Latent dimension.
    pub dim: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularization.
    pub reg: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransRecConfig {
    fn default() -> Self {
        TransRecConfig { dim: 48, epochs: 30, lr: 0.05, reg: 0.01, seed: 42 }
    }
}

/// Trained TransRec. Held-out users (unseen in training) are translated by
/// the learned *global* vector `t` only — their personal offset defaults to
/// the population mean of zero-centered offsets.
#[derive(Debug, Clone)]
pub struct TransRec {
    /// Item points `γ` `(vocab, dim)`.
    gamma: Tensor,
    /// Item biases `β` `(vocab,)`.
    beta: Vec<f32>,
    /// Global translation vector `t` `(dim,)`.
    t_global: Vec<f32>,
    dim: usize,
}

impl TransRec {
    /// Train with BPR SGD over sampled transitions.
    pub fn train<R: Rng + ?Sized>(
        ds: &Dataset,
        train_users: &[usize],
        cfg: &TransRecConfig,
        rng: &mut R,
    ) -> Self {
        let vocab = ds.vocab();
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        let mut gamma = init::randn(rng, &[vocab, cfg.dim], 0.0, scale);
        let mut beta = vec![0.0f32; vocab];
        let mut t_global = vec![0.0f32; cfg.dim];
        let mut t_user = init::randn(rng, &[train_users.len().max(1), cfg.dim], 0.0, scale * 0.1);

        let mut transitions: Vec<(usize, usize, usize)> = Vec::new();
        for (slot, &u) in train_users.iter().enumerate() {
            for w in ds.sequences[u].windows(2) {
                transitions.push((slot, w[0] as usize, w[1] as usize));
            }
        }
        if transitions.is_empty() {
            return TransRec { gamma, beta, t_global, dim: cfg.dim };
        }

        let d = cfg.dim;
        for _ in 0..cfg.epochs {
            for _ in 0..transitions.len() {
                let &(uslot, prev, pos) = &transitions[rng.gen_range(0..transitions.len())];
                let mut neg = rng.gen_range(1..vocab);
                if neg == pos {
                    neg = 1 + (neg % (vocab - 1));
                }
                // q_k = γ_prev + t + t_u; score(i) = β_i − ‖q − γ_i‖².
                let score_and_diff = |item: usize,
                                      gamma: &Tensor,
                                      t_global: &[f32],
                                      t_user: &Tensor|
                 -> (f32, Vec<f32>) {
                    let mut diff = vec![0.0f32; d];
                    let mut dist = 0.0f32;
                    for k in 0..d {
                        let q = gamma.get2(prev, k) + t_global[k] + t_user.get2(uslot, k);
                        let dd = q - gamma.get2(item, k);
                        diff[k] = dd;
                        dist += dd * dd;
                    }
                    (beta[item] - dist, diff)
                };
                let (s_pos, diff_pos) = score_and_diff(pos, &gamma, &t_global, &t_user);
                let (s_neg, diff_neg) = score_and_diff(neg, &gamma, &t_global, &t_user);
                let sig = vsan_tensor::ops::elementwise::stable_sigmoid(-(s_pos - s_neg));
                // d score_pos / d q = −2 diff_pos; d score_neg / d q = −2 diff_neg.
                for k in 0..d {
                    let g_q = sig * (-2.0 * diff_pos[k] + 2.0 * diff_neg[k]);
                    // q depends on γ_prev, t, t_u with unit Jacobians.
                    let gp = gamma.get2(prev, k);
                    gamma.set2(prev, k, gp + cfg.lr * (g_q - cfg.reg * gp));
                    t_global[k] += cfg.lr * (g_q - cfg.reg * t_global[k]);
                    let tu = t_user.get2(uslot, k);
                    t_user.set2(uslot, k, tu + cfg.lr * (g_q - cfg.reg * tu));
                    // γ_pos gradient: +2 diff_pos ⋅ sig; γ_neg: −2 diff_neg ⋅ sig.
                    let gpos = gamma.get2(pos, k);
                    gamma.set2(pos, k, gpos + cfg.lr * (sig * 2.0 * diff_pos[k] - cfg.reg * gpos));
                    let gneg = gamma.get2(neg, k);
                    gamma.set2(neg, k, gneg + cfg.lr * (-sig * 2.0 * diff_neg[k] - cfg.reg * gneg));
                }
                beta[pos] += cfg.lr * (sig - cfg.reg * beta[pos]);
                beta[neg] += cfg.lr * (-sig - cfg.reg * beta[neg]);
            }
        }
        // Cold-start translation: held-out users get `t` plus the
        // population-mean personal offset (the common component the
        // per-user vectors absorbed during training).
        if !train_users.is_empty() {
            let inv = 1.0 / train_users.len() as f32;
            for (k, tg) in t_global.iter_mut().enumerate().take(d) {
                let mean_k: f32 =
                    (0..train_users.len()).map(|s| t_user.get2(s, k)).sum::<f32>() * inv;
                *tg += mean_k;
            }
        }
        TransRec { gamma, beta, t_global, dim: cfg.dim }
    }
}

impl Scorer for TransRec {
    fn score_items(&self, fold_in: &[u32]) -> Vec<f32> {
        let vocab = self.beta.len();
        let d = self.dim;
        let mut scores = vec![f32::NEG_INFINITY; vocab];
        scores[0] = f32::NEG_INFINITY;
        let Some(&prev) = fold_in.last() else {
            // No history: fall back to item bias only.
            for (item, s) in scores.iter_mut().enumerate().skip(1) {
                *s = self.beta[item];
            }
            return scores;
        };
        let prev = prev as usize;
        let mut q = vec![0.0f32; d];
        for (k, qk) in q.iter_mut().enumerate() {
            *qk = self.gamma.get2(prev, k) + self.t_global[k];
        }
        for (item, s) in scores.iter_mut().enumerate().skip(1) {
            let row = self.gamma.row(item);
            let dist: f32 = q.iter().zip(row).map(|(&a, &b)| (a - b) * (a - b)).sum();
            *s = self.beta[item] - dist;
        }
        scores
    }
    fn vocab(&self) -> usize {
        self.beta.len()
    }
}

impl Recommender for TransRec {
    fn name(&self) -> &'static str {
        "TransRec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_dataset() -> Dataset {
        let mut sequences = Vec::new();
        for u in 0..40 {
            let start = u % 6;
            let seq: Vec<u32> = (0..12).map(|t| ((start + t) % 6 + 1) as u32).collect();
            sequences.push(seq);
        }
        Dataset { name: "chain".into(), num_items: 6, sequences }
    }

    #[test]
    fn translation_learns_the_chain() {
        let ds = chain_dataset();
        let users: Vec<usize> = (0..40).collect();
        let cfg = TransRecConfig { dim: 16, epochs: 60, lr: 0.05, reg: 0.001, seed: 1 };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = TransRec::train(&ds, &users, &cfg, &mut rng);
        // From item 3, the successor 4 must top the ranking once the seen
        // fold-in items are excluded (exactly the protocol's view — the
        // nearest point to γ₃ + t is usually γ₃ itself, which the ranker
        // never recommends).
        let scores = model.score_items(&[2, 3]);
        let exclude: std::collections::HashSet<u32> = [2, 3].into_iter().collect();
        let top = vsan_eval::top_n_excluding(&scores, 1, &exclude);
        assert_eq!(top[0], 4, "scores {:?}", &scores[1..]);
    }

    #[test]
    fn no_history_falls_back_to_bias() {
        let ds = chain_dataset();
        let users: Vec<usize> = (0..40).collect();
        let cfg = TransRecConfig { dim: 8, epochs: 3, lr: 0.05, reg: 0.01, seed: 2 };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = TransRec::train(&ds, &users, &cfg, &mut rng);
        let scores = model.score_items(&[]);
        for (score, beta) in scores.iter().zip(&model.beta).take(7).skip(1) {
            assert!((score - beta).abs() < 1e-6);
        }
    }

    #[test]
    fn scores_are_finite_after_aggressive_training() {
        let ds = chain_dataset();
        let users: Vec<usize> = (0..40).collect();
        let cfg = TransRecConfig { dim: 8, epochs: 20, lr: 0.2, reg: 0.0, seed: 3 };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = TransRec::train(&ds, &users, &cfg, &mut rng);
        assert!(model.score_items(&[1]).iter().skip(1).all(|s| s.is_finite()));
    }
}
