//! Common model interface.

use vsan_eval::Scorer;

/// A trained recommender: a [`Scorer`] with a display name.
///
/// Everything needed by the Table III harness: train (model-specific
/// constructors), then score held-out fold-ins.
pub trait Recommender: Scorer {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl Scorer for Dummy {
        fn score_items(&self, _fold_in: &[u32]) -> Vec<f32> {
            vec![0.0; 4]
        }
        fn vocab(&self) -> usize {
            4
        }
    }
    impl Recommender for Dummy {
        fn name(&self) -> &'static str {
            "Dummy"
        }
    }

    #[test]
    fn trait_objects_compose() {
        let models: Vec<Box<dyn Recommender>> = vec![Box::new(Dummy)];
        assert_eq!(models[0].name(), "Dummy");
        assert_eq!(models[0].score_items(&[]).len(), 4);
    }
}
