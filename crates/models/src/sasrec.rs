//! SASRec: self-attentive sequential recommendation (Kang & McAuley 2018).
//!
//! Item + learned positional embeddings, a stack of causal self-attention
//! blocks, and a weight-tied prediction layer (`score = G · Eᵀ`, sharing
//! the item embedding as the output matrix, as in the original paper).
//! We train with full-softmax cross-entropy over next items rather than
//! the original sampled binary cross-entropy — comparable to VSAN's
//! objective and strictly harder than sampled BCE.

use crate::common::{examples_for_users, flatten_batch, position_indices, train_epochs, NeuralConfig};
use crate::traits::Recommender;
use vsan_data::sequence::pad_left;
use vsan_data::Dataset;
use vsan_eval::Scorer;
use vsan_nn::{Dropout, Embedding, ParamStore, SelfAttentionBlock};

use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_autograd::{Graph, Result as AgResult};

/// Trained SASRec model.
pub struct SasRec {
    store: ParamStore,
    item_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<SelfAttentionBlock>,
    cfg: NeuralConfig,
    vocab: usize,
    /// Mean training loss per epoch (for convergence checks / benches).
    pub train_losses: Vec<f32>,
}

impl SasRec {
    /// Number of self-attention blocks used by default (the original
    /// paper's b = 2; our Table III harness passes 2).
    pub const DEFAULT_BLOCKS: usize = 2;

    /// Train SASRec on the training users' sequences.
    pub fn train(ds: &Dataset, train_users: &[usize], cfg: &NeuralConfig) -> Result<Self, String> {
        Self::train_with_blocks(ds, train_users, cfg, Self::DEFAULT_BLOCKS)
    }

    /// Train with an explicit block count.
    pub fn train_with_blocks(
        ds: &Dataset,
        train_users: &[usize],
        cfg: &NeuralConfig,
        num_blocks: usize,
    ) -> Result<Self, String> {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let item_emb = Embedding::new(&mut store, &mut rng, "item_emb", ds.vocab(), cfg.dim, true);
        let pos_emb =
            Embedding::new(&mut store, &mut rng, "pos_emb", cfg.max_seq_len, cfg.dim, false);
        let blocks: Vec<SelfAttentionBlock> = (0..num_blocks)
            .map(|b| SelfAttentionBlock::new(&mut store, &mut rng, &format!("block{b}"), cfg.dim, true))
            .collect();

        let examples = examples_for_users(ds, train_users, cfg.max_seq_len);
        let mut model = SasRec {
            store,
            item_emb,
            pos_emb,
            blocks,
            cfg: cfg.clone(),
            vocab: ds.vocab(),
            train_losses: Vec::new(),
        };
        if examples.is_empty() {
            return Ok(model);
        }

        let n = cfg.max_seq_len;
        let dropout = Dropout::new(cfg.dropout);
        let item_emb = model.item_emb.clone();
        let pos_emb = model.pos_emb.clone();
        let blocks = model.blocks.clone();
        let losses = train_epochs(
            cfg,
            &mut model.store,
            &examples,
            |g, store, batch, rng, _step| {
                let (inputs, targets) = flatten_batch(batch);
                let batch_size = batch.len();
                let table = store.var(g, item_emb.table);
                let items = g.gather_rows(table, &inputs)?;
                let pos = pos_emb.lookup(g, store, &position_indices(batch_size, n))?;
                let mut h = g.add(items, pos)?;
                h = dropout.forward(g, rng, h, true)?;
                for block in &blocks {
                    h = block.forward(g, store, h, batch_size, n, &dropout, rng, true)?;
                }
                // Weight-tied logits: (B·n, d) × (vocab, d)ᵀ.
                let logits = g.matmul_a_bt(h, table)?;
                let loss = g.ce_one_hot(logits, &targets)?;
                let ce = g.value(loss).data()[0];
                Ok((loss, vsan_nn::ShardStats::ce_only(ce)))
            },
            |store| {
                item_emb.zero_padding(store);
            },
        )?;
        model.train_losses = losses;
        Ok(model)
    }

    /// Forward a single fold-in sequence to last-position logits.
    fn forward_logits(&self, fold_in: &[u32]) -> AgResult<Vec<f32>> {
        let n = self.cfg.max_seq_len;
        let input = pad_left(fold_in, n);
        let mut g = Graph::with_threads(self.cfg.threads);
        let mut rng = StdRng::seed_from_u64(0); // dropout disabled in eval
        let dropout = Dropout::new(0.0);
        let idx: Vec<usize> = input.iter().map(|&i| i as usize).collect();
        let table = self.store.var(&mut g, self.item_emb.table);
        let items = g.gather_rows(table, &idx)?;
        let pos = self.pos_emb.lookup(&mut g, &self.store, &position_indices(1, n))?;
        let mut h = g.add(items, pos)?;
        for block in &self.blocks {
            h = block.forward(&mut g, &self.store, h, 1, n, &dropout, &mut rng, false)?;
        }
        let last = g.gather_rows(h, &[n - 1])?;
        let logits = g.matmul_a_bt(last, table)?;
        Ok(g.value(logits).data().to_vec())
    }
}

impl Scorer for SasRec {
    fn score_items(&self, fold_in: &[u32]) -> Vec<f32> {
        self.forward_logits(fold_in)
            .unwrap_or_else(|_| vec![0.0; self.vocab])
    }
    fn vocab(&self) -> usize {
        self.vocab
    }
}

impl Recommender for SasRec {
    fn name(&self) -> &'static str {
        "SASRec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic cyclic-chain data: next item is fully determined by
    /// the previous one, the easiest possible sequence task.
    fn chain_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
        let sequences = (0..users)
            .map(|u| (0..len).map(|t| ((u + t) % num_items + 1) as u32).collect())
            .collect();
        Dataset { name: "chain".into(), num_items, sequences }
    }

    #[test]
    fn training_reduces_loss() {
        let ds = chain_dataset(8, 24, 10);
        let users: Vec<usize> = (0..24).collect();
        let cfg = NeuralConfig::smoke().with_epochs(5);
        let model = SasRec::train(&ds, &users, &cfg).unwrap();
        let first = model.train_losses[0];
        let last = *model.train_losses.last().unwrap();
        assert!(last < first, "loss should fall: {first} → {last}");
    }

    #[test]
    fn learns_deterministic_chain() {
        let ds = chain_dataset(6, 30, 12);
        let users: Vec<usize> = (0..30).collect();
        let cfg = NeuralConfig::smoke().with_epochs(40);
        let model = SasRec::train(&ds, &users, &cfg).unwrap();
        // After ... 3, 4 the chain continues with 5.
        let scores = model.score_items(&[3, 4]);
        let best = (1..=6).max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap()).unwrap();
        assert_eq!(best, 5, "scores {:?}", &scores[1..]);
    }

    #[test]
    fn scoring_is_deterministic() {
        let ds = chain_dataset(6, 12, 8);
        let users: Vec<usize> = (0..12).collect();
        let cfg = NeuralConfig::smoke().with_epochs(2);
        let model = SasRec::train(&ds, &users, &cfg).unwrap();
        assert_eq!(model.score_items(&[1, 2]), model.score_items(&[1, 2]));
    }

    #[test]
    fn handles_fold_in_longer_than_window() {
        let ds = chain_dataset(6, 12, 8);
        let users: Vec<usize> = (0..12).collect();
        let cfg = NeuralConfig::smoke().with_epochs(1);
        let model = SasRec::train(&ds, &users, &cfg).unwrap();
        let long: Vec<u32> = (0..50).map(|t| (t % 6 + 1) as u32).collect();
        let scores = model.score_items(&long);
        assert_eq!(scores.len(), model.vocab());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn empty_training_set_is_safe() {
        let ds = chain_dataset(6, 4, 8);
        let cfg = NeuralConfig::smoke().with_epochs(1);
        let model = SasRec::train(&ds, &[], &cfg).unwrap();
        assert!(model.train_losses.is_empty());
        assert!(model.score_items(&[1]).iter().all(|s| s.is_finite()));
    }
}
