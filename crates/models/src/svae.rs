//! SVAE: sequential variational autoencoder for collaborative filtering
//! (Sachdeva et al. 2019) — the paper's closest VAE baseline.
//!
//! Item embedding → GRU → per-position variational heads (μ, log σ²) →
//! reparameterized latent `z` → linear decoder → multinomial likelihood
//! over the next `k` items, optimized by the β-annealed ELBO. This is the
//! RNN-encoder counterpart of VSAN: same latent structure, recurrent
//! instead of self-attentive encoders.

use crate::common::{train_epochs, NeuralConfig};
use crate::traits::Recommender;
use vsan_data::sequence::{next_k_example, pad_left};
use vsan_data::Dataset;
use vsan_eval::Scorer;
use vsan_nn::{BetaSchedule, Embedding, GruCell, Linear, ParamStore};

use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_autograd::{Graph, Result as AgResult};
use vsan_tensor::init;

/// SVAE-specific knobs on top of [`NeuralConfig`].
#[derive(Debug, Clone)]
pub struct SvaeConfig {
    /// Latent dimension of `z` (defaults to the model dim).
    pub latent_dim: usize,
    /// Next-`k` window for the multinomial target (the paper finds k = 4
    /// best for SVAE, Fig. 3).
    pub next_k: usize,
    /// β schedule for the KL term.
    pub beta: BetaSchedule,
}

impl SvaeConfig {
    /// Defaults matched to the paper's SVAE setup at a given model dim.
    pub fn for_dim(dim: usize) -> Self {
        SvaeConfig {
            latent_dim: dim,
            next_k: 4,
            beta: BetaSchedule::paper_default(200),
        }
    }
}

/// Trained SVAE model.
pub struct Svae {
    store: ParamStore,
    item_emb: Embedding,
    gru: GruCell,
    mu_head: Linear,
    logvar_head: Linear,
    decoder: Linear,
    cfg: NeuralConfig,
    scfg: SvaeConfig,
    vocab: usize,
    /// Mean training loss per epoch (reconstruction + β·KL).
    pub train_losses: Vec<f32>,
}

impl Svae {
    /// Train on the training users' sequences.
    pub fn train(
        ds: &Dataset,
        train_users: &[usize],
        cfg: &NeuralConfig,
        scfg: &SvaeConfig,
    ) -> Result<Self, String> {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let item_emb = Embedding::new(&mut store, &mut rng, "item_emb", ds.vocab(), cfg.dim, true);
        let gru = GruCell::new(&mut store, &mut rng, "gru", cfg.dim, cfg.dim);
        let mu_head = Linear::new(&mut store, &mut rng, "mu", cfg.dim, scfg.latent_dim, true);
        let logvar_head = Linear::new(&mut store, &mut rng, "logvar", cfg.dim, scfg.latent_dim, true);
        // Near-deterministic posterior at init (see vsan-core::model for
        // the rationale): σ ≈ e⁻² so the reparameterized signal is not
        // drowned in unit-variance noise before the decoder learns.
        store.get_mut(logvar_head.w).fill(0.0);
        if let Some(b) = logvar_head.b {
            store.get_mut(b).fill(-4.0);
        }
        let decoder = Linear::new(&mut store, &mut rng, "dec", scfg.latent_dim, ds.vocab(), true);

        // Next-k examples; reuse SeqExample layout via next_k targets.
        let n = cfg.max_seq_len;
        let examples_k: Vec<_> = train_users
            .iter()
            .filter_map(|&u| next_k_example(&ds.sequences[u], n, scfg.next_k))
            .collect();
        let mut model = Svae {
            store,
            item_emb,
            gru,
            mu_head,
            logvar_head,
            decoder,
            cfg: cfg.clone(),
            scfg: scfg.clone(),
            vocab: ds.vocab(),
            train_losses: Vec::new(),
        };
        if examples_k.is_empty() {
            return Ok(model);
        }

        // train_epochs wants SeqExample; carry indices into examples_k.
        let proxies: Vec<vsan_data::sequence::SeqExample> = (0..examples_k.len())
            .map(|i| vsan_data::sequence::SeqExample { input: vec![i as u32], targets: vec![] })
            .collect();

        let item_emb = model.item_emb.clone();
        let gru = model.gru.clone();
        let mu_head = model.mu_head.clone();
        let logvar_head = model.logvar_head.clone();
        let decoder = model.decoder.clone();
        let beta_sched = scfg.beta;
        let latent = scfg.latent_dim;
        let losses = train_epochs(
            cfg,
            &mut model.store,
            &proxies,
            |g, store, batch, rng, step| {
                let b = batch.len();
                let mut inputs = Vec::with_capacity(b * n);
                for proxy in batch {
                    let ex = &examples_k[proxy.input[0] as usize];
                    inputs.extend(ex.input.iter().map(|&i| i as usize));
                }
                let table = store.var(g, item_emb.table);
                let emb = g.gather_rows(table, &inputs)?;
                let mut xs = Vec::with_capacity(n);
                for t in 0..n {
                    let idx: Vec<usize> = (0..b).map(|s| s * n + t).collect();
                    xs.push(g.gather_rows(emb, &idx)?);
                }
                let states = gru.unroll(g, store, &xs, b)?;
                let h_all = g.concat_rows(&states)?; // (n·B, d) position-major
                let mu = mu_head.forward(g, store, h_all)?;
                let logvar = logvar_head.forward(g, store, h_all)?;
                // Reparameterize.
                let half = g.scale(logvar, 0.5);
                let sigma = g.exp(half);
                let eps = g.constant(init::randn(rng, &[n * b, latent], 0.0, 1.0));
                let noise = g.mul(sigma, eps)?;
                let z = g.add(mu, noise)?;
                let logits = decoder.forward(g, store, z)?;
                // Position-major multi-hot targets + KL row mask.
                let mut targets: Vec<Vec<usize>> = vec![Vec::new(); n * b];
                let mut mask = vec![false; n * b];
                for (s, proxy) in batch.iter().enumerate() {
                    let ex = &examples_k[proxy.input[0] as usize];
                    for t in 0..n {
                        let tv = &ex.targets[t];
                        if !tv.is_empty() {
                            targets[t * b + s] = tv.clone();
                            mask[t * b + s] = true;
                        }
                    }
                }
                let ce = g.ce_multi_hot(logits, &targets)?;
                let kl = g.kl_std_normal(mu, logvar, &mask)?;
                let beta = beta_sched.beta(step);
                let kl_scaled = g.scale(kl, beta);
                let loss = g.add(ce, kl_scaled)?;
                let stats = vsan_nn::ShardStats {
                    ce: g.value(ce).data()[0],
                    kl: g.value(kl).data()[0],
                    beta,
                };
                Ok((loss, stats))
            },
            |store| {
                item_emb.zero_padding(store);
            },
        )?;
        model.train_losses = losses;
        Ok(model)
    }

    fn forward_logits(&self, fold_in: &[u32]) -> AgResult<Vec<f32>> {
        let window = pad_left(fold_in, self.cfg.max_seq_len.min(fold_in.len().max(1)));
        let mut g = Graph::with_threads(self.cfg.threads);
        let idx: Vec<usize> = window.iter().map(|&i| i as usize).collect();
        let emb = self.item_emb.lookup(&mut g, &self.store, &idx)?;
        let mut xs = Vec::with_capacity(idx.len());
        for t in 0..idx.len() {
            xs.push(g.gather_rows(emb, &[t])?);
        }
        let states = self.gru.unroll(&mut g, &self.store, &xs, 1)?;
        let last = *states.last().expect("non-empty window");
        // Evaluation uses the posterior mean (z = μ), following §IV-E.
        let mu = self.mu_head.forward(&mut g, &self.store, last)?;
        let logits = self.decoder.forward(&mut g, &self.store, mu)?;
        Ok(g.value(logits).data().to_vec())
    }
}

impl Svae {
    /// The SVAE-specific configuration this model was trained with.
    pub fn svae_config(&self) -> &SvaeConfig {
        &self.scfg
    }
}

impl Scorer for Svae {
    fn score_items(&self, fold_in: &[u32]) -> Vec<f32> {
        if fold_in.is_empty() {
            return vec![0.0; self.vocab];
        }
        self.forward_logits(fold_in).unwrap_or_else(|_| vec![0.0; self.vocab])
    }
    fn vocab(&self) -> usize {
        self.vocab
    }
}

impl Recommender for Svae {
    fn name(&self) -> &'static str {
        "SVAE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
        let sequences = (0..users)
            .map(|u| (0..len).map(|t| ((u + t) % num_items + 1) as u32).collect())
            .collect();
        Dataset { name: "chain".into(), num_items, sequences }
    }

    #[test]
    fn training_reduces_loss() {
        // Fixed β: under annealing the growing KL weight can mask the
        // falling reconstruction term across epochs.
        let ds = chain_dataset(6, 20, 10);
        let users: Vec<usize> = (0..20).collect();
        let cfg = NeuralConfig::smoke().with_epochs(6);
        let mut scfg = SvaeConfig::for_dim(cfg.dim);
        scfg.beta = vsan_nn::BetaSchedule::Fixed(0.02);
        let model = Svae::train(&ds, &users, &cfg, &scfg).unwrap();
        assert!(model.train_losses.last().unwrap() < &model.train_losses[0]);
    }

    #[test]
    fn learns_deterministic_chain() {
        let ds = chain_dataset(5, 25, 12);
        let users: Vec<usize> = (0..25).collect();
        let cfg = NeuralConfig::smoke().with_epochs(15);
        let mut scfg = SvaeConfig::for_dim(cfg.dim);
        scfg.next_k = 1;
        let model = Svae::train(&ds, &users, &cfg, &scfg).unwrap();
        let scores = model.score_items(&[2, 3]);
        let best = (1..=5).max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap()).unwrap();
        assert_eq!(best, 4, "scores {:?}", &scores[1..]);
    }

    #[test]
    fn evaluation_uses_posterior_mean_hence_deterministic() {
        let ds = chain_dataset(5, 10, 8);
        let users: Vec<usize> = (0..10).collect();
        let cfg = NeuralConfig::smoke().with_epochs(2);
        let model = Svae::train(&ds, &users, &cfg, &SvaeConfig::for_dim(cfg.dim)).unwrap();
        assert_eq!(model.score_items(&[1, 2]), model.score_items(&[1, 2]));
    }

    #[test]
    fn next_k_window_is_configurable() {
        let ds = chain_dataset(5, 10, 8);
        let users: Vec<usize> = (0..10).collect();
        let cfg = NeuralConfig::smoke().with_epochs(2);
        for k in [1, 2, 4] {
            let mut scfg = SvaeConfig::for_dim(cfg.dim);
            scfg.next_k = k;
            let model = Svae::train(&ds, &users, &cfg, &scfg).unwrap();
            assert!(model.train_losses.iter().all(|l| l.is_finite()));
        }
    }
}
