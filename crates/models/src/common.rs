//! Shared configuration and batch-assembly utilities for the neural
//! baselines (GRU4Rec, Caser, SVAE, SASRec) and for `vsan-core`'s VSAN.

use vsan_data::sequence::{next_item_example, SeqExample};
use vsan_data::Dataset;
use vsan_obs::{EpochRecord, ObserverHandle, TrainRunInfo};

/// Hyper-parameters shared by every neural sequence model in the
/// workspace. Paper defaults (§V-D) are in [`NeuralConfig::paper`]; the
/// scaled-down repro defaults in [`NeuralConfig::repro`].
#[derive(Debug, Clone)]
pub struct NeuralConfig {
    /// Embedding / model width `d`.
    pub dim: usize,
    /// Maximum sequence length `n`.
    pub max_seq_len: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (users per step).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Dropout rate.
    pub dropout: f32,
    /// Global-norm gradient clip (0 disables).
    pub grad_clip: f32,
    /// RNG seed for init, shuffling, dropout, and sampling.
    pub seed: u64,
    /// Worker threads for large matmuls.
    pub threads: usize,
    /// Kernel tier for training graphs: `None` resolves from the
    /// environment (fast unless `VSAN_DISABLE_FAST_PATH=1` pins the
    /// reference tier); `Some(tier)` wins over the environment, which is
    /// what lets a single test process exercise both tiers. Both tiers
    /// train bit-identical parameters (DESIGN.md §10).
    pub kernel_tier: Option<vsan_tensor::KernelTier>,
    /// Buffer policy for the training graphs: `None` resolves from the
    /// environment (arena reuse unless `VSAN_DISABLE_FAST_PATH=1` pins
    /// fresh allocations); `Some(policy)` wins over the environment. Both
    /// policies train bit-identical parameters (DESIGN.md §14).
    pub buffer_policy: Option<vsan_tensor::BufferPolicy>,
    /// Optional training-telemetry receiver. Observers see copies of
    /// values the loop computed anyway, so attaching one never changes
    /// the trained bits (DESIGN.md §8).
    pub observer: ObserverHandle,
}

impl NeuralConfig {
    /// Paper-scale configuration for a dataset name (§V-D): d = 200,
    /// n = 50 (Beauty) / 200 (ML-1M), dropout 0.5 / 0.2, Adam 1e-3,
    /// batch 128.
    pub fn paper(dataset: &str) -> Self {
        let beauty_like = dataset.to_ascii_lowercase().contains("beauty");
        NeuralConfig {
            dim: 200,
            max_seq_len: if beauty_like { 50 } else { 200 },
            epochs: 200,
            batch_size: 128,
            lr: 1e-3,
            dropout: if beauty_like { 0.5 } else { 0.2 },
            grad_clip: 5.0,
            seed: 42,
            threads: vsan_tensor::parallel::default_threads(),
            kernel_tier: None,
            buffer_policy: None,
            observer: ObserverHandle::none(),
        }
    }

    /// CPU-friendly repro scale: same shape, smaller knobs. See DESIGN.md
    /// §2 on the scale substitution.
    pub fn repro(dataset: &str) -> Self {
        let beauty_like = dataset.to_ascii_lowercase().contains("beauty");
        NeuralConfig {
            dim: 48,
            max_seq_len: if beauty_like { 30 } else { 50 },
            epochs: 48,
            batch_size: 64,
            lr: 3e-3,
            dropout: if beauty_like { 0.5 } else { 0.2 },
            grad_clip: 5.0,
            seed: 42,
            threads: vsan_tensor::parallel::default_threads(),
            kernel_tier: None,
            buffer_policy: None,
            observer: ObserverHandle::none(),
        }
    }

    /// Tiny smoke-test configuration for unit tests and CI.
    pub fn smoke() -> Self {
        NeuralConfig {
            dim: 16,
            max_seq_len: 8,
            epochs: 3,
            batch_size: 16,
            lr: 3e-3,
            dropout: 0.1,
            grad_clip: 5.0,
            seed: 7,
            threads: 1,
            kernel_tier: None,
            buffer_policy: None,
            observer: ObserverHandle::none(),
        }
    }

    /// Builder-style seed override (for multi-seed experiment loops).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style dim override (Fig. 4 sweep).
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Builder-style dropout override (Fig. 5 sweep).
    pub fn with_dropout(mut self, dropout: f32) -> Self {
        self.dropout = dropout;
        self
    }

    /// Builder-style epoch override.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style worker-thread override for the data-parallel trainer
    /// (`1` runs the shard schedule inline; any value yields the same bits).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style observer attachment (telemetry only — the trained
    /// parameters are bit-identical with or without one).
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// Builder-style kernel-tier pin. `Some(tier)` overrides the
    /// `VSAN_DISABLE_FAST_PATH` environment default; trained bits are
    /// identical either way.
    pub fn with_kernel_tier(mut self, tier: vsan_tensor::KernelTier) -> Self {
        self.kernel_tier = Some(tier);
        self
    }

    /// The kernel tier training will actually run: the explicit pin when
    /// set, otherwise the environment default
    /// ([`vsan_tensor::kernel::default_train_tier`]).
    pub fn resolved_kernel_tier(&self) -> vsan_tensor::KernelTier {
        self.kernel_tier.unwrap_or_else(vsan_tensor::kernel::default_train_tier)
    }

    /// Builder-style buffer-policy pin. `Some(policy)` overrides the
    /// `VSAN_DISABLE_FAST_PATH` environment default; trained bits are
    /// identical either way (DESIGN.md §14).
    pub fn with_buffer_policy(mut self, policy: vsan_tensor::BufferPolicy) -> Self {
        self.buffer_policy = Some(policy);
        self
    }

    /// The buffer policy training will actually run: the explicit pin
    /// when set, otherwise the environment default
    /// ([`vsan_tensor::default_buffer_policy`]).
    pub fn resolved_buffer_policy(&self) -> vsan_tensor::BufferPolicy {
        self.buffer_policy.unwrap_or_else(vsan_tensor::default_buffer_policy)
    }
}

/// Run the shared Adam training loop over next-item examples.
///
/// `build_loss` constructs the scalar *mean* loss for one shard of a
/// mini-batch on a fresh graph (receiving the epoch-global step for
/// schedules such as KL annealing) together with the shard's
/// [`vsan_nn::ShardStats`] loss decomposition (CE, KL, β — models
/// without a latent path report [`vsan_nn::ShardStats::ce_only`]);
/// `post_step` runs after each optimizer step (used to re-zero embedding
/// padding rows). Returns per-epoch mean losses.
///
/// Batches are executed by the deterministic data-parallel executor
/// ([`vsan_nn::DataParallel`]): each batch is split into fixed-size shards,
/// `build_loss` runs once per shard on its own graph with a private RNG
/// stream derived from `(cfg.seed, step, shard)`, and shard gradients are
/// reduced in a fixed-order pairwise tree. The trained parameters are
/// therefore **bit-identical for every `cfg.threads` value** — `threads = 1`
/// runs the same shard schedule inline. `build_loss` must be `Fn + Sync`
/// (pure in the store and shard; all randomness through the supplied RNG).
///
/// The loop carries a NaN tripwire: if any parameter goes non-finite the
/// loop aborts with an error string instead of silently training garbage.
///
/// When `cfg.observer` is attached the loop additionally emits one
/// [`TrainRunInfo`] header, one [`EpochRecord`] per epoch (mean loss with
/// its CE/KL split, the β of the epoch's last step, mean pre-/post-clip
/// gradient global norms, shard count, and wall-clock), and a final
/// run-end callback. All observed quantities are read-only copies; the
/// update path is identical whether or not an observer is attached.
pub fn train_epochs<F, P>(
    cfg: &NeuralConfig,
    store: &mut vsan_nn::ParamStore,
    examples: &[SeqExample],
    build_loss: F,
    mut post_step: P,
) -> Result<Vec<f32>, String>
where
    F: Fn(
            &mut vsan_autograd::Graph,
            &vsan_nn::ParamStore,
            &[&SeqExample],
            &mut rand::rngs::StdRng,
            u64,
        ) -> vsan_autograd::Result<(vsan_autograd::Var, vsan_nn::ShardStats)>
        + Sync,
    P: FnMut(&mut vsan_nn::ParamStore),
{
    use rand::SeedableRng;
    use vsan_nn::data_parallel::batch_seed;
    use vsan_nn::Optimizer;

    let observer = cfg.observer.clone();
    observer.on_train_start(&TrainRunInfo {
        seed: cfg.seed,
        threads: cfg.threads.max(1),
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        dim: cfg.dim,
        max_seq_len: cfg.max_seq_len,
        dropout: cfg.dropout,
        grad_clip: cfg.grad_clip,
        examples: examples.len(),
    });

    // The driver RNG only shuffles epochs now; per-shard randomness comes
    // from seeds derived per (step, shard), so it is thread-count-invariant.
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut opt = vsan_nn::Adam::new(cfg.lr);
    let executor = vsan_nn::DataParallel::new(cfg.threads)
        .with_kernel_tier(cfg.resolved_kernel_tier())
        .with_buffer_policy(cfg.resolved_buffer_policy());
    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut step: u64 = 0;
    let indices: Vec<usize> = (0..examples.len()).collect();
    for epoch in 0..cfg.epochs {
        let epoch_start = std::time::Instant::now();
        let batches = vsan_data::batch::epoch_batches(&indices, cfg.batch_size, &mut rng);
        let mut epoch_loss = 0.0f64;
        let mut epoch_ce = 0.0f64;
        let mut epoch_kl = 0.0f64;
        let mut last_beta = 0.0f32;
        let mut norm_pre = 0.0f64;
        let mut norm_post = 0.0f64;
        let mut epoch_shards = 0usize;
        let mut batch_count = 0usize;
        for batch in batches {
            let refs: Vec<&SeqExample> = batch.iter().map(|&i| &examples[i]).collect();
            let (loss_val, stats, mut grads) = {
                let shared: &vsan_nn::ParamStore = store;
                executor
                    .run_observed(&refs, batch_seed(cfg.seed, step), |g, shard, shard_rng| {
                        build_loss(g, shared, shard, shard_rng, step)
                    })
                    .map_err(|e| format!("epoch {epoch} step {step}: {e}"))?
            };
            if !loss_val.is_finite() {
                return Err(format!("epoch {epoch} step {step}: non-finite loss {loss_val}"));
            }
            epoch_loss += loss_val as f64;
            epoch_ce += stats.ce as f64;
            epoch_kl += stats.kl as f64;
            last_beta = stats.beta;
            epoch_shards += refs.len().div_ceil(vsan_nn::data_parallel::DEFAULT_SHARD_SIZE);
            batch_count += 1;
            if observer.is_attached() {
                // Telemetry-only extra pass; the norm is not fed back.
                norm_pre += f64::from(grads.global_norm());
            }
            if cfg.grad_clip > 0.0 {
                grads.clip_global_norm(cfg.grad_clip);
            }
            if observer.is_attached() {
                norm_post += f64::from(grads.global_norm());
            }
            opt.step(store, &grads);
            post_step(store);
            // Hand the reduced gradient buffers back to the executor's
            // shared pool; under arena reuse the next step's backward
            // pass re-takes them instead of allocating (no-op for the
            // fresh-allocation policy).
            executor.recycle(grads);
            step += 1;
        }
        if !store.all_finite() {
            return Err(format!("epoch {epoch}: parameters went non-finite"));
        }
        let denom = batch_count.max(1) as f64;
        let mean_loss = if batch_count > 0 { (epoch_loss / denom) as f32 } else { 0.0 };
        losses.push(mean_loss);
        if observer.is_attached() {
            let mem = executor.memory_stats();
            observer.on_epoch(&EpochRecord {
                epoch,
                loss: mean_loss,
                ce: (epoch_ce / denom) as f32,
                kl: (epoch_kl / denom) as f32,
                beta: last_beta,
                grad_norm_pre: (norm_pre / denom) as f32,
                grad_norm_post: (norm_post / denom) as f32,
                shards: epoch_shards,
                steps: step,
                wall_ms: epoch_start.elapsed().as_secs_f64() * 1e3,
                peak_tape_nodes: mem.peak_tape_nodes,
                arena_fresh_allocs: mem.arena.fresh_allocs,
                arena_held_bytes: mem.arena.held_bytes,
                pool_held_bytes: mem.pool_held_bytes,
            });
        }
    }
    observer.on_train_end(cfg.epochs);
    Ok(losses)
}

/// Build next-item training examples for a set of users (users too short
/// to produce an example are skipped).
pub fn examples_for_users(ds: &Dataset, users: &[usize], n: usize) -> Vec<SeqExample> {
    users
        .iter()
        .filter_map(|&u| next_item_example(&ds.sequences[u], n))
        .collect()
}

/// Flatten a batch of examples into `(input ids, targets)` suitable for an
/// embedding gather over a `(batch·n)` index list and a fused CE loss.
pub fn flatten_batch(examples: &[&SeqExample]) -> (Vec<usize>, Vec<usize>) {
    let n = examples.first().map_or(0, |e| e.input.len());
    let mut inputs = Vec::with_capacity(examples.len() * n);
    let mut targets = Vec::with_capacity(examples.len() * n);
    for ex in examples {
        debug_assert_eq!(ex.input.len(), n, "ragged batch");
        inputs.extend(ex.input.iter().map(|&i| i as usize));
        targets.extend_from_slice(&ex.targets);
    }
    (inputs, targets)
}

/// Position indices `0..n` repeated per example — the lookup list for the
/// learned positional embedding.
pub fn position_indices(batch: usize, n: usize) -> Vec<usize> {
    (0..batch).flat_map(|_| 0..n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        Dataset {
            name: "t".into(),
            num_items: 9,
            sequences: vec![vec![1, 2, 3, 4], vec![5], vec![6, 7, 8]],
        }
    }

    #[test]
    fn paper_config_tracks_dataset() {
        let b = NeuralConfig::paper("Beauty-sim");
        assert_eq!((b.dim, b.max_seq_len, b.dropout), (200, 50, 0.5));
        let m = NeuralConfig::paper("ML-1M-sim");
        assert_eq!((m.max_seq_len, m.dropout), (200, 0.2));
        assert_eq!(m.lr, 1e-3);
        assert_eq!(m.batch_size, 128);
    }

    #[test]
    fn builders_override_fields() {
        let c = NeuralConfig::smoke().with_seed(9).with_dim(32).with_dropout(0.7).with_epochs(1);
        assert_eq!(c.seed, 9);
        assert_eq!(c.dim, 32);
        assert_eq!(c.dropout, 0.7);
        assert_eq!(c.epochs, 1);
    }

    #[test]
    fn kernel_tier_pin_wins_over_the_environment() {
        use vsan_tensor::KernelTier;
        let c = NeuralConfig::smoke();
        // Unpinned: resolves to the process-wide environment default.
        assert_eq!(c.resolved_kernel_tier(), vsan_tensor::kernel::default_train_tier());
        // Pinned: the explicit tier wins regardless of the environment.
        for tier in [KernelTier::Reference, KernelTier::Fast] {
            assert_eq!(NeuralConfig::smoke().with_kernel_tier(tier).resolved_kernel_tier(), tier);
        }
    }

    #[test]
    fn buffer_policy_pin_wins_over_the_environment() {
        use vsan_tensor::BufferPolicy;
        let c = NeuralConfig::smoke();
        // Unpinned: resolves to the process-wide environment default.
        assert_eq!(c.resolved_buffer_policy(), vsan_tensor::default_buffer_policy());
        // Pinned: the explicit policy wins regardless of the environment.
        for policy in [BufferPolicy::Fresh, BufferPolicy::Arena] {
            assert_eq!(
                NeuralConfig::smoke().with_buffer_policy(policy).resolved_buffer_policy(),
                policy
            );
        }
    }

    #[test]
    fn examples_skip_short_users() {
        let ds = tiny_dataset();
        let ex = examples_for_users(&ds, &[0, 1, 2], 4);
        assert_eq!(ex.len(), 2); // user 1 has a single interaction
    }

    #[test]
    fn flatten_concatenates_in_order() {
        let ds = tiny_dataset();
        let ex = examples_for_users(&ds, &[0, 2], 3);
        let refs: Vec<&_> = ex.iter().collect();
        let (inputs, targets) = flatten_batch(&refs);
        assert_eq!(inputs.len(), 6);
        assert_eq!(targets.len(), 6);
        // User 0 history 1,2,3,4 → inputs (1,2,3), targets (2,3,4).
        assert_eq!(&inputs[..3], &[1, 2, 3]);
        assert_eq!(&targets[..3], &[2, 3, 4]);
        // User 2 history 6,7,8 → inputs (0,6,7), targets (MAX,7,8).
        assert_eq!(&inputs[3..], &[0, 6, 7]);
        assert_eq!(targets[3], usize::MAX);
        assert_eq!(&targets[4..], &[7, 8]);
    }

    #[test]
    fn positions_repeat_per_sample() {
        assert_eq!(position_indices(2, 3), vec![0, 1, 2, 0, 1, 2]);
        assert!(position_indices(0, 5).is_empty());
    }
}
