//! BPR: Bayesian personalized ranking matrix factorization
//! (Rendle et al. 2009), trained with the classical per-triple SGD rules.

use crate::traits::Recommender;
use rand::Rng;
use vsan_data::Dataset;
use vsan_eval::Scorer;
use vsan_tensor::{init, Tensor};

/// BPR hyper-parameters.
#[derive(Debug, Clone)]
pub struct BprConfig {
    /// Latent dimension.
    pub dim: usize,
    /// SGD epochs (one epoch ≈ one pass over all training interactions).
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularization strength.
    pub reg: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BprConfig {
    fn default() -> Self {
        BprConfig { dim: 48, epochs: 30, lr: 0.05, reg: 0.01, seed: 42 }
    }
}

/// Trained BPR model. Held-out users (never seen in training under strong
/// generalization) are folded in by averaging the item factors of their
/// fold-in history — the SVAE-protocol adaptation noted in §V-B.
#[derive(Debug, Clone)]
pub struct Bpr {
    /// Item factor matrix `(vocab, dim)`.
    item_factors: Tensor,
    /// Item biases `(vocab,)`.
    item_bias: Vec<f32>,
    dim: usize,
}

impl Bpr {
    /// Train with the classic SGD triple updates.
    pub fn train<R: Rng + ?Sized>(
        ds: &Dataset,
        train_users: &[usize],
        cfg: &BprConfig,
        rng: &mut R,
    ) -> Self {
        let vocab = ds.vocab();
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        let mut p = init::randn(rng, &[train_users.len(), cfg.dim], 0.0, scale);
        let mut q = init::randn(rng, &[vocab, cfg.dim], 0.0, scale);
        let mut bias = vec![0.0f32; vocab];

        // Pre-compute per-user item sets for negative sampling.
        let user_sets: Vec<std::collections::HashSet<u32>> = train_users
            .iter()
            .map(|&u| ds.sequences[u].iter().copied().collect())
            .collect();
        let total: usize = train_users.iter().map(|&u| ds.sequences[u].len()).sum();
        if total == 0 || train_users.is_empty() {
            return Bpr { item_factors: q, item_bias: bias, dim: cfg.dim };
        }

        for _ in 0..cfg.epochs {
            for _ in 0..total {
                let uslot = rng.gen_range(0..train_users.len());
                let seq = &ds.sequences[train_users[uslot]];
                if seq.is_empty() {
                    continue;
                }
                let i = seq[rng.gen_range(0..seq.len())] as usize;
                // Rejection-sample a negative.
                let mut j = rng.gen_range(1..vocab);
                let mut guard = 0;
                while user_sets[uslot].contains(&(j as u32)) && guard < 32 {
                    j = rng.gen_range(1..vocab);
                    guard += 1;
                }
                let d = cfg.dim;
                let x_ui: f32 = (0..d).map(|k| p.get2(uslot, k) * q.get2(i, k)).sum::<f32>()
                    + bias[i];
                let x_uj: f32 = (0..d).map(|k| p.get2(uslot, k) * q.get2(j, k)).sum::<f32>()
                    + bias[j];
                let sig = vsan_tensor::ops::elementwise::stable_sigmoid(-(x_ui - x_uj));
                for k in 0..d {
                    let pu = p.get2(uslot, k);
                    let qi = q.get2(i, k);
                    let qj = q.get2(j, k);
                    p.set2(uslot, k, pu + cfg.lr * (sig * (qi - qj) - cfg.reg * pu));
                    q.set2(i, k, qi + cfg.lr * (sig * pu - cfg.reg * qi));
                    q.set2(j, k, qj + cfg.lr * (-sig * pu - cfg.reg * qj));
                }
                bias[i] += cfg.lr * (sig - cfg.reg * bias[i]);
                bias[j] += cfg.lr * (-sig - cfg.reg * bias[j]);
            }
        }
        Bpr { item_factors: q, item_bias: bias, dim: cfg.dim }
    }

    /// Fold a held-out user in: mean of fold-in item factors.
    fn fold_in_vector(&self, fold_in: &[u32]) -> Vec<f32> {
        let mut u = vec![0.0f32; self.dim];
        if fold_in.is_empty() {
            return u;
        }
        for &item in fold_in {
            for (acc, &v) in u.iter_mut().zip(self.item_factors.row(item as usize)) {
                *acc += v;
            }
        }
        let inv = 1.0 / fold_in.len() as f32;
        u.iter_mut().for_each(|x| *x *= inv);
        u
    }
}

impl Scorer for Bpr {
    fn score_items(&self, fold_in: &[u32]) -> Vec<f32> {
        let u = self.fold_in_vector(fold_in);
        let vocab = self.item_bias.len();
        let mut scores = vec![0.0f32; vocab];
        for (item, score) in scores.iter_mut().enumerate().skip(1) {
            let row = self.item_factors.row(item);
            *score = u.iter().zip(row).map(|(&a, &b)| a * b).sum::<f32>() + self.item_bias[item];
        }
        scores
    }
    fn vocab(&self) -> usize {
        self.item_bias.len()
    }
}

impl Recommender for Bpr {
    fn name(&self) -> &'static str {
        "BPR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two disjoint user communities: BPR must learn to keep each
    /// community's items close.
    fn community_dataset() -> Dataset {
        let mut sequences = Vec::new();
        for u in 0..30 {
            let seq: Vec<u32> = if u % 2 == 0 {
                (1..=5).map(|i| ((u + i) % 5 + 1) as u32).collect() // items 1–5
            } else {
                (1..=5).map(|i| ((u + i) % 5 + 6) as u32).collect() // items 6–10
            };
            sequences.push(seq);
        }
        Dataset { name: "c".into(), num_items: 10, sequences }
    }

    #[test]
    fn learns_community_structure() {
        let ds = community_dataset();
        let users: Vec<usize> = (0..30).collect();
        let cfg = BprConfig { dim: 16, epochs: 40, lr: 0.08, reg: 0.005, seed: 1 };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = Bpr::train(&ds, &users, &cfg, &mut rng);
        // A fold-in from community A must rank community-A items above B.
        let scores = model.score_items(&[1, 2, 3]);
        let mean_a: f32 = (1..=5).map(|i| scores[i]).sum::<f32>() / 5.0;
        let mean_b: f32 = (6..=10).map(|i| scores[i]).sum::<f32>() / 5.0;
        assert!(mean_a > mean_b, "community A {mean_a} should beat B {mean_b}");
    }

    #[test]
    fn empty_fold_in_scores_by_bias() {
        let ds = community_dataset();
        let users: Vec<usize> = (0..30).collect();
        let cfg = BprConfig { dim: 8, epochs: 2, lr: 0.05, reg: 0.01, seed: 2 };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = Bpr::train(&ds, &users, &cfg, &mut rng);
        let scores = model.score_items(&[]);
        for (item, &s) in scores.iter().enumerate().skip(1) {
            assert!((s - model.item_bias[item]).abs() < 1e-6);
        }
    }

    #[test]
    fn handles_empty_training_set() {
        let ds = community_dataset();
        let cfg = BprConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let model = Bpr::train(&ds, &[], &cfg, &mut rng);
        assert_eq!(model.vocab(), 11);
        assert!(model.score_items(&[1]).iter().all(|s| s.is_finite()));
    }

    #[test]
    fn parameters_stay_finite() {
        let ds = community_dataset();
        let users: Vec<usize> = (0..30).collect();
        let cfg = BprConfig { dim: 8, epochs: 10, lr: 0.3, reg: 0.0, seed: 4 };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = Bpr::train(&ds, &users, &cfg, &mut rng);
        assert!(model.item_factors.all_finite());
        assert!(model.item_bias.iter().all(|b| b.is_finite()));
    }
}
