//! FPMC: factorized personalized Markov chains (Rendle et al. 2010).
//!
//! The prediction for user `u` moving from basket/item `l` to item `i`
//! factorizes as `⟨V_u^{U,I}, V_i^{I,U}⟩ + ⟨V_l^{L,I}, V_i^{I,L}⟩` — a
//! matrix-factorization term plus a first-order item-transition term —
//! trained with the S-BPR pairwise objective over (u, prev, pos, neg)
//! quadruples.

use crate::traits::Recommender;
use rand::Rng;
use vsan_data::Dataset;
use vsan_eval::Scorer;
use vsan_tensor::{init, Tensor};

/// FPMC hyper-parameters.
#[derive(Debug, Clone)]
pub struct FpmcConfig {
    /// Latent dimension shared by both factorizations.
    pub dim: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularization.
    pub reg: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FpmcConfig {
    fn default() -> Self {
        FpmcConfig { dim: 48, epochs: 30, lr: 0.05, reg: 0.01, seed: 42 }
    }
}

/// Trained FPMC. Under strong generalization the `V^{U,I}` user factor of
/// a held-out user is folded in as the mean of `V^{I,U}` over their
/// fold-in items; the Markov term uses their last fold-in item directly.
#[derive(Debug, Clone)]
pub struct Fpmc {
    /// `V^{I,U}` item-to-user factors `(vocab, dim)`.
    viu: Tensor,
    /// `V^{L,I}` previous-item factors `(vocab, dim)`.
    vli: Tensor,
    /// `V^{I,L}` next-item factors `(vocab, dim)`.
    vil: Tensor,
    dim: usize,
}

impl Fpmc {
    /// Train with S-BPR SGD over sampled transitions.
    pub fn train<R: Rng + ?Sized>(
        ds: &Dataset,
        train_users: &[usize],
        cfg: &FpmcConfig,
        rng: &mut R,
    ) -> Self {
        let vocab = ds.vocab();
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        let mut vui = init::randn(rng, &[train_users.len().max(1), cfg.dim], 0.0, scale);
        let mut viu = init::randn(rng, &[vocab, cfg.dim], 0.0, scale);
        let mut vli = init::randn(rng, &[vocab, cfg.dim], 0.0, scale);
        let mut vil = init::randn(rng, &[vocab, cfg.dim], 0.0, scale);

        // All (user-slot, prev, next) transitions from training sequences.
        let mut transitions: Vec<(usize, usize, usize)> = Vec::new();
        for (slot, &u) in train_users.iter().enumerate() {
            let seq = &ds.sequences[u];
            for w in seq.windows(2) {
                transitions.push((slot, w[0] as usize, w[1] as usize));
            }
        }
        if transitions.is_empty() {
            return Fpmc { viu, vli, vil, dim: cfg.dim };
        }

        let d = cfg.dim;
        for _ in 0..cfg.epochs {
            for _ in 0..transitions.len() {
                let &(uslot, prev, pos) = &transitions[rng.gen_range(0..transitions.len())];
                let mut neg = rng.gen_range(1..vocab);
                if neg == pos {
                    neg = 1 + (neg % (vocab - 1));
                }
                let score = |item: usize, vui: &Tensor, viu: &Tensor, vli: &Tensor, vil: &Tensor| -> f32 {
                    let mf: f32 = (0..d).map(|k| vui.get2(uslot, k) * viu.get2(item, k)).sum();
                    let mc: f32 = (0..d).map(|k| vli.get2(prev, k) * vil.get2(item, k)).sum();
                    mf + mc
                };
                let x = score(pos, &vui, &viu, &vli, &vil) - score(neg, &vui, &viu, &vli, &vil);
                let sig = vsan_tensor::ops::elementwise::stable_sigmoid(-x);
                for k in 0..d {
                    let u_k = vui.get2(uslot, k);
                    let ip = viu.get2(pos, k);
                    let in_ = viu.get2(neg, k);
                    let lp = vli.get2(prev, k);
                    let tp = vil.get2(pos, k);
                    let tn = vil.get2(neg, k);
                    vui.set2(uslot, k, u_k + cfg.lr * (sig * (ip - in_) - cfg.reg * u_k));
                    viu.set2(pos, k, ip + cfg.lr * (sig * u_k - cfg.reg * ip));
                    viu.set2(neg, k, in_ + cfg.lr * (-sig * u_k - cfg.reg * in_));
                    vli.set2(prev, k, lp + cfg.lr * (sig * (tp - tn) - cfg.reg * lp));
                    vil.set2(pos, k, tp + cfg.lr * (sig * lp - cfg.reg * tp));
                    vil.set2(neg, k, tn + cfg.lr * (-sig * lp - cfg.reg * tn));
                }
            }
        }
        Fpmc { viu, vli, vil, dim: cfg.dim }
    }
}

impl Scorer for Fpmc {
    fn score_items(&self, fold_in: &[u32]) -> Vec<f32> {
        let vocab = self.viu.dims()[0];
        let d = self.dim;
        // Fold-in user factor: mean of V^{I,U} over history.
        let mut u = vec![0.0f32; d];
        if !fold_in.is_empty() {
            for &item in fold_in {
                for (acc, &v) in u.iter_mut().zip(self.viu.row(item as usize)) {
                    *acc += v;
                }
            }
            let inv = 1.0 / fold_in.len() as f32;
            u.iter_mut().for_each(|x| *x *= inv);
        }
        let prev = fold_in.last().map(|&i| i as usize);
        let mut scores = vec![0.0f32; vocab];
        for (item, s) in scores.iter_mut().enumerate().skip(1) {
            let mf: f32 = u.iter().zip(self.viu.row(item)).map(|(&a, &b)| a * b).sum();
            let mc: f32 = match prev {
                Some(p) => self
                    .vli
                    .row(p)
                    .iter()
                    .zip(self.vil.row(item))
                    .map(|(&a, &b)| a * b)
                    .sum(),
                None => 0.0,
            };
            *s = mf + mc;
        }
        scores
    }
    fn vocab(&self) -> usize {
        self.viu.dims()[0]
    }
}

impl Recommender for Fpmc {
    fn name(&self) -> &'static str {
        "FPMC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic chain 1→2→3→4→5→1 shared by all users: the Markov
    /// term should dominate and predict the successor.
    fn chain_dataset() -> Dataset {
        let mut sequences = Vec::new();
        for u in 0..40 {
            let start = u % 5;
            let seq: Vec<u32> = (0..10).map(|t| ((start + t) % 5 + 1) as u32).collect();
            sequences.push(seq);
        }
        Dataset { name: "chain".into(), num_items: 5, sequences }
    }

    #[test]
    fn learns_first_order_transitions() {
        let ds = chain_dataset();
        let users: Vec<usize> = (0..40).collect();
        let cfg = FpmcConfig { dim: 16, epochs: 30, lr: 0.1, reg: 0.005, seed: 1 };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = Fpmc::train(&ds, &users, &cfg, &mut rng);
        // After item 2 the chain continues with item 3.
        let scores = model.score_items(&[1, 2]);
        let best = (1..=5).max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap()).unwrap();
        assert_eq!(best, 3, "scores {:?}", &scores[1..]);
    }

    #[test]
    fn last_item_changes_the_ranking() {
        let ds = chain_dataset();
        let users: Vec<usize> = (0..40).collect();
        let cfg = FpmcConfig { dim: 16, epochs: 30, lr: 0.1, reg: 0.005, seed: 2 };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = Fpmc::train(&ds, &users, &cfg, &mut rng);
        let after_2 = model.score_items(&[1, 2]);
        let after_4 = model.score_items(&[3, 4]);
        let best2 = (1..=5).max_by(|&a, &b| after_2[a].partial_cmp(&after_2[b]).unwrap()).unwrap();
        let best4 = (1..=5).max_by(|&a, &b| after_4[a].partial_cmp(&after_4[b]).unwrap()).unwrap();
        assert_ne!(best2, best4, "FPMC must be sequence-sensitive");
    }

    #[test]
    fn empty_training_is_safe() {
        let ds = chain_dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let model = Fpmc::train(&ds, &[], &FpmcConfig::default(), &mut rng);
        assert!(model.score_items(&[2]).iter().all(|s| s.is_finite()));
    }

    #[test]
    fn empty_fold_in_is_safe() {
        let ds = chain_dataset();
        let users: Vec<usize> = (0..40).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = FpmcConfig { dim: 8, epochs: 2, lr: 0.05, reg: 0.01, seed: 4 };
        let model = Fpmc::train(&ds, &users, &cfg, &mut rng);
        let scores = model.score_items(&[]);
        assert_eq!(scores.len(), 6);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
