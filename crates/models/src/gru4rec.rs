//! GRU4Rec: session-based recommendation with a gated recurrent unit
//! (Hidasi et al. 2016).
//!
//! Item embedding → unrolled GRU → per-position softmax over the
//! catalogue. The original trains with session-parallel mini-batches and a
//! pairwise loss; with whole user histories available we train next-item
//! full-softmax cross-entropy (the stronger "GRU4Rec+ CE" variant),
//! keeping the objective aligned across all neural baselines.

use crate::common::{examples_for_users, flatten_batch, train_epochs, NeuralConfig};
use crate::traits::Recommender;
use vsan_data::sequence::pad_left;
use vsan_data::Dataset;
use vsan_eval::Scorer;
use vsan_nn::{Embedding, GruCell, Linear, ParamStore};

use rand::rngs::StdRng;
use rand::SeedableRng;
use vsan_autograd::{Graph, Result as AgResult};

/// Trained GRU4Rec model.
pub struct Gru4Rec {
    store: ParamStore,
    item_emb: Embedding,
    gru: GruCell,
    out: Linear,
    cfg: NeuralConfig,
    vocab: usize,
    /// Mean training loss per epoch.
    pub train_losses: Vec<f32>,
}

impl Gru4Rec {
    /// Train on the training users' sequences.
    pub fn train(ds: &Dataset, train_users: &[usize], cfg: &NeuralConfig) -> Result<Self, String> {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let item_emb = Embedding::new(&mut store, &mut rng, "item_emb", ds.vocab(), cfg.dim, true);
        let gru = GruCell::new(&mut store, &mut rng, "gru", cfg.dim, cfg.dim);
        let out = Linear::new(&mut store, &mut rng, "out", cfg.dim, ds.vocab(), true);

        let examples = examples_for_users(ds, train_users, cfg.max_seq_len);
        let mut model = Gru4Rec {
            store,
            item_emb,
            gru,
            out,
            cfg: cfg.clone(),
            vocab: ds.vocab(),
            train_losses: Vec::new(),
        };
        if examples.is_empty() {
            return Ok(model);
        }

        let n = cfg.max_seq_len;
        let item_emb = model.item_emb.clone();
        let gru = model.gru.clone();
        let out = model.out.clone();
        let losses = train_epochs(
            cfg,
            &mut model.store,
            &examples,
            |g, store, batch, _rng, _step| {
                let (inputs, targets) = flatten_batch(batch);
                let b = batch.len();
                let table = store.var(g, item_emb.table);
                let emb = g.gather_rows(table, &inputs)?; // (B·n, d) batch-major
                // Per-timestep input slices: position t of every sample.
                let mut xs = Vec::with_capacity(n);
                for t in 0..n {
                    let idx: Vec<usize> = (0..b).map(|s| s * n + t).collect();
                    xs.push(g.gather_rows(emb, &idx)?);
                }
                let states = gru.unroll(g, store, &xs, b)?;
                // Position-major stack with matching target reordering.
                let h_all = g.concat_rows(&states)?; // (n·B, d), row t·B + s
                let mut reordered = vec![usize::MAX; n * b];
                for (s, _) in batch.iter().enumerate() {
                    for t in 0..n {
                        reordered[t * b + s] = targets[s * n + t];
                    }
                }
                let logits = out.forward(g, store, h_all)?;
                let loss = g.ce_one_hot(logits, &reordered)?;
                let ce = g.value(loss).data()[0];
                Ok((loss, vsan_nn::ShardStats::ce_only(ce)))
            },
            |store| {
                item_emb.zero_padding(store);
            },
        )?;
        model.train_losses = losses;
        Ok(model)
    }

    fn forward_logits(&self, fold_in: &[u32]) -> AgResult<Vec<f32>> {
        // Feed the most recent `max_seq_len` real items (no padding needed —
        // the GRU consumes variable length naturally).
        let window = pad_left(fold_in, self.cfg.max_seq_len.min(fold_in.len().max(1)));
        let mut g = Graph::with_threads(self.cfg.threads);
        let idx: Vec<usize> = window.iter().map(|&i| i as usize).collect();
        let emb = self.item_emb.lookup(&mut g, &self.store, &idx)?;
        let mut xs = Vec::with_capacity(idx.len());
        for t in 0..idx.len() {
            xs.push(g.gather_rows(emb, &[t])?);
        }
        let states = self.gru.unroll(&mut g, &self.store, &xs, 1)?;
        let last = *states.last().expect("non-empty window");
        let logits = self.out.forward(&mut g, &self.store, last)?;
        Ok(g.value(logits).data().to_vec())
    }
}

impl Scorer for Gru4Rec {
    fn score_items(&self, fold_in: &[u32]) -> Vec<f32> {
        if fold_in.is_empty() {
            return vec![0.0; self.vocab];
        }
        self.forward_logits(fold_in).unwrap_or_else(|_| vec![0.0; self.vocab])
    }
    fn vocab(&self) -> usize {
        self.vocab
    }
}

impl Recommender for Gru4Rec {
    fn name(&self) -> &'static str {
        "GRU4Rec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_dataset(num_items: usize, users: usize, len: usize) -> Dataset {
        let sequences = (0..users)
            .map(|u| (0..len).map(|t| ((u + t) % num_items + 1) as u32).collect())
            .collect();
        Dataset { name: "chain".into(), num_items, sequences }
    }

    #[test]
    fn training_reduces_loss() {
        let ds = chain_dataset(8, 20, 10);
        let users: Vec<usize> = (0..20).collect();
        let cfg = NeuralConfig::smoke().with_epochs(6);
        let model = Gru4Rec::train(&ds, &users, &cfg).unwrap();
        assert!(model.train_losses.last().unwrap() < &model.train_losses[0]);
    }

    #[test]
    fn learns_deterministic_chain() {
        let ds = chain_dataset(5, 25, 12);
        let users: Vec<usize> = (0..25).collect();
        let cfg = NeuralConfig::smoke().with_epochs(15);
        let model = Gru4Rec::train(&ds, &users, &cfg).unwrap();
        let scores = model.score_items(&[1, 2]);
        let best = (1..=5).max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap()).unwrap();
        assert_eq!(best, 3, "scores {:?}", &scores[1..]);
    }

    #[test]
    fn empty_fold_in_returns_flat_scores() {
        let ds = chain_dataset(5, 10, 8);
        let users: Vec<usize> = (0..10).collect();
        let cfg = NeuralConfig::smoke().with_epochs(1);
        let model = Gru4Rec::train(&ds, &users, &cfg).unwrap();
        let scores = model.score_items(&[]);
        assert!(scores.iter().all(|&s| s == 0.0));
        assert_eq!(scores.len(), 6);
    }

    #[test]
    fn long_fold_in_is_truncated_not_fatal() {
        let ds = chain_dataset(5, 10, 8);
        let users: Vec<usize> = (0..10).collect();
        let cfg = NeuralConfig::smoke().with_epochs(1);
        let model = Gru4Rec::train(&ds, &users, &cfg).unwrap();
        let long: Vec<u32> = (0..100).map(|t| (t % 5 + 1) as u32).collect();
        assert!(model.score_items(&long).iter().all(|s| s.is_finite()));
    }
}
