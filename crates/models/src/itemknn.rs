//! Item-kNN: cosine-similarity nearest-neighbour recommendation
//! (Sarwar et al. 2001). Not in the paper's baseline set — included as a
//! workspace extension because it is the classic strong-and-simple
//! comparator for sparse e-commerce data, and it needs no training loop.
//!
//! Similarities come from item co-occurrence within training users'
//! histories; each item keeps only its top-`k` neighbours (sparse lists),
//! so memory stays `O(items · k)` even at paper scale. Scoring optionally
//! weights the fold-in by recency (the last item counts most — the same
//! intuition the paper cites for residual connections, §IV-B-2).

use crate::traits::Recommender;
use std::collections::HashMap;
use vsan_data::Dataset;
use vsan_eval::Scorer;

/// Item-kNN hyper-parameters.
#[derive(Debug, Clone)]
pub struct ItemKnnConfig {
    /// Neighbours retained per item.
    pub neighbors: usize,
    /// Exponential recency decay per step back in the fold-in
    /// (1.0 = no decay; 0.8 halves influence every ~3 items).
    pub recency_decay: f32,
}

impl Default for ItemKnnConfig {
    fn default() -> Self {
        ItemKnnConfig { neighbors: 50, recency_decay: 0.9 }
    }
}

/// Trained (well — counted) Item-kNN model.
#[derive(Debug, Clone)]
pub struct ItemKnn {
    /// `neighbors[i]` = `(item, cosine)` pairs, highest-similarity first.
    neighbors: Vec<Vec<(u32, f32)>>,
    vocab: usize,
    recency_decay: f32,
}

impl ItemKnn {
    /// Build co-occurrence cosine similarities from the training users.
    pub fn train(ds: &Dataset, train_users: &[usize], cfg: &ItemKnnConfig) -> Self {
        let vocab = ds.vocab();
        // Item frequencies and pairwise co-occurrence counts.
        let mut freq = vec![0.0f32; vocab];
        let mut cooc: HashMap<(u32, u32), f32> = HashMap::new();
        for &u in train_users {
            let seq = &ds.sequences[u];
            // Deduplicate within a user so heavy repeaters don't dominate.
            let mut items: Vec<u32> = seq.clone();
            items.sort_unstable();
            items.dedup();
            for &i in &items {
                freq[i as usize] += 1.0;
            }
            for (a_idx, &a) in items.iter().enumerate() {
                for &b in &items[a_idx + 1..] {
                    *cooc.entry((a, b)).or_default() += 1.0;
                }
            }
        }
        // Cosine: c(a,b) / sqrt(f(a) f(b)); keep top-k per item.
        let mut sims: Vec<Vec<(u32, f32)>> = vec![Vec::new(); vocab];
        for (&(a, b), &c) in &cooc {
            let denom = (freq[a as usize] * freq[b as usize]).sqrt();
            if denom > 0.0 {
                let s = c / denom;
                sims[a as usize].push((b, s));
                sims[b as usize].push((a, s));
            }
        }
        for list in &mut sims {
            list.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
            list.truncate(cfg.neighbors);
        }
        ItemKnn { neighbors: sims, vocab, recency_decay: cfg.recency_decay }
    }

    /// Top neighbours of an item (for inspection).
    pub fn neighbors_of(&self, item: u32) -> &[(u32, f32)] {
        &self.neighbors[item as usize]
    }
}

impl Scorer for ItemKnn {
    fn score_items(&self, fold_in: &[u32]) -> Vec<f32> {
        let mut scores = vec![0.0f32; self.vocab];
        let mut weight = 1.0f32;
        for &item in fold_in.iter().rev() {
            if (item as usize) < self.vocab {
                for &(nbr, sim) in &self.neighbors[item as usize] {
                    scores[nbr as usize] += weight * sim;
                }
            }
            weight *= self.recency_decay;
        }
        scores
    }
    fn vocab(&self) -> usize {
        self.vocab
    }
}

impl Recommender for ItemKnn {
    fn name(&self) -> &'static str {
        "ItemKNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two co-purchase communities.
    fn community_dataset() -> Dataset {
        let mut sequences = Vec::new();
        for u in 0..40 {
            let seq: Vec<u32> = if u % 2 == 0 {
                vec![1, 2, 3, 4, 5]
            } else {
                vec![6, 7, 8, 9, 10]
            };
            sequences.push(seq);
        }
        Dataset { name: "c".into(), num_items: 10, sequences }
    }

    #[test]
    fn neighbors_stay_within_community() {
        let ds = community_dataset();
        let users: Vec<usize> = (0..40).collect();
        let model = ItemKnn::train(&ds, &users, &ItemKnnConfig::default());
        for &(nbr, sim) in model.neighbors_of(1) {
            assert!((2..=5).contains(&nbr), "item 1's neighbour {nbr} crosses communities");
            assert!(sim > 0.9, "perfect co-occurrence should give cosine ≈ 1, got {sim}");
        }
        assert!(model.neighbors_of(6).iter().all(|&(n, _)| (7..=10).contains(&n)));
    }

    #[test]
    fn scores_follow_the_fold_in_community() {
        let ds = community_dataset();
        let users: Vec<usize> = (0..40).collect();
        let model = ItemKnn::train(&ds, &users, &ItemKnnConfig::default());
        let scores = model.score_items(&[1, 2]);
        let a: f32 = (3..=5).map(|i| scores[i]).sum();
        let b: f32 = (6..=10).map(|i| scores[i]).sum();
        assert!(a > b, "community A {a} must outscore B {b}");
        assert_eq!(b, 0.0, "no cross-community similarity exists");
    }

    #[test]
    fn neighbor_cap_is_respected() {
        let ds = community_dataset();
        let users: Vec<usize> = (0..40).collect();
        let cfg = ItemKnnConfig { neighbors: 2, recency_decay: 1.0 };
        let model = ItemKnn::train(&ds, &users, &cfg);
        for item in 1..=10u32 {
            assert!(model.neighbors_of(item).len() <= 2);
        }
    }

    #[test]
    fn recency_decay_prefers_recent_community() {
        // Mixed history ending in community B: with decay, B items win.
        let ds = community_dataset();
        let users: Vec<usize> = (0..40).collect();
        let cfg = ItemKnnConfig { neighbors: 10, recency_decay: 0.5 };
        let model = ItemKnn::train(&ds, &users, &cfg);
        let scores = model.score_items(&[1, 2, 6, 7]);
        let best = (1..=10)
            .max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap())
            .unwrap();
        assert!((6..=10).contains(&best), "recent community should dominate, best {best}");
    }

    #[test]
    fn empty_training_and_fold_in_are_safe() {
        let ds = community_dataset();
        let model = ItemKnn::train(&ds, &[], &ItemKnnConfig::default());
        assert!(model.score_items(&[]).iter().all(|&s| s == 0.0));
        assert!(model.score_items(&[3]).iter().all(|s| s.is_finite()));
    }
}
