//! Runtime-level differential tests: `SessionRuntime::append_event`
//! must serve every event — across users, evictions, divergent hints,
//! and sibling reuse — with logits bit-identical to a full recompute of
//! the same history, and classify each event's outcome correctly.

use std::time::Instant;

use vsan_core::{Vsan, VsanConfig, Workspace};
use vsan_session::{SessionConfig, SessionOutcome, SessionRuntime};

fn tiny_model() -> Vsan {
    let mut cfg = VsanConfig::smoke().with_threads(1);
    cfg.base.dim = 6;
    cfg.base.max_seq_len = 6;
    Vsan::init(11, &cfg)
}

fn oracle(model: &Vsan, history: &[u32]) -> Vec<f32> {
    model
        .try_score_items_batch(&[model.fold_in_window(history)])
        .expect("oracle")
        .pop()
        .unwrap()
}

fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn appends_match_recompute_under_capacity_pressure() {
    let model = tiny_model();
    let runtime = SessionRuntime::new(&model, &SessionConfig::new().with_capacity(2)).unwrap();
    let mut ws = Workspace::new();
    let now = Instant::now();

    // Three users through a 2-slot store: user rotation forces steady
    // evictions, every post-eviction event must transparently cold-start
    // with the right logits. The client supplies its history as the hint
    // (what makes eviction recoverable at all — the server-side copy
    // died with the slot).
    let mut histories: Vec<Vec<u32>> = vec![Vec::new(); 3];
    for i in 0..18u32 {
        let user = (i % 3) as u64;
        let item = 1 + (i * 5 + 2) % 10;
        let hint = histories[user as usize].clone();
        let r = runtime
            .append_event(&model, user, Some(&hint), item, &mut ws, now)
            .expect("append never errors on eviction");
        histories[user as usize].push(item);
        assert_eq!(r.history, histories[user as usize]);
        assert_bits_eq(&r.logits, &oracle(&model, &r.history));
        // With capacity 2 and three round-robin users, every return to a
        // user finds it evicted: a cold start, or a free sibling resume
        // when another user happens to share the exact history. Never a
        // warm append, never an error.
        assert!(
            matches!(
                r.outcome,
                SessionOutcome::ColdStart | SessionOutcome::Resumed { replayed: 0 }
            ),
            "event {i}: {:?}",
            r.outcome
        );
    }
    assert_eq!(runtime.stats().sessions, 2);
    assert!(runtime.stats().bytes > 0);
}

#[test]
fn warm_sessions_append_and_hints_govern_resume_reset() {
    let model = tiny_model();
    let runtime = SessionRuntime::new(&model, &SessionConfig::new().with_capacity(8)).unwrap();
    let mut ws = Workspace::new();
    let now = Instant::now();
    // Under VSAN_DISABLE_FAST_PATH=1 the bypass leaves every state
    // unprepared on purpose, so each event honestly classifies as a
    // cold start: the logits assertions below still run (that is the
    // differential point), the classification ones only make sense with
    // the incremental path live.
    let live = !vsan_core::fast_path_disabled();

    // Warm path: no competing users, so after the cold start every event
    // is a pure append.
    let r = runtime.append_event(&model, 1, None, 3, &mut ws, now).unwrap();
    assert_eq!(r.outcome, SessionOutcome::ColdStart);
    let r = runtime.append_event(&model, 1, Some(&[3]), 5, &mut ws, now).unwrap();
    if live {
        assert_eq!(r.outcome, SessionOutcome::Append);
    }
    assert_bits_eq(&r.logits, &oracle(&model, &[3, 5]));

    // Hint runs ahead of the cache (client saw events we did not):
    // resume replays the gap.
    let r = runtime.append_event(&model, 1, Some(&[3, 5, 7, 2]), 4, &mut ws, now).unwrap();
    if live {
        assert_eq!(r.outcome, SessionOutcome::Resumed { replayed: 2 });
    }
    assert_bits_eq(&r.logits, &oracle(&model, &[3, 5, 7, 2, 4]));

    // Divergent hint: the cached history is not a prefix — reset, hint
    // wins.
    let r = runtime.append_event(&model, 1, Some(&[9, 9]), 1, &mut ws, now).unwrap();
    if live {
        assert_eq!(r.outcome, SessionOutcome::Reset);
    }
    assert_bits_eq(&r.logits, &oracle(&model, &[9, 9, 1]));
    assert_eq!(r.history, vec![9, 9, 1]);

    // An exact-history sibling state is reused verbatim for a new user.
    let r = runtime.append_event(&model, 2, Some(&[9, 9, 1]), 6, &mut ws, now).unwrap();
    if live {
        assert_eq!(r.outcome, SessionOutcome::Resumed { replayed: 0 });
    }
    assert_bits_eq(&r.logits, &oracle(&model, &[9, 9, 1, 6]));

    // end_session drops the state; the next event cold-starts from the
    // hint.
    assert!(runtime.end_session(1));
    assert!(!runtime.end_session(1));
    let r = runtime.append_event(&model, 1, Some(&[2]), 3, &mut ws, now).unwrap();
    // (user 2's [9,9,1,6] is not a prefix of [2], so no sibling reuse.)
    assert_eq!(r.outcome, SessionOutcome::ColdStart);
    assert_bits_eq(&r.logits, &oracle(&model, &[2, 3]));
}

#[test]
fn capacity_zero_is_stateless_full_recompute() {
    let model = tiny_model();
    let runtime = SessionRuntime::new(&model, &SessionConfig::new().with_capacity(0)).unwrap();
    let mut ws = Workspace::new();
    let now = Instant::now();
    for hint in [vec![], vec![4, 2], vec![1, 2, 3, 4, 5, 6, 7, 8]] {
        let r = runtime.append_event(&model, 1, Some(&hint), 9, &mut ws, now).unwrap();
        assert_eq!(r.outcome, SessionOutcome::ColdStart);
        let mut full = hint.clone();
        full.push(9);
        assert_bits_eq(&r.logits, &oracle(&model, &full));
    }
    assert_eq!(runtime.stats().sessions, 0);
}

#[test]
fn model_errors_surface_without_poisoning_the_session() {
    let model = tiny_model();
    let runtime = SessionRuntime::new(&model, &SessionConfig::default()).unwrap();
    let mut ws = Workspace::new();
    let now = Instant::now();
    runtime.append_event(&model, 1, None, 3, &mut ws, now).unwrap();
    // Out-of-vocabulary item: a genuine error…
    assert!(runtime.append_event(&model, 1, None, 4000, &mut ws, now).is_err());
    // …that leaves the session serving correctly afterwards.
    let r = runtime.append_event(&model, 1, None, 5, &mut ws, now).unwrap();
    assert_bits_eq(&r.logits, &oracle(&model, &[3, 5]));
}
