//! Property suite for the session store's bookkeeping: LRU eviction
//! order against a reference recency model, TTL expiry with fabricated
//! instants, longest-prefix lookup correctness, and the
//! eviction-never-corrupts-a-sibling guarantee (ISSUE 6 satellite).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use vsan_session::{EvictReason, SessionConfig, SessionStore};

proptest! {
    #[test]
    fn lru_eviction_matches_a_reference_recency_model(
        capacity in 1usize..6,
        accesses in collection::vec(0u64..12, 1..80),
    ) {
        let now = Instant::now();
        let mut store = SessionStore::new(&SessionConfig::new().with_capacity(capacity));
        // Reference model: users ordered most-recent-first.
        let mut recency: VecDeque<u64> = VecDeque::new();
        for &user in &accesses {
            let (_, evictions) = store.get_or_create(user, now);
            recency.retain(|&u| u != user);
            recency.push_front(user);
            let mut expected = Vec::new();
            while recency.len() > capacity {
                expected.push(recency.pop_back().unwrap());
            }
            let got: Vec<u64> = evictions.iter().map(|e| e.user).collect();
            prop_assert_eq!(&got, &expected, "evictions diverged from the LRU model");
            for e in &evictions {
                prop_assert_eq!(e.reason, EvictReason::Capacity);
            }
            prop_assert!(store.len() <= capacity);
            prop_assert_eq!(store.len(), recency.len());
        }
    }

    #[test]
    fn longest_prefix_lookup_returns_the_longest_true_prefix(
        histories in collection::vec(collection::vec(1u32..5, 0..6), 1..8),
        query in collection::vec(1u32..5, 0..8),
    ) {
        let now = Instant::now();
        let mut store = SessionStore::new(&SessionConfig::new().with_capacity(64));
        for (user, history) in histories.iter().enumerate() {
            let (arc, _) = store.get_or_create(user as u64, now);
            store.commit(user as u64, &arc, history.clone(), true, history.len() * 4, now);
        }
        match store.longest_prefix_of(&query, u64::MAX) {
            Some(hit) => {
                // The hit is a true prefix of the query…
                prop_assert!(query.starts_with(&hit.history));
                // …its snapshot matches what was committed…
                prop_assert_eq!(&hit.history, &histories[hit.user as usize]);
                // …and no resident prefix is longer.
                for h in &histories {
                    if query.starts_with(h.as_slice()) {
                        prop_assert!(h.len() <= hit.history.len());
                    }
                }
            }
            None => {
                for h in &histories {
                    prop_assert!(!query.starts_with(h.as_slice()));
                }
            }
        }
    }
}

#[test]
fn ttl_expires_idle_sessions_and_spares_active_ones() {
    let t0 = Instant::now();
    let ttl = Duration::from_millis(1500);
    let mut store = SessionStore::new(&SessionConfig::new().with_capacity(8).with_ttl(Some(ttl)));
    // Staggered by less than the TTL so nobody expires during setup.
    for (user, offset_ms) in [(1u64, 0u64), (2, 500), (3, 1000)] {
        let (arc, _) = store.get_or_create(user, t0 + Duration::from_millis(offset_ms));
        store.commit(user, &arc, vec![user as u32], true, 4, t0 + Duration::from_millis(offset_ms));
    }
    // At t0+2.1s: user 1 idle 2.1s and user 2 idle 1.6s (> ttl) expire;
    // user 3 idle 1.1s survives.
    let evictions = store.sweep(t0 + Duration::from_millis(2100));
    let mut gone: Vec<u64> = evictions.iter().map(|e| e.user).collect();
    gone.sort_unstable();
    assert_eq!(gone, vec![1, 2]);
    assert!(evictions.iter().all(|e| e.reason == EvictReason::Ttl));
    assert_eq!(store.len(), 1);
    assert!(store.snapshot(3).is_some());

    // An expired session is also dropped (and reported) on direct access.
    let (_, evs) = store.get_or_create(3, t0 + Duration::from_millis(10_000));
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].user, 3);
    assert_eq!(evs[0].reason, EvictReason::Ttl);
    // …and immediately recreated fresh.
    let (snap, prepared) = store.snapshot(3).unwrap();
    assert!(snap.is_empty());
    assert!(!prepared);
}

#[test]
fn eviction_never_corrupts_an_in_flight_sibling() {
    let now = Instant::now();
    let mut store = SessionStore::new(&SessionConfig::new().with_capacity(1));
    let (held, _) = store.get_or_create(7, now);
    held.lock().unwrap().history = vec![1, 2, 3];
    store.commit(7, &held, vec![1, 2, 3], true, 12, now);

    // Capacity pressure evicts user 7 while we still hold its entry.
    let (_, evictions) = store.get_or_create(8, now);
    assert_eq!(evictions.len(), 1);
    assert_eq!(evictions[0].user, 7);
    assert!(store.snapshot(7).is_none());

    // The held entry is alive and fully usable: eviction dropped the
    // slot, not the state.
    assert_eq!(Arc::strong_count(&held), 1);
    {
        let mut guard = held.lock().unwrap();
        assert_eq!(guard.history, vec![1, 2, 3]);
        guard.history.push(4);
    }
    // Committing re-registers the evicted session (evicting the LRU
    // occupant in turn) — exactly what an in-flight append does.
    let evictions = store.commit(7, &held, vec![1, 2, 3, 4], true, 16, now);
    assert_eq!(evictions.len(), 1);
    assert_eq!(evictions[0].user, 8);
    let (snap, prepared) = store.snapshot(7).unwrap();
    assert_eq!(snap, &[1, 2, 3, 4]);
    assert!(prepared);
}

#[test]
fn remove_reports_absence() {
    let now = Instant::now();
    let mut store = SessionStore::new(&SessionConfig::default());
    assert!(!store.remove(5));
    let (_, _) = store.get_or_create(5, now);
    assert!(store.remove(5));
    assert!(store.is_empty());
    assert_eq!(store.bytes(), 0);
}
