#![warn(missing_docs)]

//! # vsan-session
//!
//! Incremental session inference for VSAN serving (DESIGN.md §11): a
//! per-user, prefix-keyed cache of every attention block's K/V
//! projections over the history's fold-in window, so a live session
//! pays one `O(n·d²)` append pass per event instead of the full
//! `O(n²·d)` recompute.
//!
//! * [`SessionStore`] — LRU/TTL-bounded map from user id to session
//!   slot, with longest-cached-prefix lookup over lock-free history
//!   snapshots. Eviction is *transparent*: it can cost a cold start,
//!   never an error, and never corrupts an in-flight sibling.
//! * [`SessionRuntime`] — the per-event protocol (`append_event`):
//!   resolve → append → re-prepare → commit, bit-identical to full
//!   recompute (the core differential suite and `scripts/verify.sh`
//!   hold this both with and without `VSAN_DISABLE_FAST_PATH`).
//!
//! `vsan-serve` wires this behind `Engine::append_event`, with
//! `session.*` metrics and `session_evicted` / `session_reset` fault
//! events.

pub mod runtime;
pub mod store;

pub use runtime::{AppendResult, SessionOutcome, SessionRuntime, SessionStats, SessionTrace};
pub use store::{EvictReason, Eviction, PrefixHit, SessionConfig, SessionEntry, SessionStore};
