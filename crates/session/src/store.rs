//! Prefix-keyed session store: per-user slots holding an
//! [`Arc<Mutex<SessionEntry>>`] plus lock-free-to-read *snapshots* of
//! each session's history, so lookups and eviction scans never take an
//! entry lock while holding the store lock (lock order is always entry
//! → store, never store → entry).
//!
//! Eviction drops a slot from the map but never touches the entry
//! behind it: any in-flight append holding the `Arc` completes against
//! its own self-contained state and simply re-registers on commit.
//! That is what makes eviction **transparent** — worst case the next
//! event cold-starts; it can never corrupt a sibling session or error.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vsan_core::SessionState;

/// Knobs for the session store, mirrored by the serve-level
/// `EngineConfig::session_*` builders.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Maximum live sessions (LRU-evicted beyond this). `0` disables
    /// incremental sessions entirely: every event is a full recompute.
    pub capacity: usize,
    /// Drop sessions idle longer than this (`None` = no TTL).
    pub ttl: Option<Duration>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { capacity: 1024, ttl: None }
    }
}

impl SessionConfig {
    /// The defaults: 1024 sessions, no TTL.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the session capacity (`0` disables sessions).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Set the idle TTL.
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }
}

/// The mutable per-session payload, guarded by its own mutex so appends
/// to different users never contend.
#[derive(Debug, Default)]
pub struct SessionEntry {
    /// Every event seen for this session, oldest first.
    pub history: Vec<u32>,
    /// Prepared layer state for `history` (unprepared ⇒ next event
    /// cold-starts).
    pub state: SessionState,
}

/// Why a session left the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// LRU capacity pressure.
    Capacity,
    /// Idle past the configured TTL.
    Ttl,
}

/// One eviction, reported to the caller so the serve layer can emit
/// `session.evictions` metrics and `session_evicted` fault events.
#[derive(Debug, Clone, Copy)]
pub struct Eviction {
    /// The evicted session's user id.
    pub user: u64,
    /// Why it was evicted.
    pub reason: EvictReason,
}

/// A successful [`SessionStore::longest_prefix_of`] lookup.
pub struct PrefixHit {
    /// Owning user of the cached session.
    pub user: u64,
    /// The cached session's history snapshot (a true prefix of the
    /// query, by construction).
    pub history: Vec<u32>,
    /// Handle to the entry; callers must re-verify `history` under the
    /// entry lock before using the state (snapshots can go stale).
    pub entry: Arc<Mutex<SessionEntry>>,
}

/// One user's slot: the shared entry handle plus the snapshots the
/// store scans without locking the entry.
struct Slot {
    entry: Arc<Mutex<SessionEntry>>,
    history: Vec<u32>,
    prepared: bool,
    bytes: usize,
    tick: u64,
    touched: Instant,
}

/// LRU/TTL-bounded map from user id to session slot. All time-dependent
/// methods take `now` explicitly so TTL behaviour is testable with
/// fabricated instants.
pub struct SessionStore {
    capacity: usize,
    ttl: Option<Duration>,
    map: HashMap<u64, Slot>,
    tick: u64,
}

impl SessionStore {
    /// An empty store under `cfg`.
    pub fn new(cfg: &SessionConfig) -> Self {
        SessionStore { capacity: cfg.capacity, ttl: cfg.ttl, map: HashMap::new(), tick: 0 }
    }

    /// Live sessions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no sessions are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Resident bytes across all sessions (as of each slot's last
    /// commit).
    pub fn bytes(&self) -> usize {
        self.map.values().map(|s| s.bytes).sum()
    }

    /// Fetch `user`'s entry handle, creating an empty slot on miss. An
    /// existing slot idle past the TTL is dropped first (reported) and
    /// recreated fresh. Touches the slot for LRU purposes and evicts as
    /// needed; the just-touched slot is never the LRU victim.
    pub fn get_or_create(&mut self, user: u64, now: Instant) -> (Arc<Mutex<SessionEntry>>, Vec<Eviction>) {
        let mut evictions = Vec::new();
        let expired = self.map.get(&user).is_some_and(|slot| self.expired(slot, now));
        if expired {
            self.map.remove(&user);
            evictions.push(Eviction { user, reason: EvictReason::Ttl });
        }
        self.tick += 1;
        let tick = self.tick;
        let slot = self.map.entry(user).or_insert_with(|| Slot {
            entry: Arc::new(Mutex::new(SessionEntry::default())),
            history: Vec::new(),
            prepared: false,
            bytes: 0,
            tick,
            touched: now,
        });
        slot.tick = tick;
        slot.touched = now;
        let entry = Arc::clone(&slot.entry);
        evictions.extend(self.enforce(now));
        (entry, evictions)
    }

    /// The history/prepared snapshot for `user`, if resident.
    pub fn snapshot(&self, user: u64) -> Option<(&[u32], bool)> {
        self.map.get(&user).map(|s| (s.history.as_slice(), s.prepared))
    }

    /// The *prepared* session (excluding `exclude`) whose history is the
    /// longest true prefix of `query` — ties broken by smallest user id
    /// for determinism. Session states are functions of history alone,
    /// so any user's state for an exact-match history is reusable as-is.
    pub fn longest_prefix_of(&self, query: &[u32], exclude: u64) -> Option<PrefixHit> {
        self.map
            .iter()
            .filter(|(&u, s)| u != exclude && s.prepared && query.starts_with(&s.history))
            .max_by(|(ua, a), (ub, b)| {
                a.history.len().cmp(&b.history.len()).then(ub.cmp(ua))
            })
            .map(|(&user, slot)| PrefixHit {
                user,
                history: slot.history.clone(),
                entry: Arc::clone(&slot.entry),
            })
    }

    /// Publish a session's post-append snapshot (re-registering it if it
    /// was evicted mid-flight), then run the eviction pass. Returns any
    /// evictions performed.
    pub fn commit(
        &mut self,
        user: u64,
        entry: &Arc<Mutex<SessionEntry>>,
        history: Vec<u32>,
        prepared: bool,
        bytes: usize,
        now: Instant,
    ) -> Vec<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let slot = self.map.entry(user).or_insert_with(|| Slot {
            entry: Arc::clone(entry),
            history: Vec::new(),
            prepared: false,
            bytes: 0,
            tick,
            touched: now,
        });
        slot.history = history;
        slot.prepared = prepared;
        slot.bytes = bytes;
        slot.tick = tick;
        slot.touched = now;
        self.enforce(now)
    }

    /// Drop `user`'s session. `false` when it was not resident.
    pub fn remove(&mut self, user: u64) -> bool {
        self.map.remove(&user).is_some()
    }

    /// TTL sweep + LRU trim to capacity, oldest-tick first.
    pub fn sweep(&mut self, now: Instant) -> Vec<Eviction> {
        self.enforce(now)
    }

    fn expired(&self, slot: &Slot, now: Instant) -> bool {
        self.ttl.is_some_and(|ttl| now.saturating_duration_since(slot.touched) > ttl)
    }

    fn enforce(&mut self, now: Instant) -> Vec<Eviction> {
        let mut evictions = Vec::new();
        if let Some(ttl) = self.ttl {
            let dead: Vec<u64> = self
                .map
                .iter()
                .filter(|(_, s)| now.saturating_duration_since(s.touched) > ttl)
                .map(|(&u, _)| u)
                .collect();
            for user in dead {
                self.map.remove(&user);
                evictions.push(Eviction { user, reason: EvictReason::Ttl });
            }
        }
        while self.map.len() > self.capacity.max(1) {
            // LRU victim: the smallest access tick (ties impossible —
            // ticks are unique).
            let victim = self.map.iter().min_by_key(|(_, s)| s.tick).map(|(&u, _)| u);
            match victim {
                Some(user) => {
                    self.map.remove(&user);
                    evictions.push(Eviction { user, reason: EvictReason::Capacity });
                }
                None => break,
            }
        }
        evictions
    }
}
