//! The streaming session runtime: ties the [`SessionStore`] to
//! `vsan-core`'s prepare/append schedule and implements the per-event
//! protocol behind `Engine::append_event` (DESIGN.md §11):
//!
//! 1. resolve the session (own entry → exact-history sibling →
//!    cold start), never erroring on a miss or eviction — those just
//!    cost a transparent full prepare;
//! 2. fold the event in with one `O(n·d²)` append pass, bit-identical
//!    to a full recompute of the grown history;
//! 3. re-prepare the state for the grown history (the state caches a
//!    fixed *window*, so every append re-aligns slots — see the DESIGN
//!    section for why this is the bit-exact formulation for VSAN's
//!    left-padded, absolutely-positioned windows);
//! 4. commit the snapshot and report any evictions to the caller.
//!
//! With `VSAN_DISABLE_FAST_PATH=1` the incremental path is bypassed
//! entirely: every event is a full recompute through whatever path
//! `Vsan::try_score_items_batch` routes to. The differential suites run
//! both ways.

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use vsan_core::{fast_path_disabled, SessionState, Vsan, Workspace};
use vsan_obs::recorder::FlightRecorder;
use vsan_obs::trace::{TraceContext, TraceSpan, TraceStage};

use crate::store::{Eviction, SessionConfig, SessionStore};

/// Lock a mutex, shrugging off poisoning: a panicking worker can only
/// ever leave an entry *unprepared* (prepare clears the flag before
/// touching buffers), so the recovery path is always a cold start, never
/// corrupt state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How an event was served, for `session.*` metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The user's prepared state matched the pre-append history exactly:
    /// one append pass, no prepare on the hot path.
    Append,
    /// A cached prefix was resumed. `replayed` counts the hinted events
    /// the cache had not seen (0 = an exact-history sibling state was
    /// reused verbatim).
    Resumed {
        /// Hinted events recomputed because the cache had not seen them.
        replayed: usize,
    },
    /// Nothing cached (first event, or evicted): transparent full
    /// prepare.
    ColdStart,
    /// The hint contradicted the cached history; the cached state was
    /// discarded and rebuilt.
    Reset,
}

impl SessionOutcome {
    /// Snake-case wire name, for metrics and structured logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            SessionOutcome::Append => "append",
            SessionOutcome::Resumed { .. } => "resumed",
            SessionOutcome::ColdStart => "cold_start",
            SessionOutcome::Reset => "reset",
        }
    }

    /// Stable numeric wire code, used as the trace-span attribute of
    /// session stages.
    pub fn code(&self) -> u64 {
        match self {
            SessionOutcome::Append => 0,
            SessionOutcome::Resumed { .. } => 1,
            SessionOutcome::ColdStart => 2,
            SessionOutcome::Reset => 3,
        }
    }
}

/// Trace hookup for one traced append: where to record, the parent
/// session span, and the engine's time origin. Purely observational —
/// [`SessionRuntime::append_event_traced`] computes identical bits with
/// or without it (the §8 telemetry rule).
#[derive(Clone, Copy)]
pub struct SessionTrace<'a> {
    /// The engine's flight recorder.
    pub recorder: &'a FlightRecorder,
    /// The session-stage context sub-stages hang off.
    pub ctx: TraceContext,
    /// The engine's origin instant `at_us` is measured from.
    pub origin: Instant,
}

fn us(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

impl SessionTrace<'_> {
    /// Record one sub-stage as a child of the session span: `started`
    /// is when the stage began (its elapsed time is the duration).
    fn record(&self, stage: TraceStage, started: Instant, attr: u64) {
        self.recorder.record(&TraceSpan {
            ctx: self.ctx.child(stage.code()),
            stage,
            at_us: us(self.origin.elapsed()),
            dur_us: us(started.elapsed()),
            attr,
        });
    }
}

/// What one [`SessionRuntime::append_event`] produced.
#[derive(Debug)]
pub struct AppendResult {
    /// Last-position logits for the grown history — bit-identical to a
    /// full recompute.
    pub logits: Vec<f32>,
    /// The session's history *after* the append.
    pub history: Vec<u32>,
    /// How the event was served.
    pub outcome: SessionOutcome,
    /// Sessions evicted while serving this event (LRU/TTL).
    pub evictions: Vec<Eviction>,
}

/// Point-in-time store occupancy, for gauges.
#[derive(Debug, Clone, Copy)]
pub struct SessionStats {
    /// Live sessions.
    pub sessions: usize,
    /// Resident bytes across all session states.
    pub bytes: usize,
}

/// Shared, thread-safe session runtime. One per engine; workers call
/// [`Self::append_event`] concurrently with their own workspaces —
/// appends to different users never contend beyond the brief store
/// lock.
pub struct SessionRuntime {
    store: Mutex<SessionStore>,
    /// The all-padding donor window, computed once: every prepare copies
    /// its leading padding rows instead of recomputing them.
    pad: SessionState,
    stateless: bool,
}

impl SessionRuntime {
    /// Build a runtime for `model` (computes the shared all-padding
    /// donor state once). `capacity = 0` makes every event a stateless
    /// full recompute.
    pub fn new(model: &Vsan, cfg: &SessionConfig) -> Result<Self, String> {
        Ok(SessionRuntime {
            store: Mutex::new(SessionStore::new(cfg)),
            pad: model.pad_session_state()?,
            stateless: cfg.capacity == 0,
        })
    }

    /// Live-session / resident-byte gauges.
    pub fn stats(&self) -> SessionStats {
        let store = lock(&self.store);
        SessionStats { sessions: store.len(), bytes: store.bytes() }
    }

    /// Drop `user`'s session. `false` when it was not resident.
    pub fn end_session(&self, user: u64) -> bool {
        lock(&self.store).remove(user)
    }

    /// TTL sweep + LRU trim (what a supervisor calls periodically so
    /// idle sessions do not linger until the next event).
    pub fn sweep(&self, now: Instant) -> Vec<Eviction> {
        lock(&self.store).sweep(now)
    }

    /// Fold one event into `user`'s session and return logits for the
    /// grown history.
    ///
    /// `hint` is the client's view of the pre-append history: `None`
    /// trusts the cached history; `Some` cross-checks it (a divergent
    /// hint resets the session — the hint wins, since only the client
    /// knows the truth). Misses, evictions, and resets are all served
    /// transparently by full recompute; the only errors are genuine
    /// model errors (e.g. out-of-vocabulary ids).
    pub fn append_event(
        &self,
        model: &Vsan,
        user: u64,
        hint: Option<&[u32]>,
        item: u32,
        ws: &mut Workspace,
        now: Instant,
    ) -> Result<AppendResult, String> {
        self.append_event_traced(model, user, hint, item, ws, now, None)
    }

    /// [`Self::append_event`] with optional per-stage trace recording:
    /// resolve / prepare / apply / commit sub-spans hang off
    /// `trace.ctx` in the engine's flight recorder. The trace hookup is
    /// write-only — logits, history, outcome, and evictions are
    /// bit-identical with `trace` present or `None`.
    #[allow(clippy::too_many_arguments)]
    pub fn append_event_traced(
        &self,
        model: &Vsan,
        user: u64,
        hint: Option<&[u32]>,
        item: u32,
        ws: &mut Workspace,
        now: Instant,
        trace: Option<SessionTrace<'_>>,
    ) -> Result<AppendResult, String> {
        let stage_start = Instant::now();
        if self.stateless {
            let mut history = hint.unwrap_or_default().to_vec();
            history.push(item);
            let logits = model
                .try_score_items_batch(&[model.fold_in_window(&history)])?
                .pop()
                .unwrap_or_default();
            if let Some(t) = &trace {
                t.record(TraceStage::SessionPrepare, stage_start, history.len() as u64);
            }
            return Ok(AppendResult {
                logits,
                history,
                outcome: SessionOutcome::ColdStart,
                evictions: Vec::new(),
            });
        }

        // 1. Own slot + (when the hint can't be served from it) the best
        //    cached prefix, under one brief store lock. Entry locks are
        //    never taken while the store is locked.
        let (entry_arc, sibling) = {
            let mut store = lock(&self.store);
            let (arc, evictions) = store.get_or_create(user, now);
            let need_sibling = match (hint, store.snapshot(user)) {
                (Some(h), Some((snap, prepared))) => !(prepared && snap == h),
                (Some(_), None) => true,
                (None, _) => false,
            };
            let sibling =
                if need_sibling { store.longest_prefix_of(hint.unwrap(), user) } else { None };
            (arc, (sibling, evictions))
        };
        let (sibling, mut evictions) = sibling;

        // 2. Session states are pure functions of history, so an
        //    *exact*-history sibling state is reusable verbatim. Clone it
        //    outside every lock-pair (snapshot may be stale: re-verify
        //    under the sibling's own lock).
        let sibling_state: Option<SessionState> = sibling.and_then(|hit| {
            let query = hint.unwrap_or_default();
            if hit.history.len() != query.len() {
                return None;
            }
            let guard = lock(&hit.entry);
            (guard.state.is_prepared() && guard.history == query).then(|| guard.state.clone())
        });

        // 3. Serve the event under the entry lock.
        let mut entry = lock(&entry_arc);
        let pre: Vec<u32> = match hint {
            Some(h) => h.to_vec(),
            None => entry.history.clone(),
        };
        let prepared_for_pre = entry.state.is_prepared() && entry.history == pre;
        let divergent =
            entry.state.is_prepared() && !prepared_for_pre && !pre.starts_with(&entry.history);
        let prior_len = if entry.state.is_prepared() { Some(entry.history.len()) } else { None };
        let sibling_used = !prepared_for_pre && sibling_state.is_some();
        let outcome = if prepared_for_pre {
            SessionOutcome::Append
        } else if divergent {
            SessionOutcome::Reset
        } else if sibling_used {
            SessionOutcome::Resumed { replayed: 0 }
        } else if let Some(len) = prior_len {
            SessionOutcome::Resumed { replayed: pre.len() - len }
        } else {
            SessionOutcome::ColdStart
        };
        if let Some(t) = &trace {
            t.record(TraceStage::SessionResolve, stage_start, outcome.code());
        }

        let logits = if fast_path_disabled() {
            // Graph-oracle mode: bypass the incremental path entirely.
            let stage_start = Instant::now();
            entry.state.clear();
            let mut full = pre;
            full.push(item);
            let row = model
                .try_score_items_batch(&[model.fold_in_window(&full)])?
                .pop()
                .unwrap_or_default();
            entry.history = full;
            if let Some(t) = &trace {
                t.record(TraceStage::SessionPrepare, stage_start, entry.history.len() as u64);
            }
            row
        } else {
            if !prepared_for_pre {
                let stage_start = Instant::now();
                match sibling_state {
                    Some(state) => entry.state = state,
                    None => {
                        model.prepare_session_into(&pre, Some(&self.pad), &mut entry.state, ws)?
                    }
                }
                if let Some(t) = &trace {
                    t.record(TraceStage::SessionPrepare, stage_start, pre.len() as u64);
                }
            }
            let stage_start = Instant::now();
            let row = model.append_session_logits(&entry.state, item, ws)?;
            entry.history = pre;
            entry.history.push(item);
            // Re-prepare for the grown history so the *next* event is a
            // pure append. (Split the guard so the history borrow and
            // the state borrow don't alias through `Deref`.)
            let crate::store::SessionEntry { history, state } = &mut *entry;
            model.prepare_session_into(history, Some(&self.pad), state, ws)?;
            if let Some(t) = &trace {
                t.record(TraceStage::SessionApply, stage_start, entry.history.len() as u64);
            }
            row
        };

        let history = entry.history.clone();
        let prepared = entry.state.is_prepared();
        let bytes = entry.state.bytes() + history.len() * std::mem::size_of::<u32>();
        drop(entry);

        // 4. Publish the snapshot; eviction may fire here (never at us —
        //    we are the freshest tick).
        let stage_start = Instant::now();
        evictions.extend(lock(&self.store).commit(user, &entry_arc, history.clone(), prepared, bytes, now));
        if let Some(t) = &trace {
            t.record(TraceStage::SessionCommit, stage_start, evictions.len() as u64);
        }
        Ok(AppendResult { logits, history, outcome, evictions })
    }
}
