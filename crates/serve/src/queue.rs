//! Bounded admission queue with configurable backpressure.
//!
//! The engine's request queue was unbounded until the fault-tolerance
//! layer: under sustained overload an unbounded queue converts excess
//! load into unbounded memory growth and unbounded latency, which is
//! strictly worse than refusing work. This queue enforces a hard depth
//! bound and lets the deployment choose what happens at the bound
//! ([`BackpressurePolicy`]): block the submitter, reject the newcomer,
//! or shed the oldest queued request (which has already burned the most
//! latency budget and is the most likely to be abandoned).
//!
//! The queue is `Mutex<VecDeque>` + two condvars, the same substrate as
//! the vendored crossbeam channel shim, but with capacity, eviction,
//! and deadline-aware blocking — none of which a plain channel offers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// What [`AdmissionQueue::push`] does when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until space frees up (or the
    /// request's deadline expires, or the queue closes). Converts
    /// overload into upstream latency — lossless but contagious.
    #[default]
    Block,
    /// Refuse the incoming request. Bounds latency for everything
    /// already queued; newcomers take the degraded path.
    RejectNewest,
    /// Evict the oldest queued request to admit the newcomer. Keeps the
    /// queue fresh under overload; evictees take the degraded path.
    ShedOldest,
}

/// Outcome of one [`AdmissionQueue::push`].
#[derive(Debug)]
pub enum PushOutcome<T> {
    /// The item was queued.
    Queued,
    /// The item was queued and the oldest entry was evicted to make
    /// room ([`BackpressurePolicy::ShedOldest`]).
    Shed {
        /// The evicted oldest entry.
        evicted: T,
    },
    /// The queue was full and the item was refused
    /// ([`BackpressurePolicy::RejectNewest`]).
    Rejected {
        /// The refused item, returned to the caller.
        item: T,
    },
    /// A blocking push gave up because the item's deadline passed
    /// before space freed up ([`BackpressurePolicy::Block`] only).
    Expired {
        /// The expired item, returned to the caller.
        item: T,
    },
    /// The queue is closed and accepts nothing.
    Closed {
        /// The refused item, returned to the caller.
        item: T,
    },
}

/// Outcome of one [`AdmissionQueue::pop`] / [`AdmissionQueue::pop_until`].
#[derive(Debug)]
pub enum PopOutcome<T> {
    /// An item, FIFO order.
    Item(T),
    /// `pop_until` reached its deadline with the queue still empty.
    TimedOut,
    /// The queue is closed **and** fully drained.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC FIFO with explicit backpressure; see the module docs.
pub struct AdmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Signalled when an item arrives or the queue closes (pop side).
    nonempty: Condvar,
    /// Signalled when an item leaves or the queue closes (blocked push side).
    space: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            nonempty: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; exact under the caller's own
    /// serialization, advisory otherwise).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        // Queue state is plain data mutated only under the lock; a
        // panicking holder cannot leave it mid-mutation, so recovering
        // from poisoning is safe (and required: a worker panic must not
        // brick admission).
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Offer `item` under `policy`. `deadline` only matters for
    /// [`BackpressurePolicy::Block`]: a blocked push gives up (returning
    /// [`PushOutcome::Expired`]) once the deadline passes.
    pub fn push(
        &self,
        item: T,
        policy: BackpressurePolicy,
        deadline: Option<Instant>,
    ) -> PushOutcome<T> {
        let mut st = self.lock();
        if st.closed {
            return PushOutcome::Closed { item };
        }
        if st.items.len() < self.capacity {
            st.items.push_back(item);
            drop(st);
            self.nonempty.notify_one();
            return PushOutcome::Queued;
        }
        match policy {
            BackpressurePolicy::RejectNewest => PushOutcome::Rejected { item },
            BackpressurePolicy::ShedOldest => {
                let evicted = st.items.pop_front().expect("full queue has a front");
                st.items.push_back(item);
                drop(st);
                self.nonempty.notify_one();
                PushOutcome::Shed { evicted }
            }
            BackpressurePolicy::Block => loop {
                if st.closed {
                    return PushOutcome::Closed { item };
                }
                if st.items.len() < self.capacity {
                    st.items.push_back(item);
                    drop(st);
                    self.nonempty.notify_one();
                    return PushOutcome::Queued;
                }
                match deadline {
                    None => st = self.space.wait(st).expect("queue lock"),
                    Some(due) => {
                        let now = Instant::now();
                        if now >= due {
                            return PushOutcome::Expired { item };
                        }
                        let (guard, _) =
                            self.space.wait_timeout(st, due - now).expect("queue lock");
                        st = guard;
                    }
                }
            },
        }
    }

    /// Take the oldest item, blocking until one arrives or the queue is
    /// closed and drained.
    pub fn pop(&self) -> PopOutcome<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.space.notify_one();
                return PopOutcome::Item(item);
            }
            if st.closed {
                return PopOutcome::Closed;
            }
            st = self.nonempty.wait(st).expect("queue lock");
        }
    }

    /// Take the oldest item, blocking until one arrives, `due` passes,
    /// or the queue is closed and drained.
    pub fn pop_until(&self, due: Instant) -> PopOutcome<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.space.notify_one();
                return PopOutcome::Item(item);
            }
            if st.closed {
                return PopOutcome::Closed;
            }
            let now = Instant::now();
            if now >= due {
                return PopOutcome::TimedOut;
            }
            let (guard, _) = self.nonempty.wait_timeout(st, due - now).expect("queue lock");
            st = guard;
        }
    }

    /// Stop admitting. Queued items remain poppable (the shutdown
    /// drain); blocked pushers and poppers wake immediately.
    pub fn close(&self) {
        self.lock().closed = true;
        self.nonempty.notify_all();
        self.space.notify_all();
    }

    /// `true` once [`AdmissionQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

impl<T> std::fmt::Debug for AdmissionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionQueue")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_depth_bound() {
        let q = AdmissionQueue::new(3);
        for i in 0..3 {
            assert!(matches!(q.push(i, BackpressurePolicy::RejectNewest, None), PushOutcome::Queued));
        }
        assert!(matches!(
            q.push(99, BackpressurePolicy::RejectNewest, None),
            PushOutcome::Rejected { item: 99 }
        ));
        assert_eq!(q.len(), 3);
        for want in 0..3 {
            match q.pop() {
                PopOutcome::Item(got) => assert_eq!(got, want),
                other => panic!("expected item, got {other:?}"),
            }
        }
    }

    #[test]
    fn shed_oldest_evicts_the_front() {
        let q = AdmissionQueue::new(2);
        q.push(1, BackpressurePolicy::ShedOldest, None);
        q.push(2, BackpressurePolicy::ShedOldest, None);
        match q.push(3, BackpressurePolicy::ShedOldest, None) {
            PushOutcome::Shed { evicted } => assert_eq!(evicted, 1),
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert!(matches!(q.pop(), PopOutcome::Item(2)));
        assert!(matches!(q.pop(), PopOutcome::Item(3)));
    }

    #[test]
    fn blocked_push_expires_at_its_deadline() {
        let q = AdmissionQueue::new(1);
        q.push(1, BackpressurePolicy::Block, None);
        let due = Instant::now() + Duration::from_millis(20);
        match q.push(2, BackpressurePolicy::Block, Some(due)) {
            PushOutcome::Expired { item } => assert_eq!(item, 2),
            other => panic!("expected expiry, got {other:?}"),
        }
        assert!(Instant::now() >= due, "push must have blocked until the deadline");
    }

    #[test]
    fn blocked_push_proceeds_when_space_frees() {
        let q = std::sync::Arc::new(AdmissionQueue::new(1));
        q.push(1, BackpressurePolicy::Block, None);
        let popper = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                q.pop()
            })
        };
        assert!(matches!(q.push(2, BackpressurePolicy::Block, None), PushOutcome::Queued));
        assert!(matches!(popper.join().unwrap(), PopOutcome::Item(1)));
        assert!(matches!(q.pop(), PopOutcome::Item(2)));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = AdmissionQueue::new(4);
        q.push(1, BackpressurePolicy::Block, None);
        q.push(2, BackpressurePolicy::Block, None);
        q.close();
        assert!(matches!(q.push(3, BackpressurePolicy::Block, None), PushOutcome::Closed { .. }));
        assert!(matches!(q.pop(), PopOutcome::Item(1)));
        assert!(matches!(q.pop_until(Instant::now()), PopOutcome::Item(2)));
        assert!(matches!(q.pop(), PopOutcome::Closed));
        assert!(matches!(q.pop_until(Instant::now()), PopOutcome::Closed));
    }

    #[test]
    fn pop_until_times_out_on_an_empty_open_queue() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(1);
        let due = Instant::now() + Duration::from_millis(5);
        assert!(matches!(q.pop_until(due), PopOutcome::TimedOut));
        assert!(Instant::now() >= due);
    }

    #[test]
    fn close_wakes_a_blocked_pusher() {
        let q = std::sync::Arc::new(AdmissionQueue::new(1));
        q.push(1, BackpressurePolicy::Block, None);
        let pusher = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.push(2, BackpressurePolicy::Block, None))
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(matches!(pusher.join().unwrap(), PushOutcome::Closed { item: 2 }));
    }
}
