//! Deterministic fault-injection registry.
//!
//! A *failpoint* is a named site in the serving path where a test can
//! arm a fault: `panic_in_worker` (panic mid-batch, exercising worker
//! isolation and respawn), `slow_compute` (inject latency before the
//! forward pass, exercising deadlines and saturation), and `drop_batch`
//! (discard a dispatched batch, exercising the no-ticket-lost
//! guarantee). Sites call [`fire`], which is a single relaxed atomic
//! load when nothing is armed — the registry compiles into the release
//! binary but costs nothing until a test arms it.
//!
//! Whether an armed failpoint fires on a given hit is decided by a
//! [`Schedule`] evaluated on the failpoint's own hit counter, not on
//! wall-clock or thread identity. The [`Schedule::Seeded`] variant
//! draws a splitmix64 stream keyed on `(seed, hit_index)`, so a chaos
//! run is reproducible from its seed alone: the same seed and the same
//! submission order produce the same fault pattern.
//!
//! The registry is process-global (tests in one binary share it), so
//! chaos tests serialize on a lock and [`disarm_all`] between cases.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// What an armed failpoint injects when its schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with payload `"failpoint: <name>"`.
    Panic,
    /// Sleep this many milliseconds at the site.
    SleepMs(u64),
    /// Tell the site to discard the unit of work it is holding.
    DropBatch,
}

/// Decides, per hit, whether an armed failpoint fires.
#[derive(Debug, Clone, Copy)]
pub enum Schedule {
    /// Fire on every hit.
    Always,
    /// Fire on the first `n` hits only.
    FirstN(u64),
    /// Fire on hit indices in `[start, end)` (0-based).
    HitRange(u64, u64),
    /// Fire on hit `i` iff `splitmix64(seed ^ i) % den < num` — a
    /// deterministic Bernoulli(`num/den`) stream keyed on the seed.
    Seeded {
        /// Stream seed (chaos tests derive it from `VSAN_FAILPOINT_SEED`).
        seed: u64,
        /// Numerator of the firing probability.
        num: u64,
        /// Denominator of the firing probability (clamped to ≥ 1).
        den: u64,
    },
}

impl Schedule {
    fn fires(&self, hit: u64) -> bool {
        match *self {
            Schedule::Always => true,
            Schedule::FirstN(n) => hit < n,
            Schedule::HitRange(start, end) => (start..end).contains(&hit),
            Schedule::Seeded { seed, num, den } => {
                splitmix64(seed ^ hit.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % den.max(1) < num
            }
        }
    }
}

/// The splitmix64 mixing function (same generator the data-parallel
/// trainer uses to derive per-shard RNG streams).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Armed {
    schedule: Schedule,
    action: FailAction,
    hits: u64,
    fired: u64,
}

/// Number of currently armed failpoints; the [`fire`] fast path.
static ARMED_COUNT: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, Armed>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<String, Armed>> {
    // A panic between `fire` and the site acting on it cannot leave the
    // map mid-mutation (all mutation happens under the lock, and the
    // armed state is plain data), so poisoning is recoverable.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arm `name` with a schedule and an action, resetting its hit counter.
pub fn arm(name: &str, schedule: Schedule, action: FailAction) {
    let mut map = lock();
    if map
        .insert(name.to_string(), Armed { schedule, action, hits: 0, fired: 0 })
        .is_none()
    {
        ARMED_COUNT.fetch_add(1, Ordering::Release);
    }
}

/// Disarm `name`; returns `true` if it was armed.
pub fn disarm(name: &str) -> bool {
    let mut map = lock();
    let was = map.remove(name).is_some();
    if was {
        ARMED_COUNT.fetch_sub(1, Ordering::Release);
    }
    was
}

/// Disarm every failpoint (chaos tests call this between cases).
pub fn disarm_all() {
    let mut map = lock();
    ARMED_COUNT.fetch_sub(map.len(), Ordering::Release);
    map.clear();
}

/// Total hits recorded for `name` since it was armed (0 if unarmed).
pub fn hits(name: &str) -> u64 {
    lock().get(name).map_or(0, |a| a.hits)
}

/// Hits on which `name` actually fired since it was armed (0 if unarmed).
pub fn fired(name: &str) -> u64 {
    lock().get(name).map_or(0, |a| a.fired)
}

/// Evaluate the failpoint `name` at a site: `None` (the overwhelmingly
/// common case — one atomic load when nothing is armed, one map lookup
/// when anything is) or the action to inject on this hit.
pub fn fire(name: &str) -> Option<FailAction> {
    if ARMED_COUNT.load(Ordering::Acquire) == 0 {
        return None;
    }
    let mut map = lock();
    let armed = map.get_mut(name)?;
    let hit = armed.hits;
    armed.hits += 1;
    if armed.schedule.fires(hit) {
        armed.fired += 1;
        Some(armed.action)
    } else {
        None
    }
}

/// Perform `action` at a site that supports panicking and sleeping.
/// Returns `true` when the site should drop its unit of work
/// ([`FailAction::DropBatch`]).
pub(crate) fn act(name: &str, action: FailAction) -> bool {
    match action {
        FailAction::Panic => panic!("failpoint: {name}"),
        FailAction::SleepMs(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            false
        }
        FailAction::DropBatch => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The registry is process-global; unit tests serialize on this.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unarmed_is_a_noop() {
        let _guard = serial();
        disarm_all();
        assert_eq!(fire("fp.unarmed"), None);
        assert_eq!(hits("fp.unarmed"), 0);
    }

    #[test]
    fn first_n_fires_exactly_n_times() {
        let _guard = serial();
        disarm_all();
        arm("fp.first", Schedule::FirstN(3), FailAction::DropBatch);
        let fired_count =
            (0..10).filter(|_| fire("fp.first") == Some(FailAction::DropBatch)).count();
        assert_eq!(fired_count, 3);
        assert_eq!(hits("fp.first"), 10);
        assert_eq!(fired("fp.first"), 3);
        assert!(disarm("fp.first"));
        assert_eq!(fire("fp.first"), None);
    }

    #[test]
    fn hit_range_targets_a_window() {
        let _guard = serial();
        disarm_all();
        arm("fp.range", Schedule::HitRange(2, 4), FailAction::SleepMs(0));
        let pattern: Vec<bool> = (0..6).map(|_| fire("fp.range").is_some()).collect();
        assert_eq!(pattern, [false, false, true, true, false, false]);
        disarm_all();
    }

    #[test]
    fn seeded_schedule_is_reproducible_and_seed_sensitive() {
        let _guard = serial();
        disarm_all();
        let run = |seed: u64| -> Vec<bool> {
            arm("fp.seeded", Schedule::Seeded { seed, num: 1, den: 3 }, FailAction::Panic);
            let v = (0..64).map(|_| fire("fp.seeded").is_some()).collect();
            disarm("fp.seeded");
            v
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must replay the same fault pattern");
        assert_ne!(a, c, "different seeds must differ");
        let rate = a.iter().filter(|&&f| f).count() as f64 / a.len() as f64;
        assert!((0.05..0.7).contains(&rate), "p=1/3 stream fired at rate {rate}");
        disarm_all();
    }

    #[test]
    fn rearming_resets_counters() {
        let _guard = serial();
        disarm_all();
        arm("fp.rearm", Schedule::Always, FailAction::DropBatch);
        fire("fp.rearm");
        fire("fp.rearm");
        assert_eq!(hits("fp.rearm"), 2);
        arm("fp.rearm", Schedule::Always, FailAction::DropBatch);
        assert_eq!(hits("fp.rearm"), 0, "re-arming must reset the hit counter");
        disarm_all();
    }
}
