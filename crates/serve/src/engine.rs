//! The engine: request queue → micro-batcher → worker pool, with a
//! cache short-circuit on the submit path.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use vsan_core::Vsan;
use vsan_obs::{Counter, EventSink};

use crate::cache::SequenceCache;
use crate::config::EngineConfig;
use crate::metrics::{as_us, Metrics, MetricsSnapshot, ServeStats};

/// Failure modes of the serving path. The forward pass itself cannot
/// fail (scoring falls back to zeros on internal graph errors, exactly
/// like [`vsan_eval::Scorer::score_items`]), so these are lifecycle
/// errors only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The worker serving this request disappeared before replying
    /// (only possible if a worker thread panicked).
    WorkerLost,
    /// The ticket's response was already taken by an earlier `poll`.
    ResponseTaken,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::WorkerLost => write!(f, "worker exited before replying"),
            ServeError::ResponseTaken => write!(f, "response already taken"),
        }
    }
}

impl std::error::Error for ServeError {}

type Reply = Result<Vec<u32>, ServeError>;

/// One queued recommendation request.
struct Request {
    history: Vec<u32>,
    k: usize,
    enqueued: Instant,
    reply: Sender<Reply>,
}

/// Handle to an in-flight (or already answered) request.
///
/// Obtained from [`Engine::submit`]; redeem it with [`Ticket::wait`]
/// (blocking) or [`Ticket::poll`] (non-blocking).
pub struct Ticket(TicketState);

enum TicketState {
    /// Answered at submit time (cache hit or shutdown rejection);
    /// `None` once the response has been taken.
    Ready(Option<Reply>),
    Pending(Receiver<Reply>),
}

impl Ticket {
    fn ready(reply: Reply) -> Self {
        Ticket(TicketState::Ready(Some(reply)))
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Reply {
        match self.0 {
            TicketState::Ready(Some(reply)) => reply,
            TicketState::Ready(None) => Err(ServeError::ResponseTaken),
            TicketState::Pending(rx) => rx.recv().unwrap_or(Err(ServeError::WorkerLost)),
        }
    }

    /// Non-blocking check: `Some(response)` exactly once when it is
    /// available, `None` while the request is still in flight.
    pub fn poll(&mut self) -> Option<Reply> {
        let out = match &mut self.0 {
            TicketState::Ready(slot) => slot.take(),
            TicketState::Pending(rx) => match rx.try_recv() {
                Ok(reply) => Some(reply),
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => Some(Err(ServeError::WorkerLost)),
            },
        };
        if out.is_some() {
            self.0 = TicketState::Ready(None);
        }
        out
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &self.0 {
            TicketState::Ready(Some(_)) => "ready",
            TicketState::Ready(None) => "taken",
            TicketState::Pending(_) => "pending",
        };
        f.debug_tuple("Ticket").field(&state).finish()
    }
}

/// State shared between the caller-facing handle, the batcher, and the
/// workers.
struct Inner {
    model: Vsan,
    cache: Mutex<SequenceCache>,
    cache_enabled: bool,
    metrics: Metrics,
}

/// The serving engine. See the crate docs for the architecture; create
/// one with [`Engine::start`], stop it with [`Engine::shutdown`] (or
/// just drop it — both drain the queue before joining the threads).
pub struct Engine {
    inner: Arc<Inner>,
    req_tx: Option<Sender<Request>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawn the batcher and worker threads around a trained model.
    pub fn start(model: Vsan, cfg: EngineConfig) -> Self {
        let (max_batch, workers) = (cfg.max_batch.max(1), cfg.workers.max(1));
        let inner = Arc::new(Inner {
            model,
            cache: Mutex::new(SequenceCache::new(cfg.cache_capacity)),
            cache_enabled: cfg.cache_capacity > 0,
            metrics: Metrics::default(),
        });

        let (req_tx, req_rx) = channel::unbounded::<Request>();
        let (batch_tx, batch_rx) = channel::unbounded::<Vec<Request>>();

        let batcher = {
            let inner = Arc::clone(&inner);
            let deadline = cfg.batch_deadline;
            std::thread::Builder::new()
                .name("vsan-serve-batcher".into())
                .spawn(move || batcher_loop(&req_rx, &batch_tx, &inner, max_batch, deadline))
                .expect("spawn batcher thread")
        };

        let workers = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let batch_rx = batch_rx.clone();
                std::thread::Builder::new()
                    .name(format!("vsan-serve-worker-{i}"))
                    .spawn(move || {
                        while let Ok(batch) = batch_rx.recv() {
                            process_batch(&inner, batch);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        // `batch_rx` clones live in the workers; the original dropped
        // here. Workers exit when the batcher drops `batch_tx`.

        Engine { inner, req_tx: Some(req_tx), batcher: Some(batcher), workers }
    }

    /// Enqueue a request for the top `k` items after `history`.
    ///
    /// Returns immediately: on a cache hit the ticket is already
    /// resolved; otherwise the request rides the next micro-batch.
    pub fn submit(&self, history: &[u32], k: usize) -> Ticket {
        let metrics = &self.inner.metrics;
        metrics.requests.inc();
        let start = Instant::now();

        if self.inner.cache_enabled {
            let window = self.inner.model.fold_in_window(history);
            let hit = self.inner.cache.lock().expect("cache lock").get(window);
            if let Some(logits) = hit {
                metrics.cache_hits.inc();
                let recs = rank(&logits, history, k);
                // A cache hit never queues: the whole latency is compute
                // (lookup + rank), and queue-wait records nothing.
                let elapsed = as_us(start.elapsed());
                metrics.compute_us.record(elapsed);
                metrics.latency_us.record(elapsed);
                return Ticket::ready(Ok(recs));
            }
        }
        metrics.cache_misses.inc();

        let Some(req_tx) = &self.req_tx else {
            return Ticket::ready(Err(ServeError::ShuttingDown));
        };
        let (reply_tx, reply_rx) = channel::unbounded();
        let req =
            Request { history: history.to_vec(), k, enqueued: start, reply: reply_tx };
        match req_tx.send(req) {
            Ok(()) => {
                metrics.queue_depth.add(1);
                Ticket(TicketState::Pending(reply_rx))
            }
            Err(_) => Ticket::ready(Err(ServeError::ShuttingDown)),
        }
    }

    /// Blocking recommendation: [`Engine::submit`] + [`Ticket::wait`].
    pub fn recommend(&self, history: &[u32], k: usize) -> Reply {
        self.submit(history, k).wait()
    }

    /// Evict the cache entry for this user's history, if present.
    ///
    /// Call this when the user records a new interaction: the cached
    /// logits for their old window are stale. (The *extended* history
    /// keys a different window, so it would miss anyway — eviction
    /// reclaims the dead entry and keeps semantics obvious.)
    pub fn invalidate(&self, history: &[u32]) -> bool {
        let window = self.inner.model.fold_in_window(history);
        self.inner.cache.lock().expect("cache lock").remove(window)
    }

    /// Current counter values.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Full telemetry: counters plus queue-wait / compute / end-to-end
    /// latency distributions and batch-fill occupancy.
    pub fn stats(&self) -> ServeStats {
        self.inner.metrics.stats()
    }

    /// Emit the engine's metric registry as one JSONL record
    /// (`"type":"serve_metrics"`) to `sink`.
    pub fn export_metrics(&self, sink: &dyn EventSink) {
        self.inner.metrics.emit(sink, "serve_metrics");
    }

    /// The model being served.
    pub fn model(&self) -> &Vsan {
        &self.inner.model
    }

    /// Graceful shutdown: stop accepting requests, flush every queued
    /// request through the workers, join all threads, and return the
    /// final counters. Tickets issued before the call still resolve.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.close();
        self.inner.metrics.snapshot()
    }

    /// [`Engine::shutdown`], but returning the full [`ServeStats`] —
    /// drained-queue telemetry includes the queue-wait / compute split
    /// for every request flushed during the drain.
    pub fn shutdown_stats(mut self) -> ServeStats {
        self.close();
        self.inner.metrics.stats()
    }

    fn close(&mut self) {
        // Dropping the request sender disconnects the batcher's
        // receiver *after* it drains what was already queued, so every
        // accepted request is still batched and answered.
        drop(self.req_tx.take());
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        // The batcher dropped `batch_tx` on exit; workers drain the
        // batch queue and stop.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("running", &self.req_tx.is_some())
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Coalesce queued requests into batches. A batch opens with the first
/// request to arrive and is flushed when it reaches `max_batch`, when
/// `deadline` has elapsed since it opened, or when the engine
/// disconnects the queue (shutdown) — whichever comes first.
fn batcher_loop(
    req_rx: &Receiver<Request>,
    batch_tx: &Sender<Vec<Request>>,
    inner: &Inner,
    max_batch: usize,
    deadline: Duration,
) {
    loop {
        let first = match req_rx.recv() {
            Ok(req) => req,
            Err(_) => return, // disconnected with an empty queue
        };
        let mut batch = vec![first];
        // The deadline counts from when the first request was
        // *enqueued*, not when the batcher picked it up, so queue wait
        // time is charged against the latency budget.
        let due = batch[0].enqueued + deadline;
        let mut disconnected = false;
        let flush_counter: &Counter = loop {
            if batch.len() >= max_batch {
                break &inner.metrics.flush_full;
            }
            let now = Instant::now();
            if now >= due {
                break &inner.metrics.flush_deadline;
            }
            match req_rx.recv_timeout(due - now) {
                Ok(req) => batch.push(req),
                Err(RecvTimeoutError::Timeout) => break &inner.metrics.flush_deadline,
                Err(RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break &inner.metrics.flush_shutdown;
                }
            }
        };
        flush_counter.inc();
        inner.metrics.batches.inc();
        inner.metrics.batched_requests.add(batch.len() as u64);
        inner.metrics.batch_fill_pct.record((batch.len() * 100 / max_batch) as u64);
        inner.metrics.queue_depth.add(-(batch.len() as i64));
        if batch_tx.send(batch).is_err() || disconnected {
            // Disconnected implies the queue already drained: the
            // receiver only reports disconnection once empty.
            return;
        }
    }
}

/// Score one batch and reply to every request in it. Identical windows
/// within the batch are deduplicated and forwarded once; the forward is
/// deterministic, so shared logits are exactly what separate forwards
/// would produce.
fn process_batch(inner: &Inner, batch: Vec<Request>) {
    // Everything before this instant is queue wait; everything after is
    // compute. The split is per request (the wait differs per request —
    // later arrivals waited less for the same flush).
    let picked_up = Instant::now();
    for req in &batch {
        inner
            .metrics
            .queue_wait_us
            .record(as_us(picked_up.saturating_duration_since(req.enqueued)));
    }

    let mut windows: Vec<Vec<u32>> = Vec::new();
    let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut which: Vec<usize> = Vec::with_capacity(batch.len());
    for req in &batch {
        let window = inner.model.fold_in_window(&req.history);
        let idx = match index.get(window) {
            Some(&i) => i,
            None => {
                let i = windows.len();
                windows.push(window.to_vec());
                index.insert(window.to_vec(), i);
                i
            }
        };
        which.push(idx);
    }

    let refs: Vec<&[u32]> = windows.iter().map(Vec::as_slice).collect();
    let rows: Vec<Arc<Vec<f32>>> =
        inner.model.score_items_batch(&refs).into_iter().map(Arc::new).collect();

    if inner.cache_enabled {
        let mut cache = inner.cache.lock().expect("cache lock");
        for (window, row) in windows.into_iter().zip(&rows) {
            cache.insert(window, Arc::clone(row));
        }
    }

    for (req, idx) in batch.into_iter().zip(which) {
        let recs = rank(&rows[idx], &req.history, req.k);
        inner.metrics.compute_us.record(as_us(picked_up.elapsed()));
        inner.metrics.latency_us.record(as_us(req.enqueued.elapsed()));
        // A dropped ticket is fine; the logits are already cached.
        let _ = req.reply.send(Ok(recs));
    }
}

/// Top-k by heap-based partial selection over raw logits, excluding the
/// full history — the exact ranking rule of [`Vsan::recommend`]
/// (softmax is strictly increasing, so it never reorders).
fn rank(logits: &[f32], history: &[u32], k: usize) -> Vec<u32> {
    let seen: HashSet<u32> = history.iter().copied().collect();
    vsan_eval::top_n_excluding(logits, k, &seen)
}
