//! The engine: admission queue → micro-batcher → supervised worker
//! pool, with a cache short-circuit on the submit path and a degraded
//! fallback path around everything.
//!
//! ## Failure semantics (DESIGN.md §9)
//!
//! * Every accepted ticket resolves — to a [`Response`] or a typed
//!   [`ServeError`] — across worker panics, load shedding, and
//!   shutdown. No code path strands a ticket.
//! * Per-request deadlines are enforced at admission (blocking pushes
//!   give up), at batcher pickup (expired requests are rejected
//!   *before* they occupy compute), and at completion.
//! * A panicking worker is caught at the batch boundary
//!   ([`std::panic::catch_unwind`]): untouched requests are requeued
//!   (bounded by a retry budget), the thread exits, and a supervisor
//!   respawns a replacement. When the respawn budget is exhausted and
//!   no worker remains, the engine flips into permanent degraded mode.
//! * Degraded mode (overload watermark, full queue, or workers down)
//!   answers from the approximate cache or the popularity fallback
//!   (see [`crate::degrade`]), tagged in [`Response::source`].

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use vsan_core::Vsan;
use vsan_obs::{
    EventSink, FaultEvent, FaultKind, FlightRecorder, Registry, TraceContext, TraceSpan, TraceStage,
};
use vsan_session::{EvictReason, SessionConfig, SessionOutcome, SessionRuntime, SessionTrace};

use crate::cache::SequenceCache;
use crate::config::EngineConfig;
use crate::degrade::{degraded_response, DegradeConfig};
use crate::failpoint;
use crate::metrics::{as_us, Metrics, MetricsSnapshot, ServeStats};
use crate::queue::{AdmissionQueue, BackpressurePolicy, PopOutcome, PushOutcome};

/// Failure modes of the serving path. A model-forward error is *not*
/// one of them: it is surfaced through the fault telemetry
/// ([`FaultKind::ModelError`], the `serve.model_errors` counter) and
/// the affected requests resolve through the degraded path — never as
/// fabricated all-zero scores. These are lifecycle and overload
/// outcomes, every one of them part of the resolution guarantee: a
/// ticket either carries a [`Response`] or one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The worker serving this request disappeared before replying and
    /// the retry budget was exhausted (or the batch was dropped).
    WorkerLost,
    /// The ticket's response was already taken by an earlier `poll`.
    ResponseTaken,
    /// The request's deadline expired before a reply was produced.
    DeadlineExceeded,
    /// The engine is saturated (or its workers are down) and no
    /// degraded fallback could produce an answer.
    Overloaded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::WorkerLost => write!(f, "worker exited before replying"),
            ServeError::ResponseTaken => write!(f, "response already taken"),
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::Overloaded => write!(f, "engine overloaded and no fallback available"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Where a [`Response`] came from. Anything but [`Self::Batch`] /
/// [`Self::Cache`] / [`Self::Session`] is a degraded answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// Computed by the worker pool's batched evaluation forward.
    Batch,
    /// Served from the exact-window sequence cache.
    Cache,
    /// Served by the incremental session path
    /// ([`Engine::append_event`]) — bit-identical to a batch forward of
    /// the same history.
    Session,
    /// Degraded: shortened-window (approximate) cache fallback.
    DegradedCache,
    /// Degraded: static popularity fallback.
    DegradedPopularity,
}

/// A resolved recommendation: the ranked items plus the path that
/// produced them. Dereferences to the item slice, so existing callers
/// that only want the ranking keep working.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    items: Vec<u32>,
    source: ResponseSource,
}

impl Response {
    pub(crate) fn new(items: Vec<u32>, source: ResponseSource) -> Self {
        Response { items, source }
    }

    /// The ranked item ids, best first.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Consume the response, keeping only the ranking.
    pub fn into_items(self) -> Vec<u32> {
        self.items
    }

    /// Which path produced this answer.
    pub fn source(&self) -> ResponseSource {
        self.source
    }

    /// `true` when the answer came from a fallback, not the model.
    pub fn is_degraded(&self) -> bool {
        matches!(self.source, ResponseSource::DegradedCache | ResponseSource::DegradedPopularity)
    }
}

impl std::ops::Deref for Response {
    type Target = [u32];
    fn deref(&self) -> &[u32] {
        &self.items
    }
}

impl PartialEq<Vec<u32>> for Response {
    fn eq(&self, other: &Vec<u32>) -> bool {
        &self.items == other
    }
}

impl PartialEq<[u32]> for Response {
    fn eq(&self, other: &[u32]) -> bool {
        self.items == other
    }
}

type Reply = Result<Response, ServeError>;

/// One queued recommendation request.
struct Request {
    history: Vec<u32>,
    k: usize,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// Times this request has been requeued out of a poisoned batch.
    attempts: u32,
    reply: Sender<Reply>,
    /// The request's trace context. Minted at admission; *extended* (not
    /// replaced) at each propagation point — pickup and compute re-point
    /// it at the freshly recorded child span, so later spans chain
    /// causally: admission → pickup → compute → retrieval/complete.
    trace: TraceContext,
}

/// Handle to an in-flight (or already answered) request.
///
/// Obtained from [`Engine::submit`]; redeem it with [`Ticket::wait`]
/// (blocking) or [`Ticket::poll`] (non-blocking).
pub struct Ticket(TicketState);

enum TicketState {
    /// Answered at submit time (cache hit, degraded answer, or typed
    /// rejection); `None` once the response has been taken.
    Ready(Option<Reply>),
    Pending(Receiver<Reply>),
}

impl Ticket {
    fn ready(reply: Reply) -> Self {
        Ticket(TicketState::Ready(Some(reply)))
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Reply {
        match self.0 {
            TicketState::Ready(Some(reply)) => reply,
            TicketState::Ready(None) => Err(ServeError::ResponseTaken),
            TicketState::Pending(rx) => rx.recv().unwrap_or(Err(ServeError::WorkerLost)),
        }
    }

    /// Non-blocking check: `Some(response)` exactly once when it is
    /// available, `None` while the request is still in flight.
    pub fn poll(&mut self) -> Option<Reply> {
        let out = match &mut self.0 {
            TicketState::Ready(slot) => slot.take(),
            TicketState::Pending(rx) => match rx.try_recv() {
                Ok(reply) => Some(reply),
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => Some(Err(ServeError::WorkerLost)),
            },
        };
        if out.is_some() {
            self.0 = TicketState::Ready(None);
        }
        out
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &self.0 {
            TicketState::Ready(Some(_)) => "ready",
            TicketState::Ready(None) => "taken",
            TicketState::Pending(_) => "pending",
        };
        f.debug_tuple("Ticket").field(&state).finish()
    }
}

/// Work units travelling from the batcher to the workers.
enum BatchMsg {
    /// A batch of requests to score and answer.
    Work(Vec<Request>),
    /// Teardown sentinel: the receiving worker exits.
    Stop,
}

/// Messages to the supervisor thread.
enum Ctrl {
    /// Worker `id` died on a caught panic.
    Died(usize),
    /// The engine is shutting down; stop and join the pool.
    Shutdown,
}

/// State shared between the caller-facing handle, the batcher, the
/// workers, and the supervisor.
struct Inner {
    model: Vsan,
    cache: Mutex<SequenceCache>,
    cache_enabled: bool,
    metrics: Metrics,
    queue: AdmissionQueue<Request>,
    policy: BackpressurePolicy,
    shed_watermark: Option<usize>,
    default_deadline: Option<Duration>,
    degrade: DegradeConfig,
    max_batch_retries: u32,
    /// Set once all workers are down with no respawn budget left; every
    /// request from then on takes the degraded path.
    degraded_mode: AtomicBool,
    fault_sink: Option<Arc<dyn EventSink>>,
    /// Engine birth instant: the zero point for span timestamps, so one
    /// run's spans share a single monotonic clock.
    origin: Instant,
    /// Last-N span ring for post-mortem dumps; `None` disables tracing.
    recorder: Option<Arc<FlightRecorder>>,
    trace_seed: u64,
    /// Admission sequence number; with a fixed [`Self::trace_seed`] the
    /// n-th admitted request always gets the same trace id.
    trace_seq: AtomicU64,
    /// Incremental per-user session state behind [`Engine::append_event`].
    session: SessionRuntime,
    /// Workspaces for the caller-thread session path (the worker pool's
    /// workspaces live on the worker threads). Popped per append, pushed
    /// back after: zero steady-state allocation once the pool is warm.
    session_ws: Mutex<Vec<vsan_core::Workspace>>,
    /// Batches dispatched but not yet fully processed. The batcher
    /// stalls at `max_inflight` instead of running ahead of the pool —
    /// without this cap the unbounded batch channel would absorb any
    /// flood and the admission queue's bound would never bind.
    inflight: Mutex<usize>,
    inflight_cv: Condvar,
    max_inflight: usize,
}

impl Inner {
    /// Emit one structured fault event, if a sink is configured. The
    /// severe kinds — a worker panic, the permanent degraded-mode flip,
    /// a session eviction (storm detection happens downstream) — also
    /// dump the flight recorder to the same sink: the last N spans
    /// leading up to the fault, as a self-contained forensic bundle.
    fn fault(&self, kind: FaultKind, detail: &str) {
        if let Some(sink) = &self.fault_sink {
            FaultEvent::new(kind, detail).emit(sink.as_ref());
            if matches!(
                kind,
                FaultKind::WorkerPanic | FaultKind::DegradedMode | FaultKind::SessionEvicted
            ) {
                if let Some(rec) = &self.recorder {
                    rec.dump(sink.as_ref(), kind.as_str(), detail);
                }
            }
        }
    }

    /// Mint a root trace context for a newly admitted request.
    fn mint_trace(&self) -> TraceContext {
        TraceContext::root(self.trace_seed, self.trace_seq.fetch_add(1, Ordering::Relaxed))
    }

    /// Record one span into the flight recorder. Observation only: a
    /// no-op when tracing is disabled, and never feeds control flow.
    fn trace(&self, ctx: TraceContext, stage: TraceStage, dur_us: u64, attr: u64) {
        if let Some(rec) = &self.recorder {
            rec.record(&TraceSpan { ctx, stage, at_us: as_us(self.origin.elapsed()), dur_us, attr });
        }
    }

    /// Record `stage` as a child span of `parent`.
    fn span(&self, parent: TraceContext, stage: TraceStage, dur_us: u64, attr: u64) {
        self.trace(parent.child(stage.code()), stage, dur_us, attr);
    }

    /// The trace id to attach as a histogram exemplar — `0` (no
    /// exemplar) when tracing is disabled, so a tracing-off engine
    /// exports bit-identical telemetry to the pre-tracing engine.
    fn exemplar(&self, ctx: &TraceContext) -> u64 {
        if self.recorder.is_some() {
            ctx.trace_id
        } else {
            0
        }
    }

    /// Lock the cache, recovering from poisoning: if a worker panicked
    /// while holding the lock the contents are suspect, so the cache is
    /// emptied (always safe — it is only a cache) and the poison flag
    /// cleared.
    fn lock_cache(&self) -> MutexGuard<'_, SequenceCache> {
        match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.cache.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.clear();
                self.fault(FaultKind::CachePoisoned, "cache cleared after poisoned lock");
                guard
            }
        }
    }

    /// Produce a degraded reply for `history` (counted + tagged), or
    /// [`ServeError::Overloaded`] when no fallback can answer.
    fn degraded(&self, history: &[u32], k: usize, cause: &str) -> Reply {
        match degraded_response(&self.model, &self.cache, &self.degrade, history, k) {
            Some(resp) => {
                match resp.source() {
                    ResponseSource::DegradedCache => self.metrics.degraded_cache.inc(),
                    ResponseSource::DegradedPopularity => self.metrics.degraded_popularity.inc(),
                    _ => {}
                }
                self.fault(FaultKind::Degraded, cause);
                Ok(resp)
            }
            None => {
                self.metrics.overloaded_errors.inc();
                self.fault(FaultKind::Overloaded, cause);
                Err(ServeError::Overloaded)
            }
        }
    }

    /// Record end-to-end latency, close the trace with a `complete`
    /// span, and deliver the reply. Every terminal resolution of a
    /// *queued* request funnels through here (a dropped ticket is fine —
    /// the send just returns an error).
    fn finish(&self, enqueued: Instant, trace: TraceContext, reply_to: &Sender<Reply>, reply: Reply) {
        let elapsed = as_us(enqueued.elapsed());
        self.metrics.latency_us.record_traced(elapsed, self.exemplar(&trace));
        self.span(trace, TraceStage::Complete, elapsed, reply.is_ok() as u64);
        let _ = reply_to.send(reply);
    }

    /// Resolve a queued request through the degraded path.
    fn finish_degraded(&self, req: Request, cause: &str) {
        let reply = self.degraded(&req.history, req.k, cause);
        self.span(req.trace, TraceStage::Degraded, 0, reply.is_ok() as u64);
        self.finish(req.enqueued, req.trace, &req.reply, reply);
    }

    fn lock_inflight(&self) -> MutexGuard<'_, usize> {
        // A plain counter: poisoning cannot leave it inconsistent.
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until the pool has capacity for one more batch. Gives up
    /// waiting (but still takes the slot) once the engine is degraded
    /// or shutting down — in both states the batcher resolves or drains
    /// batches itself and must not deadlock against a dead pool.
    fn acquire_batch_slot(&self) {
        let mut n = self.lock_inflight();
        while *n >= self.max_inflight
            && !self.degraded_mode.load(Ordering::Acquire)
            && !self.queue.is_closed()
        {
            n = self.inflight_cv.wait(n).unwrap_or_else(PoisonError::into_inner);
        }
        *n += 1;
    }

    /// Mark one dispatched batch as fully processed.
    fn release_batch_slot(&self) {
        let mut n = self.lock_inflight();
        // Requeued panic-survivor batches are dispatched without a slot,
        // so their completion saturates instead of underflowing.
        *n = n.saturating_sub(1);
        drop(n);
        self.inflight_cv.notify_one();
    }

    /// Wake a batcher blocked on the in-flight cap (degraded-mode flip
    /// or shutdown).
    fn wake_batcher(&self) {
        self.inflight_cv.notify_all();
    }

    /// Pop a session workspace (allocating on first use per concurrent
    /// caller). A plain value pool: poisoning cannot apply.
    fn take_session_ws(&self) -> vsan_core::Workspace {
        let mut pool = self.session_ws.lock().unwrap_or_else(PoisonError::into_inner);
        pool.pop().unwrap_or_default()
    }

    /// Return a session workspace to the pool.
    fn put_session_ws(&self, ws: vsan_core::Workspace) {
        let mut pool = self.session_ws.lock().unwrap_or_else(PoisonError::into_inner);
        pool.push(ws);
    }
}

/// The serving engine. See the crate docs for the architecture; create
/// one with [`Engine::start`], stop it with [`Engine::shutdown`] (or
/// just drop it — both drain the queue before joining the threads).
pub struct Engine {
    inner: Arc<Inner>,
    batcher: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    ctrl_tx: Sender<Ctrl>,
}

impl Engine {
    /// Spawn the batcher, the worker pool, and the pool supervisor
    /// around a trained model.
    ///
    /// [`EngineConfig::retrieval`] is applied here, before any worker
    /// can score: a clustered index is built deterministically from the
    /// model's *current* parameters, so starting an engine on a
    /// checkpoint-restored model always serves the restored weights —
    /// rebuilding after a reload is this call, not a separate step.
    pub fn start(mut model: Vsan, cfg: EngineConfig) -> Self {
        model.set_retrieval(cfg.retrieval.clone());
        let (max_batch, workers) = (cfg.max_batch.max(1), cfg.workers.max(1));
        let session_cfg =
            SessionConfig::new().with_capacity(cfg.session_capacity).with_ttl(cfg.session_ttl);
        let session = SessionRuntime::new(&model, &session_cfg)
            .expect("session pad state (empty-history prepare cannot hit invalid items)");
        let inner = Arc::new(Inner {
            model,
            cache: Mutex::new(SequenceCache::new(cfg.cache_capacity)),
            cache_enabled: cfg.cache_capacity > 0,
            metrics: Metrics::default(),
            queue: AdmissionQueue::new(cfg.queue_capacity),
            policy: cfg.backpressure,
            shed_watermark: cfg.shed_watermark,
            default_deadline: cfg.default_deadline,
            degrade: cfg.degrade.clone(),
            max_batch_retries: cfg.max_batch_retries,
            degraded_mode: AtomicBool::new(false),
            fault_sink: cfg.fault_sink.clone(),
            origin: Instant::now(),
            recorder: (cfg.recorder_capacity > 0)
                .then(|| Arc::new(FlightRecorder::new(cfg.recorder_capacity))),
            trace_seed: cfg.trace_seed,
            trace_seq: AtomicU64::new(0),
            session,
            session_ws: Mutex::new(Vec::new()),
            inflight: Mutex::new(0),
            inflight_cv: Condvar::new(),
            // One batch per worker in flight plus one ready behind each:
            // enough to keep the pool saturated, small enough that a
            // flood backs up into the *bounded* admission queue where
            // deadlines and backpressure can see it.
            max_inflight: workers * 2,
        });

        let (batch_tx, batch_rx) = channel::unbounded::<BatchMsg>();
        let (ctrl_tx, ctrl_rx) = channel::unbounded::<Ctrl>();

        let batcher = {
            let inner = Arc::clone(&inner);
            let batch_tx = batch_tx.clone();
            let deadline = cfg.batch_deadline;
            std::thread::Builder::new()
                .name("vsan-serve-batcher".into())
                .spawn(move || batcher_loop(&inner, &batch_tx, max_batch, deadline))
                .expect("spawn batcher thread")
        };

        let ctx = WorkerCtx {
            inner: Arc::clone(&inner),
            batch_rx,
            batch_tx,
            ctrl_tx: ctrl_tx.clone(),
            max_batch,
        };
        let mut handles = HashMap::new();
        for id in 0..workers {
            handles.insert(id, spawn_worker(id, ctx.clone()));
        }
        inner.metrics.workers_alive.set(workers as i64);

        let supervisor = {
            let inner = Arc::clone(&inner);
            let max_respawns = cfg.max_worker_respawns;
            std::thread::Builder::new()
                .name("vsan-serve-supervisor".into())
                .spawn(move || supervisor_loop(&inner, ctx, &ctrl_rx, handles, max_respawns))
                .expect("spawn supervisor thread")
        };

        Engine { inner, batcher: Some(batcher), supervisor: Some(supervisor), ctrl_tx }
    }

    /// Enqueue a request for the top `k` items after `history`, with
    /// the engine's default deadline ([`EngineConfig::default_deadline`]).
    ///
    /// Returns immediately unless the backpressure policy is
    /// [`BackpressurePolicy::Block`] and the queue is full. On a cache
    /// hit, a degraded resolution, or a typed rejection the ticket is
    /// already resolved; otherwise the request rides the next
    /// micro-batch.
    pub fn submit(&self, history: &[u32], k: usize) -> Ticket {
        self.submit_with_deadline(history, k, self.inner.default_deadline)
    }

    /// [`Engine::submit`] with an explicit per-request deadline
    /// (`None` = no deadline), measured from this call.
    pub fn submit_with_deadline(
        &self,
        history: &[u32],
        k: usize,
        deadline: Option<Duration>,
    ) -> Ticket {
        let inner = &*self.inner;
        let metrics = &inner.metrics;
        metrics.requests.inc();
        let start = Instant::now();
        // Every request roots a trace at admission, whatever its fate:
        // the span tree tells shed from served from deadline-missed.
        let trace = inner.mint_trace();
        inner.trace(trace, TraceStage::Admission, 0, history.len() as u64);

        if inner.cache_enabled {
            let window = inner.model.fold_in_window(history);
            let hit = inner.lock_cache().get(window);
            if let Some(logits) = hit {
                metrics.cache_hits.inc();
                let recs = rank(&logits, history, k);
                // A cache hit never queues: the whole latency is compute
                // (lookup + rank), and queue-wait records nothing.
                let elapsed = as_us(start.elapsed());
                metrics.compute_us.record_traced(elapsed, inner.exemplar(&trace));
                metrics.latency_us.record_traced(elapsed, inner.exemplar(&trace));
                inner.span(trace, TraceStage::CacheHit, elapsed, k as u64);
                return Ticket::ready(Ok(Response::new(recs, ResponseSource::Cache)));
            }
        }
        metrics.cache_misses.inc();

        if inner.degraded_mode.load(Ordering::Acquire) {
            let reply = inner.degraded(history, k, "workers_down");
            let elapsed = as_us(start.elapsed());
            metrics.latency_us.record_traced(elapsed, inner.exemplar(&trace));
            inner.span(trace, TraceStage::Degraded, elapsed, reply.is_ok() as u64);
            return Ticket::ready(reply);
        }

        if let Some(watermark) = inner.shed_watermark {
            if inner.queue.len() >= watermark {
                metrics.load_shed.inc();
                inner.fault(FaultKind::LoadShed, "watermark");
                let reply = inner.degraded(history, k, "watermark");
                let elapsed = as_us(start.elapsed());
                metrics.latency_us.record_traced(elapsed, inner.exemplar(&trace));
                inner.span(trace, TraceStage::Shed, elapsed, watermark as u64);
                return Ticket::ready(reply);
            }
        }

        let (reply_tx, reply_rx) = channel::unbounded();
        let due = deadline.map(|d| start + d);
        let req = Request {
            history: history.to_vec(),
            k,
            enqueued: start,
            deadline: due,
            attempts: 0,
            reply: reply_tx,
            trace,
        };
        match inner.queue.push(req, inner.policy, due) {
            PushOutcome::Queued => {
                metrics.queue_depth.add(1);
                Ticket(TicketState::Pending(reply_rx))
            }
            PushOutcome::Shed { evicted } => {
                // Net queue depth is unchanged: the evictee left, the
                // newcomer entered. The evictee resolves degraded.
                metrics.shed_oldest.inc();
                inner.fault(FaultKind::Shed, "shed_oldest");
                inner.span(evicted.trace, TraceStage::Shed, 0, 0);
                inner.finish_degraded(evicted, "shed_oldest");
                Ticket(TicketState::Pending(reply_rx))
            }
            PushOutcome::Rejected { item } => {
                metrics.rejected_newest.inc();
                inner.fault(FaultKind::Rejected, "reject_newest");
                inner.span(item.trace, TraceStage::Rejected, 0, 0);
                let reply = inner.degraded(&item.history, item.k, "reject_newest");
                inner.finish(item.enqueued, item.trace, &item.reply, reply);
                Ticket(TicketState::Pending(reply_rx))
            }
            PushOutcome::Expired { item } => {
                metrics.deadline_miss_admission.inc();
                inner.fault(FaultKind::DeadlineMiss, "admission");
                inner.span(item.trace, TraceStage::DeadlineMiss, 0, 0);
                inner.finish(item.enqueued, item.trace, &item.reply, Err(ServeError::DeadlineExceeded));
                Ticket(TicketState::Pending(reply_rx))
            }
            PushOutcome::Closed { item } => {
                inner.finish(item.enqueued, item.trace, &item.reply, Err(ServeError::ShuttingDown));
                Ticket(TicketState::Pending(reply_rx))
            }
        }
    }

    /// Blocking recommendation: [`Engine::submit`] + [`Ticket::wait`].
    pub fn recommend(&self, history: &[u32], k: usize) -> Reply {
        self.submit(history, k).wait()
    }

    /// Evict the cache entry for this user's history, if present.
    ///
    /// Call this when the user records a new interaction: the cached
    /// logits for their old window are stale. (The *extended* history
    /// keys a different window, so it would miss anyway — eviction
    /// reclaims the dead entry and keeps semantics obvious.)
    pub fn invalidate(&self, history: &[u32]) -> bool {
        let window = self.inner.model.fold_in_window(history);
        let removed = self.inner.lock_cache().remove(window);
        if !removed {
            // Not an error (racing invalidations are legal), but a high
            // miss rate means callers invalidate windows that never
            // cached — worth a counter, not silence.
            self.inner.metrics.cache_invalidate_misses.inc();
        }
        removed
    }

    /// Fold one interaction event into `user`'s incremental session and
    /// return the top `k` recommendations for the grown history, served
    /// by the prefix-keyed layer-state cache (README § Incremental
    /// sessions) — bit-identical to a batch forward of the same history.
    ///
    /// `hint` is the client's view of the history *before* this event:
    /// `None` trusts the server-side session; `Some` cross-checks it. A
    /// missing session, an eviction, or a hint running ahead of the
    /// cache are never errors — they cost a transparent recompute,
    /// tagged in the `session.*` metrics. A *contradictory* hint resets
    /// the session (the hint wins) and fires a `session_reset` fault.
    /// In degraded mode, and on a genuine model error (e.g. an
    /// out-of-vocabulary id), the event resolves through the degraded
    /// fallback path like any other request.
    pub fn append_event(
        &self,
        user: u64,
        hint: Option<&[u32]>,
        item: u32,
        k: usize,
    ) -> Result<Response, ServeError> {
        let inner = &*self.inner;
        let metrics = &inner.metrics;
        metrics.requests.inc();
        let start = Instant::now();
        let trace = inner.mint_trace();
        inner.trace(trace, TraceStage::Admission, 0, item as u64);

        let degraded_history = || {
            let mut h = hint.unwrap_or_default().to_vec();
            h.push(item);
            h
        };
        if inner.degraded_mode.load(Ordering::Acquire) {
            let reply = inner.degraded(&degraded_history(), k, "workers_down");
            let elapsed = as_us(start.elapsed());
            metrics.latency_us.record_traced(elapsed, inner.exemplar(&trace));
            inner.span(trace, TraceStage::Degraded, elapsed, reply.is_ok() as u64);
            return reply;
        }

        // The session runtime records its own sub-stage spans (resolve /
        // prepare / apply / commit) as children of this `session` span.
        let sctx = trace.child(TraceStage::Session.code());
        inner.trace(sctx, TraceStage::Session, 0, user);
        let strace = inner
            .recorder
            .as_deref()
            .map(|recorder| SessionTrace { recorder, ctx: sctx, origin: inner.origin });
        let mut ws = inner.take_session_ws();
        let result =
            inner.session.append_event_traced(&inner.model, user, hint, item, &mut ws, start, strace);
        inner.put_session_ws(ws);
        match result {
            Ok(r) => {
                match r.outcome {
                    SessionOutcome::Append => metrics.session_appends.inc(),
                    SessionOutcome::Resumed { .. } => metrics.session_resumes.inc(),
                    SessionOutcome::ColdStart => metrics.session_cold_starts.inc(),
                    SessionOutcome::Reset => {
                        metrics.session_resets.inc();
                        inner.fault(FaultKind::SessionReset, &format!("user-{user}"));
                    }
                }
                for ev in &r.evictions {
                    metrics.session_evictions.inc();
                    let reason = match ev.reason {
                        EvictReason::Capacity => "capacity",
                        EvictReason::Ttl => "ttl",
                    };
                    inner.fault(FaultKind::SessionEvicted, &format!("user-{} ({reason})", ev.user));
                }
                let stats = inner.session.stats();
                metrics.sessions_live.set(stats.sessions as i64);
                metrics.session_bytes.set(stats.bytes as i64);

                let recs = rank(&r.logits, &r.history, k);
                // Keep the sequence cache coherent for free: these are
                // exactly the logits a batch forward of the grown
                // history would produce, so a subsequent `submit` with
                // the same history hits instead of recomputing.
                if inner.cache_enabled {
                    let window = inner.model.fold_in_window(&r.history).to_vec();
                    inner.lock_cache().insert(window, Arc::new(r.logits));
                }
                let elapsed = as_us(start.elapsed());
                metrics.compute_us.record_traced(elapsed, inner.exemplar(&trace));
                metrics.latency_us.record_traced(elapsed, inner.exemplar(&trace));
                inner.span(trace, TraceStage::Complete, elapsed, 1);
                Ok(Response::new(recs, ResponseSource::Session))
            }
            Err(err) => {
                // Surfaced, never hidden — same contract as a failed
                // batch forward: fault telemetry fires and the request
                // resolves degraded, not with fabricated logits.
                metrics.model_errors.inc();
                inner.fault(FaultKind::ModelError, &err);
                let reply = inner.degraded(&degraded_history(), k, "model_error");
                let elapsed = as_us(start.elapsed());
                metrics.latency_us.record_traced(elapsed, inner.exemplar(&trace));
                inner.span(trace, TraceStage::Degraded, elapsed, reply.is_ok() as u64);
                reply
            }
        }
    }

    /// Drop `user`'s incremental session (logout / end of stream).
    /// `false` when no session was resident.
    pub fn end_session(&self, user: u64) -> bool {
        self.inner.session.end_session(user)
    }

    /// `true` once the engine has permanently fallen back to degraded
    /// answers (all workers down with no respawn budget left).
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded_mode.load(Ordering::Acquire)
    }

    /// Current counter values.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Full telemetry: counters plus queue-wait / compute / end-to-end
    /// latency distributions and batch-fill occupancy.
    pub fn stats(&self) -> ServeStats {
        self.inner.metrics.stats()
    }

    /// Emit the engine's metric registry as one JSONL record
    /// (`"type":"serve_metrics"`) to `sink`.
    pub fn export_metrics(&self, sink: &dyn EventSink) {
        self.inner.metrics.emit(sink, "serve_metrics");
    }

    /// The engine's live metric registry — hand it to
    /// [`vsan_obs::ExpositionServer::bind`] to serve Prometheus text
    /// exposition, or to [`vsan_obs::expo::render`] for a one-shot
    /// scrape.
    pub fn metrics_registry(&self) -> Arc<Registry> {
        self.inner.metrics.registry()
    }

    /// The flight recorder holding the last N trace spans, or `None`
    /// when tracing is disabled ([`EngineConfig::recorder_capacity`]
    /// = 0).
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.inner.recorder.clone()
    }

    /// Dump the flight recorder's contents to `sink` as a JSONL
    /// forensic bundle (the same shape a fault-triggered dump emits).
    /// Returns the number of records written; `0` when tracing is
    /// disabled.
    pub fn dump_flight_recorder(&self, sink: &dyn EventSink) -> usize {
        match &self.inner.recorder {
            Some(rec) => rec.dump(sink, "manual", "operator-requested dump"),
            None => 0,
        }
    }

    /// The model being served.
    pub fn model(&self) -> &Vsan {
        &self.inner.model
    }

    /// Graceful shutdown: stop accepting requests, flush every queued
    /// request through the workers, join all threads, and return the
    /// final counters. Tickets issued before the call still resolve.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.close();
        self.inner.metrics.snapshot()
    }

    /// [`Engine::shutdown`], but returning the full [`ServeStats`] —
    /// drained-queue telemetry includes the queue-wait / compute split
    /// for every request flushed during the drain.
    pub fn shutdown_stats(mut self) -> ServeStats {
        self.close();
        self.inner.metrics.stats()
    }

    fn close(&mut self) {
        // Closing the admission queue wakes blocked submitters (they
        // get `ShuttingDown`) and lets the batcher drain what was
        // already queued, so every accepted request is still answered.
        self.inner.queue.close();
        // The batcher may be parked on the in-flight cap rather than the
        // queue; wake it so it observes the close.
        self.inner.wake_batcher();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        // All work batches are now enqueued; the supervisor stops the
        // workers (one Stop sentinel each), joins them, and resolves
        // anything stranded in the batch channel.
        if let Some(handle) = self.supervisor.take() {
            let _ = self.ctrl_tx.send(Ctrl::Shutdown);
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("running", &!self.inner.queue.is_closed())
            .field("workers_alive", &self.inner.metrics.workers_alive.get())
            .field("degraded", &self.is_degraded())
            .finish()
    }
}

/// Pop-side bookkeeping: account the dequeue and enforce the pickup
/// deadline. Returns `None` (request already resolved
/// `DeadlineExceeded`) for expired requests — they never reach a batch,
/// so they never occupy compute.
fn pickup(inner: &Inner, mut req: Request) -> Option<Request> {
    inner.metrics.queue_depth.add(-1);
    // Extend the trace: the pickup span's duration is the queue wait so
    // far, and downstream spans (compute, retrieval) chain off it.
    let wait = as_us(req.enqueued.elapsed());
    let pctx = req.trace.child(TraceStage::Pickup.code());
    inner.trace(pctx, TraceStage::Pickup, wait, req.attempts as u64);
    req.trace = pctx;
    if req.deadline.is_some_and(|d| Instant::now() >= d) {
        inner.metrics.deadline_miss_pickup.inc();
        inner.fault(FaultKind::DeadlineMiss, "pickup");
        inner.span(req.trace, TraceStage::DeadlineMiss, 0, 0);
        inner.finish(req.enqueued, req.trace, &req.reply, Err(ServeError::DeadlineExceeded));
        return None;
    }
    Some(req)
}

/// Coalesce queued requests into batches. A batch opens with the first
/// live request to arrive and is flushed when it reaches `max_batch`,
/// when `deadline` has elapsed since it opened, or when the engine
/// closes the queue (shutdown) — whichever comes first. Expired
/// requests are rejected at pickup and never enter a batch; in
/// degraded mode requests resolve straight through the fallback.
fn batcher_loop(
    inner: &Inner,
    batch_tx: &Sender<BatchMsg>,
    max_batch: usize,
    deadline: Duration,
) {
    loop {
        let first = loop {
            match inner.queue.pop() {
                PopOutcome::Item(req) => {
                    let Some(req) = pickup(inner, req) else { continue };
                    if inner.degraded_mode.load(Ordering::Acquire) {
                        inner.finish_degraded(req, "workers_down");
                        continue;
                    }
                    break req;
                }
                PopOutcome::TimedOut => unreachable!("untimed pop cannot time out"),
                PopOutcome::Closed => return,
            }
        };
        let mut batch = vec![first];
        // The deadline counts from when the first request was
        // *enqueued*, not when the batcher picked it up, so queue wait
        // time is charged against the latency budget.
        let due = batch[0].enqueued + deadline;
        let mut closed = false;
        let flush_counter = loop {
            if batch.len() >= max_batch {
                break &inner.metrics.flush_full;
            }
            if Instant::now() >= due {
                break &inner.metrics.flush_deadline;
            }
            match inner.queue.pop_until(due) {
                PopOutcome::Item(req) => {
                    if let Some(req) = pickup(inner, req) {
                        if inner.degraded_mode.load(Ordering::Acquire) {
                            inner.finish_degraded(req, "workers_down");
                        } else {
                            batch.push(req);
                        }
                    }
                }
                PopOutcome::TimedOut => break &inner.metrics.flush_deadline,
                PopOutcome::Closed => {
                    closed = true;
                    break &inner.metrics.flush_shutdown;
                }
            }
        };
        // Reserve a pool slot; under saturation this blocks here while
        // new requests back up into the bounded admission queue.
        inner.acquire_batch_slot();
        // Top up with whatever accumulated while we waited for the
        // slot: the first request's deadline anchor is long past by
        // then, and those requests would otherwise idle until the
        // *next* slot anyway — fuller batches at strictly lower
        // latency. `pop_until(now)` never waits.
        while !closed && batch.len() < max_batch {
            match inner.queue.pop_until(Instant::now()) {
                PopOutcome::Item(req) => {
                    if let Some(req) = pickup(inner, req) {
                        if inner.degraded_mode.load(Ordering::Acquire) {
                            inner.finish_degraded(req, "workers_down");
                        } else {
                            batch.push(req);
                        }
                    }
                }
                PopOutcome::TimedOut => break,
                PopOutcome::Closed => {
                    closed = true;
                    break;
                }
            }
        }
        flush_counter.inc();
        inner.metrics.batches.inc();
        inner.metrics.batched_requests.add(batch.len() as u64);
        inner.metrics.batch_fill_pct.record((batch.len() * 100 / max_batch) as u64);

        if let Some(action) = failpoint::fire("drop_batch") {
            if failpoint::act("drop_batch", action) {
                inner.release_batch_slot();
                inner.metrics.dropped_batches.inc();
                inner.fault(FaultKind::BatchDropped, "drop_batch failpoint");
                for req in batch {
                    inner.finish(req.enqueued, req.trace, &req.reply, Err(ServeError::WorkerLost));
                }
                if closed {
                    return;
                }
                continue;
            }
        }

        if inner.degraded_mode.load(Ordering::Acquire) {
            // The pool died while this batch was filling (or while we
            // waited for a slot); resolve it here rather than stranding
            // it in the batch channel.
            inner.release_batch_slot();
            for req in batch {
                inner.finish_degraded(req, "workers_down");
            }
        } else if batch_tx.send(BatchMsg::Work(batch)).is_err() {
            inner.release_batch_slot();
            return;
        }
        if closed {
            return;
        }
    }
}

/// Everything a worker (and the supervisor, to spawn one) needs.
#[derive(Clone)]
struct WorkerCtx {
    inner: Arc<Inner>,
    batch_rx: Receiver<BatchMsg>,
    /// For requeueing the untouched remainder of a poisoned batch.
    batch_tx: Sender<BatchMsg>,
    ctrl_tx: Sender<Ctrl>,
    /// Sizes the per-worker inference workspace at spawn.
    max_batch: usize,
}

fn spawn_worker(id: usize, ctx: WorkerCtx) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("vsan-serve-worker-{id}"))
        .spawn(move || worker_loop(id, &ctx))
        .expect("spawn worker thread")
}

/// Worker: score batches until told to stop. A panic anywhere in the
/// batch is caught at this boundary; the untouched requests are
/// requeued (bounded by the retry budget), the supervisor is notified,
/// and the thread exits — the supervisor respawns a replacement.
///
/// Each worker owns one [`vsan_core::Workspace`], pre-sized for
/// `max_batch` fold-ins at spawn, so the inference fast path performs
/// zero steady-state allocation across batches (README § Inference
/// fast path).
fn worker_loop(id: usize, ctx: &WorkerCtx) {
    let mut ws = ctx.inner.model.workspace(ctx.max_batch);
    loop {
        match ctx.batch_rx.recv() {
            Err(_) => return,
            Ok(BatchMsg::Stop) => return,
            Ok(BatchMsg::Work(batch)) => {
                let mut slots: Vec<Option<Request>> = batch.into_iter().map(Some).collect();
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| process_batch(&ctx.inner, &mut slots, &mut ws)));
                ctx.inner.release_batch_slot();
                if outcome.is_err() {
                    isolate_panic(id, ctx, slots);
                    return;
                }
            }
        }
    }
}

/// Post-panic cleanup, running on the dying worker thread: requeue what
/// the batch never touched, fail what is out of retries, tell the
/// supervisor.
fn isolate_panic(id: usize, ctx: &WorkerCtx, slots: Vec<Option<Request>>) {
    let inner = &*ctx.inner;
    inner.metrics.worker_panics.inc();
    inner.metrics.workers_alive.add(-1);
    inner.fault(FaultKind::WorkerPanic, &format!("worker-{id}"));

    let mut requeue: Vec<Request> = Vec::new();
    for mut req in slots.into_iter().flatten() {
        req.attempts += 1;
        if req.attempts > inner.max_batch_retries {
            inner.metrics.retry_exhausted.inc();
            inner.finish(req.enqueued, req.trace, &req.reply, Err(ServeError::WorkerLost));
        } else {
            inner.metrics.requeued_requests.inc();
            inner.span(req.trace, TraceStage::Requeued, 0, req.attempts as u64);
            requeue.push(req);
        }
    }
    if !requeue.is_empty() {
        inner.fault(FaultKind::BatchRequeued, &format!("{} requests", requeue.len()));
        if let Err(send_err) = ctx.batch_tx.send(BatchMsg::Work(requeue)) {
            // Channel torn down mid-panic: fail the stragglers, typed.
            let crossbeam::channel::SendError(msg) = send_err;
            if let BatchMsg::Work(reqs) = msg {
                for req in reqs {
                    inner.finish(req.enqueued, req.trace, &req.reply, Err(ServeError::WorkerLost));
                }
            }
        }
    }
    let _ = ctx.ctrl_tx.send(Ctrl::Died(id));
}

/// Supervisor: joins dead workers, respawns them while budget remains,
/// flips the engine into degraded mode when the pool is gone, and runs
/// the teardown protocol at shutdown.
fn supervisor_loop(
    inner: &Arc<Inner>,
    ctx: WorkerCtx,
    ctrl_rx: &Receiver<Ctrl>,
    mut handles: HashMap<usize, JoinHandle<()>>,
    max_respawns: u64,
) {
    let mut respawns = 0u64;
    loop {
        match ctrl_rx.recv() {
            Err(_) => break,
            Ok(Ctrl::Shutdown) => break,
            Ok(Ctrl::Died(id)) => {
                if let Some(handle) = handles.remove(&id) {
                    let _ = handle.join();
                }
                if respawns < max_respawns {
                    respawns += 1;
                    inner.metrics.worker_respawns.inc();
                    inner.metrics.workers_alive.add(1);
                    inner.fault(FaultKind::WorkerRespawn, &format!("worker-{id}"));
                    handles.insert(id, spawn_worker(id, ctx.clone()));
                } else if inner.metrics.workers_alive.get() <= 0 {
                    // Pool gone, budget spent: permanent degraded mode.
                    // New submits and the batcher resolve through the
                    // fallback from here on; batches already dispatched
                    // to the dead pool resolve right now.
                    inner.degraded_mode.store(true, Ordering::Release);
                    inner.wake_batcher();
                    inner.fault(FaultKind::DegradedMode, "all workers down, respawn budget spent");
                    drain_batches(&ctx.batch_rx, |req| inner.finish_degraded(req, "workers_down"));
                }
            }
        }
    }
    // Teardown: one Stop per live worker (a worker consumes exactly
    // one), join the pool, then resolve anything stranded in the batch
    // channel (e.g. a batch requeued after the Stops went out).
    for _ in 0..handles.len() {
        let _ = ctx.batch_tx.send(BatchMsg::Stop);
    }
    for (_, handle) in handles.drain() {
        let _ = handle.join();
    }
    drain_batches(&ctx.batch_rx, |req| {
        inner.finish(req.enqueued, req.trace, &req.reply, Err(ServeError::ShuttingDown));
    });
}

/// Resolve every request currently sitting in the batch channel.
fn drain_batches(batch_rx: &Receiver<BatchMsg>, mut resolve: impl FnMut(Request)) {
    while let Ok(msg) = batch_rx.try_recv() {
        if let BatchMsg::Work(batch) = msg {
            for req in batch {
                resolve(req);
            }
        }
    }
}

/// Score one batch and reply to every request in it. Identical windows
/// within the batch are deduplicated and forwarded once; the forward is
/// deterministic, so shared logits are exactly what separate forwards
/// would produce. Requests are *taken out* of their slots as they are
/// answered — on a panic, whatever is still in a slot was untouched and
/// is safe to requeue.
///
/// The forward can fail (e.g. an out-of-vocabulary item id in a
/// window). A failure is surfaced, never hidden: the fault counter and
/// JSONL event fire, nothing enters the cache, and every request in
/// the batch resolves through the degraded path instead of receiving
/// fabricated all-zero logits.
fn process_batch(inner: &Inner, slots: &mut [Option<Request>], ws: &mut vsan_core::Workspace) {
    // Everything before this instant is queue wait; everything after is
    // compute. The split is per request (the wait differs per request —
    // later arrivals waited less for the same flush). Requeued requests
    // already recorded their wait at first pickup.
    let picked_up = Instant::now();
    let live = slots.iter().flatten().count() as u64;
    for req in slots.iter_mut().flatten() {
        if req.attempts == 0 {
            inner.metrics.queue_wait_us.record_traced(
                as_us(picked_up.saturating_duration_since(req.enqueued)),
                inner.exemplar(&req.trace),
            );
        }
        // The compute span is recorded *on entry*, before the failpoints
        // below can panic: a poisoned batch's flight-recorder dump must
        // show the full admission → pickup → compute chain for every
        // request it held. Retries salt the span id with the attempt so
        // each pass through compute is a distinct span.
        let salt = TraceStage::Compute.code() | (req.attempts as u64) << 8;
        let cctx = req.trace.child(salt);
        inner.trace(cctx, TraceStage::Compute, 0, live);
        req.trace = cctx;
    }

    if let Some(action) = failpoint::fire("panic_in_worker") {
        failpoint::act("panic_in_worker", action);
    }
    if let Some(action) = failpoint::fire("slow_compute") {
        failpoint::act("slow_compute", action);
    }

    let mut windows: Vec<Vec<u32>> = Vec::new();
    let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut which: Vec<usize> = Vec::with_capacity(slots.len());
    for req in slots.iter().flatten() {
        let window = inner.model.fold_in_window(&req.history);
        let idx = match index.get(window) {
            Some(&i) => i,
            None => {
                let i = windows.len();
                windows.push(window.to_vec());
                index.insert(window.to_vec(), i);
                i
            }
        };
        which.push(idx);
    }

    let refs: Vec<&[u32]> = windows.iter().map(Vec::as_slice).collect();

    if inner.model.clustered_active() {
        // Clustered retrieval: one hidden row per distinct window, then a
        // two-stage index query per request. Survivors re-rank with the
        // exact scores and the exact comparator, so `ResponseSource`
        // stays `Batch`. No full logits rows exist here, so nothing is
        // inserted into the sequence cache (hits still serve — session
        // warming inserts exact rows, which rank at least as well).
        let d = inner.model.config().base.dim;
        let hidden = match inner.model.try_last_hidden_batch_with(&refs, ws) {
            Ok(hidden) => hidden,
            Err(err) => {
                inner.metrics.model_errors.inc();
                inner.fault(FaultKind::ModelError, &err);
                for slot in slots.iter_mut() {
                    let Some(req) = slot.take() else { continue };
                    inner.finish_degraded(req, "model_error");
                }
                return;
            }
        };
        let mut row_of = which.into_iter();
        for slot in slots.iter_mut() {
            let Some(req) = slot.take() else { continue };
            let idx = row_of.next().expect("one row index per live slot");
            if req.deadline.is_some_and(|dl| Instant::now() >= dl) {
                inner.metrics.deadline_miss_completion.inc();
                inner.fault(FaultKind::DeadlineMiss, "completion");
                inner.span(req.trace, TraceStage::DeadlineMiss, 0, 0);
                inner.finish(req.enqueued, req.trace, &req.reply, Err(ServeError::DeadlineExceeded));
                continue;
            }
            match inner
                .model
                .recommend_from_hidden_stats(&hidden[idx * d..(idx + 1) * d], &req.history, req.k)
            {
                Ok((recs, qs)) => {
                    inner.metrics.retrieval_clustered.inc();
                    inner.metrics.retrieval_probes.record(qs.probed_clusters as u64);
                    inner.metrics.retrieval_survivors.record(qs.survivors as u64);
                    // attr packs the probe stats: probed clusters in the
                    // high half, re-rank survivors in the low half.
                    inner.span(
                        req.trace,
                        TraceStage::Retrieval,
                        0,
                        (qs.probed_clusters as u64) << 32 | qs.survivors as u64,
                    );
                    inner
                        .metrics
                        .compute_us
                        .record_traced(as_us(picked_up.elapsed()), inner.exemplar(&req.trace));
                    inner.finish(
                        req.enqueued,
                        req.trace,
                        &req.reply,
                        Ok(Response::new(recs, ResponseSource::Batch)),
                    );
                }
                Err(err) => {
                    inner.metrics.model_errors.inc();
                    inner.fault(FaultKind::ModelError, &err);
                    inner.finish_degraded(req, "model_error");
                }
            }
        }
        return;
    }

    let rows: Vec<Arc<Vec<f32>>> = match inner.model.try_score_items_batch_with(&refs, ws) {
        Ok(rows) => rows.into_iter().map(Arc::new).collect(),
        Err(err) => {
            inner.metrics.model_errors.inc();
            inner.fault(FaultKind::ModelError, &err);
            for slot in slots.iter_mut() {
                let Some(req) = slot.take() else { continue };
                inner.finish_degraded(req, "model_error");
            }
            return;
        }
    };

    if inner.cache_enabled {
        let mut cache = inner.lock_cache();
        for (window, row) in windows.into_iter().zip(&rows) {
            cache.insert(window, Arc::clone(row));
        }
    }

    let mut row_of = which.into_iter();
    for slot in slots.iter_mut() {
        let Some(req) = slot.take() else { continue };
        let idx = row_of.next().expect("one row index per live slot");
        if req.deadline.is_some_and(|d| Instant::now() >= d) {
            // Computed (the batch forward is all-or-nothing) but the
            // caller's budget is gone: the contract is a typed error.
            // The logits are cached, so the work is not wasted.
            inner.metrics.deadline_miss_completion.inc();
            inner.fault(FaultKind::DeadlineMiss, "completion");
            inner.span(req.trace, TraceStage::DeadlineMiss, 0, 0);
            inner.finish(req.enqueued, req.trace, &req.reply, Err(ServeError::DeadlineExceeded));
            continue;
        }
        let recs = rank(&rows[idx], &req.history, req.k);
        inner.metrics.retrieval_exact.inc();
        inner.metrics.compute_us.record_traced(as_us(picked_up.elapsed()), inner.exemplar(&req.trace));
        inner.finish(req.enqueued, req.trace, &req.reply, Ok(Response::new(recs, ResponseSource::Batch)));
    }
}

/// Top-k by heap-based partial selection over raw logits, excluding the
/// full history — the exact ranking rule of [`Vsan::recommend`]
/// (softmax is strictly increasing, so it never reorders).
fn rank(logits: &[f32], history: &[u32], k: usize) -> Vec<u32> {
    let seen: std::collections::HashSet<u32> = history.iter().copied().collect();
    vsan_eval::top_n_excluding(logits, k, &seen)
}
