//! `vsan-serve` — embedded online inference engine for VSAN.
//!
//! Turns a trained [`vsan_core::Vsan`] into a shared, thread-safe
//! recommendation service:
//!
//! * **Admission queue** — callers submit `(history, k)` requests into
//!   a bounded FIFO with a configurable backpressure policy
//!   ([`BackpressurePolicy`]): block, reject the newcomer, or shed the
//!   oldest. An optional watermark sheds load before the hard bound.
//! * **Micro-batcher** — a dedicated thread coalesces queued requests
//!   into batches, flushing when [`EngineConfig::max_batch`] requests
//!   have accumulated or [`EngineConfig::batch_deadline`] has elapsed
//!   since the batch was opened, whichever comes first. Requests whose
//!   deadline already expired are rejected at pickup and never occupy
//!   compute.
//! * **Supervised worker pool** — workers run the batched
//!   evaluation-mode forward (`z = μ_λ`, no sampling, dropout off) via
//!   [`vsan_core::Vsan::score_items_batch`] and rank the top-k by
//!   partial selection over raw logits (softmax is rank-monotonic, so
//!   it is skipped entirely). A panicking worker is caught at the batch
//!   boundary, its untouched requests are requeued, and a supervisor
//!   respawns a replacement.
//! * **Sequence cache** — an LRU keyed on the model's fold-in window
//!   (the last `max_seq_len` items of the history) memoizes logits;
//!   hits answer without touching the queue.
//! * **Graceful degradation** — under saturation or with the pool down,
//!   requests resolve through the approximate-cache or popularity
//!   fallback, tagged in [`Response::source`]; see [`DegradeConfig`].
//! * **Incremental sessions** — [`Engine::append_event`] folds one new
//!   interaction into a per-user prefix-keyed layer-state cache
//!   (`vsan_session`), answering in one O(n·d²) append pass instead of
//!   a full forward, bit-identical to it. Eviction (LRU capacity /
//!   idle TTL) is transparent: the next event cold-starts through the
//!   same API, tagged in the `session.*` metrics and fault events.
//! * **Request-scoped tracing** — every request roots a deterministic
//!   trace at admission and grows child spans at each stage it crosses
//!   (queue pickup, compute, clustered retrieval, session sub-stages,
//!   degraded/shed/deadline outcomes). Spans land in a lock-free
//!   flight-recorder ring ([`Engine::flight_recorder`]); severe faults
//!   dump its last N spans to the fault sink as a JSONL forensic
//!   bundle, and [`Engine::metrics_registry`] feeds the Prometheus
//!   text-exposition endpoint ([`vsan_obs::ExpositionServer`]).
//!   Observation never changes bits: rankings are identical with
//!   tracing on or off (DESIGN.md §13).
//!
//! Fault-free results are deterministic and bit-identical to
//! [`vsan_core::Vsan::recommend`] for the same history, cache hit or
//! miss — the batched forward uses row-wise kernels with a fixed
//! per-row accumulation order, and the cache stores the same logits a
//! fresh forward would produce. Under faults, every accepted ticket
//! still resolves — to a [`Response`] or a typed [`ServeError`] — and
//! completed responses stay bit-identical to a fault-free run (the
//! chaos suite in `tests/chaos.rs` enforces both, driven by the
//! deterministic [`failpoint`] registry).
//!
//! ```no_run
//! use vsan_serve::{Engine, EngineConfig};
//! # let model: vsan_core::Vsan = unimplemented!();
//! let engine = Engine::start(model, EngineConfig::default());
//! // Blocking call:
//! let recs = engine.recommend(&[3, 1, 4], 10).unwrap();
//! // Submit/poll style:
//! let ticket = engine.submit(&[3, 1, 4], 10);
//! let recs = ticket.wait().unwrap();
//! let stats = engine.shutdown(); // drains the queue, joins threads
//! # let _ = (recs, stats);
//! ```

#![warn(missing_docs)]

mod cache;
mod config;
mod degrade;
mod engine;
pub mod failpoint;
mod metrics;
mod queue;

pub use cache::SequenceCache;
pub use config::EngineConfig;
pub use degrade::DegradeConfig;
pub use engine::{Engine, Response, ResponseSource, ServeError, Ticket};
pub use metrics::{MetricsSnapshot, ServeStats};
pub use queue::{AdmissionQueue, BackpressurePolicy, PopOutcome, PushOutcome};
