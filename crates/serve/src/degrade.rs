//! Graceful degradation: answer *something* when the engine cannot
//! afford (overload) or is unable (workers down) to run the forward
//! pass.
//!
//! Two fallbacks, tried in order, both deterministic:
//!
//! 1. **Approximate cache** — probe the LRU for progressively shorter
//!    suffixes of the request's fold-in window. A hit means "the
//!    ranking for this user as of a few interactions ago": slightly
//!    stale, bit-reproducible, and far better than an error. Probes
//!    are bounded hash lookups; no forward pass runs.
//! 2. **Popularity scorer** — a static per-item score table supplied at
//!    engine start (typically training-set interaction counts). The
//!    classic "most popular, minus what you've seen" answer of last
//!    resort.
//!
//! Every degraded response is tagged with its source
//! ([`crate::ResponseSource`]) so callers and telemetry can tell a real
//! model answer from a fallback, and counted separately in the metrics.

use std::collections::HashSet;
use std::sync::{Arc, Mutex, PoisonError};

use vsan_core::Vsan;

use crate::cache::SequenceCache;
use crate::engine::{Response, ResponseSource};

/// Fallback configuration; part of [`crate::EngineConfig`].
#[derive(Debug, Clone)]
pub struct DegradeConfig {
    /// Probe the LRU cache for shortened fold-in windows (default on).
    pub cache_fallback: bool,
    /// How many shortened suffixes to probe beyond the exact window
    /// (each probe drops one more of the oldest items).
    pub max_cache_probes: usize,
    /// Static per-item scores indexed by item id (index 0 = padding,
    /// like every score row in the workspace); `None` disables the
    /// popularity fallback.
    pub popularity: Option<Arc<Vec<f32>>>,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig { cache_fallback: true, max_cache_probes: 4, popularity: None }
    }
}

impl DegradeConfig {
    /// `true` when at least one fallback could ever produce an answer.
    pub fn any_enabled(&self) -> bool {
        self.cache_fallback || self.popularity.is_some()
    }
}

/// Try the fallbacks for `history`; `None` means degraded mode has no
/// answer and the caller must produce [`crate::ServeError::Overloaded`].
pub(crate) fn degraded_response(
    model: &Vsan,
    cache: &Mutex<SequenceCache>,
    cfg: &DegradeConfig,
    history: &[u32],
    k: usize,
) -> Option<Response> {
    let seen: HashSet<u32> = history.iter().copied().collect();
    if cfg.cache_fallback {
        let window = model.fold_in_window(history);
        // Cache state is structurally consistent even after a worker
        // panic (see engine::lock_cache); recover from poisoning.
        let mut guard = cache.lock().unwrap_or_else(PoisonError::into_inner);
        for cut in 0..=cfg.max_cache_probes.min(window.len()) {
            if let Some(logits) = guard.get(&window[cut..]) {
                let items = vsan_eval::top_n_excluding(&logits, k, &seen);
                return Some(Response::new(items, ResponseSource::DegradedCache));
            }
        }
    }
    let popularity = cfg.popularity.as_ref()?;
    let items = vsan_eval::top_n_excluding(popularity, k, &seen);
    Some(Response::new(items, ResponseSource::DegradedPopularity))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_enabled_reflects_config() {
        assert!(DegradeConfig::default().any_enabled());
        let off = DegradeConfig { cache_fallback: false, popularity: None, ..Default::default() };
        assert!(!off.any_enabled());
        let pop_only = DegradeConfig {
            cache_fallback: false,
            popularity: Some(Arc::new(vec![0.0, 1.0])),
            ..Default::default()
        };
        assert!(pop_only.any_enabled());
    }
}
