//! LRU cache from fold-in windows to logit rows.
//!
//! Keys are the model's *fold-in window* — the last `max_seq_len` items
//! of a history — because that window is all the forward pass reads:
//! two histories sharing a window produce bit-identical logits. Values
//! are `Arc<Vec<f32>>` so a hit hands out the row without copying the
//! vocabulary-sized buffer.
//!
//! O(1) get/insert/remove via a hash map into a slab of doubly linked
//! nodes; the list head is the most recently used entry.

use std::collections::HashMap;
use std::sync::Arc;

const NIL: usize = usize::MAX;

struct Node {
    key: Vec<u32>,
    value: Arc<Vec<f32>>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map from item-id windows to
/// cached logits. Not internally synchronized — the engine wraps it in
/// a `Mutex`.
pub struct SequenceCache {
    map: HashMap<Vec<u32>, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl SequenceCache {
    /// Create a cache holding at most `capacity` windows. A capacity of
    /// `0` is valid and caches nothing.
    pub fn new(capacity: usize) -> Self {
        SequenceCache {
            map: HashMap::with_capacity(capacity.min(4096)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached windows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of windows the cache holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a window, marking it most recently used on a hit.
    pub fn get(&mut self, key: &[u32]) -> Option<Arc<Vec<f32>>> {
        let &idx = self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(Arc::clone(&self.slab[idx].value))
    }

    /// Insert (or refresh) a window, evicting the least recently used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: Vec<u32>, value: Arc<Vec<f32>>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            let key = std::mem::take(&mut self.slab[lru].key);
            self.map.remove(&key);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Node { key: key.clone(), value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slab.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
    }

    /// Drop every entry, keeping the allocated slab for reuse. The
    /// engine's poison-recovery path calls this: a cache is always safe
    /// to empty, never safe to trust after an interrupted mutation.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Drop a window from the cache; returns `true` if it was present.
    /// This is the invalidation hook: when a user records a new
    /// interaction, their cached window is stale and must be evicted.
    pub fn remove(&mut self, key: &[u32]) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                self.detach(idx);
                self.slab[idx].key = Vec::new();
                self.slab[idx].value = Arc::new(Vec::new());
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            NIL => {
                if self.head == idx {
                    self.head = next;
                }
            }
            p => self.slab[p].next = next,
        }
        match next {
            NIL => {
                if self.tail == idx {
                    self.tail = prev;
                }
            }
            n => self.slab[n].prev = prev,
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

impl std::fmt::Debug for SequenceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequenceCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f32) -> Arc<Vec<f32>> {
        Arc::new(vec![v])
    }

    #[test]
    fn hit_and_miss() {
        let mut c = SequenceCache::new(4);
        assert!(c.get(&[1, 2]).is_none());
        c.insert(vec![1, 2], row(1.0));
        assert_eq!(c.get(&[1, 2]).unwrap()[0], 1.0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = SequenceCache::new(2);
        c.insert(vec![1], row(1.0));
        c.insert(vec![2], row(2.0));
        c.get(&[1]); // touch: [1] is now MRU, [2] is LRU
        c.insert(vec![3], row(3.0));
        assert!(c.get(&[2]).is_none(), "LRU entry must be evicted");
        assert!(c.get(&[1]).is_some());
        assert!(c.get(&[3]).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_refreshes_existing_key() {
        let mut c = SequenceCache::new(2);
        c.insert(vec![1], row(1.0));
        c.insert(vec![2], row(2.0));
        c.insert(vec![1], row(10.0)); // refresh value and recency
        c.insert(vec![3], row(3.0)); // evicts [2], not [1]
        assert_eq!(c.get(&[1]).unwrap()[0], 10.0);
        assert!(c.get(&[2]).is_none());
    }

    #[test]
    fn remove_invalidates() {
        let mut c = SequenceCache::new(2);
        c.insert(vec![1], row(1.0));
        assert!(c.remove(&[1]));
        assert!(!c.remove(&[1]));
        assert!(c.get(&[1]).is_none());
        // Freed slot is reused without breaking the list.
        c.insert(vec![2], row(2.0));
        c.insert(vec![3], row(3.0));
        c.insert(vec![4], row(4.0));
        assert_eq!(c.len(), 2);
        assert!(c.get(&[3]).is_some());
        assert!(c.get(&[4]).is_some());
    }

    #[test]
    fn clear_empties_and_stays_usable() {
        let mut c = SequenceCache::new(2);
        c.insert(vec![1], row(1.0));
        c.insert(vec![2], row(2.0));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&[1]).is_none());
        c.insert(vec![3], row(3.0));
        assert_eq!(c.get(&[3]).unwrap()[0], 3.0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = SequenceCache::new(0);
        c.insert(vec![1], row(1.0));
        assert!(c.get(&[1]).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn empty_window_is_a_valid_key() {
        let mut c = SequenceCache::new(2);
        c.insert(Vec::new(), row(0.5));
        assert_eq!(c.get(&[]).unwrap()[0], 0.5);
    }

    #[test]
    fn churn_keeps_map_and_list_consistent() {
        let mut c = SequenceCache::new(8);
        for round in 0u32..100 {
            c.insert(vec![round % 13], row(round as f32));
            if round % 3 == 0 {
                c.remove(&[round % 7]);
            }
            c.get(&[round % 5]);
            assert!(c.len() <= 8);
        }
    }
}
