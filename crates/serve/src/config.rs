//! Engine tuning knobs.

use std::time::Duration;

/// Configuration for [`crate::Engine`].
///
/// The two batching knobs trade latency for throughput: a batch is
/// dispatched as soon as it holds `max_batch` requests (throughput
/// bound) or `batch_deadline` after its first request arrived (latency
/// bound). Under load batches fill before the deadline; a lone request
/// waits at most one deadline.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Dispatch a batch once it holds this many requests.
    pub max_batch: usize,
    /// Dispatch a partially filled batch this long after its first
    /// request arrived.
    pub batch_deadline: Duration,
    /// Worker threads running the batched forward.
    pub workers: usize,
    /// LRU capacity in distinct fold-in windows; `0` disables caching.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 32,
            batch_deadline: Duration::from_millis(2),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get().min(4)),
            cache_capacity: 1024,
        }
    }
}

impl EngineConfig {
    /// Builder: set [`Self::max_batch`] (clamped to at least 1).
    pub fn with_max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Builder: set [`Self::batch_deadline`].
    pub fn with_batch_deadline(mut self, d: Duration) -> Self {
        self.batch_deadline = d;
        self
    }

    /// Builder: set [`Self::workers`] (clamped to at least 1).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Builder: set [`Self::cache_capacity`] (`0` disables the cache).
    pub fn with_cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = EngineConfig::default();
        assert!(cfg.max_batch >= 1);
        assert!(cfg.workers >= 1);
        assert!(cfg.batch_deadline > Duration::ZERO);
    }

    #[test]
    fn builders_clamp() {
        let cfg = EngineConfig::default()
            .with_max_batch(0)
            .with_workers(0)
            .with_batch_deadline(Duration::from_micros(500))
            .with_cache_capacity(0);
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.batch_deadline, Duration::from_micros(500));
        assert_eq!(cfg.cache_capacity, 0);
    }
}
