//! Engine tuning knobs.

use std::sync::Arc;
use std::time::Duration;

use vsan_core::Retrieval;
use vsan_obs::EventSink;

use crate::degrade::DegradeConfig;
use crate::queue::BackpressurePolicy;

/// Configuration for [`crate::Engine`].
///
/// The two batching knobs trade latency for throughput: a batch is
/// dispatched as soon as it holds `max_batch` requests (throughput
/// bound) or `batch_deadline` after its first request arrived (latency
/// bound). Under load batches fill before the deadline; a lone request
/// waits at most one deadline.
///
/// The fault-tolerance knobs (queue bound, backpressure policy, shed
/// watermark, deadlines, respawn and retry budgets, degraded fallbacks)
/// default to the pre-fault-tolerance behaviour as closely as a bounded
/// system can: a large blocking queue, no deadlines, unlimited worker
/// respawns, and one batch retry after a worker panic.
#[derive(Clone)]
pub struct EngineConfig {
    /// Dispatch a batch once it holds this many requests.
    pub max_batch: usize,
    /// Dispatch a partially filled batch this long after its first
    /// request arrived.
    pub batch_deadline: Duration,
    /// Worker threads running the batched forward.
    pub workers: usize,
    /// LRU capacity in distinct fold-in windows; `0` disables caching.
    pub cache_capacity: usize,
    /// Hard bound on queued (admitted but not yet batched) requests;
    /// clamped to at least 1.
    pub queue_capacity: usize,
    /// What a full queue does to the next submit.
    pub backpressure: BackpressurePolicy,
    /// Divert submits to the degraded path once queue depth reaches
    /// this watermark (before the hard bound); `None` disables.
    pub shed_watermark: Option<usize>,
    /// Deadline applied to every [`crate::Engine::submit`]; `None`
    /// means no deadline. [`crate::Engine::submit_with_deadline`]
    /// overrides per request.
    pub default_deadline: Option<Duration>,
    /// Total worker respawns after panics before the pool is allowed to
    /// die (and the engine degrades permanently).
    pub max_worker_respawns: u64,
    /// How many times a request survives being requeued out of a
    /// poisoned batch before failing `WorkerLost`.
    pub max_batch_retries: u32,
    /// Degraded-fallback configuration (approximate cache, popularity).
    pub degrade: DegradeConfig,
    /// Structured fault events (`"type":"serve_fault"`) are emitted
    /// here; `None` disables fault telemetry.
    pub fault_sink: Option<Arc<dyn EventSink>>,
    /// Live incremental sessions kept for [`crate::Engine::append_event`]
    /// (LRU-bounded); `0` makes every append a stateless full recompute.
    pub session_capacity: usize,
    /// Idle time after which a session is evicted; `None` disables TTL
    /// expiry (capacity pressure still evicts).
    pub session_ttl: Option<Duration>,
    /// How batched recommendation retrieves top-k:
    /// [`Retrieval::Exact`] brute-force (default), or
    /// [`Retrieval::Clustered`] two-stage MIPS with exact re-rank. The
    /// engine builds the index at startup, so a restart after a
    /// checkpoint reload deterministically rebuilds it from the restored
    /// parameters. `VSAN_DISABLE_ANN=1` pins the process back to exact.
    pub retrieval: Retrieval,
    /// Flight-recorder capacity in span records (rounded up to a power
    /// of two, minimum 8); `0` disables tracing and the recorder
    /// entirely. The recorder is a fixed ring of `8 × capacity × 8`
    /// bytes of atomics — 1024 records ≈ 64 KiB.
    pub recorder_capacity: usize,
    /// Seed for deterministic trace-id derivation: trace ids are
    /// `splitmix64(seed ^ admission_seq)`, so a fixed seed plus a fixed
    /// request order reproduces the exact ids of a prior run.
    pub trace_seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 32,
            batch_deadline: Duration::from_millis(2),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get().min(4)),
            cache_capacity: 1024,
            queue_capacity: 4096,
            backpressure: BackpressurePolicy::Block,
            shed_watermark: None,
            default_deadline: None,
            max_worker_respawns: u64::MAX,
            max_batch_retries: 1,
            degrade: DegradeConfig::default(),
            fault_sink: None,
            session_capacity: 1024,
            session_ttl: None,
            retrieval: Retrieval::Exact,
            recorder_capacity: 1024,
            trace_seed: 0x5641_5341_4e00_0001, // "VASAN" tag — any fixed value works
        }
    }
}

impl EngineConfig {
    /// Builder: set [`Self::max_batch`] (clamped to at least 1).
    pub fn with_max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Builder: set [`Self::batch_deadline`].
    pub fn with_batch_deadline(mut self, d: Duration) -> Self {
        self.batch_deadline = d;
        self
    }

    /// Builder: set [`Self::workers`] (clamped to at least 1).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Builder: set [`Self::cache_capacity`] (`0` disables the cache).
    pub fn with_cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    /// Builder: set [`Self::queue_capacity`] (clamped to at least 1).
    pub fn with_queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Builder: set [`Self::backpressure`].
    pub fn with_backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Builder: set [`Self::shed_watermark`].
    pub fn with_shed_watermark(mut self, depth: usize) -> Self {
        self.shed_watermark = Some(depth);
        self
    }

    /// Builder: set [`Self::default_deadline`].
    pub fn with_default_deadline(mut self, d: Duration) -> Self {
        self.default_deadline = Some(d);
        self
    }

    /// Builder: set [`Self::max_worker_respawns`].
    pub fn with_max_worker_respawns(mut self, n: u64) -> Self {
        self.max_worker_respawns = n;
        self
    }

    /// Builder: set [`Self::max_batch_retries`].
    pub fn with_max_batch_retries(mut self, n: u32) -> Self {
        self.max_batch_retries = n;
        self
    }

    /// Builder: set [`Self::degrade`].
    pub fn with_degrade(mut self, degrade: DegradeConfig) -> Self {
        self.degrade = degrade;
        self
    }

    /// Builder: enable the popularity fallback with per-item scores
    /// (indexed by item id, index 0 = padding).
    pub fn with_popularity(mut self, scores: Vec<f32>) -> Self {
        self.degrade.popularity = Some(Arc::new(scores));
        self
    }

    /// Builder: set [`Self::fault_sink`].
    pub fn with_fault_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.fault_sink = Some(sink);
        self
    }

    /// Builder: set [`Self::session_capacity`] (`0` disables the
    /// session cache — appends become stateless full recomputes).
    pub fn with_session_capacity(mut self, n: usize) -> Self {
        self.session_capacity = n;
        self
    }

    /// Builder: set [`Self::session_ttl`].
    pub fn with_session_ttl(mut self, ttl: Duration) -> Self {
        self.session_ttl = Some(ttl);
        self
    }

    /// Builder: set [`Self::retrieval`].
    pub fn with_retrieval(mut self, retrieval: Retrieval) -> Self {
        self.retrieval = retrieval;
        self
    }

    /// Builder: set [`Self::recorder_capacity`] (`0` disables tracing
    /// and the flight recorder).
    pub fn with_flight_recorder(mut self, capacity: usize) -> Self {
        self.recorder_capacity = capacity;
        self
    }

    /// Builder: set [`Self::trace_seed`].
    pub fn with_trace_seed(mut self, seed: u64) -> Self {
        self.trace_seed = seed;
        self
    }
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("max_batch", &self.max_batch)
            .field("batch_deadline", &self.batch_deadline)
            .field("workers", &self.workers)
            .field("cache_capacity", &self.cache_capacity)
            .field("queue_capacity", &self.queue_capacity)
            .field("backpressure", &self.backpressure)
            .field("shed_watermark", &self.shed_watermark)
            .field("default_deadline", &self.default_deadline)
            .field("max_worker_respawns", &self.max_worker_respawns)
            .field("max_batch_retries", &self.max_batch_retries)
            .field("degrade", &self.degrade)
            .field("fault_sink", &self.fault_sink.as_ref().map(|_| "Arc<dyn EventSink>"))
            .field("session_capacity", &self.session_capacity)
            .field("session_ttl", &self.session_ttl)
            .field("retrieval", &self.retrieval)
            .field("recorder_capacity", &self.recorder_capacity)
            .field("trace_seed", &self.trace_seed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = EngineConfig::default();
        assert!(cfg.max_batch >= 1);
        assert!(cfg.workers >= 1);
        assert!(cfg.batch_deadline > Duration::ZERO);
        assert!(cfg.queue_capacity >= 1);
        assert_eq!(cfg.backpressure, BackpressurePolicy::Block);
        assert!(cfg.shed_watermark.is_none());
        assert!(cfg.default_deadline.is_none());
        assert_eq!(cfg.max_batch_retries, 1);
        assert!(cfg.degrade.cache_fallback);
        assert!(cfg.session_capacity >= 1);
        assert!(cfg.session_ttl.is_none());
        assert_eq!(cfg.retrieval, Retrieval::Exact);
        assert!(cfg.recorder_capacity >= 1);
    }

    #[test]
    fn builders_clamp() {
        let cfg = EngineConfig::default()
            .with_max_batch(0)
            .with_workers(0)
            .with_batch_deadline(Duration::from_micros(500))
            .with_cache_capacity(0)
            .with_queue_capacity(0)
            .with_backpressure(BackpressurePolicy::ShedOldest)
            .with_shed_watermark(8)
            .with_default_deadline(Duration::from_millis(5))
            .with_max_worker_respawns(2)
            .with_max_batch_retries(0)
            .with_popularity(vec![0.0, 3.0, 1.0])
            .with_session_capacity(0)
            .with_session_ttl(Duration::from_secs(60))
            .with_retrieval(Retrieval::Clustered(vsan_core::ClusteredConfig::default()))
            .with_flight_recorder(0)
            .with_trace_seed(42);
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.batch_deadline, Duration::from_micros(500));
        assert_eq!(cfg.cache_capacity, 0);
        assert_eq!(cfg.queue_capacity, 1);
        assert_eq!(cfg.backpressure, BackpressurePolicy::ShedOldest);
        assert_eq!(cfg.shed_watermark, Some(8));
        assert_eq!(cfg.default_deadline, Some(Duration::from_millis(5)));
        assert_eq!(cfg.max_worker_respawns, 2);
        assert_eq!(cfg.max_batch_retries, 0);
        assert!(cfg.degrade.popularity.is_some());
        assert_eq!(cfg.session_capacity, 0);
        assert_eq!(cfg.session_ttl, Some(Duration::from_secs(60)));
        assert!(matches!(cfg.retrieval, Retrieval::Clustered(_)));
        assert_eq!(cfg.recorder_capacity, 0);
        assert_eq!(cfg.trace_seed, 42);
    }
}
