//! Engine telemetry on the [`vsan_obs`] metrics registry.
//!
//! The hot path holds `Arc` handles obtained once at engine start —
//! counters and histogram records are single relaxed atomics, and the
//! registry lock is never touched after startup. The legacy
//! [`MetricsSnapshot`] remains the stable counter view (a thin adapter
//! over the registry); [`ServeStats`] adds the full latency
//! distributions, split into queue wait vs. compute time.

use std::sync::Arc;
use std::time::Duration;

use vsan_obs::{Counter, EventSink, Gauge, Histogram, HistogramSnapshot, Registry};

/// Clamp a duration to whole microseconds for histogram recording.
pub(crate) fn as_us(elapsed: Duration) -> u64 {
    elapsed.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Registry-backed engine metrics. Handles are pre-resolved so the
/// request path never takes the registry lock.
#[derive(Debug)]
pub(crate) struct Metrics {
    registry: Arc<Registry>,
    pub requests: Arc<Counter>,
    pub cache_hits: Arc<Counter>,
    pub cache_misses: Arc<Counter>,
    pub batches: Arc<Counter>,
    pub batched_requests: Arc<Counter>,
    pub flush_full: Arc<Counter>,
    pub flush_deadline: Arc<Counter>,
    pub flush_shutdown: Arc<Counter>,
    /// Requests enqueued but not yet picked into a batch.
    pub queue_depth: Arc<Gauge>,
    /// Submit → batch pickup (cache hits never enter the queue, so they
    /// record nothing here).
    pub queue_wait_us: Arc<Histogram>,
    /// Batch pickup → reply (for cache hits: the whole lookup+rank).
    pub compute_us: Arc<Histogram>,
    /// Submit → reply, end to end.
    pub latency_us: Arc<Histogram>,
    /// Batch occupancy at flush, percent of `max_batch` (100 = full).
    pub batch_fill_pct: Arc<Histogram>,
    // --- fault-path counters (README § Fault tolerance) ---
    /// Blocking submits whose deadline expired before queue space freed.
    pub deadline_miss_admission: Arc<Counter>,
    /// Requests found expired when the batcher picked them up (they
    /// never occupy compute).
    pub deadline_miss_pickup: Arc<Counter>,
    /// Requests whose deadline expired between pickup and reply.
    pub deadline_miss_completion: Arc<Counter>,
    /// Requests refused at a full queue under `RejectNewest`.
    pub rejected_newest: Arc<Counter>,
    /// Queued requests evicted at a full queue under `ShedOldest`.
    pub shed_oldest: Arc<Counter>,
    /// Requests diverted at the load-shedding watermark.
    pub load_shed: Arc<Counter>,
    /// Degraded responses answered from the approximate-cache fallback.
    pub degraded_cache: Arc<Counter>,
    /// Degraded responses answered from the popularity fallback.
    pub degraded_popularity: Arc<Counter>,
    /// Requests that found no fallback and errored `Overloaded`.
    pub overloaded_errors: Arc<Counter>,
    /// Worker panics caught at the batch isolation boundary.
    pub worker_panics: Arc<Counter>,
    /// Workers respawned after a panic.
    pub worker_respawns: Arc<Counter>,
    /// Untouched requests requeued out of a poisoned batch.
    pub requeued_requests: Arc<Counter>,
    /// Requests failed `WorkerLost` after exhausting their retry budget.
    pub retry_exhausted: Arc<Counter>,
    /// Batches discarded whole (the `drop_batch` failpoint).
    pub dropped_batches: Arc<Counter>,
    /// Batches whose model forward returned an error (requests were
    /// resolved through the degraded path, never with fabricated zeros).
    pub model_errors: Arc<Counter>,
    /// Live worker threads (spawns and respawns minus deaths).
    pub workers_alive: Arc<Gauge>,
    // --- cache-coherency telemetry (ISSUE 6 satellite) ---
    /// `Engine::invalidate` calls that found nothing to evict — a miss
    /// rate here flags callers invalidating windows that never cached.
    pub cache_invalidate_misses: Arc<Counter>,
    // --- incremental-session counters (README § Incremental sessions) ---
    /// Events served by a pure incremental append (warm session).
    pub session_appends: Arc<Counter>,
    /// Events that transparently cold-started (first event or evicted).
    pub session_cold_starts: Arc<Counter>,
    /// Events that resumed a cached prefix (gap replay or exact-history
    /// sibling reuse).
    pub session_resumes: Arc<Counter>,
    /// Events whose hint contradicted the cached history (state rebuilt).
    pub session_resets: Arc<Counter>,
    /// Sessions evicted by LRU capacity or idle TTL.
    pub session_evictions: Arc<Counter>,
    /// Live sessions in the store.
    pub sessions_live: Arc<Gauge>,
    /// Resident bytes across all session states.
    pub session_bytes: Arc<Gauge>,
    // --- retrieval-route telemetry (README § Clustered retrieval) ---
    /// Requests scored by exact brute force over the full vocabulary.
    pub retrieval_exact: Arc<Counter>,
    /// Requests scored through the clustered MIPS index.
    pub retrieval_clustered: Arc<Counter>,
    /// Clusters probed per clustered query (coarse-stage width).
    pub retrieval_probes: Arc<Histogram>,
    /// Candidates surviving into the exact re-rank per clustered query.
    pub retrieval_survivors: Arc<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        Metrics {
            requests: registry.counter("serve.requests"),
            cache_hits: registry.counter("serve.cache_hits"),
            cache_misses: registry.counter("serve.cache_misses"),
            batches: registry.counter("serve.batches"),
            batched_requests: registry.counter("serve.batched_requests"),
            flush_full: registry.counter("serve.flush_full"),
            flush_deadline: registry.counter("serve.flush_deadline"),
            flush_shutdown: registry.counter("serve.flush_shutdown"),
            queue_depth: registry.gauge("serve.queue_depth"),
            queue_wait_us: registry.histogram("serve.queue_wait_us"),
            compute_us: registry.histogram("serve.compute_us"),
            latency_us: registry.histogram("serve.latency_us"),
            batch_fill_pct: registry.histogram("serve.batch_fill_pct"),
            deadline_miss_admission: registry.counter("serve.deadline_miss_admission"),
            deadline_miss_pickup: registry.counter("serve.deadline_miss_pickup"),
            deadline_miss_completion: registry.counter("serve.deadline_miss_completion"),
            rejected_newest: registry.counter("serve.rejected_newest"),
            shed_oldest: registry.counter("serve.shed_oldest"),
            load_shed: registry.counter("serve.load_shed"),
            degraded_cache: registry.counter("serve.degraded_cache"),
            degraded_popularity: registry.counter("serve.degraded_popularity"),
            overloaded_errors: registry.counter("serve.overloaded_errors"),
            worker_panics: registry.counter("serve.worker_panics"),
            worker_respawns: registry.counter("serve.worker_respawns"),
            requeued_requests: registry.counter("serve.requeued_requests"),
            retry_exhausted: registry.counter("serve.retry_exhausted"),
            dropped_batches: registry.counter("serve.dropped_batches"),
            model_errors: registry.counter("serve.model_errors"),
            workers_alive: registry.gauge("serve.workers_alive"),
            cache_invalidate_misses: registry.counter("serve.cache_invalidate_misses"),
            session_appends: registry.counter("session.appends"),
            session_cold_starts: registry.counter("session.cold_starts"),
            session_resumes: registry.counter("session.resumes"),
            session_resets: registry.counter("session.resets"),
            session_evictions: registry.counter("session.evictions"),
            sessions_live: registry.gauge("session.live"),
            session_bytes: registry.gauge("session.bytes"),
            retrieval_exact: registry.counter("serve.retrieval_exact"),
            retrieval_clustered: registry.counter("serve.retrieval_clustered"),
            retrieval_probes: registry.histogram("serve.retrieval_probes"),
            retrieval_survivors: registry.histogram("serve.retrieval_survivors"),
            registry,
        }
    }

    /// Shared registry handle — what the Prometheus exposition endpoint
    /// serves (`vsan_obs::expo`).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The stable counter view.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let lat = self.latency_us.snapshot();
        MetricsSnapshot {
            requests: self.requests.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            batches: self.batches.get(),
            batched_requests: self.batched_requests.get(),
            flush_full: self.flush_full.get(),
            flush_deadline: self.flush_deadline.get(),
            flush_shutdown: self.flush_shutdown.get(),
            latency_us_sum: lat.sum,
            latency_us_max: lat.max,
            deadline_misses: self.deadline_miss_admission.get()
                + self.deadline_miss_pickup.get()
                + self.deadline_miss_completion.get(),
            rejected_newest: self.rejected_newest.get(),
            shed_oldest: self.shed_oldest.get(),
            load_shed: self.load_shed.get(),
            degraded_responses: self.degraded_cache.get() + self.degraded_popularity.get(),
            overloaded_errors: self.overloaded_errors.get(),
            worker_panics: self.worker_panics.get(),
            worker_respawns: self.worker_respawns.get(),
            requeued_requests: self.requeued_requests.get(),
            dropped_batches: self.dropped_batches.get(),
            model_errors: self.model_errors.get(),
            cache_invalidate_misses: self.cache_invalidate_misses.get(),
            session_appends: self.session_appends.get(),
            session_cold_starts: self.session_cold_starts.get(),
            session_resumes: self.session_resumes.get(),
            session_resets: self.session_resets.get(),
            session_evictions: self.session_evictions.get(),
            retrieval_exact: self.retrieval_exact.get(),
            retrieval_clustered: self.retrieval_clustered.get(),
        }
    }

    /// The full histogram view.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            snapshot: self.snapshot(),
            queue_depth: self.queue_depth.get(),
            queue_wait_us: self.queue_wait_us.snapshot(),
            compute_us: self.compute_us.snapshot(),
            latency_us: self.latency_us.snapshot(),
            batch_fill_pct: self.batch_fill_pct.snapshot(),
            sessions_live: self.sessions_live.get(),
            session_bytes: self.session_bytes.get(),
            retrieval_probes: self.retrieval_probes.snapshot(),
            retrieval_survivors: self.retrieval_survivors.snapshot(),
        }
    }

    /// Emit the whole registry as one JSONL record.
    pub fn emit(&self, sink: &dyn EventSink, record_type: &str) {
        self.registry.emit(sink, record_type);
    }
}

/// Point-in-time view of the engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests accepted via `submit`/`recommend`.
    pub requests: u64,
    /// Requests answered directly from the sequence cache.
    pub cache_hits: u64,
    /// Requests that missed the cache and were enqueued.
    pub cache_misses: u64,
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Requests carried by those batches (`batched_requests / batches`
    /// is the mean batch size).
    pub batched_requests: u64,
    /// Batches flushed because they reached `max_batch`.
    pub flush_full: u64,
    /// Batches flushed because `batch_deadline` expired.
    pub flush_deadline: u64,
    /// Batches flushed while draining the queue at shutdown.
    pub flush_shutdown: u64,
    /// Sum of request latencies (submit → reply) in microseconds.
    pub latency_us_sum: u64,
    /// Maximum single-request latency in microseconds.
    pub latency_us_max: u64,
    /// Requests rejected `DeadlineExceeded` (admission + pickup +
    /// completion misses).
    pub deadline_misses: u64,
    /// Requests refused at a full queue under `RejectNewest`.
    pub rejected_newest: u64,
    /// Queued requests evicted at a full queue under `ShedOldest`.
    pub shed_oldest: u64,
    /// Requests diverted at the load-shedding watermark.
    pub load_shed: u64,
    /// Responses answered by a fallback (approximate cache or
    /// popularity), tagged degraded.
    pub degraded_responses: u64,
    /// Requests that found no fallback and errored `Overloaded`.
    pub overloaded_errors: u64,
    /// Worker panics caught at the batch isolation boundary.
    pub worker_panics: u64,
    /// Workers respawned after a panic.
    pub worker_respawns: u64,
    /// Untouched requests requeued out of a poisoned batch.
    pub requeued_requests: u64,
    /// Batches discarded whole (the `drop_batch` failpoint).
    pub dropped_batches: u64,
    /// Batches whose model forward returned an error.
    pub model_errors: u64,
    /// `Engine::invalidate` calls that found nothing to evict.
    pub cache_invalidate_misses: u64,
    /// Session events served by a pure incremental append.
    pub session_appends: u64,
    /// Session events that transparently cold-started.
    pub session_cold_starts: u64,
    /// Session events that resumed a cached prefix (replay or sibling).
    pub session_resumes: u64,
    /// Session events whose hint contradicted the cached history.
    pub session_resets: u64,
    /// Sessions evicted by LRU capacity or idle TTL.
    pub session_evictions: u64,
    /// Requests scored by exact brute force over the full vocabulary.
    pub retrieval_exact: u64,
    /// Requests scored through the clustered MIPS index.
    pub retrieval_clustered: u64,
}

impl MetricsSnapshot {
    /// Mean requests per dispatched batch (0.0 before the first batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Fraction of requests answered from the cache (0.0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }

    /// Mean request latency in microseconds (0.0 when idle).
    pub fn mean_latency_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.latency_us_sum as f64 / self.requests as f64
        }
    }

    /// Requests refused or diverted by backpressure (rejected, shed,
    /// or watermark-diverted) as a fraction of all requests.
    pub fn rejection_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.rejected_newest + self.shed_oldest + self.load_shed) as f64
                / self.requests as f64
        }
    }

    /// Fraction of requests answered by a degraded fallback.
    pub fn degraded_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.degraded_responses as f64 / self.requests as f64
        }
    }
}

/// Full engine telemetry: the counter snapshot plus the latency
/// distributions. Invariants the engine maintains:
///
/// - `latency_us.count == compute_us.count == requests` (every answered
///   request records both),
/// - `queue_wait_us.count == cache_misses` (cache hits never queue),
/// - `batch_fill_pct.count == batches`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// The stable counter view.
    pub snapshot: MetricsSnapshot,
    /// Requests currently enqueued (0 once drained).
    pub queue_depth: i64,
    /// Submit → batch-pickup wait distribution (cache misses only).
    pub queue_wait_us: HistogramSnapshot,
    /// Batch-pickup → reply compute distribution.
    pub compute_us: HistogramSnapshot,
    /// End-to-end submit → reply latency distribution.
    pub latency_us: HistogramSnapshot,
    /// Batch occupancy at flush, percent of `max_batch`.
    pub batch_fill_pct: HistogramSnapshot,
    /// Live incremental sessions (`session.live` gauge).
    pub sessions_live: i64,
    /// Resident session-state bytes (`session.bytes` gauge).
    pub session_bytes: i64,
    /// Clusters probed per clustered query (empty when serving exact).
    pub retrieval_probes: HistogramSnapshot,
    /// Re-rank candidates per clustered query (empty when serving exact).
    pub retrieval_survivors: HistogramSnapshot,
}

impl ServeStats {
    /// Mean batch occupancy in percent of `max_batch` (0.0 before the
    /// first flush).
    pub fn mean_batch_fill_pct(&self) -> f64 {
        self.batch_fill_pct.mean()
    }

    /// One-line JSON object with the counters and per-distribution
    /// summaries (count/mean/p50/p90/p99/max) — embedded by the benches.
    pub fn to_json(&self) -> String {
        vsan_obs::JsonObj::new()
            .u64("requests", self.snapshot.requests)
            .u64("cache_hits", self.snapshot.cache_hits)
            .u64("cache_misses", self.snapshot.cache_misses)
            .u64("batches", self.snapshot.batches)
            .u64("batched_requests", self.snapshot.batched_requests)
            .u64("flush_full", self.snapshot.flush_full)
            .u64("flush_deadline", self.snapshot.flush_deadline)
            .u64("flush_shutdown", self.snapshot.flush_shutdown)
            .i64("queue_depth", self.queue_depth)
            .u64("deadline_misses", self.snapshot.deadline_misses)
            .u64("rejected_newest", self.snapshot.rejected_newest)
            .u64("shed_oldest", self.snapshot.shed_oldest)
            .u64("load_shed", self.snapshot.load_shed)
            .u64("degraded_responses", self.snapshot.degraded_responses)
            .u64("overloaded_errors", self.snapshot.overloaded_errors)
            .u64("worker_panics", self.snapshot.worker_panics)
            .u64("worker_respawns", self.snapshot.worker_respawns)
            .u64("requeued_requests", self.snapshot.requeued_requests)
            .u64("dropped_batches", self.snapshot.dropped_batches)
            .u64("model_errors", self.snapshot.model_errors)
            .u64("cache_invalidate_misses", self.snapshot.cache_invalidate_misses)
            .u64("session_appends", self.snapshot.session_appends)
            .u64("session_cold_starts", self.snapshot.session_cold_starts)
            .u64("session_resumes", self.snapshot.session_resumes)
            .u64("session_resets", self.snapshot.session_resets)
            .u64("session_evictions", self.snapshot.session_evictions)
            .i64("sessions_live", self.sessions_live)
            .i64("session_bytes", self.session_bytes)
            .u64("retrieval_exact", self.snapshot.retrieval_exact)
            .u64("retrieval_clustered", self.snapshot.retrieval_clustered)
            .f64("mean_batch_fill_pct", self.mean_batch_fill_pct())
            .raw("queue_wait_us", &self.queue_wait_us.summary_json())
            .raw("compute_us", &self.compute_us.summary_json())
            .raw("latency_us", &self.latency_us.summary_json())
            .raw("retrieval_probes", &self.retrieval_probes.summary_json())
            .raw("retrieval_survivors", &self.retrieval_survivors.summary_json())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let m = Metrics::default();
        assert_eq!(m.snapshot().mean_batch_size(), 0.0);
        assert_eq!(m.snapshot().cache_hit_rate(), 0.0);
        assert_eq!(m.snapshot().mean_latency_us(), 0.0);

        m.requests.add(10);
        m.cache_hits.add(4);
        m.batches.add(2);
        m.batched_requests.add(6);
        m.latency_us.record(as_us(Duration::from_micros(100)));
        m.latency_us.record(as_us(Duration::from_micros(300)));
        let s = m.snapshot();
        assert_eq!(s.mean_batch_size(), 3.0);
        assert_eq!(s.cache_hit_rate(), 0.4);
        assert_eq!(s.latency_us_max, 300);
        assert_eq!(s.latency_us_sum, 400);
    }

    #[test]
    fn stats_json_roundtrips() {
        let m = Metrics::new();
        m.requests.inc();
        m.queue_wait_us.record(50);
        m.compute_us.record(200);
        m.latency_us.record(250);
        m.batch_fill_pct.record(100);
        let stats = m.stats();
        assert_eq!(stats.mean_batch_fill_pct(), 100.0);
        let v = vsan_obs::parse(&stats.to_json()).unwrap();
        assert_eq!(v.get("requests").unwrap().as_u64(), Some(1));
        let lat = v.get("latency_us").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
        assert!(lat.get("p99").unwrap().as_u64().unwrap() >= 250);
    }

    #[test]
    fn registry_emits_one_record() {
        let m = Metrics::new();
        m.requests.inc();
        let sink = vsan_obs::MemorySink::new();
        m.emit(&sink, "serve_metrics");
        assert_eq!(sink.len(), 1);
        let v = vsan_obs::parse(&sink.lines()[0]).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("serve_metrics"));
        let counters = v.get("metrics").unwrap().get("counters").unwrap();
        assert_eq!(counters.get("serve.requests").unwrap().as_u64(), Some(1));
    }
}
