//! Engine counters: lock-free atomics updated on the hot path, read as
//! a consistent-enough [`MetricsSnapshot`] at any time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Relaxed ordering everywhere: counters are monotonic telemetry, not
/// synchronization — the channel send/recv on the request path already
/// provides the happens-before edges the engine relies on.
const ORD: Ordering = Ordering::Relaxed;

#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub requests: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub batches: AtomicU64,
    pub batched_requests: AtomicU64,
    pub flush_full: AtomicU64,
    pub flush_deadline: AtomicU64,
    pub flush_shutdown: AtomicU64,
    pub latency_us_sum: AtomicU64,
    pub latency_us_max: AtomicU64,
}

impl Metrics {
    pub fn record_latency(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency_us_sum.fetch_add(us, ORD);
        self.latency_us_max.fetch_max(us, ORD);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(ORD),
            cache_hits: self.cache_hits.load(ORD),
            cache_misses: self.cache_misses.load(ORD),
            batches: self.batches.load(ORD),
            batched_requests: self.batched_requests.load(ORD),
            flush_full: self.flush_full.load(ORD),
            flush_deadline: self.flush_deadline.load(ORD),
            flush_shutdown: self.flush_shutdown.load(ORD),
            latency_us_sum: self.latency_us_sum.load(ORD),
            latency_us_max: self.latency_us_max.load(ORD),
        }
    }
}

/// Point-in-time view of the engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests accepted via `submit`/`recommend`.
    pub requests: u64,
    /// Requests answered directly from the sequence cache.
    pub cache_hits: u64,
    /// Requests that missed the cache and were enqueued.
    pub cache_misses: u64,
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Requests carried by those batches (`batched_requests / batches`
    /// is the mean batch size).
    pub batched_requests: u64,
    /// Batches flushed because they reached `max_batch`.
    pub flush_full: u64,
    /// Batches flushed because `batch_deadline` expired.
    pub flush_deadline: u64,
    /// Batches flushed while draining the queue at shutdown.
    pub flush_shutdown: u64,
    /// Sum of request latencies (submit → reply) in microseconds.
    pub latency_us_sum: u64,
    /// Maximum single-request latency in microseconds.
    pub latency_us_max: u64,
}

impl MetricsSnapshot {
    /// Mean requests per dispatched batch (0.0 before the first batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Fraction of requests answered from the cache (0.0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }

    /// Mean request latency in microseconds (0.0 when idle).
    pub fn mean_latency_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.latency_us_sum as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let m = Metrics::default();
        assert_eq!(m.snapshot().mean_batch_size(), 0.0);
        assert_eq!(m.snapshot().cache_hit_rate(), 0.0);
        assert_eq!(m.snapshot().mean_latency_us(), 0.0);

        m.requests.store(10, ORD);
        m.cache_hits.store(4, ORD);
        m.batches.store(2, ORD);
        m.batched_requests.store(6, ORD);
        m.record_latency(Duration::from_micros(100));
        m.record_latency(Duration::from_micros(300));
        let s = m.snapshot();
        assert_eq!(s.mean_batch_size(), 3.0);
        assert_eq!(s.cache_hit_rate(), 0.4);
        assert_eq!(s.latency_us_max, 300);
        assert_eq!(s.latency_us_sum, 400);
    }
}
