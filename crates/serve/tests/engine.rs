//! Integration tests for the serving engine: batching policy, response
//! routing under concurrency, shutdown draining, and determinism
//! against the offline `Vsan::recommend` path.

use std::time::Duration;

use vsan_core::{Vsan, VsanConfig};
use vsan_data::Dataset;
use vsan_serve::{Engine, EngineConfig, ServeError};

/// Tiny deterministic dataset + model, same shape as vsan-core's own
/// smoke tests. Two training epochs keep each test fast; the engine
/// only ever runs evaluation-mode forwards.
fn trained_model() -> Vsan {
    let num_items = 8;
    let users = 12;
    let sequences = (0..users)
        .map(|u| (0..10).map(|t| ((u + t) % num_items + 1) as u32).collect())
        .collect();
    let ds = Dataset { name: "serve-test".into(), num_items, sequences };
    let train_users: Vec<usize> = (0..users).collect();
    let mut cfg = VsanConfig::smoke();
    cfg.base.epochs = 2;
    Vsan::train(&ds, &train_users, &cfg).expect("smoke training")
}

#[test]
fn deadline_flushes_a_partial_batch() {
    let engine = Engine::start(
        trained_model(),
        EngineConfig::default()
            .with_max_batch(64)
            .with_batch_deadline(Duration::from_millis(10))
            .with_workers(1),
    );
    let tickets: Vec<_> =
        [&[1u32, 2][..], &[3, 4, 5], &[6]].iter().map(|h| engine.submit(h, 4)).collect();
    for t in tickets {
        assert_eq!(t.wait().unwrap().len(), 4);
    }
    let m = engine.shutdown();
    assert_eq!(m.requests, 3);
    assert!(m.flush_deadline >= 1, "far-from-full batch must flush on deadline: {m:?}");
    assert_eq!(m.flush_full, 0, "max_batch=64 can never fill with 3 requests");
    assert_eq!(m.batched_requests, 3);
}

#[test]
fn max_batch_size_flushes_before_the_deadline() {
    let engine = Engine::start(
        trained_model(),
        EngineConfig::default()
            .with_max_batch(2)
            // Far longer than the test: any flush that happens is a
            // size-triggered flush, never a deadline flush.
            .with_batch_deadline(Duration::from_secs(30))
            .with_workers(1),
    );
    let histories: [&[u32]; 4] = [&[1], &[2], &[3], &[4]];
    let tickets: Vec<_> = histories.iter().map(|h| engine.submit(h, 3)).collect();
    for t in tickets {
        assert_eq!(t.wait().unwrap().len(), 3);
    }
    let m = engine.shutdown();
    assert_eq!(m.flush_full, 2, "4 requests at max_batch=2 → exactly 2 full batches: {m:?}");
    assert_eq!(m.flush_deadline, 0);
    assert_eq!(m.batched_requests, 4);
    assert!(m.mean_batch_size() >= 2.0 - f64::EPSILON);
}

#[test]
fn concurrent_submitters_each_get_their_own_answer() {
    let engine = Engine::start(
        trained_model(),
        EngineConfig::default()
            .with_max_batch(4)
            .with_batch_deadline(Duration::from_millis(2))
            .with_workers(2),
    );
    std::thread::scope(|scope| {
        for worker in 0u32..8 {
            let engine = &engine;
            scope.spawn(move || {
                let history = vec![worker % 8 + 1, (worker + 3) % 8 + 1];
                let expected = engine.model().recommend(&history, 5);
                for _ in 0..3 {
                    let got = engine.recommend(&history, 5).unwrap();
                    assert_eq!(
                        got, expected,
                        "submitter {worker} must receive the reply to its own request"
                    );
                }
            });
        }
    });
    let m = engine.shutdown();
    assert_eq!(m.requests, 24);
    assert_eq!(m.cache_hits + m.cache_misses, 24);
}

#[test]
fn shutdown_drains_a_non_empty_queue() {
    let engine = Engine::start(
        trained_model(),
        EngineConfig::default()
            .with_max_batch(100)
            // The deadline never fires during the test, so the queued
            // requests can only be answered by the shutdown drain.
            .with_batch_deadline(Duration::from_secs(30))
            .with_workers(1),
    );
    let histories: [&[u32]; 6] = [&[1], &[2], &[3], &[4], &[5], &[6]];
    let tickets: Vec<_> = histories.iter().map(|h| engine.submit(h, 3)).collect();
    let m = engine.shutdown();
    for t in tickets {
        assert_eq!(t.wait().unwrap().len(), 3, "queued request must still be answered");
    }
    assert_eq!(m.flush_shutdown, 1, "the drain flush is a shutdown flush: {m:?}");
    assert_eq!(m.batched_requests, 6);
}

#[test]
fn engine_matches_offline_recommend_on_miss_and_hit() {
    let engine = Engine::start(trained_model(), EngineConfig::default());
    // Longer than max_seq_len (8) so the cache key is the fold-in
    // window while the exclusion set still uses the full history.
    let long: Vec<u32> = (0..20).map(|t| t % 8 + 1).collect();
    for history in [&[2u32, 4, 6][..], &long, &[]] {
        let miss = engine.recommend(history, 5).unwrap();
        let hit = engine.recommend(history, 5).unwrap();
        let offline = engine.model().recommend(history, 5);
        assert_eq!(miss, offline, "cache miss must match Vsan::recommend");
        assert_eq!(hit, offline, "cache hit must match Vsan::recommend");
    }
    let m = engine.metrics();
    assert!(m.cache_hits >= 3, "second lookups must hit: {m:?}");
    assert!(m.cache_misses >= 3);
    assert!(m.cache_hit_rate() > 0.0);
}

#[test]
fn invalidate_evicts_the_users_window() {
    let engine = Engine::start(trained_model(), EngineConfig::default());
    let history = [1u32, 3, 5];
    engine.recommend(&history, 3).unwrap();
    let before = engine.metrics();
    assert!(engine.invalidate(&history), "entry cached by the first request");
    assert!(!engine.invalidate(&history), "second eviction finds nothing");
    engine.recommend(&history, 3).unwrap();
    let after = engine.metrics();
    assert_eq!(after.cache_misses, before.cache_misses + 1, "evicted entry must re-miss");
    assert_eq!(
        after.cache_invalidate_misses,
        before.cache_invalidate_misses + 1,
        "the no-op second invalidation must be counted, not silent"
    );
}

#[test]
fn invalidate_during_in_flight_tickets_is_safe_and_exact() {
    // Submit on a long deadline so the request sits in the batcher queue,
    // invalidate the same window while the ticket is in flight, and keep
    // polling a second ticket throughout. Neither ticket may deadlock,
    // lose its reply, or return anything but the offline answer.
    let engine = Engine::start(
        trained_model(),
        EngineConfig::default()
            // Large max_batch + a deadline flush: both submits are queued
            // (in flight) for ~the full deadline, giving the invalidation
            // below a guaranteed window to race against.
            .with_max_batch(64)
            .with_batch_deadline(Duration::from_millis(150))
            .with_workers(1),
    );
    let history = [2u32, 4, 6];
    let expected = engine.model().recommend(&history, 4);

    let waited = engine.submit(&history, 4);
    let mut polled = engine.submit(&history, 4);
    // The window cannot be cached yet — both requests are still in flight.
    assert!(!engine.invalidate(&history), "nothing cached while in flight");
    assert_eq!(
        engine.metrics().cache_invalidate_misses,
        1,
        "an in-flight (uncached) invalidation is a recorded miss"
    );
    let reply = loop {
        engine.invalidate(&history); // racing eviction must stay harmless
        if let Some(reply) = polled.poll() {
            break reply;
        }
        std::thread::yield_now();
    };
    assert_eq!(reply.unwrap(), expected, "polled ticket must match Vsan::recommend");
    assert_eq!(waited.wait().unwrap(), expected, "waited ticket must match Vsan::recommend");

    // Post-flight: the reply was (re)cached after the racing evictions
    // settled, or it wasn't — either way a fresh request re-misses or
    // hits with the exact offline answer.
    assert_eq!(engine.recommend(&history, 4).unwrap(), expected);
    let misses_before = engine.metrics().cache_invalidate_misses;
    assert!(engine.invalidate(&history), "settled entry evicts exactly once");
    assert!(!engine.invalidate(&history));
    let m = engine.shutdown();
    assert!(m.requests >= 3);
    assert_eq!(
        m.cache_invalidate_misses,
        misses_before + 1,
        "exactly the second post-flight invalidation misses"
    );
}

#[test]
fn engine_from_parallel_trained_model_matches_offline_recommend() {
    // Train the backing model through the data-parallel executor (threads
    // > 1, > batch size) and serve from it: the engine must agree with
    // Vsan::recommend bit-for-bit on rankings, and — because training is
    // thread-count invariant — with an engine built from a serially
    // trained twin.
    let num_items = 8;
    let users = 12;
    let sequences = (0..users)
        .map(|u| (0..10).map(|t| ((u + t) % num_items + 1) as u32).collect())
        .collect();
    let ds = Dataset { name: "serve-par".into(), num_items, sequences };
    let train_users: Vec<usize> = (0..users).collect();
    let mut cfg = VsanConfig::smoke();
    cfg.base.epochs = 2;

    let serial = Vsan::train(&ds, &train_users, &cfg.clone().with_threads(1)).unwrap();
    let parallel = Vsan::train(&ds, &train_users, &cfg.clone().with_threads(16)).unwrap();

    let engine = Engine::start(parallel, EngineConfig::default());
    let long: Vec<u32> = (0..20).map(|t| t % 8 + 1).collect();
    for history in [&[1u32, 2, 3][..], &[7][..], &long, &[]] {
        let served = engine.recommend(history, 5).unwrap();
        assert_eq!(served, engine.model().recommend(history, 5), "engine vs its own model");
        assert_eq!(served, serial.recommend(history, 5), "parallel vs serial training");
    }
    engine.shutdown();
}

#[test]
fn cache_can_be_disabled() {
    let engine = Engine::start(trained_model(), EngineConfig::default().with_cache_capacity(0));
    let a = engine.recommend(&[1, 2], 4).unwrap();
    let b = engine.recommend(&[1, 2], 4).unwrap();
    assert_eq!(a, b, "determinism must not depend on the cache");
    let m = engine.shutdown();
    assert_eq!(m.cache_hits, 0);
    assert_eq!(m.cache_misses, 2);
}

#[test]
fn tickets_poll_exactly_once() {
    let engine = Engine::start(
        trained_model(),
        EngineConfig::default().with_batch_deadline(Duration::from_millis(1)),
    );
    let mut ticket = engine.submit(&[1, 2, 3], 4);
    let reply = loop {
        if let Some(reply) = ticket.poll() {
            break reply;
        }
        std::thread::yield_now();
    };
    assert_eq!(reply.unwrap().len(), 4);
    assert!(ticket.poll().is_none(), "a taken response is gone");
    assert_eq!(ticket.wait(), Err(ServeError::ResponseTaken));

    // A cache-hit ticket is resolved at submit time.
    let mut warm = engine.submit(&[1, 2, 3], 4);
    assert!(warm.poll().is_some(), "cache hits resolve immediately");
}

#[test]
fn model_error_degrades_explicitly_instead_of_serving_zeros() {
    // An out-of-vocabulary item id makes the forward fail on both the
    // fast path and the graph path. The engine must surface that as a
    // counted fault plus a degraded (popularity) answer — never as
    // fabricated all-zero logits ranked like real scores.
    let sink = std::sync::Arc::new(vsan_obs::MemorySink::new());
    let popularity: Vec<f32> = (0..9).map(|i| i as f32).collect();
    let engine = Engine::start(
        trained_model(),
        EngineConfig::default()
            .with_batch_deadline(Duration::from_millis(1))
            .with_workers(1)
            .with_popularity(popularity)
            .with_fault_sink(sink.clone()),
    );

    let bad_history = [1u32, 2, 10_000]; // 10_000 is far out of vocab
    let resp = engine.recommend(&bad_history, 3).expect("degraded fallback answers");
    assert!(resp.is_degraded(), "a model error must be visible on the response");
    assert_eq!(resp.items(), &[8, 7, 6], "popularity order, highest score first");

    // A healthy request on the same worker afterwards is unaffected.
    let good = engine.recommend(&[1, 2, 3], 4).unwrap();
    assert!(!good.is_degraded());
    assert_eq!(good, engine.model().recommend(&[1, 2, 3], 4));

    let m = engine.shutdown();
    assert_eq!(m.model_errors, 1, "{m:?}");
    assert_eq!(m.degraded_responses, 1, "{m:?}");
    assert!(m.worker_panics == 0, "an Err forward is not a panic: {m:?}");
    let faults: Vec<String> = sink.lines();
    assert!(
        faults.iter().any(|l| l.contains("\"kind\":\"model_error\"")),
        "fault JSONL must record the model error: {faults:?}"
    );
}
