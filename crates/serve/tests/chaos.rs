//! Chaos suite: seeded fault-injection schedules driving the engine's
//! fault-tolerance guarantees (README § Fault tolerance, DESIGN.md §9):
//!
//! 1. **No ticket is ever lost** — every submit resolves to a response
//!    or a typed error, across worker panics, dropped batches, respawn
//!    exhaustion, and shutdown. The metric form of the same guarantee:
//!    `latency_us.count == requests` (one terminal resolution each).
//! 2. **Deadline-expired requests never occupy compute** — they are
//!    rejected at batcher pickup, before the forward pass.
//! 3. **Completed (non-degraded) results are bit-identical to a
//!    fault-free run** — faults can delay or reject a request, never
//!    corrupt its ranking.
//!
//! The failpoint registry is process-global, so every test serializes
//! on one lock and disarms on the way out. Seeded schedules draw their
//! seed from `VSAN_FAILPOINT_SEED` (the verify script sweeps several);
//! assertions hold for *any* seed — the seed varies the fault pattern,
//! not the contract.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, Once, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use vsan_core::{Vsan, VsanConfig};
use vsan_data::Dataset;
use vsan_serve::failpoint::{self, FailAction, Schedule};
use vsan_serve::{
    BackpressurePolicy, Engine, EngineConfig, Response, ResponseSource, ServeError, Ticket,
};

/// Serialize chaos tests (the failpoint registry is process-global) and
/// disarm everything when the test ends, pass or fail.
struct ChaosGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        failpoint::disarm_all();
    }
}

fn chaos() -> ChaosGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    static QUIET: Once = Once::new();
    // Injected panics are expected output; keep the test log readable by
    // swallowing their reports while delegating real panics.
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !msg.contains("failpoint:") {
                prev(info);
            }
        }));
    });
    let guard =
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner);
    failpoint::disarm_all();
    ChaosGuard(guard)
}

/// Seed for the fault schedules; `verify.sh` sweeps several values.
fn chaos_seed() -> u64 {
    std::env::var("VSAN_FAILPOINT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE)
}

/// Tiny deterministic dataset + model (same shape as the engine tests).
fn trained_model() -> Vsan {
    let num_items = 8;
    let users = 12;
    let sequences = (0..users)
        .map(|u| (0..10).map(|t| ((u + t) % num_items + 1) as u32).collect())
        .collect();
    let ds = Dataset { name: "chaos-test".into(), num_items, sequences };
    let train_users: Vec<usize> = (0..users).collect();
    let mut cfg = VsanConfig::smoke();
    cfg.base.epochs = 2;
    Vsan::train(&ds, &train_users, &cfg).expect("smoke training")
}

/// A pool of distinct histories (distinct fold-in windows, so the cache
/// never aliases them).
fn histories(n: usize) -> Vec<Vec<u32>> {
    (0..n).map(|u| (0..6).map(|t| ((u + t) % 8 + 1) as u32).collect()).collect()
}

/// Resolve a ticket with a watchdog: a ticket that never resolves IS
/// the lost-ticket bug this suite exists to catch, reported as a panic
/// instead of a hung test binary.
fn wait_within(mut ticket: Ticket, limit: Duration) -> Result<Response, ServeError> {
    let due = Instant::now() + limit;
    loop {
        if let Some(reply) = ticket.poll() {
            return reply;
        }
        assert!(Instant::now() < due, "ticket lost: unresolved after {limit:?}");
        std::thread::sleep(Duration::from_micros(200));
    }
}

#[test]
fn no_ticket_lost_under_seeded_worker_panics() {
    let _chaos = chaos();
    let seed = chaos_seed();
    failpoint::arm(
        "panic_in_worker",
        Schedule::Seeded { seed, num: 1, den: 3 },
        FailAction::Panic,
    );

    let model = trained_model();
    let engine = Engine::start(
        model,
        EngineConfig::default()
            .with_max_batch(4)
            .with_batch_deadline(Duration::from_millis(1))
            .with_workers(2),
    );
    let pool = histories(12);
    let tickets: Vec<_> =
        (0..80).map(|i| engine.submit(&pool[i % pool.len()], 5)).collect();
    let submitted = tickets.len() as u64;

    let (mut ok, mut lost) = (0u64, 0u64);
    for ticket in tickets {
        match wait_within(ticket, Duration::from_secs(20)) {
            Ok(resp) => {
                assert!(!resp.is_degraded(), "unlimited respawns never degrade");
                ok += 1;
            }
            Err(ServeError::WorkerLost) => lost += 1,
            Err(other) => panic!("unexpected error under panic injection: {other:?}"),
        }
    }
    assert_eq!(ok + lost, submitted, "every ticket must resolve exactly once");

    let panics = failpoint::fired("panic_in_worker");
    failpoint::disarm_all();
    // The pool must have healed: a fresh request succeeds post-chaos.
    let healed = engine.recommend(&pool[0], 5).expect("respawned pool serves again");
    assert_eq!(healed, engine.model().recommend(&pool[0], 5));

    let stats = engine.shutdown_stats();
    let m = stats.snapshot;
    assert!(panics > 0, "a 1/3 schedule over ~{submitted} requests must fire");
    assert_eq!(m.worker_panics, panics, "every injected panic is caught and counted");
    assert_eq!(m.worker_respawns, panics, "unlimited budget respawns every panic");
    assert!(
        m.requeued_requests + m.requests >= m.requests,
        "requeue counter is well-formed: {m:?}"
    );
    assert_eq!(
        stats.latency_us.count,
        m.requests,
        "metric form of no-ticket-lost: one terminal resolution per request"
    );
}

#[test]
fn expired_requests_are_rejected_at_pickup_and_never_computed() {
    let _chaos = chaos();
    let model = trained_model();
    let engine = Engine::start(
        model,
        EngineConfig::default()
            .with_max_batch(8)
            .with_batch_deadline(Duration::from_millis(1))
            .with_workers(1),
    );
    let pool = histories(12);

    // Zero-budget deadlines: already expired when the batcher picks them
    // up, so the pickup check must reject every one before the forward.
    let expired: Vec<_> = pool[..6]
        .iter()
        .map(|h| engine.submit_with_deadline(h, 5, Some(Duration::ZERO)))
        .collect();
    // A disjoint live wave that must be computed normally.
    let live: Vec<_> = pool[6..12].iter().map(|h| engine.submit(h, 5)).collect();

    for ticket in expired {
        assert_eq!(
            wait_within(ticket, Duration::from_secs(20)),
            Err(ServeError::DeadlineExceeded),
            "an expired request must resolve to the typed deadline error"
        );
    }
    for (ticket, history) in live.into_iter().zip(&pool[6..12]) {
        let resp = wait_within(ticket, Duration::from_secs(20)).expect("live request");
        assert_eq!(resp, engine.model().recommend(history, 5));
    }

    let stats = engine.shutdown_stats();
    let m = stats.snapshot;
    assert_eq!(m.deadline_misses, 6, "all six expired requests counted: {m:?}");
    assert_eq!(
        stats.compute_us.count, 6,
        "only the six live requests may occupy compute — expired ones never do"
    );
    assert_eq!(stats.latency_us.count, m.requests);
}

#[test]
fn dropped_batches_resolve_every_ticket_typed() {
    let _chaos = chaos();
    failpoint::arm("drop_batch", Schedule::FirstN(1), FailAction::DropBatch);

    let model = trained_model();
    let engine = Engine::start(
        model,
        EngineConfig::default()
            .with_max_batch(4)
            .with_batch_deadline(Duration::from_millis(1))
            .with_workers(1),
    );
    let pool = histories(8);
    let tickets: Vec<_> = pool.iter().map(|h| engine.submit(h, 4)).collect();

    let (mut ok, mut lost) = (0u64, 0u64);
    for (ticket, history) in tickets.into_iter().zip(&pool) {
        match wait_within(ticket, Duration::from_secs(20)) {
            Ok(resp) => {
                assert_eq!(resp, engine.model().recommend(history, 4));
                ok += 1;
            }
            Err(ServeError::WorkerLost) => lost += 1,
            Err(other) => panic!("unexpected error under drop_batch: {other:?}"),
        }
    }
    assert_eq!(ok + lost, 8);
    assert!(lost >= 1, "the dropped batch carried at least one request");

    let m = engine.shutdown();
    assert_eq!(m.dropped_batches, 1);
}

#[test]
fn respawn_exhaustion_degrades_gracefully_instead_of_erroring() {
    let _chaos = chaos();
    failpoint::arm("panic_in_worker", Schedule::Always, FailAction::Panic);

    let model = trained_model();
    // Popularity scores: item ids 1..=8, higher id = more popular.
    let popularity: Vec<f32> = (0..9).map(|i| i as f32).collect();
    let engine = Engine::start(
        model,
        EngineConfig::default()
            .with_max_batch(4)
            .with_batch_deadline(Duration::from_millis(1))
            .with_workers(1)
            .with_max_worker_respawns(0)
            .with_popularity(popularity),
    );
    let history = vec![1u32, 2, 3];

    // The only worker panics on the first batch, the respawn budget is
    // zero, so the engine must flip into degraded mode and resolve the
    // requeued request through the popularity fallback (nothing is
    // cached yet) — not strand it, not error it.
    let resp = wait_within(engine.submit(&history, 4), Duration::from_secs(20))
        .expect("requeued request resolves degraded, not lost");
    assert_eq!(resp.source(), ResponseSource::DegradedPopularity);
    // Most popular first, minus the history: 8, 7, 6, 5.
    assert_eq!(resp, vec![8u32, 7, 6, 5]);
    assert!(engine.is_degraded(), "all workers down + zero budget = degraded mode");

    // Submits now resolve at admission through the fallback.
    let again = engine.recommend(&history, 2).expect("degraded mode still answers");
    assert!(again.is_degraded());

    let stats = engine.shutdown_stats();
    let m = stats.snapshot;
    assert_eq!(m.worker_panics, 1);
    assert_eq!(m.worker_respawns, 0);
    assert!(m.degraded_responses >= 2, "{m:?}");
    assert_eq!(m.overloaded_errors, 0, "a configured fallback never errors Overloaded");
    assert_eq!(stats.latency_us.count, m.requests);
}

#[test]
fn chaos_storm_completed_results_match_the_fault_free_run() {
    let _chaos = chaos();
    let seed = chaos_seed();
    let model = trained_model();
    let pool = histories(12);

    // Fault-free reference rankings, straight from the offline path the
    // engine is contractually bit-identical to.
    let expected: HashMap<&[u32], Vec<u32>> =
        pool.iter().map(|h| (h.as_slice(), model.recommend(h, 5))).collect();

    failpoint::arm(
        "panic_in_worker",
        Schedule::Seeded { seed, num: 1, den: 6 },
        FailAction::Panic,
    );
    failpoint::arm(
        "slow_compute",
        Schedule::Seeded { seed: seed.wrapping_add(1), num: 1, den: 4 },
        FailAction::SleepMs(2),
    );
    failpoint::arm(
        "drop_batch",
        Schedule::Seeded { seed: seed.wrapping_add(2), num: 1, den: 8 },
        FailAction::DropBatch,
    );

    let popularity: Vec<f32> = (0..9).map(|i| i as f32).collect();
    let engine = Engine::start(
        model,
        EngineConfig::default()
            .with_max_batch(4)
            .with_batch_deadline(Duration::from_millis(1))
            .with_workers(2)
            .with_queue_capacity(16)
            .with_backpressure(BackpressurePolicy::ShedOldest)
            .with_popularity(popularity),
    );

    let total = 120usize;
    let tickets: Vec<_> = (0..total)
        .map(|i| {
            let history = &pool[i % pool.len()];
            // Every third request carries a real (generous) deadline, so
            // slow batches can push some over the edge under load.
            if i % 3 == 0 {
                engine.submit_with_deadline(history, 5, Some(Duration::from_millis(40)))
            } else {
                engine.submit(history, 5)
            }
        })
        .collect();

    let (mut exact, mut degraded, mut errors) = (0u64, 0u64, 0u64);
    for (i, ticket) in tickets.into_iter().enumerate() {
        let history = pool[i % pool.len()].as_slice();
        match wait_within(ticket, Duration::from_secs(30)) {
            Ok(resp) if resp.is_degraded() => degraded += 1,
            Ok(resp) => {
                assert_eq!(
                    resp.items(),
                    expected[history].as_slice(),
                    "completed result {i} must be bit-identical to the fault-free run"
                );
                exact += 1;
            }
            Err(
                ServeError::WorkerLost | ServeError::DeadlineExceeded | ServeError::Overloaded,
            ) => errors += 1,
            Err(other) => panic!("untyped loss on request {i}: {other:?}"),
        }
    }
    assert_eq!(exact + degraded + errors, total as u64, "every ticket accounted for");
    assert!(exact > 0, "some requests must complete exactly even under chaos");
    assert!(failpoint::hits("panic_in_worker") > 0, "the storm must reach the failpoints");

    failpoint::disarm_all();
    let stats = engine.shutdown_stats();
    let m = stats.snapshot;
    assert_eq!(m.requests, total as u64);
    assert_eq!(
        stats.latency_us.count,
        m.requests,
        "metric form of no-ticket-lost under the full storm"
    );
    assert_eq!(m.worker_panics, m.worker_respawns, "unlimited budget heals every panic");
}

#[test]
fn unarmed_failpoints_leave_the_engine_bit_identical() {
    let _chaos = chaos();
    // Nothing armed: the instrumented engine must behave exactly like
    // the offline path — the failpoint fast path is a single atomic
    // load and must not perturb results.
    let engine = Engine::start(trained_model(), EngineConfig::default());
    for history in histories(6) {
        let miss = engine.recommend(&history, 5).expect("fault-free serve");
        let hit = engine.recommend(&history, 5).expect("fault-free cache hit");
        let offline = engine.model().recommend(&history, 5);
        assert_eq!(miss, offline);
        assert_eq!(hit, offline);
        assert_eq!(miss.source(), ResponseSource::Batch);
        assert_eq!(hit.source(), ResponseSource::Cache);
    }
    let stats = engine.shutdown_stats();
    let m = stats.snapshot;
    assert_eq!(m.worker_panics + m.dropped_batches + m.deadline_misses, 0);
    assert_eq!(m.degraded_responses, 0);
    assert_eq!(stats.latency_us.count, m.requests);
    assert_eq!(stats.compute_us.count, m.requests);
}

#[test]
fn worker_panic_dump_reconstructs_the_poisoned_batch_chain() {
    let _chaos = chaos();
    failpoint::arm("panic_in_worker", Schedule::FirstN(1), FailAction::Panic);

    let sink = vsan_obs::MemorySink::new();
    let engine = Engine::start(
        trained_model(),
        EngineConfig::default()
            .with_workers(1)
            .with_max_batch(4)
            .with_cache_capacity(0)
            .with_fault_sink(std::sync::Arc::new(sink.clone())),
    );
    for history in histories(8) {
        let _ = wait_within(engine.submit(&history, 5), Duration::from_secs(30));
    }
    assert!(failpoint::fired("panic_in_worker") > 0, "the panic must fire");
    engine.shutdown();

    // Every fault-sink line — events, dump header, dump records — must
    // be a valid single-line JSON object.
    let lines = sink.lines();
    for line in &lines {
        vsan_obs::parse(line).unwrap_or_else(|e| panic!("unparseable fault JSONL: {e}: {line}"));
    }

    // The worker panic dumps the flight recorder: locate the bundle and
    // slice out exactly the records it declares.
    let dump_at = lines
        .iter()
        .position(|l| {
            let v = vsan_obs::parse(l).expect("parsed above");
            v.get("type").and_then(vsan_obs::JsonValue::as_str) == Some("flight_dump")
                && v.get("fault").and_then(vsan_obs::JsonValue::as_str) == Some("worker_panic")
        })
        .expect("a worker panic must dump the flight recorder");
    let header = vsan_obs::parse(&lines[dump_at]).expect("parsed above");
    let declared = header.get("records").and_then(vsan_obs::JsonValue::as_u64).expect("records");
    assert!(declared > 0, "the dump must carry the spans leading up to the panic");

    // (trace_id, span_id, parent_span_id, stage) per dumped record.
    let records: Vec<(String, String, String, String)> = lines
        [dump_at + 1..dump_at + 1 + declared as usize]
        .iter()
        .map(|l| {
            let v = vsan_obs::parse(l).expect("parsed above");
            assert_eq!(v.get("type").and_then(vsan_obs::JsonValue::as_str), Some("flight_record"));
            let s = |k: &str| {
                v.get(k).and_then(vsan_obs::JsonValue::as_str).expect("string field").to_string()
            };
            (s("trace_id"), s("span_id"), s("parent_span_id"), s("stage"))
        })
        .collect();

    // The poisoned batch's compute spans were recorded *before* the
    // failpoint fired, so each reconstructs its full causal chain —
    // admission → pickup → compute — entirely from the dump.
    let by_span: HashMap<&str, &(String, String, String, String)> =
        records.iter().map(|r| (r.1.as_str(), r)).collect();
    let computes: Vec<_> = records.iter().filter(|r| r.3 == "compute").collect();
    assert!(!computes.is_empty(), "the poisoned batch must leave compute spans in the dump");
    for c in computes {
        let pickup = by_span.get(c.2.as_str()).expect("compute's parent span in dump");
        assert_eq!(pickup.3, "pickup", "compute must chain to a pickup span");
        assert_eq!(pickup.0, c.0, "trace id constant along the chain");
        let admission = by_span.get(pickup.2.as_str()).expect("pickup's parent span in dump");
        assert_eq!(admission.3, "admission", "pickup must chain to the admission root");
        assert_eq!(admission.2, "0000000000000000", "admission is the root (no parent)");
        assert_eq!(admission.0, c.0, "trace id constant along the chain");
    }
}
