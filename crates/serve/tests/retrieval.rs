//! Engine-level retrieval tests: the clustered index behind
//! [`EngineConfig::with_retrieval`] must agree with the exact oracle at
//! full probe, and a restart on a restored checkpoint must rebuild a
//! bit-identical index (DESIGN.md §12 — the index is derived data, not
//! checkpoint state).

use vsan_core::{ClusteredConfig, Retrieval, Vsan, VsanConfig};
use vsan_data::Dataset;
use vsan_serve::{Engine, EngineConfig};

/// Tiny deterministic dataset + model, same shape as the engine tests.
fn serve_cfg() -> VsanConfig {
    let mut cfg = VsanConfig::smoke();
    cfg.base.epochs = 2;
    cfg
}

fn trained_model() -> Vsan {
    let num_items = 8;
    let users = 12;
    let sequences = (0..users)
        .map(|u| (0..10).map(|t| ((u + t) % num_items + 1) as u32).collect())
        .collect();
    let ds = Dataset { name: "serve-retrieval".into(), num_items, sequences };
    let train_users: Vec<usize> = (0..users).collect();
    Vsan::train(&ds, &train_users, &serve_cfg()).expect("smoke training")
}

/// A full-probe index config: every cluster visited, so the engine's
/// answers must equal the exact oracle's regardless of which path the
/// env gates route to.
fn full_probe() -> ClusteredConfig {
    ClusteredConfig { num_clusters: 3, nprobe: 3, kmeans_iters: 2, train_sample: 4096, seed: 7 }
}

#[test]
fn engine_clustered_matches_exact_oracle_at_full_probe() {
    let model = trained_model();
    let histories: [&[u32]; 4] = [&[1, 2, 3], &[4, 5], &[6], &[7, 8, 1, 2]];
    let expected = model.recommend_batch_exact(&histories, 5).expect("exact oracle");

    let engine = Engine::start(
        model,
        EngineConfig::default()
            .with_workers(1)
            .with_retrieval(Retrieval::Clustered(full_probe())),
    );
    for (history, want) in histories.iter().zip(&expected) {
        let got = engine.submit(history, 5).wait().expect("serve reply");
        assert!(!got.is_degraded(), "healthy engine must answer from the model");
        assert_eq!(got.items(), want.as_slice(), "engine ranking diverged from the oracle");
    }
    engine.shutdown();
}

#[test]
fn restart_on_restored_checkpoint_rebuilds_identically() {
    let ccfg = full_probe();
    let mut a = trained_model();
    let blob = a.params().save();

    // Reference clustering from the trained parameters; Engine::start
    // runs the same rebuild on its own copy.
    a.set_retrieval(Retrieval::Clustered(ccfg.clone()));
    let assignments = a.retrieval_index().expect("index built").assignments().to_vec();

    let histories: [&[u32]; 3] = [&[1, 2, 3], &[4, 5], &[8]];
    let engine_cfg =
        EngineConfig::default().with_workers(1).with_retrieval(Retrieval::Clustered(ccfg.clone()));
    let engine_a = Engine::start(a, engine_cfg.clone());
    let replies_a: Vec<Vec<u32>> = histories
        .iter()
        .map(|h| engine_a.submit(h, 4).wait().expect("serve reply").into_items())
        .collect();
    engine_a.shutdown();

    // "Restart": a freshly initialized model (different weights until
    // the load), restored from the checkpoint blob, served again.
    let mut b = Vsan::init(9, &serve_cfg());
    b.params_mut().load_values(blob).expect("checkpoint reload");
    b.set_retrieval(Retrieval::Clustered(ccfg));
    assert_eq!(
        assignments,
        b.retrieval_index().expect("index built").assignments(),
        "restored parameters must produce a bit-identical clustering"
    );
    let engine_b = Engine::start(b, engine_cfg);
    for (h, want) in histories.iter().zip(&replies_a) {
        let got = engine_b.submit(h, 4).wait().expect("serve reply");
        assert_eq!(got.items(), want.as_slice(), "restarted engine must answer identically");
    }
    engine_b.shutdown();
}

#[test]
fn retrieval_path_counters_account_for_every_batch_answer() {
    let model = trained_model();
    let engine = Engine::start(
        model,
        EngineConfig::default()
            .with_workers(1)
            .with_cache_capacity(0)
            .with_retrieval(Retrieval::Clustered(full_probe())),
    );
    let histories: [&[u32]; 4] = [&[1, 2, 3], &[4, 5], &[6], &[7, 8, 1, 2]];
    for history in &histories {
        engine.submit(history, 5).wait().expect("serve reply");
    }
    let stats = engine.shutdown_stats();
    let m = stats.snapshot;

    // Exactly one retrieval-path resolution per request, whichever path
    // the env gates routed to.
    assert_eq!(
        m.retrieval_exact + m.retrieval_clustered,
        histories.len() as u64,
        "every batch answer must be attributed to exactly one retrieval path"
    );
    if vsan_core::ann_disabled() || vsan_core::fast_path_disabled() {
        assert_eq!(m.retrieval_clustered, 0, "env gates pin the engine to the exact path");
        assert_eq!(stats.retrieval_probes.count, 0);
    } else {
        assert_eq!(m.retrieval_clustered, histories.len() as u64);
        assert_eq!(m.retrieval_exact, 0);
        // One probe/survivor observation per clustered answer; at full
        // probe every cluster is visited.
        assert_eq!(stats.retrieval_probes.count, histories.len() as u64);
        assert_eq!(stats.retrieval_survivors.count, histories.len() as u64);
        assert_eq!(stats.retrieval_probes.max, 3, "full probe visits all 3 clusters");
        assert!(stats.retrieval_survivors.max >= 5, "re-rank pool covers the requested k");
    }

    // An exact-retrieval engine counts on the other side.
    let engine = Engine::start(
        trained_model(),
        EngineConfig::default().with_workers(1).with_cache_capacity(0),
    );
    for history in &histories {
        engine.submit(history, 5).wait().expect("serve reply");
    }
    let m = engine.shutdown();
    assert_eq!(m.retrieval_exact, histories.len() as u64);
    assert_eq!(m.retrieval_clustered, 0);
}
