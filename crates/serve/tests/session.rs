//! Engine-level tests for the incremental session path
//! (`Engine::append_event`): bitwise agreement with the offline
//! recommend path, transparent eviction under capacity pressure,
//! hint-driven resets, `session.*` metrics and fault telemetry, and the
//! sequence-cache warming side effect.

use std::sync::Arc;

use vsan_core::{Vsan, VsanConfig};
use vsan_data::synthetic::{generate_stream, SessionStreamConfig};
use vsan_data::Dataset;
use vsan_serve::{Engine, EngineConfig, ResponseSource};

fn trained_model() -> Vsan {
    let num_items = 8;
    let users = 12;
    let sequences = (0..users)
        .map(|u| (0..10).map(|t| ((u + t) % num_items + 1) as u32).collect())
        .collect();
    let ds = Dataset { name: "session-test".into(), num_items, sequences };
    let train_users: Vec<usize> = (0..users).collect();
    let mut cfg = VsanConfig::smoke();
    cfg.base.epochs = 2;
    Vsan::train(&ds, &train_users, &cfg).expect("smoke training")
}

#[test]
fn appends_match_offline_recommend_and_count_as_warm() {
    let engine = Engine::start(trained_model(), EngineConfig::default());
    let mut history: Vec<u32> = Vec::new();
    for (i, item) in [3u32, 1, 4, 1, 5, 2, 6].into_iter().enumerate() {
        let resp = engine.append_event(42, None, item, 5).unwrap();
        history.push(item);
        assert_eq!(resp.source(), ResponseSource::Session);
        assert!(!resp.is_degraded());
        let offline = engine.model().recommend(&history, 5);
        assert_eq!(resp.items(), &offline[..], "event {i} diverged from offline recommend");
    }
    let m = engine.metrics();
    if vsan_core::fast_path_disabled() {
        // Oracle mode (VSAN_DISABLE_FAST_PATH=1): every event honestly
        // classifies as a full-recompute cold start.
        assert_eq!(m.session_cold_starts, 7);
        assert_eq!(m.session_appends, 0);
    } else {
        assert_eq!(m.session_cold_starts, 1, "only the first event cold-starts");
        assert_eq!(m.session_appends, 6, "every later event is a pure warm append");
    }
    assert_eq!(m.session_resets, 0);
    assert_eq!(m.session_evictions, 0);
    let stats = engine.stats();
    assert_eq!(stats.sessions_live, 1);
    assert!(stats.session_bytes > 0);
    assert!(engine.end_session(42));
    assert!(!engine.end_session(42));
}

#[test]
fn session_stream_replay_matches_offline_recommend() {
    // Zipf-skewed multi-user stream from the vsan-data generator: warm
    // histories, then live appends with client hints — every response
    // must match the offline path regardless of which users stayed
    // cached.
    let cfg = SessionStreamConfig {
        num_users: 6,
        num_items: 8,
        zipf_exponent: 1.0,
        events: 30,
        min_history: 2,
        max_history: 12,
        seed: 7,
    };
    let stream = generate_stream(&cfg);
    let engine = Engine::start(trained_model(), EngineConfig::default().with_session_capacity(3));
    let mut histories = stream.histories.clone();
    for event in &stream.events {
        let user = event.user as usize;
        let hint = histories[user].clone();
        let resp = engine.append_event(event.user, Some(&hint), event.item, 4).unwrap();
        histories[user].push(event.item);
        assert_eq!(resp.source(), ResponseSource::Session);
        let offline = engine.model().recommend(&histories[user], 4);
        assert_eq!(resp.items(), &offline[..]);
    }
    let m = engine.metrics();
    assert_eq!(
        m.session_appends + m.session_cold_starts + m.session_resumes + m.session_resets,
        stream.events.len() as u64,
        "every event classified exactly once: {m:?}"
    );
    let stats = engine.stats();
    assert!(stats.sessions_live <= 3, "capacity bound holds: {}", stats.sessions_live);
}

#[test]
fn eviction_is_transparent_counted_and_reported() {
    let sink = Arc::new(vsan_obs::MemorySink::new());
    let engine = Engine::start(
        trained_model(),
        EngineConfig::default().with_session_capacity(1).with_fault_sink(sink.clone()),
    );
    // Two users ping-pong through a 1-slot store: every switch evicts.
    let mut histories: Vec<Vec<u32>> = vec![Vec::new(); 2];
    for i in 0..6u32 {
        let user = u64::from(i % 2);
        let item = i % 8 + 1;
        let hint = histories[user as usize].clone();
        let resp = engine.append_event(user, Some(&hint), item, 3).unwrap();
        histories[user as usize].push(item);
        let offline = engine.model().recommend(&histories[user as usize], 3);
        assert_eq!(resp.items(), &offline[..], "post-eviction event {i} must still be exact");
    }
    let m = engine.metrics();
    assert!(m.session_evictions >= 4, "every user switch evicts: {m:?}");
    assert_eq!(m.session_appends, 0, "capacity 1 with 2 users never stays warm");
    let evicted_faults = sink
        .lines()
        .iter()
        .filter(|l| {
            vsan_obs::parse(l)
                .ok()
                .and_then(|v| v.get("kind").and_then(|k| k.as_str().map(String::from)))
                .as_deref()
                == Some("session_evicted")
        })
        .count();
    assert_eq!(evicted_faults as u64, m.session_evictions, "one fault event per eviction");
}

#[test]
fn divergent_hint_resets_the_session() {
    let sink = Arc::new(vsan_obs::MemorySink::new());
    let engine =
        Engine::start(trained_model(), EngineConfig::default().with_fault_sink(sink.clone()));
    engine.append_event(9, None, 3, 3).unwrap();
    engine.append_event(9, None, 5, 3).unwrap();
    // The client claims a history that contradicts the cached [3, 5]:
    // the hint wins, the reset is counted and reported.
    let resp = engine.append_event(9, Some(&[7, 7]), 2, 3).unwrap();
    let offline = engine.model().recommend(&[7, 7, 2], 3);
    assert_eq!(resp.items(), &offline[..]);
    if !vsan_core::fast_path_disabled() {
        // Classification is an incremental-path concept; in oracle mode
        // the unprepared state makes this a plain cold start instead.
        let m = engine.metrics();
        assert_eq!(m.session_resets, 1);
        assert!(sink.lines().iter().any(|l| l.contains("session_reset")), "reset fault emitted");
    }
}

#[test]
fn append_warms_the_sequence_cache() {
    let engine = Engine::start(trained_model(), EngineConfig::default());
    engine.append_event(1, None, 2, 4).unwrap();
    engine.append_event(1, None, 6, 4).unwrap();
    let before = engine.metrics();
    // The appended logits are exactly what a batch forward of [2, 6]
    // would cache, so a submit for the same history must hit.
    let resp = engine.recommend(&[2, 6], 4).unwrap();
    assert_eq!(resp.source(), ResponseSource::Cache);
    assert_eq!(resp.items(), &engine.model().recommend(&[2, 6], 4)[..]);
    let after = engine.metrics();
    assert_eq!(after.cache_hits, before.cache_hits + 1);
}

#[test]
fn model_errors_resolve_degraded_not_fabricated() {
    let engine = Engine::start(
        trained_model(),
        // Popularity fallback so the degraded path has an answer even
        // with nothing cached.
        EngineConfig::default().with_popularity(vec![0.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.2, 0.1]),
    );
    engine.append_event(4, None, 3, 3).unwrap();
    // Out-of-vocabulary item: surfaced via model_errors + degraded path.
    let resp = engine.append_event(4, None, 4000, 3).unwrap();
    assert!(resp.is_degraded(), "fabricated logits are forbidden; fallback required");
    let m = engine.metrics();
    assert_eq!(m.model_errors, 1);
    assert_eq!(m.degraded_responses, 1);
    // The session itself is not poisoned: the next valid event serves
    // exactly.
    let resp = engine.append_event(4, None, 5, 3).unwrap();
    assert_eq!(resp.source(), ResponseSource::Session);
    assert_eq!(resp.items(), &engine.model().recommend(&[3, 5], 3)[..]);
}

#[test]
fn stateless_capacity_zero_still_serves_exact_answers() {
    let engine = Engine::start(trained_model(), EngineConfig::default().with_session_capacity(0));
    let mut history = Vec::new();
    for item in [2u32, 4, 6] {
        let hint = history.clone();
        let resp = engine.append_event(8, Some(&hint), item, 4).unwrap();
        history.push(item);
        assert_eq!(resp.items(), &engine.model().recommend(&history, 4)[..]);
    }
    let m = engine.metrics();
    assert_eq!(m.session_cold_starts, 3, "stateless mode recomputes every event");
    assert_eq!(engine.stats().sessions_live, 0);
}
