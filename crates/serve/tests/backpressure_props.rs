//! Property tests for the admission queue's backpressure policies.
//!
//! Three laws, sampled over random capacities, policies, and op
//! sequences (`PROPTEST_CASES` controls the sample count, like
//! upstream proptest):
//!
//! 1. **Bound** — queue depth never exceeds the configured capacity, at
//!    any point, under any interleaving of pushes and pops.
//! 2. **FIFO shedding** — `ShedOldest` always evicts the current front:
//!    the eviction order is exactly submission order, and what remains
//!    pops as the newest-capacity suffix, still FIFO.
//! 3. **Conservation** — every submitted item is accounted for exactly
//!    once: popped + still-queued + rejected + shed == submitted, and
//!    each push reports exactly one outcome.

use proptest::prelude::*;

use vsan_serve::{AdmissionQueue, BackpressurePolicy, PopOutcome, PushOutcome};

/// One scripted queue operation, decoded from sampled integers.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(BackpressurePolicy),
    Pop,
}

fn decode(op: u8) -> Op {
    match op % 5 {
        // Pushes outnumber pops 3:2 so full-queue behaviour is reached.
        0 => Op::Push(BackpressurePolicy::RejectNewest),
        1 => Op::Push(BackpressurePolicy::ShedOldest),
        // `Block` on a full queue would deadlock a single-threaded
        // script; reject/shed cover the full-queue outcomes and the
        // blocking path has its own threaded tests in the queue module.
        2 => Op::Push(BackpressurePolicy::RejectNewest),
        _ => Op::Pop,
    }
}

proptest! {
    #[test]
    fn depth_never_exceeds_capacity(
        capacity in 1usize..8,
        ops in collection::vec(0u8..=255, 0..120),
    ) {
        let q = AdmissionQueue::new(capacity);
        let mut next_id = 0u64;
        for &op in &ops {
            match decode(op) {
                Op::Push(policy) => {
                    q.push(next_id, policy, None);
                    next_id += 1;
                }
                Op::Pop => {
                    // Non-blocking: an already-elapsed deadline pops an
                    // item if present and times out otherwise.
                    let _ = q.pop_until(std::time::Instant::now());
                }
            }
            prop_assert!(
                q.len() <= capacity,
                "depth {} exceeded capacity {capacity}",
                q.len()
            );
        }
    }

    #[test]
    fn shed_oldest_evicts_in_fifo_order(
        capacity in 1usize..8,
        extra in 0usize..12,
    ) {
        let q = AdmissionQueue::new(capacity);
        let total = capacity + extra;
        let mut evicted = Vec::new();
        for id in 0..total as u64 {
            match q.push(id, BackpressurePolicy::ShedOldest, None) {
                PushOutcome::Queued => {}
                PushOutcome::Shed { evicted: e } => evicted.push(e),
                other => panic!("ShedOldest never rejects: {other:?}"),
            }
        }
        // Evictions are exactly the oldest `extra` items, oldest first.
        let expected_evicted: Vec<u64> = (0..extra as u64).collect();
        prop_assert_eq!(&evicted, &expected_evicted);
        // The survivors are the newest `capacity` items, still FIFO.
        let mut popped = Vec::new();
        while let PopOutcome::Item(id) = q.pop_until(std::time::Instant::now()) {
            popped.push(id);
        }
        let expected_left: Vec<u64> = (extra as u64..total as u64).collect();
        prop_assert_eq!(&popped, &expected_left);
    }

    #[test]
    fn every_item_is_accounted_for_exactly_once(
        capacity in 1usize..6,
        ops in collection::vec(0u8..=255, 0..200),
    ) {
        let q = AdmissionQueue::new(capacity);
        let mut submitted = 0u64;
        let (mut rejected, mut shed, mut popped) = (0usize, 0usize, 0usize);
        for &op in &ops {
            match decode(op) {
                Op::Push(policy) => {
                    match q.push(submitted, policy, None) {
                        PushOutcome::Queued => {}
                        PushOutcome::Rejected { .. } => rejected += 1,
                        PushOutcome::Shed { .. } => shed += 1,
                        other => panic!("open unblocked queue: {other:?}"),
                    }
                    submitted += 1;
                }
                Op::Pop => {
                    if let PopOutcome::Item(_) = q.pop_until(std::time::Instant::now()) {
                        popped += 1;
                    }
                }
            }
        }
        // A shed push still queues its newcomer, so the ledger closes:
        prop_assert_eq!(
            popped + q.len() + rejected + shed,
            submitted as usize,
            "popped {} + queued {} + rejected {} + shed {} != submitted {}",
            popped, q.len(), rejected, shed, submitted
        );
        // Drain after close: everything still queued must come out.
        q.close();
        let mut drained = 0usize;
        while let PopOutcome::Item(_) = q.pop() {
            drained += 1;
        }
        prop_assert_eq!(popped + drained + rejected + shed, submitted as usize);
    }

    #[test]
    fn closed_queue_refuses_all_policies(
        policy_bits in 0u8..=255,
        capacity in 1usize..4,
    ) {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(capacity);
        q.close();
        let policy = match decode(policy_bits) {
            Op::Push(p) => p,
            Op::Pop => BackpressurePolicy::Block,
        };
        prop_assert!(matches!(q.push(9, policy, None), PushOutcome::Closed { item: 9 }));
        prop_assert!(matches!(q.pop(), PopOutcome::Closed));
    }
}
