//! Request-scoped tracing tests (DESIGN.md §13): the flight recorder's
//! span records must reassemble into the causal tree of each request,
//! tracing must never change served bits, and the engine's metric
//! registry must round-trip through Prometheus text exposition.

use std::collections::HashMap;

use vsan_core::{Vsan, VsanConfig};
use vsan_data::Dataset;
use vsan_obs::{expo, parse, JsonValue, MemorySink};
use vsan_serve::{Engine, EngineConfig};

fn serve_cfg() -> VsanConfig {
    let mut cfg = VsanConfig::smoke();
    cfg.base.epochs = 2;
    cfg
}

fn trained_model() -> Vsan {
    let num_items = 8;
    let users = 12;
    let sequences = (0..users)
        .map(|u| (0..10).map(|t| ((u + t) % num_items + 1) as u32).collect())
        .collect();
    let ds = Dataset { name: "serve-trace".into(), num_items, sequences };
    let train_users: Vec<usize> = (0..users).collect();
    Vsan::train(&ds, &train_users, &serve_cfg()).expect("smoke training")
}

/// A bit-identical twin of `model` via the checkpoint round-trip.
fn twin(model: &Vsan) -> Vsan {
    let mut t = Vsan::init(9, &serve_cfg());
    t.params_mut().load_values(model.params().save()).expect("checkpoint reload");
    t
}

fn histories(n: usize) -> Vec<Vec<u32>> {
    (0..n).map(|u| (0..6).map(|t| ((u + t) % 8 + 1) as u32).collect()).collect()
}

/// One parsed flight record: `(trace, span, parent, stage)`.
struct Rec {
    trace: String,
    span: String,
    parent: String,
    stage: String,
}

/// Parse the `flight_record` lines out of a dump's JSONL.
fn parse_records(lines: &[String]) -> Vec<Rec> {
    let mut out = Vec::new();
    for line in lines {
        let v = parse(line).expect("dump line must be valid JSON");
        if v.get("type").and_then(JsonValue::as_str) != Some("flight_record") {
            continue;
        }
        let field = |k: &str| v.get(k).and_then(JsonValue::as_str).expect("string field").to_string();
        out.push(Rec {
            trace: field("trace_id"),
            span: field("span_id"),
            parent: field("parent_span_id"),
            stage: field("stage"),
        });
    }
    out
}

const NO_PARENT: &str = "0000000000000000";

/// Walk `span`'s parent links to the root; panics on a cycle, a dangling
/// parent, or a root that is not an admission span. Returns the chain of
/// stages, leaf first.
fn chain_to_root(records: &[Rec], span: &str) -> Vec<String> {
    let by_span: HashMap<&str, &Rec> = records.iter().map(|r| (r.span.as_str(), r)).collect();
    let mut chain = Vec::new();
    let mut cur = by_span[span];
    for _ in 0..32 {
        chain.push(cur.stage.clone());
        if cur.parent == NO_PARENT {
            assert_eq!(cur.stage, "admission", "trace root must be an admission span");
            assert_eq!(cur.trace, cur.span, "admission root's span id is the trace id");
            return chain;
        }
        cur = by_span
            .get(cur.parent.as_str())
            .unwrap_or_else(|| panic!("dangling parent {} of span {}", cur.parent, cur.span));
    }
    panic!("parent chain of span {span} did not reach a root within 32 hops (cycle?)");
}

#[test]
fn tracing_on_and_off_serve_identical_rankings() {
    let model = trained_model();
    let shadow = twin(&model);
    let on = Engine::start(model, EngineConfig::default().with_workers(1));
    let off = Engine::start(shadow, EngineConfig::default().with_workers(1).with_flight_recorder(0));
    assert!(on.flight_recorder().is_some(), "tracing defaults to on");
    assert!(off.flight_recorder().is_none(), "capacity 0 must disable the recorder");

    for h in histories(12) {
        let a = on.submit(&h, 5).wait().expect("traced reply");
        let b = off.submit(&h, 5).wait().expect("untraced reply");
        assert_eq!(a.items(), b.items(), "tracing changed served bits for {h:?}");
    }
    // The incremental session path makes the same promise.
    for (user, h) in histories(4).into_iter().enumerate() {
        let a = on.append_event(user as u64, Some(&h), 3, 5).expect("traced append");
        let b = off.append_event(user as u64, Some(&h), 3, 5).expect("untraced append");
        assert_eq!(a.items(), b.items(), "tracing changed session bits for user {user}");
    }
    on.shutdown();
    off.shutdown();
}

#[test]
fn manual_dump_reconstructs_every_request_chain() {
    let engine =
        Engine::start(trained_model(), EngineConfig::default().with_workers(1).with_cache_capacity(0));
    let hs = histories(6);
    for h in &hs {
        engine.submit(h, 5).wait().expect("reply");
    }
    let sink = MemorySink::new();
    let written = engine.dump_flight_recorder(&sink);
    assert!(written > 0, "dump must emit the recorded spans");
    engine.shutdown();

    let lines = sink.lines();
    let header = parse(&lines[0]).expect("header JSON");
    assert_eq!(header.get("type").and_then(JsonValue::as_str), Some("flight_dump"));
    assert_eq!(header.get("fault").and_then(JsonValue::as_str), Some("manual"));

    let records = parse_records(&lines);
    assert_eq!(records.len(), written, "one flight_record line per reported record");

    // Every span resolves to an admission root, and every completed
    // request's chain passed through pickup and compute (the cache is
    // off, so nothing short-circuits).
    for r in &records {
        chain_to_root(&records, &r.span);
    }
    let completes: Vec<&Rec> = records.iter().filter(|r| r.stage == "complete").collect();
    assert_eq!(completes.len(), hs.len(), "one complete span per request");
    for c in completes {
        let chain = chain_to_root(&records, &c.span);
        assert_eq!(
            chain,
            ["complete", "compute", "pickup", "admission"],
            "queued request must chain admission → pickup → compute → complete"
        );
    }
}

#[test]
fn session_appends_record_their_sub_stages() {
    let engine = Engine::start(trained_model(), EngineConfig::default().with_workers(1));
    for step in 0..3u32 {
        engine.append_event(77, None, step % 8 + 1, 5).expect("append");
    }
    let sink = MemorySink::new();
    engine.dump_flight_recorder(&sink);
    engine.shutdown();

    let records = parse_records(&sink.lines());
    // With the fast path env-disabled, appends recompute through the
    // graph oracle: a prepare span instead of the one-row apply.
    let incremental = if vsan_core::fast_path_disabled() { "session_prepare" } else { "session_apply" };
    for want in ["session", "session_resolve", incremental, "session_commit"] {
        assert!(
            records.iter().any(|r| r.stage == want),
            "session append must record a {want} span"
        );
    }
    // Sub-stages hang off the session span, which hangs off admission.
    let resolve = records.iter().find(|r| r.stage == "session_resolve").expect("resolve span");
    let chain = chain_to_root(&records, &resolve.span);
    assert_eq!(chain, ["session_resolve", "session", "admission"]);
}

#[test]
fn registry_round_trips_through_prometheus_exposition() {
    let engine = Engine::start(trained_model(), EngineConfig::default().with_workers(1));
    for h in histories(5) {
        engine.submit(&h, 5).wait().expect("reply");
    }
    let snap = engine.metrics();
    let registry = engine.metrics_registry();

    let text = expo::render(&registry);
    let scrape = expo::parse(&text).expect("engine registry must render parseable exposition");
    assert_eq!(
        scrape.value("serve_requests"),
        Some(snap.requests as f64),
        "scraped counter must match the snapshot"
    );
    // The full retrieval-path metrics are registered from startup.
    for name in
        ["serve_retrieval_exact", "serve_retrieval_clustered", "serve_cache_hits", "serve_batches"]
    {
        assert!(scrape.value(name).is_some(), "metric {name} missing from exposition");
    }
    assert!(
        scrape
            .buckets("serve_latency_us")
            .last()
            .is_some_and(|(le, n)| le == "+Inf" && *n == snap.requests as f64),
        "latency +Inf bucket must count every request"
    );
    // Determinism satellite: rendering twice with no traffic in between
    // is byte-identical (sorted names, no timestamps).
    engine.shutdown();
    assert_eq!(expo::render(&registry), expo::render(&registry));
}
