//! Finite-difference gradient checking.
//!
//! Every backward rule in this crate is validated by comparing the analytic
//! gradient against a central finite difference of the (deterministically
//! rebuilt) forward pass. The checker is public so downstream crates can
//! verify their composed modules (attention blocks, GRU cells, the full
//! VSAN loss) the same way.

use crate::{Graph, Var};
use vsan_tensor::Tensor;

/// Outcome of a single gradient check.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f32,
    /// Largest relative difference (normalized by magnitudes + 1e-4).
    pub max_rel_diff: f32,
    /// Total number of elements compared.
    pub compared: usize,
}

/// Compare analytic gradients against central finite differences.
///
/// `build` must deterministically construct the scalar loss from the graph
/// and the parameter [`Var`]s it is handed (params are registered with keys
/// `0..params.len()`). Randomized ops (dropout) must use fixed masks.
///
/// Returns an error string describing the first offending element when any
/// relative difference exceeds `tol`.
pub fn check_gradients(
    params: &[Tensor],
    build: impl Fn(&mut Graph, &[Var]) -> Var,
    eps: f32,
    tol: f32,
) -> Result<GradCheckReport, String> {
    // Analytic pass.
    let mut g = Graph::with_threads(1);
    let vars: Vec<Var> = params.iter().enumerate().map(|(k, t)| g.param(t.clone(), k)).collect();
    let loss = build(&mut g, &vars);
    let grads = g.backward(loss).map_err(|e| format!("backward failed: {e}"))?;

    let eval = |ps: &[Tensor]| -> f32 {
        let mut g = Graph::with_threads(1);
        let vars: Vec<Var> = ps.iter().enumerate().map(|(k, t)| g.param(t.clone(), k)).collect();
        let loss = build(&mut g, &vars);
        g.value(loss).data()[0]
    };

    let mut report = GradCheckReport { max_abs_diff: 0.0, max_rel_diff: 0.0, compared: 0 };
    let mut work: Vec<Tensor> = params.to_vec();
    for (k, p) in params.iter().enumerate() {
        let analytic = grads
            .param_grad(k)
            .cloned()
            .unwrap_or_else(|| Tensor::zeros(p.dims()));
        for e in 0..p.numel() {
            let orig = p.data()[e];
            work[k].data_mut()[e] = orig + eps;
            let up = eval(&work);
            work[k].data_mut()[e] = orig - eps;
            let down = eval(&work);
            work[k].data_mut()[e] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic.data()[e];
            let abs = (a - numeric).abs();
            let rel = abs / (a.abs().max(numeric.abs()) + 1e-4);
            report.max_abs_diff = report.max_abs_diff.max(abs);
            report.max_rel_diff = report.max_rel_diff.max(rel);
            report.compared += 1;
            if rel > tol && abs > 10.0 * eps {
                return Err(format!(
                    "param {k} element {e}: analytic {a:.6} vs numeric {numeric:.6} \
                     (abs {abs:.6}, rel {rel:.6})"
                ));
            }
        }
    }
    Ok(report)
}

/// Convenience wrapper with the default tolerances used throughout the
/// workspace (`eps = 1e-2`, `tol = 2e-2` — f32 finite differences are noisy,
/// so the epsilon is deliberately coarse).
pub fn check_default(
    params: &[Tensor],
    build: impl Fn(&mut Graph, &[Var]) -> Var,
) -> Result<GradCheckReport, String> {
    check_gradients(params, build, 1e-2, 2e-2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_correct_gradient() {
        let p = Tensor::from_vec(vec![0.5, -0.3], &[1, 2]).unwrap();
        let ok = check_default(&[p], |g, vars| {
            let s = g.mul(vars[0], vars[0]).unwrap();
            g.sum_all(s)
        });
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn catches_a_wrong_gradient() {
        // Sabotage: the analytic pass (first call) sees loss = sum(x²) but
        // every numeric evaluation sees loss = sum(3x²), so the analytic
        // gradient is off by 3× and the checker must reject it.
        let p = Tensor::from_vec(vec![0.5, -0.3], &[1, 2]).unwrap();
        let calls = std::cell::Cell::new(0usize);
        let bad = check_default(&[p], |g, vars| {
            let n = calls.get();
            calls.set(n + 1);
            let s = g.mul(vars[0], vars[0]).unwrap();
            let s = if n == 0 { s } else { g.scale(s, 3.0) };
            g.sum_all(s)
        });
        assert!(bad.is_err(), "{bad:?}");
    }
}
