//! Finite-difference gradient checking.
//!
//! Every backward rule in this crate is validated by comparing the analytic
//! gradient against a central finite difference of the (deterministically
//! rebuilt) forward pass. The checker is public so downstream crates can
//! verify their composed modules (attention blocks, GRU cells, the full
//! VSAN loss) the same way.

use crate::{Graph, Var};
use vsan_tensor::{KernelTier, Tensor};

/// Outcome of a single gradient check.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f32,
    /// Largest relative difference (normalized by magnitudes + 1e-4).
    pub max_rel_diff: f32,
    /// Total number of elements compared.
    pub compared: usize,
}

/// Compare analytic gradients against central finite differences.
///
/// `build` must deterministically construct the scalar loss from the graph
/// and the parameter [`Var`]s it is handed (params are registered with keys
/// `0..params.len()`). Randomized ops (dropout) must use fixed masks.
///
/// Returns an error string describing the first offending element when any
/// relative difference exceeds `tol`.
pub fn check_gradients(
    params: &[Tensor],
    build: impl Fn(&mut Graph, &[Var]) -> Var,
    eps: f32,
    tol: f32,
) -> Result<GradCheckReport, String> {
    check_gradients_tiered(params, build, eps, tol, KernelTier::Reference)
}

/// [`check_gradients`] with an explicit kernel tier for the analytic
/// pass. The numeric (finite-difference) evaluations always run the
/// reference tier, so checking the fast tier here validates its analytic
/// gradients against an *independent* forward implementation — on top of
/// the bitwise cross-tier check in [`check_tier_equivalence`].
pub fn check_gradients_tiered(
    params: &[Tensor],
    build: impl Fn(&mut Graph, &[Var]) -> Var,
    eps: f32,
    tol: f32,
    tier: KernelTier,
) -> Result<GradCheckReport, String> {
    // Analytic pass.
    let mut g = Graph::with_threads_and_tier(1, tier);
    let vars: Vec<Var> = params.iter().enumerate().map(|(k, t)| g.param(t.clone(), k)).collect();
    let loss = build(&mut g, &vars);
    let grads = g.backward(loss).map_err(|e| format!("backward failed: {e}"))?;

    let eval = |ps: &[Tensor]| -> f32 {
        let mut g = Graph::with_threads(1);
        let vars: Vec<Var> = ps.iter().enumerate().map(|(k, t)| g.param(t.clone(), k)).collect();
        let loss = build(&mut g, &vars);
        g.value(loss).data()[0]
    };

    let mut report = GradCheckReport { max_abs_diff: 0.0, max_rel_diff: 0.0, compared: 0 };
    let mut work: Vec<Tensor> = params.to_vec();
    for (k, p) in params.iter().enumerate() {
        let analytic = grads
            .param_grad(k)
            .cloned()
            .unwrap_or_else(|| Tensor::zeros(p.dims()));
        for e in 0..p.numel() {
            let orig = p.data()[e];
            work[k].data_mut()[e] = orig + eps;
            let up = eval(&work);
            work[k].data_mut()[e] = orig - eps;
            let down = eval(&work);
            work[k].data_mut()[e] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic.data()[e];
            let abs = (a - numeric).abs();
            let rel = abs / (a.abs().max(numeric.abs()) + 1e-4);
            report.max_abs_diff = report.max_abs_diff.max(abs);
            report.max_rel_diff = report.max_rel_diff.max(rel);
            report.compared += 1;
            if rel > tol && abs > 10.0 * eps {
                return Err(format!(
                    "param {k} element {e}: analytic {a:.6} vs numeric {numeric:.6} \
                     (abs {abs:.6}, rel {rel:.6})"
                ));
            }
        }
    }
    Ok(report)
}

/// Convenience wrapper with the default tolerances used throughout the
/// workspace (`eps = 1e-2`, `tol = 2e-2` — f32 finite differences are noisy,
/// so the epsilon is deliberately coarse).
pub fn check_default(
    params: &[Tensor],
    build: impl Fn(&mut Graph, &[Var]) -> Var,
) -> Result<GradCheckReport, String> {
    check_gradients(params, build, 1e-2, 2e-2)
}

/// Outcome of a cross-tier bitwise equivalence check.
#[derive(Debug)]
pub struct TierCheckReport {
    /// Total f32 elements compared (loss + every parameter gradient).
    pub compared: usize,
}

/// Build the same loss on a reference-tier and a fast-tier graph and
/// demand **bit-identical** results: the loss scalar and every parameter
/// gradient must match `to_bits()`-exactly, not merely within a tolerance.
///
/// This is the differential oracle for the fast kernel tier (DESIGN.md
/// §10): the reference graph runs the scalar tape kernels, the fast graph
/// runs the tiled/fused kernels, and any divergence — a reordered fold,
/// an FMA contraction, a dropped `+ 0.0` — shows up as a bit mismatch
/// here long before it would show up as a loose tolerance failure.
///
/// `build` has the same contract as [`check_gradients`]: deterministic,
/// params registered with keys `0..params.len()`.
pub fn check_tier_equivalence(
    params: &[Tensor],
    build: impl Fn(&mut Graph, &[Var]) -> Var,
) -> Result<TierCheckReport, String> {
    let run = |tier: KernelTier| -> Result<(f32, Vec<Option<Tensor>>), String> {
        let mut g = Graph::with_threads_and_tier(1, tier);
        let vars: Vec<Var> =
            params.iter().enumerate().map(|(k, t)| g.param(t.clone(), k)).collect();
        let loss = build(&mut g, &vars);
        let loss_val = g.value(loss).data()[0];
        let grads = g
            .backward(loss)
            .map_err(|e| format!("backward failed on {} tier: {e}", tier.name()))?;
        let per_param = (0..params.len()).map(|k| grads.param_grad(k).cloned()).collect();
        Ok((loss_val, per_param))
    };

    let (loss_ref, grads_ref) = run(KernelTier::Reference)?;
    let (loss_fast, grads_fast) = run(KernelTier::Fast)?;

    if loss_ref.to_bits() != loss_fast.to_bits() {
        return Err(format!(
            "loss bits differ: reference {loss_ref:?} ({:08x}) vs fast {loss_fast:?} ({:08x})",
            loss_ref.to_bits(),
            loss_fast.to_bits()
        ));
    }
    let mut compared = 1usize;
    for (k, (gr, gf)) in grads_ref.iter().zip(&grads_fast).enumerate() {
        match (gr, gf) {
            (None, None) => {}
            (Some(_), None) | (None, Some(_)) => {
                return Err(format!(
                    "param {k}: gradient present on one tier only (reference: {}, fast: {})",
                    gr.is_some(),
                    gf.is_some()
                ));
            }
            (Some(gr), Some(gf)) => {
                if gr.dims() != gf.dims() {
                    return Err(format!(
                        "param {k}: gradient shape differs across tiers: {:?} vs {:?}",
                        gr.dims(),
                        gf.dims()
                    ));
                }
                for (e, (a, b)) in gr.data().iter().zip(gf.data()).enumerate() {
                    if a.to_bits() != b.to_bits() {
                        return Err(format!(
                            "param {k} element {e}: gradient bits differ: \
                             reference {a:?} ({:08x}) vs fast {b:?} ({:08x})",
                            a.to_bits(),
                            b.to_bits()
                        ));
                    }
                    compared += 1;
                }
            }
        }
    }
    Ok(TierCheckReport { compared })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_correct_gradient() {
        let p = Tensor::from_vec(vec![0.5, -0.3], &[1, 2]).unwrap();
        let ok = check_default(&[p], |g, vars| {
            let s = g.mul(vars[0], vars[0]).unwrap();
            g.sum_all(s)
        });
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn tier_equivalence_accepts_an_attention_loss() {
        // q/k/v shapes off the register-tile grid (n=3, d=5) exercise the
        // fused kernel's remainder paths through the public checker.
        let mk = |seed: f32| {
            let data: Vec<f32> = (0..15).map(|i| ((i as f32) * 0.37 + seed).sin()).collect();
            Tensor::from_vec(data, &[3, 5]).unwrap()
        };
        let report = check_tier_equivalence(&[mk(0.1), mk(1.3), mk(2.7)], |g, vars| {
            let attn = g.causal_attention(vars[0], vars[1], vars[2], 0.5).unwrap();
            let sq = g.mul(attn, attn).unwrap();
            g.sum_all(sq)
        })
        .expect("tiers must agree bitwise");
        // loss + 3 × 15 gradient elements
        assert_eq!(report.compared, 1 + 45);
    }

    #[test]
    fn tier_equivalence_catches_a_divergent_build() {
        // Sabotage: the build inspects the graph's tier and scales the loss
        // on the fast tier only — the checker must reject the bit mismatch.
        let p = Tensor::from_vec(vec![0.5, -0.3], &[1, 2]).unwrap();
        let bad = check_tier_equivalence(&[p], |g, vars| {
            let s = g.mul(vars[0], vars[0]).unwrap();
            let s = if g.kernel_tier() == KernelTier::Fast { g.scale(s, 3.0) } else { s };
            g.sum_all(s)
        });
        assert!(bad.is_err(), "{bad:?}");
    }

    #[test]
    fn catches_a_wrong_gradient() {
        // Sabotage: the analytic pass (first call) sees loss = sum(x²) but
        // every numeric evaluation sees loss = sum(3x²), so the analytic
        // gradient is off by 3× and the checker must reject it.
        let p = Tensor::from_vec(vec![0.5, -0.3], &[1, 2]).unwrap();
        let calls = std::cell::Cell::new(0usize);
        let bad = check_default(&[p], |g, vars| {
            let n = calls.get();
            calls.set(n + 1);
            let s = g.mul(vars[0], vars[0]).unwrap();
            let s = if n == 0 { s } else { g.scale(s, 3.0) };
            g.sum_all(s)
        });
        assert!(bad.is_err(), "{bad:?}");
    }
}
