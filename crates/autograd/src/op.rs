//! The typed operation records stored on the tape.
//!
//! Each variant captures its input variable ids plus whatever forward-pass
//! byproducts the backward rule needs (dropout masks, layer-norm statistics,
//! cached softmax probabilities, …). Keeping ops as plain data — rather than
//! boxed closures — makes the tape inspectable, testable, and `Send`.

use vsan_tensor::ops::norm::LayerNormStats;

/// Internal node index on the tape. Public only through [`crate::Var`].
pub(crate) type NodeId = usize;

/// A recorded operation.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // variant docs describe the named fields
pub enum Op {
    /// Input node: a constant (no gradient) or a parameter (gradient
    /// reported under `param_key`).
    Leaf {
        /// `Some(key)` marks a trainable parameter.
        param_key: Option<usize>,
    },
    /// Elementwise `a + b` (identical shapes).
    Add(NodeId, NodeId),
    /// Elementwise `a - b`.
    Sub(NodeId, NodeId),
    /// Elementwise Hadamard product `a ⊙ b`.
    Mul(NodeId, NodeId),
    /// Elementwise affine `s·x + c` with scalar coefficients.
    Affine { x: NodeId, scale: f32, shift: f32 },
    /// Broadcast-add a `(cols,)` bias to every row of a `(rows, cols)` input.
    AddRowBroadcast { x: NodeId, bias: NodeId },
    /// Dense matmul `(m,k) × (k,n)`.
    MatMul(NodeId, NodeId),
    /// `A · Bᵀ`: `(m,k) × (n,k) → (m,n)`; the attention-score shape.
    MatMulABt(NodeId, NodeId),
    /// ReLU.
    Relu(NodeId),
    /// Sigmoid (output cached in the node value).
    Sigmoid(NodeId),
    /// Tanh (output cached in the node value).
    Tanh(NodeId),
    /// Elementwise exponential (output cached in the node value).
    Exp(NodeId),
    /// Row-wise softmax over a rank-2 input.
    SoftmaxRows(NodeId),
    /// Causal-masked row softmax over a square score matrix (row `i`
    /// attends to columns `j ≤ i`).
    SoftmaxCausal(NodeId),
    /// Fused causal attention `softmax_causal(q·kᵀ·scale)·v` — the fast
    /// kernel tier's replacement for the `MatMulABt` → `Affine` →
    /// `SoftmaxCausal` → `MatMul` composition (bit-identical to it).
    /// Cached: the `(n, n)` softmax matrix, flattened row-major (the
    /// saved activation the one-pass backward consumes).
    CausalAttention { q: NodeId, k: NodeId, v: NodeId, scale: f32, probs: Vec<f32> },
    /// Fused LayerNorm with learned affine parameters.
    LayerNorm { x: NodeId, gamma: NodeId, beta: NodeId, stats: LayerNormStats },
    /// Row gather from a rank-2 table: `out.row(i) = x.row(idx[i])`.
    GatherRows { x: NodeId, idx: Vec<usize> },
    /// Vertical concatenation of rank-2 inputs sharing a column count.
    ConcatRows { parts: Vec<NodeId>, rows: Vec<usize> },
    /// Horizontal concatenation of rank-2 inputs sharing a row count.
    ConcatCols { parts: Vec<NodeId>, cols: Vec<usize> },
    /// Shape reinterpretation (element count preserved).
    Reshape { x: NodeId, old_dims: Vec<usize> },
    /// Rank-2 transpose.
    Transpose(NodeId),
    /// Inverted dropout: the mask holds `0.0` (dropped) or `1/(1-p)` (kept).
    Dropout { x: NodeId, mask: Vec<f32> },
    /// Column-wise max over rows: `(r, c) → (c,)`, argmax rows cached.
    MaxAxis0 { x: NodeId, argmax: Vec<usize> },
    /// Sum of all elements → scalar.
    SumAll(NodeId),
    /// Mean of all elements → scalar.
    MeanAll(NodeId),
    /// Fused softmax cross-entropy with integer targets (Eq. 14 / Eq. 20
    /// reconstruction term). `targets[r] = usize::MAX` marks a masked
    /// (padding) row. Cached: per-row softmax probabilities flattened.
    CeOneHot { logits: NodeId, targets: Vec<usize>, probs: Vec<f32>, norm: f32 },
    /// Fused multi-hot softmax cross-entropy for the next-`k` objective
    /// (Eq. 18): each row's loss is `-Σ_{i ∈ targets[r]} log softmax_r[i]`.
    /// Empty target sets mark masked rows.
    CeMultiHot { logits: NodeId, targets: Vec<Vec<usize>>, probs: Vec<f32>, norm: f32 },
    /// Fused diagonal-Gaussian KL to the standard-normal prior (Eq. 20 KL
    /// term): `0.5 Σ_j (exp(lv) + μ² − 1 − lv)` summed over unmasked rows.
    KlStdNormal { mu: NodeId, logvar: NodeId, row_mask: Vec<bool>, norm: f32 },
}

impl Op {
    /// Input node ids, in argument order, for topology checks and tooling.
    pub fn inputs(&self) -> Vec<NodeId> {
        match self {
            Op::Leaf { .. } => vec![],
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::MatMul(a, b) | Op::MatMulABt(a, b) => {
                vec![*a, *b]
            }
            Op::Affine { x, .. }
            | Op::Relu(x)
            | Op::Sigmoid(x)
            | Op::Tanh(x)
            | Op::Exp(x)
            | Op::SoftmaxRows(x)
            | Op::SoftmaxCausal(x)
            | Op::GatherRows { x, .. }
            | Op::Reshape { x, .. }
            | Op::Transpose(x)
            | Op::Dropout { x, .. }
            | Op::MaxAxis0 { x, .. }
            | Op::SumAll(x)
            | Op::MeanAll(x) => vec![*x],
            Op::AddRowBroadcast { x, bias } => vec![*x, *bias],
            Op::LayerNorm { x, gamma, beta, .. } => vec![*x, *gamma, *beta],
            Op::CausalAttention { q, k, v, .. } => vec![*q, *k, *v],
            Op::ConcatRows { parts, .. } | Op::ConcatCols { parts, .. } => parts.clone(),
            Op::CeOneHot { logits, .. } | Op::CeMultiHot { logits, .. } => vec![*logits],
            Op::KlStdNormal { mu, logvar, .. } => vec![*mu, *logvar],
        }
    }

    /// Human-readable op name for debugging and tape dumps.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Leaf { param_key: Some(_) } => "param",
            Op::Leaf { param_key: None } => "const",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Affine { .. } => "affine",
            Op::AddRowBroadcast { .. } => "add_row_broadcast",
            Op::MatMul(..) => "matmul",
            Op::MatMulABt(..) => "matmul_a_bt",
            Op::Relu(..) => "relu",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::Exp(..) => "exp",
            Op::SoftmaxRows(..) => "softmax_rows",
            Op::SoftmaxCausal(..) => "softmax_causal",
            Op::CausalAttention { .. } => "causal_attention",
            Op::LayerNorm { .. } => "layer_norm",
            Op::GatherRows { .. } => "gather_rows",
            Op::ConcatRows { .. } => "concat_rows",
            Op::ConcatCols { .. } => "concat_cols",
            Op::Reshape { .. } => "reshape",
            Op::Transpose(..) => "transpose",
            Op::Dropout { .. } => "dropout",
            Op::MaxAxis0 { .. } => "max_axis0",
            Op::SumAll(..) => "sum_all",
            Op::MeanAll(..) => "mean_all",
            Op::CeOneHot { .. } => "ce_one_hot",
            Op::CeMultiHot { .. } => "ce_multi_hot",
            Op::KlStdNormal { .. } => "kl_std_normal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_report_argument_order() {
        assert_eq!(Op::Add(3, 7).inputs(), vec![3, 7]);
        assert_eq!(Op::Leaf { param_key: None }.inputs(), Vec::<usize>::new());
        assert_eq!(
            Op::LayerNorm {
                x: 1,
                gamma: 2,
                beta: 3,
                stats: LayerNormStats { mean: vec![], inv_std: vec![] }
            }
            .inputs(),
            vec![1, 2, 3]
        );
        assert_eq!(Op::ConcatRows { parts: vec![5, 9], rows: vec![2, 2] }.inputs(), vec![5, 9]);
        assert_eq!(
            Op::CausalAttention { q: 4, k: 6, v: 8, scale: 0.5, probs: vec![] }.inputs(),
            vec![4, 6, 8]
        );
    }

    #[test]
    fn names_distinguish_params_from_constants() {
        assert_eq!(Op::Leaf { param_key: Some(0) }.name(), "param");
        assert_eq!(Op::Leaf { param_key: None }.name(), "const");
        assert_eq!(Op::MatMulABt(0, 1).name(), "matmul_a_bt");
    }
}
